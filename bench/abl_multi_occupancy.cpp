/// \file abl_multi_occupancy.cpp
/// Ablation of the paper's one-guest-per-node constraint (§3.2: the free
/// memory "is sufficient to accommodate ONE compute-bound foreign job of
/// moderate size"). Allowing co-resident guests processor-shares the
/// leftover rate and splits the donated page pool. On a demand-saturated
/// cluster, extra slots cannot add capacity — they only shuffle it — and
/// once memory gets tight they actively destroy throughput to paging.

#include <cstdio>

#include "cluster/experiment.hpp"
#include "common.hpp"
#include "trace/coarse_generator.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("abl_multi_occupancy",
                    "Guests-per-node sweep (paper fixes this at 1).");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto nodes = flags.add_int("nodes", 32, "cluster size");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Ablation: foreign jobs allowed per node",
                 "Paper constraint: one moderate guest per node (memory "
                 "headroom argument).",
                 *seed);

  const auto& table = workload::default_burst_table();
  util::CsvWriter csv(*csv_path);
  csv.row({"pool", "slots", "throughput", "avg_job", "p50", "p90",
           "fg_delay"});

  struct PoolSpec {
    const char* name;
    double free_mb;  // average free memory on the machines
  };
  for (const PoolSpec& spec :
       {PoolSpec{"roomy memory (~24 MB free)", 24.0},
        PoolSpec{"tight memory (~10 MB free)", 10.0}}) {
    trace::CoarseGenConfig gen;
    gen.duration = 24.0 * 3600.0;
    const auto base_used =
        static_cast<std::int32_t>(65536 - spec.free_mb * 1024.0);
    gen.mem_base_active_lo = base_used - 3072;
    gen.mem_base_active_hi = base_used + 3072;
    gen.mem_base_away_lo = base_used - 4096;
    gen.mem_base_away_hi = base_used + 2048;
    const auto pool = trace::generate_machine_pool(
        gen, static_cast<std::size_t>(*nodes), rng::Stream(*seed + 1));

    util::Table out({"slots/node", "throughput", "avg job (s)", "p50 (s)",
                     "p90 (s)", "owner delay"});
    for (std::size_t slots : {1u, 2u, 4u}) {
      cluster::ExperimentConfig cfg;
      cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
      cfg.cluster.policy = core::PolicyKind::LingerLonger;
      cfg.cluster.max_foreign_per_node = slots;
      cfg.workload = cluster::WorkloadSpec{96, 600.0};
      cfg.seed = *seed;

      const auto open = cluster::run_open(cfg, pool, table);
      const auto closed = cluster::run_closed(cfg, pool, table, 3600.0);
      out.add_row({std::to_string(slots), util::fixed(closed.throughput, 1),
                   util::fixed(open.avg_completion, 0),
                   util::fixed(open.p50_completion, 0),
                   util::fixed(open.p90_completion, 0),
                   util::percent(open.foreground_delay, 2)});
      csv.row({spec.name, std::to_string(slots),
               util::fixed(closed.throughput, 2),
               util::fixed(open.avg_completion, 1),
               util::fixed(open.p50_completion, 1),
               util::fixed(open.p90_completion, 1),
               util::fixed(open.foreground_delay, 5)});
    }
    std::printf("%s:\n%s\n", spec.name, out.render().c_str());
  }
  std::printf("Processor sharing keeps aggregate throughput flat when memory "
              "is roomy but\ninflates mean completion (jobs overlap instead "
              "of pipelining); with tight\nmemory, extra guests thrash the "
              "donated page pool and throughput drops —\nthe quantitative "
              "case for the paper's one-guest rule.\n");
  return 0;
}
