/// \file micro_steal.cpp
/// Steal-throughput microbenchmark: the lock-free work-stealing TaskRunner
/// against the mutex-guarded deque runner it replaced (embedded here,
/// verbatim in structure, as the baseline). Three probes:
///
///   1. Dispatch throughput — batches of deliberately tiny tasks, where
///      per-task scheduling overhead dominates. The acceptance gate is the
///      lock-free runner dispatching >= --min-speedup x the mutex runner's
///      tasks/second at --workers workers (ISSUE 6: 2x at 8).
///   2. Uneven batches — per-task work varies ~64x, the shape real sweeps
///      have (cells of different policies/cluster sizes), where stealing
///      pays through load balance rather than dispatch rate.
///   3. Idle discipline — threads > tasks: a runner whose surplus workers
///      spin would burn ~workers x wall of CPU time; suspended workers
///      burn ~0. Asserts process CPU time <= --idle-cpu-factor x wall.
///
/// Exit 1 on a failed gate, so CI can run it as a regression check.

#include <sys/resource.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/flags.hpp"
#include "util/runner.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// The pre-ISSUE-6 TaskRunner, kept as the benchmark baseline: one global
/// mutex guards per-slot std::deques; workers block on a condition
/// variable. Public surface mirrors util::TaskRunner::run (caller
/// participates, batch drains fully).
class MutexRunner {
 public:
  explicit MutexRunner(std::size_t threads) : slots_(threads) {
    workers_.reserve(threads - 1);
    for (std::size_t slot = 1; slot < threads; ++slot) {
      workers_.emplace_back([this, slot] { worker_loop(slot); });
    }
  }

  ~MutexRunner() {
    {
      std::scoped_lock lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void run(std::vector<std::function<void()>> tasks) {
    if (tasks.empty()) return;
    Batch batch;
    batch.tasks = &tasks;
    batch.unfinished = tasks.size();
    batch.queues.resize(slots_);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      batch.queues[i % slots_].push_back(i);
    }
    std::unique_lock lock(mu_);
    batches_.push_back(&batch);
    work_cv_.notify_all();
    std::size_t index = 0;
    while (pop_task(batch, 0, index)) execute(lock, batch, index);
    done_cv_.wait(lock, [&] { return batch.unfinished == 0; });
    std::erase(batches_, &batch);
  }

 private:
  struct Batch {
    std::vector<std::function<void()>>* tasks = nullptr;
    std::vector<std::deque<std::size_t>> queues;
    std::size_t unfinished = 0;
  };

  static bool pop_task(Batch& batch, std::size_t slot, std::size_t& index) {
    std::deque<std::size_t>& own = batch.queues[slot % batch.queues.size()];
    if (!own.empty()) {
      index = own.front();
      own.pop_front();
      return true;
    }
    std::deque<std::size_t>* victim = nullptr;
    for (std::deque<std::size_t>& q : batch.queues) {
      if (!q.empty() && (!victim || q.size() > victim->size())) victim = &q;
    }
    if (!victim) return false;
    index = victim->back();
    victim->pop_back();
    return true;
  }

  bool next_task(std::size_t slot, Batch*& batch, std::size_t& index) {
    for (Batch* b : batches_) {
      if (pop_task(*b, slot, index)) {
        batch = b;
        return true;
      }
    }
    return false;
  }

  void execute(std::unique_lock<std::mutex>& lock, Batch& batch,
               std::size_t index) {
    lock.unlock();
    (*batch.tasks)[index]();
    lock.lock();
    if (--batch.unfinished == 0) done_cv_.notify_all();
  }

  void worker_loop(std::size_t slot) {
    std::unique_lock lock(mu_);
    for (;;) {
      Batch* batch = nullptr;
      std::size_t index = 0;
      work_cv_.wait(lock,
                    [&] { return stop_ || next_task(slot, batch, index); });
      if (batch == nullptr) {
        if (stop_) return;
        continue;
      }
      execute(lock, *batch, index);
    }
  }

  std::size_t slots_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<Batch*> batches_;
  bool stop_ = false;
};

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

volatile std::uint64_t g_sink = 0;  // keeps burn() from being optimized out

void burn(std::uint64_t seed, std::uint64_t iters) {
  std::uint64_t acc = seed;
  for (std::uint64_t i = 0; i < iters; ++i) acc = mix(acc + i);
  g_sink = acc;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double process_cpu_seconds() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  const auto to_s = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return to_s(usage.ru_utime) + to_s(usage.ru_stime);
}

/// Tasks/second dispatching `batches` batches of `n` tasks, each burning
/// `iters` mix rounds, through `run`.
template <typename Runner>
double dispatch_rate(Runner& runner, std::size_t batches, std::size_t n,
                     std::uint64_t iters,
                     const std::function<std::uint64_t(std::size_t)>& work =
                         nullptr) {
  const auto start = Clock::now();
  for (std::size_t b = 0; b < batches; ++b) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t w = work ? work(i) : iters;
      tasks.push_back([i, w] { burn(i, w); });
    }
    runner.run(std::move(tasks));
  }
  return static_cast<double>(batches * n) / seconds_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  ll::util::Flags flags(
      "micro_steal",
      "Lock-free work-stealing runner vs the mutex-deque baseline.");
  auto workers = flags.add_int("workers", 8, "worker count for both runners");
  auto batches = flags.add_int("batches", 200, "batches per measurement");
  auto tasks = flags.add_int("tasks", 512, "tasks per batch");
  auto iters = flags.add_int("iters", 8, "mix rounds per small task");
  auto min_speedup = flags.add_double(
      "min-speedup", 2.0,
      "required lock-free/mutex dispatch-rate ratio (0 disables the gate)");
  auto idle_factor = flags.add_double(
      "idle-cpu-factor", 3.0,
      "max process-CPU/wall ratio while threads > tasks (0 disables)");
  flags.parse(argc, argv);

  const auto n_workers = static_cast<std::size_t>(*workers);
  const auto n_batches = static_cast<std::size_t>(*batches);
  const auto n_tasks = static_cast<std::size_t>(*tasks);
  const auto n_iters = static_cast<std::uint64_t>(*iters);

  // The 2x headline is a *contention* result: the mutex runner collapses
  // when several cores bounce its one lock cache line. Below 4 hardware
  // threads that regime cannot exist (the lock is nearly uncontended, the
  // pathology being measured is absent), so the gate relaxes to "the
  // lock-free runner still wins" and says so.
  double required = *min_speedup;
  const std::size_t hw = std::thread::hardware_concurrency();
  if (required > 1.2 && hw < 4) {
    std::printf(
        "note: only %zu hardware thread(s) — mutex contention cannot "
        "manifest; relaxing dispatch gate %.2fx -> 1.20x\n",
        hw, required);
    required = 1.2;
  }

  ll::util::Table out({"probe", "runner", "tasks/s", "ratio"});
  bool ok = true;

  // Probe 1: dispatch throughput on small uniform tasks. Warm up both
  // pools once, then measure; best-of-3 to shed scheduler noise.
  double mutex_rate = 0.0;
  double lockfree_rate = 0.0;
  {
    MutexRunner baseline(n_workers);
    (void)dispatch_rate(baseline, 2, n_tasks, n_iters);
    for (int rep = 0; rep < 3; ++rep) {
      mutex_rate =
          std::max(mutex_rate, dispatch_rate(baseline, n_batches, n_tasks,
                                             n_iters));
    }
  }
  {
    ll::util::TaskRunner runner(n_workers);
    (void)dispatch_rate(runner, 2, n_tasks, n_iters);
    for (int rep = 0; rep < 3; ++rep) {
      lockfree_rate =
          std::max(lockfree_rate, dispatch_rate(runner, n_batches, n_tasks,
                                                n_iters));
    }
  }
  const double speedup = lockfree_rate / mutex_rate;
  out.add_row({"small-task dispatch", "mutex deque",
               ll::util::fixed(mutex_rate, 0), "1.00"});
  out.add_row({"small-task dispatch", "lock-free steal",
               ll::util::fixed(lockfree_rate, 0),
               ll::util::fixed(speedup, 2)});
  if (*min_speedup > 0.0 && speedup < required) {
    ok = false;
    std::printf("FAIL: dispatch speedup %.2fx < required %.2fx\n", speedup,
                required);
  }

  // Probe 2: uneven batches (~64x duration spread) — the load-balance win.
  {
    const auto uneven = [n_iters](std::size_t i) {
      return n_iters * (1 + (mix(i) & 0x3f));
    };
    double mutex_uneven = 0.0;
    double lockfree_uneven = 0.0;
    {
      MutexRunner baseline(n_workers);
      mutex_uneven =
          dispatch_rate(baseline, n_batches / 4 + 1, n_tasks, 0, uneven);
    }
    {
      ll::util::TaskRunner runner(n_workers);
      lockfree_uneven =
          dispatch_rate(runner, n_batches / 4 + 1, n_tasks, 0, uneven);
    }
    out.add_row({"uneven batch (64x spread)", "mutex deque",
                 ll::util::fixed(mutex_uneven, 0), "1.00"});
    out.add_row({"uneven batch (64x spread)", "lock-free steal",
                 ll::util::fixed(lockfree_uneven, 0),
                 ll::util::fixed(lockfree_uneven / mutex_uneven, 2)});
  }

  // Probe 3: idle discipline with threads > tasks. Two ~long tasks on the
  // full pool: the other workers must suspend (atomic::wait), not spin.
  {
    ll::util::TaskRunner runner(n_workers);
    // Warm the pool up past its first-idle escalation.
    std::vector<std::function<void()>> warm;
    for (int i = 0; i < 4; ++i) warm.push_back([] { burn(1, 100); });
    runner.run(std::move(warm));

    const double cpu_before = process_cpu_seconds();
    const auto start = Clock::now();
    std::vector<std::function<void()>> two;
    for (int i = 0; i < 2; ++i) {
      two.push_back([] { burn(2, 40'000'000); });  // ~100ms each
    }
    runner.run(std::move(two));
    const double wall = seconds_since(start);
    const double cpu = process_cpu_seconds() - cpu_before;
    const double ratio = cpu / wall;
    std::printf(
        "idle probe: %zu workers, 2 tasks: wall %.3fs cpu %.3fs "
        "(%.2fx, %llu lifetime suspensions)\n",
        n_workers, wall, cpu, ratio,
        static_cast<unsigned long long>(runner.stats().suspensions));
    if (*idle_factor > 0.0 && ratio > *idle_factor) {
      ok = false;
      std::printf("FAIL: idle workers burned %.2fx wall in CPU time "
                  "(limit %.2fx) — they are spinning, not suspending\n",
                  ratio, *idle_factor);
    }
  }

  std::printf("%s\n", out.render().c_str());
  if (!ok) return 1;
  std::printf("OK: dispatch speedup %.2fx (gate %.2fx), idle workers "
              "suspend\n",
              speedup, required);
  return 0;
}
