/// \file fig11_linger_vs_reconfig.cpp
/// Paper Figure 11: completion time of a fixed-size parallel job on a
/// 32-node cluster versus the number of idle nodes, comparing Linger-Longer
/// at widths 8/16/32 against reconfiguration (shrink to the largest
/// power-of-two of idle nodes). Non-idle nodes carry 20% owner load; the
/// synchronization granularity is 500 ms. Paper: LL-32 beats reconfiguration
/// when 5 or fewer nodes are non-idle; LL-8 and LL-16 beat it throughout
/// their regimes.

#include <cstdio>

#include "common.hpp"
#include "parallel/reconfig.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("fig11_linger_vs_reconfig",
                    "LL(8/16/32) vs reconfiguration on 32 nodes.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto util_flag = flags.add_double("util", 0.2, "owner load on busy nodes");
  auto work = flags.add_double("work", 38.4, "job size (cpu-seconds)");
  auto reps = flags.add_int("reps", 9, "replications averaged per point");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Figure 11: Linger-Longer vs reconfiguration (32 nodes)",
                 "Paper: with <= 5 busy nodes, lingering at width 32 beats "
                 "shrinking to 16;\nsmaller widths are flat lines unaffected "
                 "by owner returns.",
                 *seed);

  parallel::ReconfigScenario scenario;
  scenario.cluster_nodes = 32;
  scenario.nonidle_util = *util_flag;
  scenario.total_work = *work;
  scenario.bsp.granularity = 0.5;

  const auto& table = workload::default_burst_table();
  rng::Stream master(*seed);
  const auto n_reps = static_cast<std::uint64_t>(*reps);

  auto mean_ll = [&](std::size_t width, std::size_t idle_nodes) {
    double sum = 0.0;
    for (std::uint64_t r = 0; r < n_reps; ++r) {
      sum += parallel::ll_completion(
          scenario, width, idle_nodes, table,
          master.fork("ll", width * 10000 + idle_nodes * 100 + r));
    }
    return sum / static_cast<double>(n_reps);
  };
  auto mean_rec = [&](std::size_t idle_nodes) {
    double sum = 0.0;
    for (std::uint64_t r = 0; r < n_reps; ++r) {
      sum += parallel::reconfig_completion(scenario, idle_nodes, table,
                                           master.fork("rec", idle_nodes * 100 + r));
    }
    return sum / static_cast<double>(n_reps);
  };

  util::CsvWriter csv(*csv_path);
  csv.row({"idle_nodes", "ll32", "ll16", "ll8", "reconfig"});

  util::Table out({"idle nodes", "LL-32 (s)", "LL-16 (s)", "LL-8 (s)",
                   "reconfig (s)"});
  util::ChartSeries s32{"LL-32", {}, {}};
  util::ChartSeries s16{"LL-16", {}, {}};
  util::ChartSeries s8{"LL-8", {}, {}};
  util::ChartSeries srec{"reconfig", {}, {}};
  for (int idle = 32; idle >= 0; idle -= 2) {
    const auto idle_nodes = static_cast<std::size_t>(idle);
    const double ll32 = mean_ll(32, idle_nodes);
    const double ll16 = mean_ll(16, idle_nodes);
    const double ll8 = mean_ll(8, idle_nodes);
    const double rec = mean_rec(idle_nodes);
    out.add_row({std::to_string(idle), util::fixed(ll32, 2),
                 util::fixed(ll16, 2), util::fixed(ll8, 2),
                 util::fixed(rec, 2)});
    csv.row({std::to_string(idle), util::fixed(ll32, 4), util::fixed(ll16, 4),
             util::fixed(ll8, 4), util::fixed(rec, 4)});
    const auto x = static_cast<double>(idle);
    s32.xs.push_back(x);
    s32.ys.push_back(ll32);
    s16.xs.push_back(x);
    s16.ys.push_back(ll16);
    s8.xs.push_back(x);
    s8.ys.push_back(ll8);
    srec.xs.push_back(x);
    srec.ys.push_back(rec);
  }
  std::printf("%s\n", out.render().c_str());
  util::ChartOptions chart;
  chart.x_label = "idle nodes";
  chart.y_label = "completion time (s)";
  chart.y_min = 0.0;
  chart.y_max = 12.0;  // clip reconfig's collapse tail, as the paper does
  std::printf("%s", util::render_chart({s32, s16, s8, srec}, chart).c_str());

  // The crossover the paper calls out: within the regime where
  // reconfiguration still runs 16-wide (16..31 idle nodes), how many busy
  // nodes can LL-32 tolerate before shrinking would have been better?
  int tolerated = 0;
  for (int busy = 1; busy <= 16; ++busy) {
    const auto idle_nodes = static_cast<std::size_t>(32 - busy);
    if (mean_ll(32, idle_nodes) <= mean_rec(idle_nodes)) {
      tolerated = busy;
    } else {
      break;
    }
  }
  std::printf("\nLL-32 beats reconfiguration for up to %d busy nodes "
              "(paper: 5).\n", tolerated);
  return 0;
}
