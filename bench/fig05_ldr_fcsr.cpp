/// \file fig05_ldr_fcsr.cpp
/// Paper Figure 5: (a) local-job delay ratio and (b) fine-grain
/// cycle-stealing ratio versus owner CPU utilization, for effective context
/// switch costs of 100, 300, and 500 microseconds. Paper: delay ~1% at
/// 100 us, under 5% at 300 us, ~8% only at 500 us; lingering captures over
/// 90% of available idle cycles throughout.

#include <cstdio>

#include "common.hpp"
#include "node/fine_node_sim.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("fig05_ldr_fcsr", "LDR and FCSR vs owner utilization.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto duration = flags.add_double("duration", 4000.0,
                                   "simulated seconds per point");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Figure 5: foreground delay (LDR) and stealing ratio (FCSR)",
                 "Paper: ~1% delay at 100 us switches; >90% of idle cycles "
                 "captured at every load level.",
                 *seed);

  const auto& table = workload::default_burst_table();
  const double switches[] = {100e-6, 300e-6, 500e-6};

  util::CsvWriter csv(*csv_path);
  csv.row({"utilization", "ctx_switch_us", "ldr", "fcsr"});

  util::Table ldr({"util", "LDR 100us", "LDR 300us", "LDR 500us"});
  util::Table fcsr({"util", "FCSR 100us", "FCSR 300us", "FCSR 500us"});
  std::vector<util::ChartSeries> ldr_curves{{"100us", {}, {}},
                                            {"300us", {}, {}},
                                            {"500us", {}, {}}};
  for (double u = 0.05; u <= 0.951; u += 0.05) {
    std::vector<std::string> ldr_row{util::percent(u, 0)};
    std::vector<std::string> fcsr_row{util::percent(u, 0)};
    std::size_t curve = 0;
    for (double cs : switches) {
      node::FineNodeConfig cfg;
      cfg.utilization = u;
      cfg.context_switch = cs;
      cfg.duration = *duration;
      const auto r = node::simulate_fine_node(
          cfg, table, rng::Stream(*seed).fork("pt", static_cast<std::uint64_t>(
                                                        u * 1000 + cs * 1e7)));
      ldr_row.push_back(util::percent(r.ldr(), 2));
      fcsr_row.push_back(util::percent(r.fcsr(), 1));
      csv.row({util::fixed(u, 2), util::fixed(cs * 1e6, 0),
               util::fixed(r.ldr(), 5), util::fixed(r.fcsr(), 5)});
      ldr_curves[curve].xs.push_back(u * 100);
      ldr_curves[curve].ys.push_back(r.ldr() * 100);
      ++curve;
    }
    ldr.add_row(ldr_row);
    fcsr.add_row(fcsr_row);
  }
  std::printf("(a) Local-job delay ratio:\n%s\n", ldr.render().c_str());
  util::ChartOptions chart;
  chart.x_label = "local CPU usage (%)";
  chart.y_label = "delay ratio (%)";
  chart.y_min = 0.0;
  std::printf("%s\n", util::render_chart(ldr_curves, chart).c_str());
  std::printf("(b) Fine-grain cycle-stealing ratio:\n%s", fcsr.render().c_str());
  return 0;
}
