/// \file fig13_app_linger_vs_reconfig.cpp
/// Paper Figure 13: Linger-Longer (widths 16 and 8) versus reconfiguration
/// for sor, water, and fft on a 16-node cluster, as idle nodes drop from 16
/// to 0 (non-idle nodes at 20% owner load). The y-axis is slowdown relative
/// to the app on 16 idle nodes. Paper: LL-16 wins while >= 12 nodes are
/// idle; below 8 idle nodes LL-8 is the best choice — suggesting a hybrid
/// linger+reconfigure strategy.

#include <cstdio>

#include "common.hpp"
#include "parallel/apps.hpp"
#include "parallel/reconfig.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("fig13_app_linger_vs_reconfig",
                    "LL(16/8) vs reconfiguration per application, 16 nodes.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto util_flag = flags.add_double("util", 0.2, "owner load on busy nodes");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Figure 13: LL vs reconfiguration per application (16 nodes)",
                 "Paper: LL-16 beats reconfiguration down to ~12 idle nodes; "
                 "below 8 idle,\nLL-8 wins — motivating a hybrid strategy.",
                 *seed);

  const auto& table = workload::default_burst_table();
  util::CsvWriter csv(*csv_path);
  csv.row({"app", "idle_nodes", "reconfig", "ll16", "ll8", "hybrid"});

  for (const parallel::AppModel& app : parallel::all_app_models(16)) {
    // The app's own phase profile defines the scenario's BSP template; total
    // work = phases x granularity x 16 processes.
    parallel::ReconfigScenario scenario;
    scenario.cluster_nodes = 16;
    scenario.nonidle_util = *util_flag;
    scenario.bsp = app.bsp;
    scenario.total_work = static_cast<double>(app.bsp.phases) *
                          app.bsp.granularity * 16.0;

    rng::Stream master = rng::Stream(*seed).fork(app.name);
    // Baseline: the job on all 16 nodes idle.
    const double ideal =
        parallel::ll_completion(scenario, 16, 16, table, master.fork("ideal"));

    util::Table out({"idle nodes", "reconfig", "LL-16", "LL-8", "hybrid"});
    for (int idle = 16; idle >= 0; --idle) {
      const auto idle_nodes = static_cast<std::size_t>(idle);
      const double rec = parallel::reconfig_completion(
          scenario, idle_nodes, table, master.fork("rec", idle_nodes));
      const double ll16 = parallel::ll_completion(
          scenario, 16, idle_nodes, table, master.fork("ll16", idle_nodes));
      const double ll8 = parallel::ll_completion(
          scenario, 8, idle_nodes, table, master.fork("ll8", idle_nodes));
      // The hybrid strategy the paper's §5.2 suggests (our extension).
      const double hybrid = parallel::hybrid_completion(
          scenario, idle_nodes, table, master.fork("hyb", idle_nodes));
      out.add_row({std::to_string(idle), util::fixed(rec / ideal, 2),
                   util::fixed(ll16 / ideal, 2), util::fixed(ll8 / ideal, 2),
                   util::fixed(hybrid / ideal, 2)});
      csv.row({std::string(app.name), std::to_string(idle),
               util::fixed(rec / ideal, 4), util::fixed(ll16 / ideal, 4),
               util::fixed(ll8 / ideal, 4), util::fixed(hybrid / ideal, 4)});
    }
    std::printf("%s (slowdown relative to 16 idle nodes):\n%s\n",
                std::string(app.name).c_str(), out.render().c_str());
  }
  return 0;
}
