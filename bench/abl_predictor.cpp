/// \file abl_predictor.cpp
/// Ablation of design decision #1 (DESIGN.md): the 2T median-remaining-life
/// episode predictor. The linger duration T_lingr = (1-l)/(h-l)*T_migr is
/// exactly the deadline implied by predicting a non-idle episode's total
/// length as twice its current age; scaling it explores the whole predictor
/// family:
///   scale 0    -> migrate at the first opportunity (eviction-eager)
///   scale 1    -> the paper's 2T rule
///   scale >> 1 -> approach Linger-Forever (never migrate)

#include <cstdio>

#include "cluster/experiment.hpp"
#include "common.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("abl_predictor",
                    "Linger-duration scale sweep around the 2T rule.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto nodes = flags.add_int("nodes", 32, "cluster size");
  auto machines = flags.add_int("machines", 32, "distinct machine traces");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Ablation: episode predictor (linger-duration scale)",
                 "scale 0 = eager migration, 1 = the paper's 2T rule, large = "
                 "Linger-Forever.",
                 *seed);

  util::CsvWriter csv(*csv_path);
  csv.row({"pool", "linger_scale", "avg_job", "variation", "family",
           "throughput", "migrations"});

  struct PoolSpec {
    const char* name;
    double hours;  // < 24 starts at 09:00 (working hours; busier nodes)
  };
  for (const PoolSpec& spec :
       {PoolSpec{"full-day pool (light owner load)", 24.0},
        PoolSpec{"working-hours pool (heavy owner load)", 8.0}}) {
    const auto pool = benchx::standard_pool(
        static_cast<std::size_t>(*machines), spec.hours, *seed + 1);

    util::Table out({"predictor", "avg job (s)", "variation", "family (s)",
                     "throughput", "migrations"});
    // scale < 0 encodes the oracle baseline row.
    for (double scale : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 16.0, -1.0}) {
      cluster::ExperimentConfig cfg;
      cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
      cfg.cluster.policy = scale < 0.0 ? core::PolicyKind::OracleLinger
                                       : core::PolicyKind::LingerLonger;
      cfg.cluster.policy_params.linger_scale = std::max(scale, 0.0);
      // Sub-saturated on purpose: idle target nodes must exist for the
      // migrate-or-linger decision to bind (a saturated cluster has nowhere
      // to migrate to, and every scale degenerates to Linger-Forever).
      cfg.workload = cluster::WorkloadSpec{
          static_cast<std::size_t>(*nodes) * 3 / 4, 600.0};
      cfg.seed = *seed;

      const auto open =
          cluster::run_open(cfg, pool, workload::default_burst_table());
      const auto closed = cluster::run_closed(
          cfg, pool, workload::default_burst_table(), 3600.0);
      const std::string label =
          scale < 0.0 ? "oracle" : "2T x " + util::fixed(scale, 2);
      out.add_row({label, util::fixed(open.avg_completion, 0),
                   util::percent(open.variation, 1),
                   util::fixed(open.family_time, 0),
                   util::fixed(closed.throughput, 1),
                   std::to_string(open.migrations)});
      csv.row({spec.name, label, util::fixed(open.avg_completion, 1),
               util::fixed(open.variation, 4), util::fixed(open.family_time, 1),
               util::fixed(closed.throughput, 2),
               std::to_string(open.migrations)});
    }
    std::printf("%s:\n%s\n", spec.name, out.render().c_str());
  }
  std::printf(
      "Reading: on realistic traces non-idle nodes are mostly lightly loaded,"
      "\nso migrating rarely pays and every scale performs alike — the same "
      "reason\nLF nearly matches LL in the paper's Figure 7. Eager migration "
      "(scale 0)\nonly adds suspension time; the 2T rule avoids it without "
      "episode-length\nforeknowledge.\n");
  return 0;
}
