/// Thin wrapper: this bench is registered in the engine's bench registry
/// (src/exp) and is also reachable as `llsim bench abl_pause_time`.

#include "exp/registry.hpp"

int main(int argc, char** argv) {
  return ll::exp::bench_main("abl_pause_time", argc, argv);
}
