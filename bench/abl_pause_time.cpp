/// \file abl_pause_time.cpp
/// Ablation of design decision #5 (DESIGN.md): Pause-and-Migrate's grace
/// period. The paper says only "a fixed time"; this sweep shows the
/// trade-off the parameter controls — short pauses migrate needlessly on
/// short owner episodes, long pauses strand suspended jobs — and that no
/// setting closes the gap to Linger-Longer.

#include <cstdio>

#include "cluster/experiment.hpp"
#include "common.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("abl_pause_time", "Pause-and-Migrate grace-period sweep.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto nodes = flags.add_int("nodes", 32, "cluster size");
  auto machines = flags.add_int("machines", 32, "distinct machine traces");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Ablation: PM pause time",
                 "Repo default is 60 s (the recruitment threshold).", *seed);

  const auto pool = benchx::standard_pool(
      static_cast<std::size_t>(*machines), 24.0, *seed + 1);
  const auto& table = workload::default_burst_table();

  util::CsvWriter csv(*csv_path);
  csv.row({"pause_s", "avg_job", "family", "throughput", "migrations"});

  util::Table out({"pause (s)", "avg job (s)", "family (s)", "throughput",
                   "migrations"});
  for (double pause : {10.0, 30.0, 60.0, 120.0, 300.0, 900.0}) {
    cluster::ExperimentConfig cfg;
    cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
    cfg.cluster.policy = core::PolicyKind::PauseAndMigrate;
    cfg.cluster.policy_params.pause_time = pause;
    cfg.workload = cluster::WorkloadSpec{64, 600.0};
    cfg.seed = *seed;

    const auto open = cluster::run_open(cfg, pool, table);
    const auto closed = cluster::run_closed(cfg, pool, table, 3600.0);
    out.add_row({util::fixed(pause, 0), util::fixed(open.avg_completion, 0),
                 util::fixed(open.family_time, 0),
                 util::fixed(closed.throughput, 1),
                 std::to_string(open.migrations)});
    csv.row({util::fixed(pause, 0), util::fixed(open.avg_completion, 1),
             util::fixed(open.family_time, 1),
             util::fixed(closed.throughput, 2),
             std::to_string(open.migrations)});
  }
  std::printf("%s", out.render().c_str());

  // Reference row: Linger-Longer on the same configuration.
  cluster::ExperimentConfig cfg;
  cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
  cfg.cluster.policy = core::PolicyKind::LingerLonger;
  cfg.workload = cluster::WorkloadSpec{64, 600.0};
  cfg.seed = *seed;
  const auto ll = cluster::run_closed(cfg, pool, table, 3600.0);
  std::printf("\nLinger-Longer reference throughput on the same setup: %.1f\n",
              ll.throughput);
  return 0;
}
