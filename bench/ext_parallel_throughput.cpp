/// \file ext_parallel_throughput.cpp
/// Extension experiment: the end-to-end evaluation of *cluster throughput
/// for parallel jobs* that the paper names as work in progress (§5, §7).
///
/// A 32-node cluster replays workstation traces; a constant population of
/// bulk-synchronous jobs runs under three width policies:
///   reconfigure  — shrink to the largest power-of-two of idle nodes
///                  (Acha-style baseline; waits when nothing is idle),
///   fixed-linger — always full width, lingering on busy nodes,
///   hybrid       — the paper's suggested strategy: pick the predicted-best
///                  width at dispatch.
/// Reported: parallel work delivered per second, jobs finished per hour,
/// mean turnaround, and the widths/queue waits behind them.

#include <cstdio>

#include "common.hpp"
#include "parallel/parallel_cluster.hpp"
#include "stats/summary.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("ext_parallel_throughput",
                    "Cluster throughput for parallel jobs (paper future work).");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto nodes = flags.add_int("nodes", 32, "cluster size");
  auto jobs_in_system = flags.add_int("jobs", 4, "parallel jobs held in system");
  auto work = flags.add_double("work", 300.0, "cpu-seconds per job");
  auto duration = flags.add_double("duration", 7200.0, "simulated seconds");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Extension: cluster throughput for parallel jobs",
                 "The paper argues lingering's strongest case is running "
                 "more parallel jobs at\nonce; this closes the loop its §7 "
                 "leaves open.",
                 *seed);

  util::CsvWriter csv(*csv_path);
  csv.row({"pool", "policy", "work_per_s", "jobs_per_hour", "mean_turnaround",
           "mean_width", "mean_queue_wait"});

  struct PoolSpec {
    const char* name;
    double hours;
  };
  for (const PoolSpec& spec :
       {PoolSpec{"full-day pool", 24.0}, PoolSpec{"working-hours pool", 8.0}}) {
    const auto pool =
        benchx::standard_pool(static_cast<std::size_t>(*nodes), spec.hours,
                              *seed + 1);

    util::Table out({"policy", "work/s", "jobs/h", "mean turnaround (s)",
                     "mean width", "mean queue wait (s)"});
    for (parallel::WidthPolicy policy :
         {parallel::WidthPolicy::Reconfigure, parallel::WidthPolicy::FixedLinger,
          parallel::WidthPolicy::Hybrid}) {
      parallel::ParallelClusterConfig cfg;
      cfg.node_count = static_cast<std::size_t>(*nodes);
      cfg.policy = policy;
      cfg.fixed_width = static_cast<std::size_t>(*nodes);

      parallel::ParallelJobSpec job;
      job.total_work = *work;
      job.bsp.granularity = 0.5;
      job.max_width = static_cast<std::size_t>(*nodes);

      parallel::ParallelClusterSim sim(cfg, pool,
                                       workload::default_burst_table(),
                                       rng::Stream(*seed).fork(
                                           spec.name,
                                           static_cast<std::uint64_t>(policy)));
      sim.set_completion_callback(
          [&sim, job](const parallel::ParallelJobRecord&) { sim.submit(job); });
      for (int j = 0; j < *jobs_in_system; ++j) sim.submit(job);
      sim.run_for(*duration);

      stats::Summary turnaround;
      stats::Summary width;
      stats::Summary wait;
      std::size_t completed = 0;
      for (const auto& record : sim.jobs()) {
        if (!record.completion) continue;
        ++completed;
        turnaround.add(record.turnaround());
        width.add(static_cast<double>(record.width));
        wait.add(record.queue_wait());
      }
      const double per_hour =
          static_cast<double>(completed) * 3600.0 / *duration;
      out.add_row({std::string(parallel::to_string(policy)),
                   util::fixed(sim.delivered_work() / *duration, 2),
                   util::fixed(per_hour, 1), util::fixed(turnaround.mean(), 0),
                   util::fixed(width.mean(), 1), util::fixed(wait.mean(), 0)});
      csv.row({spec.name, std::string(parallel::to_string(policy)),
               util::fixed(sim.delivered_work() / *duration, 3),
               util::fixed(per_hour, 2), util::fixed(turnaround.mean(), 1),
               util::fixed(width.mean(), 2), util::fixed(wait.mean(), 1)});
    }
    std::printf("%s (%lld jobs x %.0f cpu-s held for %.0f s):\n%s\n",
                spec.name, static_cast<long long>(*jobs_in_system), *work,
                *duration, out.render().c_str());
  }
  return 0;
}
