/// \file micro_runner.cpp
/// Microbenchmark of replication execution strategies: the old
/// thread-per-replication std::async fan-out versus the bounded
/// work-stealing pool (util::TaskRunner) that cluster::replicate and the
/// experiment engine now use. Reports distinct worker threads observed and
/// wall time per round, and fails (exit 1) if the pooled strategy violates
/// its thread bound — the property the engine's "--jobs N means at most
/// N + constant threads" contract rests on.

#include <chrono>
#include <cstdio>
#include <functional>
#include <future>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "cluster/experiment.hpp"
#include "trace/coarse_generator.hpp"
#include "util/flags.hpp"
#include "util/runner.hpp"
#include "util/table.hpp"
#include "workload/burst_table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Thread-id census shared by one round of replications.
struct Census {
  std::mutex mu;
  std::set<std::thread::id> ids;
  void record() {
    const std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  }
};

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  ll::util::Flags flags("micro_runner",
                        "Thread-per-replication vs bounded pooled runner.");
  auto reps = flags.add_int("reps", 64, "replications per round");
  auto rounds = flags.add_int("rounds", 3, "rounds per strategy");
  auto nodes = flags.add_int("nodes", 8, "cluster size per replication");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  flags.parse(argc, argv);

  // A small but real workload: each replication runs an open cluster
  // experiment (the same unit of work cluster::replicate parallelizes).
  ll::trace::CoarseGenConfig gen;
  gen.duration = 4.0 * 3600.0;
  gen.start_hour = 9.0;
  const auto pool = ll::trace::generate_machine_pool(
      gen, static_cast<std::size_t>(*nodes), ll::rng::Stream(*seed + 1));
  const ll::workload::BurstTable& table = ll::workload::default_burst_table();
  const auto replication = [&](std::uint64_t s) {
    ll::cluster::ExperimentConfig cfg;
    cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
    cfg.workload = ll::cluster::WorkloadSpec{
        static_cast<std::size_t>(*nodes), 30.0};
    cfg.seed = s;
    return ll::cluster::run_open(cfg, pool, table);
  };
  const auto n = static_cast<std::size_t>(*reps);

  ll::util::Table out({"strategy", "round", "threads seen", "created",
                       "wall (s)"});

  // Old strategy: one std::async(launch::async) thread per replication.
  for (std::int64_t round = 0; round < *rounds; ++round) {
    Census census;
    const auto start = Clock::now();
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(std::async(std::launch::async, [&, i] {
        census.record();
        (void)replication(*seed + i);
      }));
    }
    for (auto& f : futures) f.get();
    out.add_row({"async per rep", std::to_string(round),
                 std::to_string(census.ids.size()), std::to_string(n),
                 ll::util::fixed(seconds_since(start), 3)});
  }

  // New strategy: the shared bounded pool. Workers are created once and
  // reused across rounds, so the "created" column amortizes to ~0.
  ll::util::TaskRunner& runner = ll::util::TaskRunner::shared();
  bool bound_ok = true;
  for (std::int64_t round = 0; round < *rounds; ++round) {
    Census census;
    const std::uint64_t created_before =
        ll::util::TaskRunner::total_threads_created();
    const auto start = Clock::now();
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      tasks.push_back([&, i] {
        census.record();
        (void)replication(*seed + i);
      });
    }
    runner.run(std::move(tasks));
    const std::uint64_t created =
        ll::util::TaskRunner::total_threads_created() - created_before;
    out.add_row({"pooled runner", std::to_string(round),
                 std::to_string(census.ids.size()), std::to_string(created),
                 ll::util::fixed(seconds_since(start), 3)});
    // Bound: at most thread_count() workers ever touch a batch (the caller
    // plus thread_count()-1 pool threads), and after warm-up no new threads
    // are created at all.
    if (census.ids.size() > runner.thread_count() ||
        created > runner.thread_count()) {
      bound_ok = false;
    }
  }

  std::printf("%s\n", out.render().c_str());
  std::printf("pool size: %zu workers (hardware concurrency), "
              "async created %zu threads per round\n",
              runner.thread_count(), n);
  if (!bound_ok) {
    std::printf("FAIL: pooled runner exceeded its thread bound\n");
    return 1;
  }
  std::printf("OK: pooled thread count stayed within the bound\n");
  return 0;
}
