/// \file micro_obs.cpp
/// google-benchmark microbenchmarks of the observability layer: what does a
/// detached simulator pay (nothing beyond the engine's null check), what
/// does a fully instrumented one pay (profiler + metrics + timeline +
/// tracer), and how expensive are the individual metric primitives. The
/// detached-vs-bare pair is the acceptance gate for the obs layer: attach
/// nothing and the event loop must run at its pre-obs speed.
///
/// `--gate-only` skips google-benchmark and runs the tracer overhead gate
/// directly (CI's regression check, exit 1 on breach): the disabled path —
/// the `if (tracer)` null guard every instrumentation site uses — must
/// cost nanoseconds, and the enabled per-record cost (ring write + clock
/// read) must stay bounded. Bounds are generous (orders of magnitude above
/// the measured values) so only a lost fast path trips them, never
/// scheduler noise.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string_view>

#include "des/simulation.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"

namespace {

using namespace ll;

constexpr std::uint64_t kTag = 1;

void schedule_all(des::Simulation& sim, std::size_t n, std::size_t& fired) {
  for (std::size_t i = 0; i < n; ++i) {
    sim.schedule_at(static_cast<double>((i * 7919) % 104729),
                    [&fired] { ++fired; }, kTag);
  }
}

// Baseline: the same loop shape as BM_DesScheduleFire in micro_substrate,
// no observer attached. The profiler benches below are measured against
// this (identical code path, so the delta is pure observation cost).
void BM_ObsDetached(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Simulation sim;
    std::size_t fired = 0;
    schedule_all(sim, n, fired);
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ObsDetached)->Arg(1000)->Arg(100000);

void BM_ObsProfilerAttached(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Simulation sim;
    obs::EventLoopProfiler profiler;
    sim.set_observer(&profiler);
    std::size_t fired = 0;
    schedule_all(sim, n, fired);
    sim.run();
    benchmark::DoNotOptimize(profiler.fires());
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ObsProfilerAttached)->Arg(1000)->Arg(100000);

// Flight recorder on the engine: every fire becomes a wall span in the
// tracer's ring. Delta over BM_ObsDetached = full tracing cost per event.
void BM_ObsTracerAttached(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Simulation sim;
    obs::Tracer tracer;
    obs::TracingObserver observer(&tracer);
    sim.set_observer(&observer);
    std::size_t fired = 0;
    schedule_all(sim, n, fired);
    sim.run();
    benchmark::DoNotOptimize(tracer.recorded());
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ObsTracerAttached)->Arg(1000)->Arg(100000);

// The raw record primitive in isolation: one clock read + one ring write.
void BM_ObsTracerRecord(benchmark::State& state) {
  obs::Tracer tracer(1 << 12);  // realistic ring: wraps during the bench
  const std::uint32_t label = tracer.label("bench.span");
  std::uint64_t arg = 0;
  for (auto _ : state) {
    tracer.wall_span(label, tracer.now_ns(), 0.0, ++arg);
    benchmark::DoNotOptimize(arg);
  }
  benchmark::DoNotOptimize(tracer.recorded());
}
BENCHMARK(BM_ObsTracerRecord);

// The full `llsim profile` stack: profiler on the engine plus a callback
// that bumps a counter and a time-weighted metric per event — the densest
// instrumentation any simulator in this repo attaches.
void BM_ObsFullStack(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Simulation sim;
    obs::EventLoopProfiler profiler;
    sim.set_observer(&profiler);
    obs::MetricRegistry registry;
    obs::Counter& events = registry.counter("bench.events");
    obs::TimeWeighted& level = registry.time_weighted("bench.level");
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>((i * 7919) % 104729);
      sim.schedule_at(t, [&fired, &events, &level, &sim] {
        ++fired;
        events.add();
        level.set(sim.now(), static_cast<double>(fired & 7));
      }, kTag);
    }
    sim.run();
    benchmark::DoNotOptimize(registry.size());
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ObsFullStack)->Arg(100000);

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::Counter& c = registry.counter("bench.counter");
  for (auto _ : state) {
    c.add();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsTimeWeightedSet(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::TimeWeighted& tw = registry.time_weighted("bench.tw");
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    tw.set(t, t * 0.5);
    benchmark::DoNotOptimize(tw);
  }
}
BENCHMARK(BM_ObsTimeWeightedSet);

void BM_ObsTimelineRecord(benchmark::State& state) {
  obs::Timeline timeline(4096);  // realistic ring: wraps during the bench
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    timeline.record(t, "node 3", "busy", "util 0.75");
    benchmark::DoNotOptimize(timeline.size());
  }
}
BENCHMARK(BM_ObsTimelineRecord);

// The tracer overhead gate (see file comment). Bounds are deliberately
// generous: the disabled guard measures ~1 ns and the enabled record
// ~20-100 ns on any modern machine; the gates only trip when the null
// fast path is lost (e.g. an unconditional virtual call sneaks in) or the
// record path grows a lock/allocation.
int run_tracer_gate() {
  using Clock = std::chrono::steady_clock;
  constexpr double kDisabledBoundNs = 50.0;
  constexpr double kEnabledBoundNs = 5000.0;

  // Disabled path: the exact guard shape the instrumentation sites use —
  // an atomic-load-then-branch on a pointer that stays null. The atomic
  // keeps the compiler from folding the loop away.
  constexpr std::size_t kGuardIters = 4'000'000;
  std::atomic<ll::obs::Tracer*> slot{nullptr};
  std::uint64_t touched = 0;
  const Clock::time_point g0 = Clock::now();
  for (std::size_t i = 0; i < kGuardIters; ++i) {
    if (ll::obs::Tracer* t = slot.load(std::memory_order_relaxed)) {
      t->instant(0, 0.0, i);
      ++touched;
    }
  }
  const double disabled_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - g0).count() /
      static_cast<double>(kGuardIters);
  benchmark::DoNotOptimize(touched);

  // Enabled path: wall_span = one steady_clock read + one ring write.
  constexpr std::size_t kRecords = 1'000'000;
  ll::obs::Tracer tracer(1 << 12);
  const std::uint32_t label = tracer.label("gate.span");
  const Clock::time_point e0 = Clock::now();
  for (std::size_t i = 0; i < kRecords; ++i) {
    tracer.wall_span(label, tracer.now_ns(), 0.0, i);
  }
  const double enabled_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - e0).count() /
      static_cast<double>(kRecords);
  if (tracer.recorded() != kRecords) {
    std::fprintf(stderr, "tracer gate: FAIL — recorded %llu of %zu records\n",
                 static_cast<unsigned long long>(tracer.recorded()), kRecords);
    return 1;
  }

  const bool disabled_ok = disabled_ns <= kDisabledBoundNs;
  const bool enabled_ok = enabled_ns <= kEnabledBoundNs;
  std::printf(
      "tracer gate: disabled guard %.2f ns/iter (bound %.0f), enabled "
      "wall_span %.1f ns/record (bound %.0f): %s\n",
      disabled_ns, kDisabledBoundNs, enabled_ns, kEnabledBoundNs,
      disabled_ok && enabled_ok ? "ok" : "FAIL");
  return disabled_ok && enabled_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--gate-only") return run_tracer_gate();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
