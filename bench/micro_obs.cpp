/// \file micro_obs.cpp
/// google-benchmark microbenchmarks of the observability layer: what does a
/// detached simulator pay (nothing beyond the engine's null check), what
/// does a fully instrumented one pay (profiler + metrics + timeline), and
/// how expensive are the individual metric primitives. The detached-vs-bare
/// pair is the acceptance gate for the obs layer: attach nothing and the
/// event loop must run at its pre-obs speed.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>

#include "des/simulation.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timeline.hpp"

namespace {

using namespace ll;

constexpr std::uint64_t kTag = 1;

void schedule_all(des::Simulation& sim, std::size_t n, std::size_t& fired) {
  for (std::size_t i = 0; i < n; ++i) {
    sim.schedule_at(static_cast<double>((i * 7919) % 104729),
                    [&fired] { ++fired; }, kTag);
  }
}

// Baseline: the same loop shape as BM_DesScheduleFire in micro_substrate,
// no observer attached. The profiler benches below are measured against
// this (identical code path, so the delta is pure observation cost).
void BM_ObsDetached(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Simulation sim;
    std::size_t fired = 0;
    schedule_all(sim, n, fired);
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ObsDetached)->Arg(1000)->Arg(100000);

void BM_ObsProfilerAttached(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Simulation sim;
    obs::EventLoopProfiler profiler;
    sim.set_observer(&profiler);
    std::size_t fired = 0;
    schedule_all(sim, n, fired);
    sim.run();
    benchmark::DoNotOptimize(profiler.fires());
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ObsProfilerAttached)->Arg(1000)->Arg(100000);

// The full `llsim profile` stack: profiler on the engine plus a callback
// that bumps a counter and a time-weighted metric per event — the densest
// instrumentation any simulator in this repo attaches.
void BM_ObsFullStack(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Simulation sim;
    obs::EventLoopProfiler profiler;
    sim.set_observer(&profiler);
    obs::MetricRegistry registry;
    obs::Counter& events = registry.counter("bench.events");
    obs::TimeWeighted& level = registry.time_weighted("bench.level");
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>((i * 7919) % 104729);
      sim.schedule_at(t, [&fired, &events, &level, &sim] {
        ++fired;
        events.add();
        level.set(sim.now(), static_cast<double>(fired & 7));
      }, kTag);
    }
    sim.run();
    benchmark::DoNotOptimize(registry.size());
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ObsFullStack)->Arg(100000);

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::Counter& c = registry.counter("bench.counter");
  for (auto _ : state) {
    c.add();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsTimeWeightedSet(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::TimeWeighted& tw = registry.time_weighted("bench.tw");
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    tw.set(t, t * 0.5);
    benchmark::DoNotOptimize(tw);
  }
}
BENCHMARK(BM_ObsTimeWeightedSet);

void BM_ObsTimelineRecord(benchmark::State& state) {
  obs::Timeline timeline(4096);  // realistic ring: wraps during the bench
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    timeline.record(t, "node 3", "busy", "util 0.75");
    benchmark::DoNotOptimize(timeline.size());
  }
}
BENCHMARK(BM_ObsTimelineRecord);

}  // namespace

BENCHMARK_MAIN();
