/// \file fig12_app_slowdown.cpp
/// Paper Figure 12: slowdown of the three shared-memory applications (sor,
/// water, fft) running with Linger-Longer on an 8-node cluster, as the
/// number of non-idle nodes (0-8) and their local utilization (10-40%)
/// vary. Paper: one busy node at 40% costs at most ~1.7x; 4 busy nodes at
/// 20% cost ~1.5-1.6x; sor is most sensitive, fft least (communication time
/// is not stretched by local CPU activity).

#include <cstdio>

#include "common.hpp"
#include "parallel/apps.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("fig12_app_slowdown",
                    "sor/water/fft slowdown vs busy nodes and load.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Figure 12: application slowdown under lingering (8 nodes)",
                 "Paper: sor most sensitive, fft least; ~1.5-1.6x with 4 busy "
                 "nodes at 20%;\njust above 2x with all 8 busy at 20%.",
                 *seed);

  const auto& table = workload::default_burst_table();
  util::CsvWriter csv(*csv_path);
  csv.row({"app", "local_util", "nonidle_nodes", "slowdown"});

  for (const parallel::AppModel& app : parallel::all_app_models(8)) {
    util::Table out({"busy nodes", "lusg 10%", "lusg 20%", "lusg 30%",
                     "lusg 40%"});
    for (std::size_t busy = 0; busy <= 8; ++busy) {
      std::vector<std::string> row{std::to_string(busy)};
      for (double u : {0.1, 0.2, 0.3, 0.4}) {
        const double s = parallel::app_slowdown(
            app, busy, u, table,
            rng::Stream(*seed).fork(app.name,
                                    busy * 100 + static_cast<std::uint64_t>(u * 100)));
        row.push_back(util::fixed(s, 2));
        csv.row({std::string(app.name), util::fixed(u, 1),
                 std::to_string(busy), util::fixed(s, 4)});
      }
      out.add_row(row);
    }
    std::printf("%s:\n%s\n", std::string(app.name).c_str(),
                out.render().c_str());
  }
  return 0;
}
