/// \file fig08_state_breakdown.cpp
/// Paper Figure 8: breakdown of the average time a foreign job spends in
/// each state (queued, running, lingering, paused, migrating) per policy,
/// for both workloads. The paper's reading: the lingering policies win by
/// slashing queue time; time actually executing grows only modestly.

#include <cstdio>

#include "cluster/experiment.hpp"
#include "common.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("fig08_state_breakdown",
                    "Average per-job time in each state, per policy.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto nodes = flags.add_int("nodes", 64, "cluster size");
  auto machines = flags.add_int("machines", 64, "distinct machine traces");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Figure 8: average completion-time breakdown by state",
                 "Paper: LL/LF cut queueing dramatically on workload-1; all "
                 "policies look alike\non workload-2 except for small "
                 "linger fractions.",
                 *seed);

  const auto pool = benchx::standard_pool(
      static_cast<std::size_t>(*machines), 24.0, *seed + 1);

  util::CsvWriter csv(*csv_path);
  csv.row({"workload", "policy", "queued", "running", "lingering", "paused",
           "migrating", "total"});

  struct Spec {
    const char* name;
    cluster::WorkloadSpec workload;
  };
  const Spec specs[] = {{"workload-1 (128 x 600 s)", cluster::workload_1()},
                        {"workload-2 (16 x 1800 s)", cluster::workload_2()}};

  for (const Spec& spec : specs) {
    util::Table out({"policy", "queued (s)", "running (s)", "lingering (s)",
                     "paused (s)", "migrating (s)", "total (s)"});
    for (core::PolicyKind policy : benchx::kAllPolicies) {
      cluster::ExperimentConfig cfg;
      cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
      cfg.cluster.policy = policy;
      cfg.workload = spec.workload;
      cfg.seed = *seed;
      const auto r =
          cluster::run_open(cfg, pool, workload::default_burst_table());
      const double total = r.avg_queued + r.avg_running + r.avg_lingering +
                           r.avg_paused + r.avg_migrating;
      out.add_row({std::string(core::to_string(policy)),
                   util::fixed(r.avg_queued, 0), util::fixed(r.avg_running, 0),
                   util::fixed(r.avg_lingering, 0),
                   util::fixed(r.avg_paused, 0),
                   util::fixed(r.avg_migrating, 0), util::fixed(total, 0)});
      csv.row({spec.name, std::string(core::to_string(policy)),
               util::fixed(r.avg_queued, 2), util::fixed(r.avg_running, 2),
               util::fixed(r.avg_lingering, 2), util::fixed(r.avg_paused, 2),
               util::fixed(r.avg_migrating, 2), util::fixed(total, 2)});
    }
    std::printf("%s:\n%s\n", spec.name, out.render().c_str());
  }
  return 0;
}
