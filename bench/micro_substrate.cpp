/// \file micro_substrate.cpp
/// google-benchmark microbenchmarks of the simulator substrate: event-queue
/// throughput, distribution sampling, workload generation, and the two
/// simulation granularities. These guard the performance properties that
/// make the full-figure benches (64 nodes x hours x policies) effectively
/// instant.

#include <benchmark/benchmark.h>

#include <vector>

#include "cluster/experiment.hpp"
#include "des/simulation.hpp"
#include "node/fine_node_sim.hpp"
#include "rng/distributions.hpp"
#include "trace/coarse_generator.hpp"
#include "workload/local_workload.hpp"

namespace {

using namespace ll;

void BM_DesScheduleFire(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Simulation sim;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<double>((i * 7919) % 104729),
                      [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DesScheduleFire)->Arg(1000)->Arg(100000);

// Companion to BM_DesScheduleFire: identical workload with an observer
// attached. The unobserved benchmark above measures the cost of the
// nullptr-checked hook (which must stay within noise of the pre-observer
// engine); the delta between the two is the true cost of observation.
void BM_DesScheduleFireObserved(benchmark::State& state) {
  struct CountingObserver final : des::SimObserver {
    std::uint64_t schedules = 0;
    std::uint64_t fires = 0;
    void on_schedule(double, des::EventId, std::uint64_t) override {
      ++schedules;
    }
    void on_fire(double, des::EventId, std::uint64_t) override { ++fires; }
  };
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Simulation sim;
    CountingObserver obs;
    sim.set_observer(&obs);
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<double>((i * 7919) % 104729),
                      [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
    benchmark::DoNotOptimize(obs.fires);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DesScheduleFireObserved)->Arg(1000)->Arg(100000);

void BM_DesCancellation(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulation sim;
    std::vector<des::EventId> ids;
    ids.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      ids.push_back(sim.schedule_at(i, [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
    sim.run();
  }
}
BENCHMARK(BM_DesCancellation);

void BM_HyperExp2Sampling(benchmark::State& state) {
  const rng::HyperExp2 dist = rng::fit_hyperexp2(0.05, 0.005);
  rng::Stream stream(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.sample(stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HyperExp2Sampling);

void BM_CoarseTraceGeneration(benchmark::State& state) {
  trace::CoarseGenConfig cfg;
  cfg.duration = 3600.0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::generate_coarse_trace(cfg, rng::Stream(++seed)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1800);  // samples per generated trace
}
BENCHMARK(BM_CoarseTraceGeneration);

void BM_LocalWorkloadBursts(benchmark::State& state) {
  trace::CoarseTrace t(2.0);
  for (int i = 0; i < 1800; ++i) t.push({0.3, 32768, false});
  workload::LocalWorkloadGenerator gen(t, workload::default_burst_table(),
                                       rng::Stream(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LocalWorkloadBursts);

void BM_FineNodeSimSecond(benchmark::State& state) {
  node::FineNodeConfig cfg;
  cfg.utilization = 0.3;
  cfg.duration = 1.0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(node::simulate_fine_node(
        cfg, workload::default_burst_table(), rng::Stream(++seed)));
  }
}
BENCHMARK(BM_FineNodeSimSecond);

void BM_ClusterClosedHour(benchmark::State& state) {
  trace::CoarseGenConfig gen;
  gen.duration = 8 * 3600.0;
  gen.start_hour = 9.0;
  const auto pool = trace::generate_machine_pool(gen, 8, rng::Stream(3));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    cluster::ExperimentConfig cfg;
    cfg.cluster.node_count = 16;
    cfg.cluster.policy = core::PolicyKind::LingerLonger;
    cfg.workload = cluster::WorkloadSpec{32, 600.0};
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(cluster::run_closed(
        cfg, pool, workload::default_burst_table(), 3600.0));
  }
  state.SetLabel("16 nodes, 32 jobs, 1 simulated hour per iteration");
}
BENCHMARK(BM_ClusterClosedHour);

}  // namespace

BENCHMARK_MAIN();
