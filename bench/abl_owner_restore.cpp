/// \file abl_owner_restore.cpp
/// Ablation: the hidden owner cost of eviction (paper §1: "existing systems
/// that exploit free workstations also have an indirect impact on users due
/// to the time required to re-load virtual memory pages and caches after a
/// foreign job has been evicted").
///
/// The baseline simulator charges owners only for context-switch overhead
/// while a guest lingers, which makes eviction policies look perfectly
/// owner-friendly. This sweep charges the restore cost to the legacy
/// eviction systems (Condor/NOW-style IE and PM, which have no page
/// priority: the guest freely displaced owner pages while the owner was
/// away, and the returning owner re-faults them). Linger-Longer ships the
/// Stealth-style priority page pools of §3.2 — the guest only ever holds
/// donated free pages — so its owners have nothing to re-load and it is run
/// with zero restore cost throughout. The comparison flips: beyond modest
/// restore costs, eviction disturbs owners MORE than lingering does.

#include <cstdio>

#include "cluster/experiment.hpp"
#include "common.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("abl_owner_restore",
                    "Owner-side eviction restore-cost sweep.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto nodes = flags.add_int("nodes", 32, "cluster size");
  auto machines = flags.add_int("machines", 32, "distinct machine traces");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Ablation: owner restore cost after guest departure",
                 "Paper §1: eviction is not free for owners either — pages "
                 "and caches must\nbe re-loaded after the guest leaves.",
                 *seed);

  const auto pool = benchx::standard_pool(
      static_cast<std::size_t>(*machines), 24.0, *seed + 1);
  const auto& table = workload::default_burst_table();

  util::CsvWriter csv(*csv_path);
  csv.row({"restore_s", "ll_delay", "ie_delay", "pm_delay", "ll_evictions",
           "ie_evictions"});

  auto run_policy = [&](core::PolicyKind policy, double restore,
                        std::size_t* departures) {
    cluster::ExperimentConfig cfg;
    cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
    cfg.cluster.policy = policy;
    cfg.cluster.owner_restore_penalty = restore;
    cfg.workload = cluster::WorkloadSpec{64, 600.0};
    cfg.seed = *seed;
    const auto r = cluster::run_closed(cfg, pool, table, 3600.0);
    if (departures) *departures = r.migrations;
    return r.foreground_delay;
  };

  // LL has page priority: owners never lose pages to the guest.
  const double ll_delay =
      run_policy(core::PolicyKind::LingerLonger, 0.0, nullptr);

  util::Table out({"restore cost (s)", "LL (page priority)", "IE owner delay",
                   "PM owner delay", "IE evictions"});
  for (double restore : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    std::size_t ie_departures = 0;
    const double ie = run_policy(core::PolicyKind::ImmediateEviction, restore,
                                 &ie_departures);
    const double pm =
        run_policy(core::PolicyKind::PauseAndMigrate, restore, nullptr);
    out.add_row({util::fixed(restore, 1), util::percent(ll_delay, 2),
                 util::percent(ie, 2), util::percent(pm, 2),
                 std::to_string(ie_departures)});
    csv.row({util::fixed(restore, 1), util::fixed(ll_delay, 5),
             util::fixed(ie, 5), util::fixed(pm, 5),
             std::to_string(ie_departures)});
  }
  std::printf("%s", out.render().c_str());
  std::printf("\nLL's owner impact is the flat fine-grain switching cost; the "
              "legacy eviction\nsystems' impact scales with how much state "
              "the returning owner must re-load.\nThe lines cross at sub-"
              "second restore costs — the paper's §1 point, quantified.\n");
  return 0;
}
