/// \file abl_migration_cost.cpp
/// Ablation of design decision #4 (DESIGN.md): migration cost. The paper
/// fixes 8 MB images over an effective 3 Mbps link (~23 s per migration).
/// Sweeping bandwidth and image size shows how the policy gap between
/// lingering and eviction widens as migration gets more expensive — the
/// regime that motivates lingering in the first place.

#include <cstdio>

#include "cluster/experiment.hpp"
#include "common.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("abl_migration_cost",
                    "Migration bandwidth and image-size sweep.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto nodes = flags.add_int("nodes", 32, "cluster size");
  auto machines = flags.add_int("machines", 32, "distinct machine traces");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Ablation: migration cost (bandwidth x image size)",
                 "Paper's point: 8 MB @ 3 Mbps effective => ~23 s per "
                 "migration.",
                 *seed);

  const auto pool = benchx::standard_pool(
      static_cast<std::size_t>(*machines), 24.0, *seed + 1);
  const auto& table = workload::default_burst_table();

  util::CsvWriter csv(*csv_path);
  csv.row({"bandwidth_mbps", "image_mb", "t_migr", "ll_throughput",
           "ie_throughput", "ll_over_ie", "ll_migrations", "ie_migrations"});

  util::Table out({"bw (Mbps)", "image (MB)", "T_migr (s)", "LL thpt",
                   "IE thpt", "LL/IE", "LL migr", "IE migr"});
  for (double mbps : {1.5, 3.0, 10.0}) {
    for (double mb : {4.0, 8.0, 16.0}) {
      auto run_policy = [&](core::PolicyKind policy, std::size_t& migrations) {
        cluster::ExperimentConfig cfg;
        cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
        cfg.cluster.policy = policy;
        cfg.cluster.migration.bandwidth_bps = mbps * 1e6;
        cfg.cluster.job_bytes =
            static_cast<std::uint64_t>(mb * 1024.0 * 1024.0);
        cfg.cluster.job_mem_kb = static_cast<std::uint32_t>(mb * 1024.0);
        cfg.workload = cluster::WorkloadSpec{64, 600.0};
        cfg.seed = *seed;
        const auto r = cluster::run_closed(cfg, pool, table, 3600.0);
        migrations = r.migrations;
        return r.throughput;
      };
      std::size_t ll_migr = 0;
      std::size_t ie_migr = 0;
      const double ll = run_policy(core::PolicyKind::LingerLonger, ll_migr);
      const double ie = run_policy(core::PolicyKind::ImmediateEviction, ie_migr);
      core::MigrationCostModel model;
      model.bandwidth_bps = mbps * 1e6;
      const double t_migr =
          model.cost(static_cast<std::uint64_t>(mb * 1024 * 1024));
      out.add_row({util::fixed(mbps, 1), util::fixed(mb, 0),
                   util::fixed(t_migr, 1), util::fixed(ll, 1),
                   util::fixed(ie, 1), util::fixed(ll / ie, 2),
                   std::to_string(ll_migr), std::to_string(ie_migr)});
      csv.row({util::fixed(mbps, 1), util::fixed(mb, 0),
               util::fixed(t_migr, 2), util::fixed(ll, 2), util::fixed(ie, 2),
               util::fixed(ll / ie, 3), std::to_string(ll_migr),
               std::to_string(ie_migr)});
    }
  }
  std::printf("%s", out.render().c_str());
  return 0;
}
