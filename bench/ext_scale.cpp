/// Thin wrapper: this bench is registered in the engine's bench registry
/// (src/exp) and is also reachable as `llsim bench ext_scale`.

#include "exp/registry.hpp"

int main(int argc, char** argv) {
  return ll::exp::bench_main("ext_scale", argc, argv);
}
