/// \file sec32_coarse_stats.cpp
/// Paper §3.2 (text statistics): how often workstations are non-idle under
/// the recruitment rule, and how lightly loaded non-idle time actually is —
/// the observations motivating fine-grain cycle stealing.

#include <cstdio>

#include "common.hpp"
#include "trace/coarse_analysis.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("sec32_coarse_stats",
                    "Coarse-grain workstation availability statistics.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto machines = flags.add_int("machines", 32, "machines in the pool");
  auto days = flags.add_double("days", 2.0, "trace days per machine");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Section 3.2: coarse-grain availability statistics",
                 "Paper: 46% of time non-idle; 76% of non-idle time below 10% "
                 "CPU;\nidle-state CPU is the destination load 'l' of the "
                 "linger cost model.",
                 *seed);

  const auto pool =
      benchx::standard_pool(static_cast<std::size_t>(*machines), *days * 24.0,
                            *seed);
  const auto stats = trace::analyze_coarse(pool);

  util::Table out({"metric", "paper", "measured"});
  out.add_row({"non-idle fraction of time", "46%",
               util::percent(stats.nonidle_fraction, 1)});
  out.add_row({"non-idle time below 10% cpu", "76%",
               util::percent(stats.nonidle_below_10pct, 1)});
  out.add_row({"mean cpu, overall", "-",
               util::percent(stats.mean_cpu_overall, 1)});
  out.add_row({"mean cpu, idle state (l)", "-",
               util::percent(stats.mean_cpu_idle, 1)});
  out.add_row({"mean cpu, non-idle state (h)", "-",
               util::percent(stats.mean_cpu_nonidle, 1)});
  out.add_row({"mean idle episode", "-",
               util::format("%.0f s", stats.mean_idle_episode)});
  out.add_row({"mean non-idle episode", "-",
               util::format("%.0f s", stats.mean_nonidle_episode)});
  std::printf("%s", out.render().c_str());

  util::CsvWriter csv(*csv_path);
  csv.row({"metric", "value"});
  csv.row({"nonidle_fraction", util::fixed(stats.nonidle_fraction, 4)});
  csv.row({"nonidle_below_10pct", util::fixed(stats.nonidle_below_10pct, 4)});
  csv.row({"mean_cpu_overall", util::fixed(stats.mean_cpu_overall, 4)});
  csv.row({"mean_cpu_idle", util::fixed(stats.mean_cpu_idle, 4)});
  csv.row({"mean_cpu_nonidle", util::fixed(stats.mean_cpu_nonidle, 4)});

  std::printf("\nsamples analyzed: %zu (%lld machines x %.1f days)\n",
              stats.sample_count, static_cast<long long>(*machines), *days);
  return 0;
}
