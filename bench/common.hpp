#pragma once

/// \file common.hpp
/// Shared helpers for the bench binaries. Each bench reproduces one table or
/// figure of the paper; these helpers keep the trace-pool construction and
/// policy iteration identical across them so figures are comparable.

#include <array>
#include <cstdio>
#include <vector>

#include "core/policy.hpp"
#include "trace/coarse_generator.hpp"
#include "workload/burst_table.hpp"

namespace ll::benchx {

/// The standard trace pool used by the cluster benches: full-day traces so
/// the diurnal cycle is represented, as in the paper's 40-day Berkeley
/// traces (length is the configurable compromise for bench runtime).
inline std::vector<trace::CoarseTrace> standard_pool(std::size_t machines,
                                                     double hours,
                                                     std::uint64_t seed) {
  trace::CoarseGenConfig gen;
  gen.duration = hours * 3600.0;
  // Short pools cover working hours; full days start at midnight.
  gen.start_hour = hours < 24.0 ? 9.0 : 0.0;
  return trace::generate_machine_pool(gen, machines, rng::Stream(seed));
}

inline constexpr std::array<core::PolicyKind, 4> kAllPolicies{
    core::PolicyKind::LingerLonger, core::PolicyKind::LingerForever,
    core::PolicyKind::ImmediateEviction, core::PolicyKind::PauseAndMigrate};

/// Burst table with the same means as the default but exponential (cv^2=1)
/// burst durations — the abl_burst_model ablation of design decision #3.
inline workload::BurstTable exponential_burst_table() {
  std::array<workload::BurstMoments, workload::kUtilizationLevels> levels{};
  const workload::BurstTable& h2 = workload::default_burst_table();
  for (std::size_t i = 0; i < workload::kUtilizationLevels; ++i) {
    const workload::BurstMoments& m = h2.level(i);
    levels[i] = workload::BurstMoments{m.run_mean, m.run_mean * m.run_mean,
                                       m.idle_mean, m.idle_mean * m.idle_mean};
  }
  return workload::BurstTable(levels);
}

/// Prints the standard bench banner (figure id, seed, reminder that shapes —
/// not absolute values — are the comparison target).
inline void banner(const char* figure, const char* claim, std::uint64_t seed) {
  std::printf("=== %s ===\n%s\nseed=%llu (shapes, not absolute values, are "
              "the comparison target)\n\n",
              figure, claim, static_cast<unsigned long long>(seed));
}

}  // namespace ll::benchx
