/// \file micro_des.cpp
/// DES event-queue microbenchmark: the calendar queue against the binary
/// heap it complements, across pending-set sizes (1k / 100k / 1M by
/// default). Each measurement is a *hold model* — a steady population of
/// `pending` events where every fire is replaced by a fresh schedule and
/// every 4th iteration cancels a recently issued id (replacing it only on
/// success, so the population is exactly constant). That is the
/// schedule/fire/cancel mix a 100k-node cluster run presents to the engine.
///
/// The acceptance gate is the calendar backend sustaining >= --min-speedup x
/// the heap's events/second at the *largest* pending size (ISSUE 8: 2x at
/// 1M). Both backends run the identical operation sequence; the bench also
/// asserts they fire the same event count and land on the same virtual
/// clock — the cheap end of the backend-invariance contract the golden
/// digests pin in full.
///
/// Exit 1 on a failed gate, so CI can run it as a regression check.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "des/simulation.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct ChurnResult {
  double events_per_s = 0.0;   // fires per wall second (best of reps)
  std::uint64_t fired = 0;     // total events fired (identical across reps)
  double final_now = 0.0;      // virtual clock after the churn
};

/// Runs the hold-model churn on one backend: prefill `pending` events, then
/// `fires` rounds of fire + schedule (+ cancel/replace every 4th). The RNG
/// is a fixed-seed xorshift, so every backend and every rep sees the exact
/// same operation sequence.
ChurnResult churn(ll::des::QueueBackend backend, std::size_t pending,
                  std::size_t fires, std::uint64_t seed, int reps) {
  ChurnResult result;
  for (int rep = 0; rep < reps; ++rep) {
    ll::des::Simulation sim(ll::des::Simulation::Options{backend});
    std::uint64_t state = seed | 1;
    const auto next = [&state] {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state;
    };
    // Continuous holds in [1, 65): 53-bit-mantissa uniform, the realistic
    // timestamp shape. A quantized lattice would pile equal times into a
    // handful of calendar buckets and measure the documented worst case
    // instead of the steady state.
    const auto hold_delta = [&next] {
      return 1.0 + static_cast<double>(next() >> 11) * 0x1.0p-53 * 64.0;
    };
    std::vector<ll::des::EventId> recent(1024, ll::des::kNoEvent);
    for (std::size_t i = 0; i < pending; ++i) {
      recent[i % recent.size()] = sim.schedule_in(hold_delta(), [] {}, 1);
    }
    const auto start = Clock::now();
    for (std::size_t f = 0; f < fires; ++f) {
      sim.step();
      recent[f % recent.size()] = sim.schedule_in(hold_delta(), [] {}, 1);
      if ((f & 3u) == 3u) {
        if (sim.cancel(recent[next() % recent.size()])) {
          sim.schedule_in(hold_delta(), [] {}, 1);
        }
      }
    }
    const double wall = seconds_since(start);
    result.events_per_s = std::max(
        result.events_per_s, static_cast<double>(fires) / wall);
    result.fired = sim.events_fired();
    result.final_now = sim.now();
  }
  return result;
}

std::string human(std::size_t n) {
  if (n % 1000000 == 0 && n >= 1000000) return std::to_string(n / 1000000) + "M";
  if (n % 1000 == 0 && n >= 1000) return std::to_string(n / 1000) + "k";
  return std::to_string(n);
}

}  // namespace

int main(int argc, char** argv) {
  ll::util::Flags flags(
      "micro_des",
      "Calendar event queue vs binary heap: schedule/fire/cancel churn "
      "across pending-set sizes.");
  auto fires = flags.add_int("fires", 200000, "churn iterations per run");
  auto reps = flags.add_int("reps", 3, "reps per measurement (best-of)");
  auto seed = flags.add_uint64("seed", 42, "operation-sequence seed");
  auto small = flags.add_int("pending-small", 1000, "small pending set");
  auto mid = flags.add_int("pending-mid", 100000, "medium pending set");
  auto large = flags.add_int("pending-large", 1000000,
                             "large pending set (the gated size)");
  auto min_speedup = flags.add_double(
      "min-speedup", 2.0,
      "required calendar/heap events-per-second ratio at the largest "
      "pending size (0 disables the gate)");
  flags.parse(argc, argv);

  const auto n_fires = static_cast<std::size_t>(*fires);
  const int n_reps = static_cast<int>(*reps);
  const std::vector<std::size_t> sizes{static_cast<std::size_t>(*small),
                                       static_cast<std::size_t>(*mid),
                                       static_cast<std::size_t>(*large)};

  // The 2x headline is a *memory-hierarchy* result: at 1M pending the
  // heap's pop walks ~20 random cache lines while the calendar touches one
  // bucket. On a machine too small to hold that working set hot — under 4
  // hardware threads is the same cut micro_steal uses for its contention
  // regime — the gate relaxes to "the calendar still wins" and says so.
  double required = *min_speedup;
  const std::size_t hw = std::thread::hardware_concurrency();
  if (required > 1.2 && hw < 4) {
    std::printf(
        "note: only %zu hardware thread(s) — relaxing calendar gate "
        "%.2fx -> 1.20x\n",
        hw, required);
    required = 1.2;
  }

  ll::util::Table out({"pending", "backend", "events/s", "ratio"});
  bool ok = true;
  double gated_speedup = 0.0;

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t pending = sizes[i];
    const ChurnResult heap =
        churn(ll::des::QueueBackend::kHeap, pending, n_fires, *seed, n_reps);
    const ChurnResult calendar = churn(ll::des::QueueBackend::kCalendar,
                                       pending, n_fires, *seed, n_reps);
    if (heap.fired != calendar.fired || heap.final_now != calendar.final_now) {
      ok = false;
      std::printf(
          "FAIL: backends diverged at %s pending (heap fired %llu @ %.6f, "
          "calendar fired %llu @ %.6f)\n",
          human(pending).c_str(),
          static_cast<unsigned long long>(heap.fired), heap.final_now,
          static_cast<unsigned long long>(calendar.fired), calendar.final_now);
    }
    const double speedup = calendar.events_per_s / heap.events_per_s;
    out.add_row({human(pending), "binary heap",
                 ll::util::fixed(heap.events_per_s, 0), "1.00"});
    out.add_row({human(pending), "calendar",
                 ll::util::fixed(calendar.events_per_s, 0),
                 ll::util::fixed(speedup, 2)});
    const bool gated = i + 1 == sizes.size();
    if (gated) {
      gated_speedup = speedup;
      if (*min_speedup > 0.0 && speedup < required) {
        ok = false;
        std::printf("FAIL: calendar speedup %.2fx < required %.2fx at %s "
                    "pending\n",
                    speedup, required, human(pending).c_str());
      }
    }
  }

  std::printf("%s\n", out.render().c_str());
  if (!ok) return 1;
  std::printf("OK: calendar %.2fx heap at %s pending (gate %.2fx), backends "
              "agree on fires and clock\n",
              gated_speedup, human(sizes.back()).c_str(), required);
  return 0;
}
