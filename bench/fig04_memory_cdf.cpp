/// \file fig04_memory_cdf.cpp
/// Paper Figure 4: distribution of available (free) physical memory on
/// 64 MB workstations, overall and split by idle/non-idle state. The paper's
/// anchors: >= 14 MB free 90% of the time, >= 10 MB free 95% of the time,
/// and no significant idle/non-idle difference — enough headroom for one
/// moderate compute-bound foreign job.

#include <cstdio>

#include "common.hpp"
#include "trace/coarse_analysis.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("fig04_memory_cdf", "Available-memory distribution.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto machines = flags.add_int("machines", 32, "machines in the pool");
  auto days = flags.add_double("days", 2.0, "trace days per machine");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Figure 4: distribution of available memory",
                 "Paper: >=14 MB free 90% of time, >=10 MB free 95% of time "
                 "(64 MB machines);\nidle and non-idle distributions nearly "
                 "coincide.",
                 *seed);

  const auto pool = benchx::standard_pool(
      static_cast<std::size_t>(*machines), *days * 24.0, *seed);
  const auto mem = trace::memory_availability(pool);

  util::CsvWriter csv(*csv_path);
  csv.row({"free_mb", "all", "idle", "nonidle"});

  util::Table out({"free >= (MB)", "all time", "idle windows", "non-idle windows"});
  for (double mb : {4.0, 8.0, 10.0, 14.0, 18.0, 22.0, 26.0, 30.0, 36.0, 42.0,
                    48.0}) {
    const double all = trace::fraction_with_at_least(mem.all_kb, mb * 1024);
    const double idle = trace::fraction_with_at_least(mem.idle_kb, mb * 1024);
    const double nonidle =
        trace::fraction_with_at_least(mem.nonidle_kb, mb * 1024);
    out.add_row({util::fixed(mb, 0), util::percent(all, 1),
                 util::percent(idle, 1), util::percent(nonidle, 1)});
    csv.row({util::fixed(mb, 0), util::fixed(all, 4), util::fixed(idle, 4),
             util::fixed(nonidle, 4)});
  }
  std::printf("%s", out.render().c_str());

  std::printf("\npaper anchors: >=14 MB @ 90%% -> measured %s;  "
              ">=10 MB @ 95%% -> measured %s\n",
              util::percent(trace::fraction_with_at_least(mem.all_kb, 14 * 1024), 1)
                  .c_str(),
              util::percent(trace::fraction_with_at_least(mem.all_kb, 10 * 1024), 1)
                  .c_str());
  return 0;
}
