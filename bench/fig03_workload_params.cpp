/// \file fig03_workload_params.cpp
/// Paper Figure 3: mean and variance of run/idle burst durations as a
/// function of processor utilization (21 levels). Prints both the library's
/// model table (our stand-in for the paper's AIX-trace fits, see DESIGN.md)
/// and the values re-measured by running the full §3.1 analysis pipeline on
/// synthesized dispatch traces.

#include <cstdio>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/fine_generator.hpp"
#include "workload/fit.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("fig03_workload_params",
                    "Burst moments vs utilization (21 levels).");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto per_level =
      flags.add_double("trace-seconds", 3000.0, "trace length per level");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner(
      "Figure 3: run/idle burst mean & variance vs utilization",
      "Paper shapes: run-burst mean rises ~10 ms -> ~250 ms with utilization;"
      "\nidle-burst mean falls; variances track the means (hyperexponential).",
      *seed);
  util::CsvWriter csv(*csv_path);
  csv.row({"utilization", "run_mean_model", "run_var_model", "idle_mean_model",
           "idle_var_model", "run_mean_measured", "idle_mean_measured"});

  const auto& model = workload::default_burst_table();
  util::Table out({"util", "run mean (ms)", "run var (ms^2)", "idle mean (ms)",
                   "idle var (ms^2)", "run mean re-fit", "idle mean re-fit"});

  for (std::size_t lvl = 1; lvl + 1 < workload::kUtilizationLevels; ++lvl) {
    const double u = workload::BurstTable::level_utilization(lvl);
    const workload::BurstMoments& m = model.level(lvl);

    // Re-measure through the full generate -> bucket -> fit pipeline.
    const auto fine =
        workload::generate_fine_trace(model, u, *per_level, rng::Stream(*seed).fork("lvl", lvl));
    const auto fitted = workload::analyze_fine_trace(fine).to_table();
    const workload::BurstMoments& f = fitted.level(lvl);

    out.add_row({util::percent(u, 0), util::fixed(m.run_mean * 1e3, 1),
                 util::fixed(m.run_var * 1e6, 1),
                 util::fixed(m.idle_mean * 1e3, 1),
                 util::fixed(m.idle_var * 1e6, 1),
                 util::fixed(f.run_mean * 1e3, 1),
                 util::fixed(f.idle_mean * 1e3, 1)});
    csv.row({util::fixed(u, 2), util::fixed(m.run_mean, 6),
             util::fixed(m.run_var, 9), util::fixed(m.idle_mean, 6),
             util::fixed(m.idle_var, 9), util::fixed(f.run_mean, 6),
             util::fixed(f.idle_mean, 6)});
  }
  std::printf("%s", out.render().c_str());
  std::printf("\n(model = shipped table; re-fit = measured back through the "
              "2-second-window bucketing pipeline)\n");
  return 0;
}
