/// \file fig07_cluster_table.cpp
/// Paper Figure 7 (the headline table): four scheduling policies (LL, LF,
/// IE, PM) x two workloads x four metrics on a simulated 64-node cluster.
///
///   Workload-1: 128 jobs x 600 cpu-s (heavy: ~2 jobs per node)
///   Workload-2:  16 jobs x 1800 cpu-s (light: 1/4 of the nodes)
///
/// Paper values for reference:
///   W1: avg job  LL 1044 / LF 1026 / IE 1531 / PM 1531
///       variation  13.7% / 20.5% / 27.7% / 22.5%
///       family     1847 / 1844 / 2616 / 2521
///       throughput 52.2 / 55.5 / 34.6 / 34.6
///   W2: avg job ~1860 for all; throughput 15.0/14.7/14.5/14.5
/// plus: foreground delay below 0.5% in all configurations.

#include <cstdio>

#include "cluster/experiment.hpp"
#include "common.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("fig07_cluster_table",
                    "Cluster performance of LL/LF/IE/PM (paper Figure 7).");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto nodes = flags.add_int("nodes", 64, "cluster size");
  auto machines = flags.add_int("machines", 64, "distinct machine traces");
  auto reps = flags.add_int("reps", 5,
                            "replications per cell (means with 95% CIs)");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Figure 7: cluster performance (4 policies x 2 workloads)",
                 "Paper: lingering improves W1 throughput ~50-60% over "
                 "eviction; all policies\ntie on the lightly loaded W2; "
                 "foreground delay < 0.5% throughout.",
                 *seed);

  const auto pool = benchx::standard_pool(
      static_cast<std::size_t>(*machines), 24.0, *seed + 1);

  util::CsvWriter csv(*csv_path);
  csv.row({"workload", "policy", "avg_job", "variation", "family",
           "throughput", "fg_delay", "migrations"});

  struct Spec {
    const char* name;
    cluster::WorkloadSpec workload;
  };
  const Spec specs[] = {{"workload-1 (128 x 600 s)", cluster::workload_1()},
                        {"workload-2 (16 x 1800 s)", cluster::workload_2()}};

  for (const Spec& spec : specs) {
    util::Table out({"metric", "LL", "LF", "IE", "PM"});
    std::vector<std::string> avg{"avg. job (s)"};
    std::vector<std::string> var{"variation"};
    std::vector<std::string> fam{"family time (s)"};
    std::vector<std::string> thr{"throughput (cpu-s/s)"};
    std::vector<std::string> fgd{"foreground delay"};
    std::vector<std::string> mig{"migrations (open run)"};

    for (core::PolicyKind policy : benchx::kAllPolicies) {
      // `reps` independent replications per cell, reported as mean +- 95% CI.
      // Open and closed modes share the replication seeds.
      auto run_one = [&](std::uint64_t rep_seed, bool closed_mode) {
        cluster::ExperimentConfig cfg;
        cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
        cfg.cluster.policy = policy;
        cfg.workload = spec.workload;
        cfg.seed = rep_seed;
        return closed_mode
                   ? cluster::run_closed(cfg, pool,
                                         workload::default_burst_table(), 3600.0)
                   : cluster::run_open(cfg, pool,
                                       workload::default_burst_table());
      };
      const auto opens = cluster::replicate(
          static_cast<std::size_t>(*reps), *seed,
          [&](std::uint64_t s) { return run_one(s, false); });
      const auto closeds = cluster::replicate(
          static_cast<std::size_t>(*reps), *seed,
          [&](std::uint64_t s) { return run_one(s, true); });

      auto ci_of = [](const std::vector<cluster::ClusterReport>& rs,
                      auto metric) {
        return cluster::summarize(rs, metric);
      };
      const auto avg_ci = ci_of(
          opens, [](const cluster::ClusterReport& r) { return r.avg_completion; });
      const auto var_ci = ci_of(
          opens, [](const cluster::ClusterReport& r) { return r.variation; });
      const auto fam_ci = ci_of(
          opens, [](const cluster::ClusterReport& r) { return r.family_time; });
      const auto thr_ci = ci_of(
          closeds, [](const cluster::ClusterReport& r) { return r.throughput; });
      const auto fgd_ci = ci_of(opens, [](const cluster::ClusterReport& r) {
        return r.foreground_delay;
      });
      const auto mig_ci = ci_of(opens, [](const cluster::ClusterReport& r) {
        return static_cast<double>(r.migrations);
      });

      avg.push_back(util::format("%.0f ±%.0f", avg_ci.mean, avg_ci.half_width));
      var.push_back(util::format("%.1f%% ±%.1f", var_ci.mean * 100,
                                 var_ci.half_width * 100));
      fam.push_back(util::format("%.0f ±%.0f", fam_ci.mean, fam_ci.half_width));
      thr.push_back(util::format("%.1f ±%.1f", thr_ci.mean, thr_ci.half_width));
      fgd.push_back(util::percent(fgd_ci.mean, 2));
      mig.push_back(util::fixed(mig_ci.mean, 0));

      csv.row({spec.name, std::string(core::to_string(policy)),
               util::fixed(avg_ci.mean, 1), util::fixed(var_ci.mean, 4),
               util::fixed(fam_ci.mean, 1), util::fixed(thr_ci.mean, 2),
               util::fixed(fgd_ci.mean, 5), util::fixed(mig_ci.mean, 1)});
    }
    out.add_row(avg);
    out.add_row(var);
    out.add_row(fam);
    out.add_row(thr);
    out.add_separator();
    out.add_row(fgd);
    out.add_row(mig);
    std::printf("%s (%lld replications, mean ±95%% CI):\n%s\n", spec.name,
                static_cast<long long>(*reps), out.render().c_str());
  }

  std::printf("paper W1 reference: avg 1044/1026/1531/1531, "
              "throughput 52.2/55.5/34.6/34.6\n");
  return 0;
}
