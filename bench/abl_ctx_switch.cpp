/// \file abl_ctx_switch.cpp
/// Ablation of design decision #2 (DESIGN.md): the effective context-switch
/// cost (the paper adopts 100 us from Mogul & Borg, dominated by cache
/// reload). Sweeps 25 us - 1 ms and reports both the single-node metrics
/// (Figure 5's LDR/FCSR at a representative load) and cluster throughput,
/// showing when fine-grain stealing stops being "free".

#include <cstdio>

#include "cluster/experiment.hpp"
#include "common.hpp"
#include "node/fine_node_sim.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("abl_ctx_switch", "Effective context-switch cost sweep.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto nodes = flags.add_int("nodes", 32, "cluster size");
  auto machines = flags.add_int("machines", 32, "distinct machine traces");
  auto util_flag = flags.add_double("util", 0.3, "single-node test load");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Ablation: effective context-switch cost",
                 "Paper's operating point is 100 us; delays stay <5% to "
                 "300 us, reach ~8% at 500 us.",
                 *seed);

  const auto pool = benchx::standard_pool(
      static_cast<std::size_t>(*machines), 24.0, *seed + 1);
  const auto& table = workload::default_burst_table();

  util::CsvWriter csv(*csv_path);
  csv.row({"ctx_switch_us", "ldr", "fcsr", "throughput", "fg_delay"});

  util::Table out({"switch cost (us)", "LDR @30%", "FCSR @30%",
                   "LL throughput", "cluster fg delay"});
  for (double cs : {25e-6, 50e-6, 100e-6, 200e-6, 300e-6, 500e-6, 1000e-6}) {
    node::FineNodeConfig fine;
    fine.utilization = *util_flag;
    fine.context_switch = cs;
    fine.duration = 3000.0;
    const auto r = node::simulate_fine_node(
        fine, table, rng::Stream(*seed).fork("fine",
                                             static_cast<std::uint64_t>(cs * 1e7)));

    cluster::ExperimentConfig cfg;
    cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
    cfg.cluster.policy = core::PolicyKind::LingerLonger;
    cfg.cluster.context_switch = cs;
    cfg.workload = cluster::WorkloadSpec{64, 600.0};
    cfg.seed = *seed;
    const auto closed = cluster::run_closed(cfg, pool, table, 3600.0);

    out.add_row({util::fixed(cs * 1e6, 0), util::percent(r.ldr(), 2),
                 util::percent(r.fcsr(), 1), util::fixed(closed.throughput, 1),
                 util::percent(closed.foreground_delay, 3)});
    csv.row({util::fixed(cs * 1e6, 0), util::fixed(r.ldr(), 5),
             util::fixed(r.fcsr(), 5), util::fixed(closed.throughput, 2),
             util::fixed(closed.foreground_delay, 6)});
  }
  std::printf("%s", out.render().c_str());
  return 0;
}
