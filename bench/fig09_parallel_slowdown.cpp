/// \file fig09_parallel_slowdown.cpp
/// Paper Figure 9: slowdown of an 8-process bulk-synchronous job (100 ms
/// between synchronizations, NEWS messaging) when ONE node is non-idle, as
/// the owner's utilization on that node rises from 0% to 90%. Paper: the
/// slowdown stays in the 1.1-1.5 range up to ~40% load and explodes past
/// 50% (~9-10x at 90%).

#include <cstdio>

#include "common.hpp"
#include "parallel/bsp.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("fig09_parallel_slowdown",
                    "BSP job slowdown vs one node's owner utilization.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto phases = flags.add_int("phases", 200, "BSP iterations per point");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Figure 9: 8-process BSP slowdown vs local utilization",
                 "Paper: <=1.5x up to ~40% load on the one busy node; ~9-10x "
                 "at 90%.",
                 *seed);

  parallel::BspConfig bsp;
  bsp.processes = 8;
  bsp.granularity = 0.1;  // 100 ms between synchronization phases
  bsp.phases = static_cast<std::size_t>(*phases);
  bsp.messages_per_process = 4;  // NEWS exchange

  util::CsvWriter csv(*csv_path);
  csv.row({"utilization", "slowdown"});

  util::Table out({"local util", "slowdown"});
  util::ChartSeries curve{"slowdown", {}, {}};
  const auto& table = workload::default_burst_table();
  for (int pct = 0; pct <= 90; pct += 10) {
    const double u = pct / 100.0;
    std::vector<double> utils(8, 0.0);
    utils[0] = u;
    const auto r = parallel::simulate_bsp(
        bsp, utils, table, rng::Stream(*seed).fork("pt", pct));
    out.add_row({util::percent(u, 0), util::fixed(r.slowdown(), 2)});
    csv.row({util::fixed(u, 2), util::fixed(r.slowdown(), 4)});
    curve.xs.push_back(u * 100);
    curve.ys.push_back(r.slowdown());
  }
  std::printf("%s\n", out.render().c_str());
  util::ChartOptions chart;
  chart.x_label = "local CPU utilization (%)";
  chart.y_label = "slowdown";
  std::printf("%s", util::render_chart({curve}, chart).c_str());
  return 0;
}
