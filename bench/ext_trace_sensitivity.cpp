/// \file ext_trace_sensitivity.cpp
/// Extension experiment: how sensitive is the headline result — lingering's
/// throughput advantage over eviction — to the synthetic trace calibration?
/// Since we substitute generated traces for the paper's Berkeley archive
/// (DESIGN.md §3), this sweep shows the conclusion is a property of the
/// mechanism, not of one lucky parameterization: the LL/IE ratio is swept
/// across cluster business (session activity) and compute-episode intensity.

#include <cstdio>

#include "cluster/experiment.hpp"
#include "common.hpp"
#include "trace/coarse_analysis.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("ext_trace_sensitivity",
                    "LL/IE advantage across trace calibrations.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto nodes = flags.add_int("nodes", 32, "cluster size");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Extension: sensitivity to trace calibration",
                 "The LL > IE ordering must survive any plausible "
                 "re-calibration of the\nsynthetic traces for the "
                 "substitution argument (DESIGN.md §3) to hold.",
                 *seed);

  util::CsvWriter csv(*csv_path);
  csv.row({"activity", "episode_rate_scale", "nonidle_frac", "ll", "ie",
           "ratio"});

  util::Table out({"user activity", "compute episodes", "non-idle frac",
                   "LL thpt", "IE thpt", "LL/IE"});
  struct Activity {
    const char* name;
    double day;
    double evening;
    double night;
  };
  for (const Activity& act : {Activity{"quiet site", 0.5, 0.2, 0.02},
                              Activity{"paper-like", 0.85, 0.45, 0.08},
                              Activity{"busy site", 0.97, 0.8, 0.3}}) {
    for (double episode_scale : {0.5, 1.0, 2.0}) {
      trace::CoarseGenConfig gen;
      gen.p_active_day = act.day;
      gen.p_active_evening = act.evening;
      gen.p_active_night = act.night;
      gen.episode_rate_active *= episode_scale;
      gen.episode_rate_away *= episode_scale;
      const auto pool = trace::generate_machine_pool(
          gen, static_cast<std::size_t>(*nodes), rng::Stream(*seed + 1));
      const auto stats = trace::analyze_coarse(pool);

      auto run_policy = [&](core::PolicyKind policy) {
        cluster::ExperimentConfig cfg;
        cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
        cfg.cluster.policy = policy;
        cfg.workload = cluster::WorkloadSpec{
            static_cast<std::size_t>(*nodes) * 2, 600.0};
        cfg.seed = *seed;
        return cluster::run_closed(cfg, pool, workload::default_burst_table(),
                                   3600.0)
            .throughput;
      };
      const double ll = run_policy(core::PolicyKind::LingerLonger);
      const double ie = run_policy(core::PolicyKind::ImmediateEviction);
      out.add_row({act.name, util::format("%.1fx", episode_scale),
                   util::percent(stats.nonidle_fraction, 0),
                   util::fixed(ll, 1), util::fixed(ie, 1),
                   util::fixed(ll / ie, 2)});
      csv.row({act.name, util::fixed(episode_scale, 1),
               util::fixed(stats.nonidle_fraction, 3), util::fixed(ll, 2),
               util::fixed(ie, 2), util::fixed(ll / ie, 3)});
    }
  }
  std::printf("%s", out.render().c_str());
  std::printf("\nLL/IE > 1 throughout: the advantage grows with how much of "
              "the cluster the\nrecruitment rule locks away from eviction-"
              "based scheduling.\n");
  return 0;
}
