/// \file micro_fault.cpp
/// google-benchmark microbenchmarks of the fault subsystem's opt-in cost.
/// The acceptance gate mirrors micro_obs: a ClusterSim built with a
/// default-constructed (empty) FaultSpec and checkpointing disabled must run
/// the fig07 event loop at its pre-fault speed — no extra events, no extra
/// rng draws, no per-event branches beyond the compiled-in `faults_active`
/// check. The third bench shows what an actually-faulty run costs for scale.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>

#include "cluster/experiment.hpp"
#include "core/policy.hpp"
#include "fault/fault_spec.hpp"
#include "trace/coarse_generator.hpp"
#include "workload/burst_table.hpp"

namespace {

using namespace ll;

constexpr std::size_t kNodes = 16;
constexpr std::uint64_t kSeed = 42;

std::vector<trace::CoarseTrace> pool() {
  static const std::vector<trace::CoarseTrace> p = [] {
    trace::CoarseGenConfig gen;
    gen.duration = 24.0 * 3600.0;
    return trace::generate_machine_pool(gen, kNodes, rng::Stream(kSeed + 1));
  }();
  return p;
}

cluster::ExperimentConfig base_config() {
  cluster::ExperimentConfig cfg;
  cfg.cluster.node_count = kNodes;
  cfg.cluster.policy = core::PolicyKind::LingerLonger;
  cfg.workload = cluster::WorkloadSpec{kNodes * 2, 600.0};
  cfg.seed = kSeed;
  return cfg;
}

void run_open(benchmark::State& state, const cluster::ExperimentConfig& cfg) {
  const auto p = pool();
  const workload::BurstTable& table = workload::default_burst_table();
  for (auto _ : state) {
    const cluster::ClusterReport report = cluster::run_open(cfg, p, table);
    benchmark::DoNotOptimize(report.avg_completion);
    benchmark::DoNotOptimize(report.work_lost);
  }
}

// Baseline: the fault members exist in the binary but the spec is empty —
// the exact configuration every pre-existing bench and test runs with.
void BM_FaultEmptySpec(benchmark::State& state) {
  run_open(state, base_config());
}
BENCHMARK(BM_FaultEmptySpec)->Unit(benchmark::kMillisecond);

// Checkpointing armed but no faults: isolates the periodic-timer cost.
void BM_FaultCheckpointOnly(benchmark::State& state) {
  cluster::ExperimentConfig cfg = base_config();
  cfg.cluster.checkpoint.interval = 600.0;
  run_open(state, cfg);
}
BENCHMARK(BM_FaultCheckpointOnly)->Unit(benchmark::kMillisecond);

// Full fault plan at the bench's crash-heavy setting.
void BM_FaultFullPlan(benchmark::State& state) {
  cluster::ExperimentConfig cfg = base_config();
  cfg.cluster.faults.crash.arrivals =
      fault::ArrivalProcess::exponential(kNodes / 1800.0);
  cfg.cluster.faults.link.drop_probability = 0.05;
  cfg.cluster.checkpoint.interval = 600.0;
  run_open(state, cfg);
}
BENCHMARK(BM_FaultFullPlan)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
