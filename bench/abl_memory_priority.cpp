/// \file abl_memory_priority.cpp
/// Ablation of design decision #6 (DESIGN.md): the priority page pools
/// (§3.2, after the Stealth scheduler). On memory-tight machines the foreign
/// job's working set can only partially reside in donated pages; modelling
/// this matters for jobs larger than the typical free headroom. Sweeps the
/// foreign working-set size against machines with varying memory pressure.

#include <cstdio>

#include "cluster/experiment.hpp"
#include "common.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

/// A trace pool whose machines keep only ~`free_mb` MB free on average
/// (memory pressure knob; CPU behaviour is the standard generator's).
std::vector<ll::trace::CoarseTrace> pressured_pool(std::size_t machines,
                                                   double free_mb,
                                                   std::uint64_t seed) {
  ll::trace::CoarseGenConfig gen;
  gen.duration = 24.0 * 3600.0;
  const auto base_used =
      static_cast<std::int32_t>(65536 - free_mb * 1024.0);
  gen.mem_base_active_lo = base_used - 4096;
  gen.mem_base_active_hi = base_used + 4096;
  gen.mem_base_away_lo = base_used - 6144;
  gen.mem_base_away_hi = base_used + 2048;
  return ll::trace::generate_machine_pool(gen, machines, ll::rng::Stream(seed));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("abl_memory_priority",
                    "Priority page pools vs ignoring memory entirely.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto nodes = flags.add_int("nodes", 16, "cluster size");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Ablation: priority page pools (memory model on/off)",
                 "Paper: >=10 MB free 95% of the time, so one 8 MB job fits; "
                 "the model matters\nexactly when that assumption breaks.",
                 *seed);

  const auto& table = workload::default_burst_table();

  util::CsvWriter csv(*csv_path);
  csv.row({"free_mb", "job_mb", "throughput_mem_model", "throughput_no_mem",
           "ratio"});

  util::Table out({"avg free (MB)", "job ws (MB)", "thpt (mem model)",
                   "thpt (no model)", "ratio"});
  for (double free_mb : {24.0, 12.0, 6.0}) {
    const auto pool =
        pressured_pool(static_cast<std::size_t>(*nodes), free_mb, *seed + 1);
    for (double job_mb : {4.0, 8.0, 16.0}) {
      auto run = [&](bool model_memory) {
        cluster::ExperimentConfig cfg;
        cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
        cfg.cluster.policy = core::PolicyKind::LingerLonger;
        cfg.cluster.model_memory = model_memory;
        cfg.cluster.job_mem_kb = static_cast<std::uint32_t>(job_mb * 1024);
        cfg.cluster.job_bytes =
            static_cast<std::uint64_t>(job_mb * 1024 * 1024);
        cfg.workload = cluster::WorkloadSpec{32, 600.0};
        cfg.seed = *seed;
        return cluster::run_closed(cfg, pool, table, 3600.0).throughput;
      };
      const double with_model = run(true);
      const double without = run(false);
      out.add_row({util::fixed(free_mb, 0), util::fixed(job_mb, 0),
                   util::fixed(with_model, 2), util::fixed(without, 2),
                   util::fixed(with_model / without, 2)});
      csv.row({util::fixed(free_mb, 0), util::fixed(job_mb, 0),
               util::fixed(with_model, 3), util::fixed(without, 3),
               util::fixed(with_model / without, 3)});
    }
  }
  std::printf("%s", out.render().c_str());
  std::printf("\nRatio ~1: the paper's 'one moderate job fits' claim holds; "
              "ratios << 1 mark\nconfigurations where ignoring memory would "
              "overstate lingering's benefit.\n");
  return 0;
}
