/// \file fig02_burst_cdf.cpp
/// Paper Figure 2: CDFs of run and idle burst durations at 10% and 50%
/// utilization — empirical (from synthesized dispatch traces, bucketed by
/// the §3.1 pipeline) against the 2-stage hyperexponential fitted by the
/// method of moments. The paper reports "the curves almost exactly match";
/// the KS distances quantify that here.

#include <cstdio>

#include "common.hpp"
#include "stats/cdf.hpp"
#include "stats/summary.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/fine_generator.hpp"
#include "workload/fit.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("fig02_burst_cdf", "Run/idle burst CDFs vs fitted H2.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto trace_seconds =
      flags.add_double("trace-seconds", 20000.0, "dispatch trace length");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Figure 2: run/idle burst CDFs, empirical vs fitted H2",
                 "Paper: fitted hyperexponential CDFs almost exactly match "
                 "the measured burst distributions at 10% and 50% load.",
                 *seed);
  util::CsvWriter csv(*csv_path);
  csv.row({"utilization", "kind", "x_seconds", "empirical_cdf", "fitted_cdf"});

  const auto& table = workload::default_burst_table();
  for (double u : {0.10, 0.50}) {
    const auto fine = workload::generate_fine_trace(table, u, *trace_seconds,
                                                    rng::Stream(*seed));
    const auto analysis = workload::analyze_fine_trace(fine);

    // Pool samples from the level nearest the target plus its neighbours,
    // as the paper's per-level histograms effectively do.
    auto pooled = [&](bool run_kind) {
      std::vector<double> samples;
      const auto target = static_cast<long>(
          u * static_cast<double>(workload::kUtilizationLevels - 1) + 0.5);
      for (long lvl = target - 1; lvl <= target + 1; ++lvl) {
        if (lvl < 0 || lvl >= static_cast<long>(workload::kUtilizationLevels)) {
          continue;
        }
        const auto& level = analysis.levels[static_cast<std::size_t>(lvl)];
        const auto& src = run_kind ? level.run : level.idle;
        samples.insert(samples.end(), src.begin(), src.end());
      }
      return samples;
    };

    for (bool run_kind : {true, false}) {
      const char* kind = run_kind ? "run" : "idle";
      const std::vector<double> samples = pooled(run_kind);
      if (samples.size() < 100) {
        std::printf("u=%.0f%% %s: too few samples (%zu)\n", u * 100, kind,
                    samples.size());
        continue;
      }
      stats::Summary m;
      for (double x : samples) m.add(x);
      const rng::HyperExp2 fitted = rng::fit_hyperexp2(
          m.mean(), std::max(m.variance(), 1e-12));
      const stats::EmpiricalCdf ecdf(samples);

      util::Table out({"x (ms)", "empirical", "fitted H2"});
      for (double x = 0.0; x <= 0.1 + 1e-9; x += 0.01) {
        out.add_row({util::fixed(x * 1e3, 0), util::fixed(ecdf(x), 3),
                     util::fixed(fitted.cdf(x), 3)});
        csv.row({util::fixed(u, 2), kind, util::fixed(x, 3),
                 util::fixed(ecdf(x), 5), util::fixed(fitted.cdf(x), 5)});
      }
      const double ks =
          ecdf.ks_distance([&fitted](double x) { return fitted.cdf(x); });
      std::printf("%s bursts @ %.0f%% utilization (n=%zu, mean %.1f ms, "
                  "cv^2 %.2f, KS distance %.3f):\n%s\n",
                  kind, u * 100, samples.size(), m.mean() * 1e3,
                  m.variance() / (m.mean() * m.mean()), ks,
                  out.render().c_str());
    }
  }
  return 0;
}
