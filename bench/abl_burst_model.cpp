/// \file abl_burst_model.cpp
/// Ablation of design decision #3 (DESIGN.md): hyperexponential (cv^2 > 1)
/// burst durations versus a memoryless exponential model with the same
/// means. The burst-length tail is what drives barrier amplification in the
/// parallel results; single-node stealing ratios barely notice.

#include <cstdio>
#include <vector>

#include "common.hpp"
#include "node/fine_node_sim.hpp"
#include "parallel/bsp.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("abl_burst_model",
                    "H2 bursts vs exponential bursts with equal means.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Ablation: burst distribution (H2 vs exponential)",
                 "Same means, different tails: the H2 tail is what the "
                 "barrier max amplifies.",
                 *seed);

  const workload::BurstTable& h2 = workload::default_burst_table();
  const workload::BurstTable expo = benchx::exponential_burst_table();

  util::CsvWriter csv(*csv_path);
  csv.row({"metric", "utilization", "h2", "exponential"});

  // Single-node stealing metrics.
  util::Table fine({"util", "LDR h2", "LDR exp", "FCSR h2", "FCSR exp"});
  for (double u : {0.2, 0.5, 0.8}) {
    auto run = [&](const workload::BurstTable& t) {
      node::FineNodeConfig cfg;
      cfg.utilization = u;
      cfg.duration = 3000.0;
      return node::simulate_fine_node(
          cfg, t, rng::Stream(*seed).fork("fine",
                                          static_cast<std::uint64_t>(u * 100)));
    };
    const auto a = run(h2);
    const auto b = run(expo);
    fine.add_row({util::percent(u, 0), util::percent(a.ldr(), 2),
                  util::percent(b.ldr(), 2), util::percent(a.fcsr(), 1),
                  util::percent(b.fcsr(), 1)});
    csv.row({"ldr", util::fixed(u, 1), util::fixed(a.ldr(), 5),
             util::fixed(b.ldr(), 5)});
    csv.row({"fcsr", util::fixed(u, 1), util::fixed(a.fcsr(), 5),
             util::fixed(b.fcsr(), 5)});
  }
  std::printf("Single-node stealing metrics:\n%s\n", fine.render().c_str());

  // Parallel barrier amplification (Figure 9 setup).
  util::Table par({"busy-node util", "slowdown h2", "slowdown exp"});
  parallel::BspConfig bsp;
  bsp.processes = 8;
  bsp.granularity = 0.1;
  bsp.phases = 150;
  for (double u : {0.2, 0.4, 0.6, 0.8}) {
    std::vector<double> utils(8, 0.0);
    for (std::size_t i = 0; i < 4; ++i) utils[i] = u;  // 4 busy nodes
    const auto a = parallel::simulate_bsp(
        bsp, utils, h2, rng::Stream(*seed).fork("h2",
                                                static_cast<std::uint64_t>(u * 100)));
    const auto b = parallel::simulate_bsp(
        bsp, utils, expo, rng::Stream(*seed).fork("exp",
                                                  static_cast<std::uint64_t>(u * 100)));
    par.add_row({util::percent(u, 0), util::fixed(a.slowdown(), 2),
                 util::fixed(b.slowdown(), 2)});
    csv.row({"bsp_slowdown_4busy", util::fixed(u, 1),
             util::fixed(a.slowdown(), 4), util::fixed(b.slowdown(), 4)});
  }
  std::printf("8-process BSP, 4 busy nodes:\n%s", par.render().c_str());
  std::printf("\nThe exponential model understates barrier slowdown — "
              "evidence the cv^2 > 1 fit matters.\n");
  return 0;
}
