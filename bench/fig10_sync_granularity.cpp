/// \file fig10_sync_granularity.cpp
/// Paper Figure 10: slowdown of an 8-process bulk-synchronous job versus
/// synchronization granularity (computation between barriers, 10 ms-10 s)
/// when 1, 2, 4, or 8 of its nodes carry 20% owner load. Paper: coarser
/// granularity amortizes barrier penalties; even with 4 non-idle nodes the
/// slowdown stays under ~1.5 (versus >= 2 for reconfiguring down).

#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "parallel/bsp.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ll;

  util::Flags flags("fig10_sync_granularity",
                    "BSP slowdown vs synchronization granularity.");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto work = flags.add_double("work-per-point", 40.0,
                               "compute seconds per process per point");
  auto util_flag = flags.add_double("util", 0.2, "owner load on busy nodes");
  auto csv_path = flags.add_string("csv", "", "optional CSV output path");
  flags.parse(argc, argv);

  benchx::banner("Figure 10: slowdown vs synchronization granularity",
                 "Paper: larger granularity -> less slowdown; ~<1.5x with 4 "
                 "busy nodes at 20%.",
                 *seed);

  const double granularities[] = {0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0};
  const std::size_t busy_counts[] = {1, 2, 4, 8};
  const auto& table = workload::default_burst_table();

  util::CsvWriter csv(*csv_path);
  csv.row({"granularity_ms", "busy_nodes", "slowdown"});

  util::Table out({"granularity (ms)", "1 busy", "2 busy", "4 busy", "8 busy"});
  std::vector<util::ChartSeries> curves{
      {"1 busy", {}, {}}, {"2 busy", {}, {}}, {"4 busy", {}, {}},
      {"8 busy", {}, {}}};
  for (double g : granularities) {
    std::vector<std::string> row{util::fixed(g * 1e3, 0)};
    std::size_t ci = 0;
    for (std::size_t busy : busy_counts) {
      parallel::BspConfig bsp;
      bsp.processes = 8;
      bsp.granularity = g;
      // Hold total compute per point constant so every cell reflects the
      // same amount of work.
      bsp.phases = static_cast<std::size_t>(
          std::max(3.0, *work / g));
      bsp.messages_per_process = 4;
      std::vector<double> utils(8, 0.0);
      for (std::size_t i = 0; i < busy; ++i) utils[i] = *util_flag;
      const auto r = parallel::simulate_bsp(
          bsp, utils, table,
          rng::Stream(*seed).fork("pt", busy * 1000 +
                                            static_cast<std::uint64_t>(g * 1e3)));
      row.push_back(util::fixed(r.slowdown(), 2));
      csv.row({util::fixed(g * 1e3, 1), std::to_string(busy),
               util::fixed(r.slowdown(), 4)});
      // Log-scale the x-axis by plotting against log10(granularity).
      curves[ci].xs.push_back(std::log10(g * 1e3));
      curves[ci].ys.push_back(r.slowdown());
      ++ci;
    }
    out.add_row(row);
  }
  std::printf("%s\n", out.render().c_str());
  util::ChartOptions chart;
  chart.x_label = "log10 granularity (ms)";
  chart.y_label = "slowdown";
  chart.y_min = 1.0;
  std::printf("%s", util::render_chart(curves, chart).c_str());
  std::printf("\n(busy nodes carry %.0f%% owner load; reconfiguration to "
              "fewer nodes would cost >= 2x with 4 nodes unavailable)\n",
              *util_flag * 100);
  return 0;
}
