#include "cli/driver.hpp"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "cluster/experiment.hpp"
#include "exp/drivers.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"
#include "serve/scenario.hpp"
#include "serve/server.hpp"
#include "shard/experiment.hpp"
#include "verify/scenarios.hpp"
#include "exp/engine.hpp"
#include "exp/pool_cache.hpp"
#include "exp/registry.hpp"
#include "exp/spec.hpp"
#include "trace/coarse_analysis.hpp"
#include "trace/coarse_generator.hpp"
#include "trace/trace_io.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/fit.hpp"
#include "workload/table_io.hpp"

namespace ll::cli {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kUsage =
    "llsim — Linger-Longer cluster-scheduling simulator\n"
    "\n"
    "Usage: llsim <subcommand> [flags]   (each subcommand accepts --help)\n"
    "\n"
    "Subcommands:\n"
    "  traces    synthesize workstation trace files\n"
    "  analyze   availability/memory statistics of a trace directory\n"
    "  fit       fit a 21-level burst table from a fine dispatch trace\n"
    "  cluster   run sequential foreign jobs under a scheduling policy\n"
    "  parallel  run parallel jobs under a width policy\n"
    "  profile   instrumented cluster run: event-loop profile + metrics\n"
    "  trace     flight-recorder capture: Chrome trace-event JSON "
    "(Perfetto)\n"
    "  faults    compile a fault plan, print its timeline, run one faulty "
    "scenario\n"
    "  bench     run a registered experiment sweep (try: bench --list), or\n"
    "            the perf-trajectory probes (bench --report)\n"
    "  serve     long-running sweep service: NDJSON requests over TCP,\n"
    "            batched onto the shared runner, results cached by config "
    "digest\n";

std::vector<const char*> to_argv(const std::vector<std::string>& args) {
  std::vector<const char*> argv{"llsim"};
  for (const std::string& a : args) argv.push_back(a.c_str());
  return argv;
}

/// Loads every .coarse file in a directory, sorted by name for determinism.
std::vector<trace::CoarseTrace> load_trace_dir(const std::string& dir) {
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".coarse") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<trace::CoarseTrace> pool;
  pool.reserve(paths.size());
  for (const fs::path& p : paths) pool.push_back(trace::load_coarse(p.string()));
  if (pool.empty()) {
    throw std::runtime_error("no .coarse traces found in " + dir);
  }
  return pool;
}

/// Builds the pool either from --traces DIR or synthetically. Synthetic
/// pools come from the process-wide cache, so repeated runs (and registered
/// benches using the same dimensions) build each pool exactly once.
exp::TracePoolCache::PoolPtr pool_from_flags(const std::string& dir,
                                             std::int64_t machines,
                                             double days, std::uint64_t seed) {
  if (!dir.empty()) {
    return std::make_shared<const std::vector<trace::CoarseTrace>>(
        load_trace_dir(dir));
  }
  return exp::TracePoolCache::shared().standard(
      static_cast<std::size_t>(machines), days * 24.0, seed);
}

/// Formats a replication-count metric: exact for single runs, one decimal
/// for means across replications.
std::string count_metric(double mean, std::size_t reps) {
  return util::fixed(mean, reps > 1 ? 1 : 0);
}

constexpr std::string_view kQueueFlagHelp =
    "event-queue backend: heap or calendar (identical results either way; "
    "calendar is faster at very large node counts)";

/// Parses a --queue flag value, throwing the subcommand's usage-style error.
des::QueueBackend parse_queue_flag(std::string_view subcommand,
                                   const std::string& value) {
  const auto backend = des::parse_queue_backend(value);
  if (!backend) {
    throw std::invalid_argument(std::string(subcommand) + ": unknown queue '" +
                                value + "' (heap, calendar)");
  }
  return *backend;
}

// ---- observability helpers ------------------------------------------------

/// One fully instrumented cluster run: metrics registry, event-loop
/// profiler (with named tags) and optional timeline all attached via the
/// experiment driver's RunHooks, snapshots taken while the simulator is
/// still alive.
struct ClusterObsRun {
  cluster::ClusterReport report;
  std::vector<obs::MetricSample> metrics;
  obs::ProfileSnapshot profile;
  std::string profile_table;
};

ClusterObsRun run_cluster_instrumented(const cluster::ExperimentConfig& cfg,
                                       std::span<const trace::CoarseTrace> pool,
                                       const workload::BurstTable& table,
                                       double closed_duration,
                                       obs::Timeline* timeline) {
  obs::MetricRegistry registry;
  obs::EventLoopProfiler profiler;
  profiler.name_tag(cluster::ClusterSim::kTagTick, "tick");
  profiler.name_tag(cluster::ClusterSim::kTagCompletion, "completion");
  profiler.name_tag(cluster::ClusterSim::kTagRecheck, "recheck");
  profiler.name_tag(cluster::ClusterSim::kTagMigration, "migration");
  profiler.name_tag(cluster::ClusterSim::kTagFault, "fault");
  profiler.name_tag(cluster::ClusterSim::kTagCheckpoint, "checkpoint");

  ClusterObsRun result;
  cluster::RunHooks hooks;
  hooks.on_start = [&](cluster::ClusterSim& sim) {
    sim.set_metrics(&registry);
    if (timeline) sim.set_timeline(timeline);
    sim.set_sim_observer(&profiler);
  };
  hooks.on_finish = [&](cluster::ClusterSim& sim) {
    // require_conserved: a profiled run double-checks the engine's event
    // conservation invariant (scheduled == fired + cancelled + pending).
    result.profile =
        profiler.snapshot(sim.engine(), /*require_conserved=*/true);
    result.profile_table = profiler.render_table(sim.engine());
    result.metrics = registry.snapshot(sim.now());
    sim.set_sim_observer(nullptr);
    sim.set_metrics(nullptr);
    sim.set_timeline(nullptr);
  };
  result.report =
      closed_duration > 0.0
          ? cluster::run_closed(cfg, pool, table, closed_duration, &hooks)
          : cluster::run_open(cfg, pool, table, nullptr, &hooks);
  return result;
}

/// One fully instrumented sharded run: shard.* metrics plus the barrier /
/// mailbox accounting for the manifest's "shards" section. Windows execute
/// on the shared work-stealing runner (top-level call, so nesting is not a
/// concern).
struct ShardObsRun {
  cluster::ClusterReport report;
  std::vector<obs::MetricSample> metrics;
  shard::ShardStats stats;
  double window = 0.0;
};

ShardObsRun run_sharded_instrumented(const cluster::ExperimentConfig& cfg,
                                     std::size_t shards,
                                     std::span<const trace::CoarseTrace> pool,
                                     const workload::BurstTable& table,
                                     double closed_duration) {
  obs::MetricRegistry registry;
  ShardObsRun result;
  shard::RunHooks hooks;
  hooks.on_start = [&](shard::ShardedClusterSim& sim) {
    sim.set_metrics(&registry);
  };
  hooks.on_finish = [&](shard::ShardedClusterSim& sim) {
    result.metrics = registry.snapshot(sim.now());
    result.stats = sim.stats();
    result.window = sim.window_length();
    sim.set_metrics(nullptr);
  };
  util::TaskRunner* runner = &util::TaskRunner::shared();
  result.report =
      closed_duration > 0.0
          ? shard::run_closed(cfg, shards, pool, table, closed_duration,
                              runner, &hooks)
          : shard::run_open(cfg, shards, pool, table, runner, nullptr,
                            &hooks);
  return result;
}

void write_manifest_file(const obs::RunManifest& manifest,
                         const std::string& path) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open " + path + " for writing");
  obs::write_manifest_json(manifest, file);
}

int cmd_traces(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim traces", "Synthesize workstation trace files.");
  auto machines = flags.add_int("machines", 16, "machines to synthesize");
  auto days = flags.add_double("days", 1.0, "days per machine");
  auto out_dir = flags.add_string("out", "", "output directory (required)");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto argv = to_argv(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  if (out_dir->empty()) {
    throw std::invalid_argument("traces: --out is required\n" + flags.usage());
  }
  fs::create_directories(*out_dir);
  trace::CoarseGenConfig gen;
  gen.duration = *days * 86400.0;
  const auto pool = trace::generate_machine_pool(
      gen, static_cast<std::size_t>(*machines), rng::Stream(*seed));
  for (std::size_t m = 0; m < pool.size(); ++m) {
    trace::save_coarse(pool[m], *out_dir + "/machine" + std::to_string(m) +
                                    ".coarse");
  }
  const auto stats = trace::analyze_coarse(pool);
  out << "wrote " << pool.size() << " traces (" << *days
      << " day(s) each) to " << *out_dir << "\n"
      << "non-idle " << util::percent(stats.nonidle_fraction, 1)
      << ", mean cpu " << util::percent(stats.mean_cpu_overall, 1) << "\n";
  return 0;
}

int cmd_analyze(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim analyze", "Availability statistics of traces.");
  auto dir = flags.add_string("dir", "", "directory of .coarse traces");
  auto argv = to_argv(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  if (dir->empty()) {
    throw std::invalid_argument("analyze: --dir is required\n" + flags.usage());
  }
  const auto pool = load_trace_dir(*dir);
  const auto stats = trace::analyze_coarse(pool);
  util::Table table({"metric", "value"});
  table.add_row({"traces", std::to_string(pool.size())});
  table.add_row({"samples", std::to_string(stats.sample_count)});
  table.add_row({"non-idle fraction", util::percent(stats.nonidle_fraction, 1)});
  table.add_row({"non-idle below 10% cpu",
                 util::percent(stats.nonidle_below_10pct, 1)});
  table.add_row({"mean cpu overall", util::percent(stats.mean_cpu_overall, 1)});
  table.add_row({"mean cpu idle (l)", util::percent(stats.mean_cpu_idle, 1)});
  table.add_row({"mean cpu non-idle (h)",
                 util::percent(stats.mean_cpu_nonidle, 1)});
  table.add_row({"mean idle episode",
                 util::format("%.0f s", stats.mean_idle_episode)});
  table.add_row({"mean non-idle episode",
                 util::format("%.0f s", stats.mean_nonidle_episode)});
  const auto mem = trace::memory_availability(pool);
  table.add_row({">= 14 MB free",
                 util::percent(
                     trace::fraction_with_at_least(mem.all_kb, 14 * 1024), 1)});
  table.add_row({">= 10 MB free",
                 util::percent(
                     trace::fraction_with_at_least(mem.all_kb, 10 * 1024), 1)});
  out << table.render();
  return 0;
}

int cmd_fit(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim fit",
                    "Fit a 21-level burst table from a fine dispatch trace.");
  auto fine = flags.add_string("fine", "", "fine trace file (required)");
  auto out_path = flags.add_string("out", "", "burst-table output (required)");
  auto window = flags.add_double("window", 2.0, "bucketing window (s)");
  auto argv = to_argv(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  if (fine->empty() || out_path->empty()) {
    throw std::invalid_argument("fit: --fine and --out are required\n" +
                                flags.usage());
  }
  const trace::FineTrace dispatch = trace::load_fine(*fine);
  const auto analysis = workload::analyze_fine_trace(dispatch, *window);
  const workload::BurstTable table = analysis.to_table();
  workload::save_table(table, *out_path);
  std::size_t run_samples = 0;
  for (const auto& level : analysis.levels) run_samples += level.run.size();
  out << "fitted " << *out_path << " from " << dispatch.size()
      << " bursts (" << run_samples << " run samples), trace utilization "
      << util::percent(dispatch.utilization(), 1) << "\n";
  return 0;
}

int cmd_cluster(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim cluster",
                    "Run sequential foreign jobs under a scheduling policy.");
  auto policy_name = flags.add_string("policy", "LL",
                                      "LL, LF, IE, PM, or LL-oracle");
  auto nodes = flags.add_int("nodes", 64, "cluster size");
  auto jobs = flags.add_int("jobs", 128, "foreign jobs");
  auto demand = flags.add_double("demand", 600.0, "CPU-seconds per job");
  auto traces_dir = flags.add_string("traces", "", "trace directory (optional)");
  auto machines = flags.add_int("machines", 32, "synthetic machines if no dir");
  auto days = flags.add_double("days", 1.0, "synthetic trace days");
  auto table_path = flags.add_string("burst-table", "",
                                     "burst table file (default: built-in)");
  auto closed = flags.add_double("closed", 0.0,
                                 "if > 0: closed-system run of this many "
                                 "seconds (throughput mode)");
  auto pause = flags.add_double("pause-time", 60.0, "PM grace period");
  auto job_log = flags.add_string("job-log", "",
                                  "write per-job state transitions as CSV "
                                  "(open mode only)");
  auto metrics_out = flags.add_string(
      "metrics-out", "",
      "write a run manifest (JSON) from an instrumented re-run of the "
      "first replication");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto reps = flags.add_int("reps", 1,
                            "replications (report means with 95% CIs)");
  auto workers = flags.add_int("workers", 0,
                               "worker threads (0 = hardware concurrency)");
  auto json = flags.add_bool("json", false, "emit the sweep as JSON");
  auto queue_name = flags.add_string("queue", "heap", kQueueFlagHelp);
  auto shards = flags.add_int(
      "shards", 0,
      "run on the conservative time-windowed sharded engine with this many "
      "shards (0 = monolithic engine); results are shard-count invariant");
  auto argv = to_argv(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());

  if (*shards < 0) {
    throw std::invalid_argument("cluster: --shards must be >= 0");
  }
  const auto policy = parse_policy(*policy_name);
  if (!policy) {
    throw std::invalid_argument("cluster: unknown policy '" + *policy_name +
                                "' (LL, LF, IE, PM, LL-oracle)");
  }
  const des::QueueBackend queue = parse_queue_flag("cluster", *queue_name);
  const auto pool = pool_from_flags(*traces_dir, *machines, *days, *seed + 1);
  const workload::BurstTable table = table_path->empty()
                                         ? workload::default_burst_table()
                                         : workload::load_table(*table_path);

  cluster::ExperimentConfig cfg;
  cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
  cfg.cluster.queue = queue;
  cfg.cluster.policy = *policy;
  cfg.cluster.policy_params.pause_time = *pause;
  cfg.workload =
      cluster::WorkloadSpec{static_cast<std::size_t>(*jobs), *demand};

  // One-cell sweep on the engine: the same path `llsim bench` uses, so
  // replication seeding, pooled execution and CI summaries come for free.
  exp::ExperimentSpec spec;
  spec.name = "cluster";
  spec.seed = *seed;
  spec.replications = static_cast<std::size_t>(*reps);
  spec.axes = {"policy"};
  const double closed_duration = *closed;
  const auto shard_count = static_cast<std::size_t>(*shards);
  // First-replication shard accounting for the report table (written once,
  // keyed on the engine-derived seed; replications of one cell run
  // sequentially, matching the mutable-cfg pattern below).
  struct ShardRunInfo {
    shard::ShardStats stats;
    double window = 0.0;
  };
  auto shard_info = std::make_shared<ShardRunInfo>();
  const std::uint64_t first_rep_seed = exp::replication_seed(*seed, 0, 0);
  spec.add_cell(
      {{"policy", std::string(core::to_string(*policy))}},
      [cfg, pool, &table, closed_duration, shard_count, shard_info,
       first_rep_seed](std::uint64_t s) mutable {
        cfg.seed = s;
        if (shard_count > 0) {
          shard::RunHooks hooks;
          hooks.on_finish = [&](shard::ShardedClusterSim& sim) {
            if (s != first_rep_seed) return;
            shard_info->stats = sim.stats();
            shard_info->window = sim.window_length();
          };
          if (closed_duration > 0.0) {
            return exp::closed_metrics(
                shard::run_closed(cfg, shard_count, *pool, table,
                                  closed_duration, nullptr, &hooks));
          }
          return exp::open_metrics(shard::run_open(
              cfg, shard_count, *pool, table, nullptr, nullptr, &hooks));
        }
        if (closed_duration > 0.0) {
          return exp::closed_metrics(
              cluster::run_closed(cfg, *pool, table, closed_duration));
        }
        return exp::open_metrics(cluster::run_open(cfg, *pool, table));
      });
  exp::EngineOptions options;
  options.jobs = static_cast<std::size_t>(*workers);
  const exp::SweepResult sweep = exp::run_sweep(spec, options);
  const exp::CellResult& cell = sweep.cells.front();
  const std::size_t n = spec.replications;
  const auto mean = [&cell](std::string_view metric) {
    const auto* ci = cell.summary(metric);
    return ci ? ci->mean : 0.0;
  };

  if (*closed <= 0.0 && !job_log->empty()) {
    // The log is a per-job debugging feed, so it covers one run: the first
    // replication, re-run with its engine-derived seed.
    cfg.seed = exp::replication_seed(*seed, 0, 0);
    cluster::JobStore job_records;
    if (shard_count > 0) {
      (void)shard::run_open(cfg, shard_count, *pool, table,
                            &util::TaskRunner::shared(), &job_records);
    } else {
      (void)cluster::run_open(cfg, *pool, table, &job_records);
    }
    cluster::write_job_log(job_records, *job_log);
    out << "wrote job log to " << *job_log << "\n";
  }
  if (!metrics_out->empty()) {
    // Same pattern as --job-log: the manifest documents one concrete run,
    // so it re-runs the first replication with its engine-derived seed.
    cfg.seed = exp::replication_seed(*seed, 0, 0);
    obs::RunManifest manifest;
    manifest.tool = "llsim cluster";
    manifest.version = obs::current_git_describe();
    manifest.seed = cfg.seed;
    manifest.config = {
        {"policy", std::string(core::to_string(*policy))},
        {"nodes", std::to_string(*nodes)},
        {"jobs", std::to_string(*jobs)},
        {"demand", util::format("%g", *demand)},
        {"closed", util::format("%g", *closed)},
        {"master_seed", std::to_string(*seed)},
    };
    if (shard_count > 0) {
      manifest.config.emplace_back("shards", std::to_string(shard_count));
      ShardObsRun obs_run = run_sharded_instrumented(cfg, shard_count, *pool,
                                                     table, closed_duration);
      obs::ShardSection section;
      section.count = obs_run.stats.shards;
      section.windows = obs_run.stats.windows;
      section.mailbox_sent = obs_run.stats.mailbox_sent;
      section.mailbox_delivered = obs_run.stats.mailbox_delivered;
      section.max_barrier_wait_ns = obs_run.stats.max_barrier_wait_ns;
      manifest.shards = section;
      manifest.metrics = std::move(obs_run.metrics);
    } else {
      ClusterObsRun obs_run = run_cluster_instrumented(
          cfg, *pool, table, closed_duration, /*timeline=*/nullptr);
      manifest.metrics = std::move(obs_run.metrics);
      manifest.profile = std::move(obs_run.profile);
    }
    write_manifest_file(manifest, *metrics_out);
    out << "wrote run manifest to " << *metrics_out << "\n";
  }
  if (*json) {
    exp::write_json(sweep, out);
    return 0;
  }

  util::Table report({"metric", "value"});
  report.add_row({"policy", std::string(core::to_string(*policy))});
  if (shard_count > 0) {
    report.add_row({"shards", std::to_string(shard_count)});
    report.add_row({"window (s)", util::format("%g", shard_info->window)});
    report.add_row(
        {"windows run", std::to_string(shard_info->stats.windows)});
    report.add_row({"mailbox sent / delivered",
                    util::format("%llu / %llu",
                                 static_cast<unsigned long long>(
                                     shard_info->stats.mailbox_sent),
                                 static_cast<unsigned long long>(
                                     shard_info->stats.mailbox_delivered))});
    report.add_row({"max barrier wait (us)",
                    util::format("%.1f",
                                 static_cast<double>(
                                     shard_info->stats.max_barrier_wait_ns) /
                                     1e3)});
  }
  if (n > 1) report.add_row({"replications", std::to_string(n)});
  if (*closed > 0.0) {
    report.add_row({"mode", util::format("closed (%.0f s)", *closed)});
    std::string throughput = util::fixed(mean("throughput"), 2);
    if (n > 1) {
      throughput +=
          util::format(" ± %.2f", cell.summary("throughput")->half_width);
    }
    report.add_row({"throughput (cpu-s/s)", throughput});
    report.add_row({"completions", count_metric(mean("completed"), n)});
    report.add_row({"migrations", count_metric(mean("migrations"), n)});
    report.add_row({"foreground delay", util::percent(mean("fg_delay"), 2)});
  } else {
    report.add_row({"mode", "open (family)"});
    std::string avg_job = util::fixed(mean("avg_job"), 1);
    if (n > 1) {
      avg_job += util::format(" ± %.1f", cell.summary("avg_job")->half_width);
    }
    report.add_row({"avg job (s)", avg_job});
    report.add_row({"p50 / p90 (s)",
                    util::format("%.1f / %.1f", mean("p50"), mean("p90"))});
    report.add_row({"variation", util::percent(mean("variation"), 1)});
    report.add_row({"family time (s)", util::fixed(mean("family"), 1)});
    report.add_row({"migrations", count_metric(mean("migrations"), n)});
    report.add_row({"foreground delay", util::percent(mean("fg_delay"), 2)});
    report.add_row({"avg queued/running/lingering (s)",
                    util::format("%.0f / %.0f / %.0f", mean("queued"),
                                 mean("running"), mean("lingering"))});
  }
  out << report.render();
  return 0;
}

int cmd_parallel(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim parallel",
                    "Run parallel jobs under a width policy.");
  auto policy_name = flags.add_string(
      "policy", "hybrid", "reconfigure, fixed-linger, or hybrid");
  auto nodes = flags.add_int("nodes", 32, "cluster size");
  auto jobs = flags.add_int("jobs", 4, "jobs held in the system");
  auto work = flags.add_double("work", 300.0, "cpu-seconds per job");
  auto granularity = flags.add_double("granularity", 0.5,
                                      "sync granularity (s)");
  auto duration = flags.add_double("duration", 3600.0, "simulated seconds");
  auto traces_dir = flags.add_string("traces", "", "trace directory (optional)");
  auto machines = flags.add_int("machines", 32, "synthetic machines if no dir");
  auto days = flags.add_double("days", 1.0, "synthetic trace days");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto reps = flags.add_int("reps", 1,
                            "replications (report means with 95% CIs)");
  auto workers = flags.add_int("workers", 0,
                               "worker threads (0 = hardware concurrency)");
  auto metrics_out = flags.add_string(
      "metrics-out", "",
      "write a run manifest (JSON) from an instrumented re-run of the "
      "first replication");
  auto json = flags.add_bool("json", false, "emit the sweep as JSON");
  auto queue_name = flags.add_string("queue", "heap", kQueueFlagHelp);
  auto argv = to_argv(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());

  const auto policy = parse_width_policy(*policy_name);
  if (!policy) {
    throw std::invalid_argument(
        "parallel: unknown policy '" + *policy_name +
        "' (reconfigure, fixed-linger, hybrid)");
  }
  const auto pool = pool_from_flags(*traces_dir, *machines, *days, *seed + 1);

  exp::ParallelCellSpec cell_spec;
  cell_spec.cluster.node_count = static_cast<std::size_t>(*nodes);
  cell_spec.cluster.queue = parse_queue_flag("parallel", *queue_name);
  cell_spec.cluster.policy = *policy;
  cell_spec.cluster.fixed_width = cell_spec.cluster.node_count;
  cell_spec.job.total_work = *work;
  cell_spec.job.bsp.granularity = *granularity;
  cell_spec.job.max_width = cell_spec.cluster.node_count;
  cell_spec.jobs_in_system = static_cast<std::size_t>(*jobs);
  cell_spec.duration = *duration;

  exp::ExperimentSpec spec;
  spec.name = "parallel";
  spec.seed = *seed;
  spec.replications = static_cast<std::size_t>(*reps);
  spec.axes = {"policy"};
  spec.add_cell({{"policy", std::string(parallel::to_string(*policy))}},
                [cell_spec, pool](std::uint64_t s) {
                  return exp::parallel_cell(cell_spec, pool,
                                            workload::default_burst_table(),
                                            s);
                });
  exp::EngineOptions options;
  options.jobs = static_cast<std::size_t>(*workers);
  const exp::SweepResult sweep = exp::run_sweep(spec, options);
  if (!metrics_out->empty()) {
    obs::MetricRegistry registry;
    obs::EventLoopProfiler profiler;
    profiler.name_tag(parallel::ParallelClusterSim::kTagPhase, "phase");
    profiler.name_tag(parallel::ParallelClusterSim::kTagRetry, "retry");
    obs::RunManifest manifest;
    exp::ParallelRunHooks hooks;
    hooks.on_start = [&](parallel::ParallelClusterSim& sim) {
      sim.set_metrics(&registry);
      sim.set_sim_observer(&profiler);
    };
    hooks.on_finish = [&](parallel::ParallelClusterSim& sim) {
      manifest.profile =
          profiler.snapshot(sim.engine(), /*require_conserved=*/true);
      manifest.metrics = registry.snapshot(sim.now());
      sim.set_sim_observer(nullptr);
      sim.set_metrics(nullptr);
    };
    const std::uint64_t rep_seed = exp::replication_seed(*seed, 0, 0);
    (void)exp::parallel_cell(cell_spec, pool,
                             workload::default_burst_table(), rep_seed,
                             &hooks);
    manifest.tool = "llsim parallel";
    manifest.version = obs::current_git_describe();
    manifest.seed = rep_seed;
    manifest.config = {
        {"policy", std::string(parallel::to_string(*policy))},
        {"nodes", std::to_string(*nodes)},
        {"jobs", std::to_string(*jobs)},
        {"work", util::format("%g", *work)},
        {"granularity", util::format("%g", *granularity)},
        {"duration", util::format("%g", *duration)},
        {"master_seed", std::to_string(*seed)},
    };
    write_manifest_file(manifest, *metrics_out);
    out << "wrote run manifest to " << *metrics_out << "\n";
  }
  if (*json) {
    exp::write_json(sweep, out);
    return 0;
  }
  const exp::CellResult& cell = sweep.cells.front();
  const std::size_t n = spec.replications;
  const auto mean = [&cell](std::string_view metric) {
    const auto* ci = cell.summary(metric);
    return ci ? ci->mean : 0.0;
  };

  util::Table report({"metric", "value"});
  report.add_row({"policy", std::string(parallel::to_string(*policy))});
  if (n > 1) report.add_row({"replications", std::to_string(n)});
  std::string delivered = util::fixed(mean("work_per_s"), 2);
  if (n > 1) {
    delivered +=
        util::format(" ± %.2f", cell.summary("work_per_s")->half_width);
  }
  report.add_row({"work delivered (cpu-s/s)", delivered});
  report.add_row({"jobs completed", count_metric(mean("completed"), n)});
  if (mean("completed") > 0.0) {
    report.add_row({"mean turnaround (s)",
                    util::fixed(mean("mean_turnaround"), 1)});
    report.add_row({"mean width", util::fixed(mean("mean_width"), 1)});
  }
  out << report.render();
  return 0;
}

int cmd_profile(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags(
      "llsim profile",
      "Run one instrumented cluster simulation and report where it goes: "
      "per-tag event-loop profile, sim-time metrics, optional timeline.");
  auto policy_name = flags.add_string("policy", "LL",
                                      "LL, LF, IE, PM, or LL-oracle");
  auto nodes = flags.add_int("nodes", 64, "cluster size");
  auto jobs = flags.add_int("jobs", 128, "foreign jobs");
  auto demand = flags.add_double("demand", 600.0, "CPU-seconds per job");
  auto closed = flags.add_double("closed", 0.0,
                                 "if > 0: closed-system run of this many "
                                 "seconds");
  auto traces_dir = flags.add_string("traces", "", "trace directory (optional)");
  auto machines = flags.add_int("machines", 32, "synthetic machines if no dir");
  auto days = flags.add_double("days", 1.0, "synthetic trace days");
  auto timeline_cap = flags.add_int(
      "timeline", 0,
      "if > 0: record the last N job/node state transitions and print them");
  auto metrics_out = flags.add_string("metrics-out", "",
                                      "also write a run manifest (JSON)");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto json = flags.add_bool("json", false,
                             "emit the manifest JSON to stdout instead of "
                             "tables");
  auto queue_name = flags.add_string("queue", "heap", kQueueFlagHelp);
  auto argv = to_argv(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());

  const auto policy = parse_policy(*policy_name);
  if (!policy) {
    throw std::invalid_argument("profile: unknown policy '" + *policy_name +
                                "' (LL, LF, IE, PM, LL-oracle)");
  }
  const auto pool = pool_from_flags(*traces_dir, *machines, *days, *seed + 1);

  cluster::ExperimentConfig cfg;
  cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
  cfg.cluster.queue = parse_queue_flag("profile", *queue_name);
  cfg.cluster.policy = *policy;
  cfg.workload =
      cluster::WorkloadSpec{static_cast<std::size_t>(*jobs), *demand};
  cfg.seed = *seed;

  std::optional<obs::Timeline> timeline;
  if (*timeline_cap > 0) {
    timeline.emplace(static_cast<std::size_t>(*timeline_cap));
  }
  const auto wall_start = std::chrono::steady_clock::now();
  ClusterObsRun run = run_cluster_instrumented(
      cfg, *pool, workload::default_burst_table(), *closed,
      timeline ? &*timeline : nullptr);
  const double run_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  obs::RunManifest manifest;
  manifest.tool = "llsim profile";
  manifest.version = obs::current_git_describe();
  manifest.seed = *seed;
  manifest.config = {
      {"policy", std::string(core::to_string(*policy))},
      {"nodes", std::to_string(*nodes)},
      {"jobs", std::to_string(*jobs)},
      {"demand", util::format("%g", *demand)},
      {"closed", util::format("%g", *closed)},
  };
  manifest.metrics = run.metrics;
  manifest.profile = run.profile;
  if (timeline) {
    obs::TraceStats trace_stats;
    trace_stats.timeline_recorded = timeline->total_recorded();
    trace_stats.timeline_dropped = timeline->dropped();
    manifest.trace = trace_stats;
  }
  if (!metrics_out->empty()) {
    write_manifest_file(manifest, *metrics_out);
  }
  if (*json) {
    obs::write_manifest_json(manifest, out);
    return 0;
  }

  out << "event-loop profile (" << *policy_name << ", " << *nodes
      << " nodes, " << *jobs << " jobs"
      << (*closed > 0.0 ? util::format(", closed %.0f s", *closed)
                        : std::string(", open"))
      << "):\n"
      << run.profile_table << "\n";
  // Wall-clock bracket of the whole run vs the callback share the profiler
  // attributed — the difference is engine/queue overhead plus setup.
  util::Table wall_table({"wall clock", "value"});
  wall_table.add_row({"run total (ms)", util::format("%.2f", run_wall * 1e3)});
  wall_table.add_row({"event callbacks (ms)",
                      util::format("%.2f", run.profile.total_wall_seconds *
                                               1e3)});
  wall_table.add_row(
      {"callback share",
       util::percent(run_wall > 0.0
                         ? run.profile.total_wall_seconds / run_wall
                         : 0.0,
                     1)});
  wall_table.add_row(
      {"events per wall second",
       util::format("%.0f",
                    run_wall > 0.0
                        ? static_cast<double>(run.profile.total_fired) /
                              run_wall
                        : 0.0)});
  out << wall_table.render() << "\n";
  util::Table metrics_table({"metric", "kind", "value", "mean"});
  for (const obs::MetricSample& s : run.metrics) {
    metrics_table.add_row(
        {s.name, std::string(obs::to_string(s.kind)),
         util::format("%.6g", s.value),
         s.kind == obs::MetricKind::kTimeWeighted ? util::format("%.6g", s.mean)
                                                  : std::string()});
  }
  out << metrics_table.render();
  if (timeline) {
    out << "\ntimeline (last " << timeline->size() << " of "
        << timeline->total_recorded() << " transitions):\n";
    timeline->write_text(out);
  }
  if (!metrics_out->empty()) {
    out << "\nwrote run manifest to " << *metrics_out << "\n";
  }
  return 0;
}

int cmd_trace(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags(
      "llsim trace",
      "Capture a flight-recorder trace as Chrome trace-event JSON "
      "(loadable in Perfetto / chrome://tracing; summarize with lltrace). "
      "With --scenario, traces one pinned verify scenario and reports its "
      "digest; otherwise runs an instrumented cluster sweep covering all "
      "four instrumented layers (DES fires, runner, cluster, exp cells).");
  auto scenario = flags.add_string(
      "scenario", "", "pinned verify scenario to trace (llverify --list)");
  auto out_path = flags.add_string("out", "",
                                   "trace JSON output path (required)");
  auto ring = flags.add_int("ring", 1 << 16,
                            "per-thread ring capacity in records "
                            "(flight recorder: oldest overwritten)");
  auto policy_name = flags.add_string("policy", "LL",
                                      "LL, LF, IE, PM, or LL-oracle");
  auto nodes = flags.add_int("nodes", 16, "cluster size (sweep mode)");
  auto jobs = flags.add_int("jobs", 32, "foreign jobs (sweep mode)");
  auto demand = flags.add_double("demand", 600.0, "CPU-seconds per job");
  auto machines = flags.add_int("machines", 16, "synthetic trace machines");
  auto days = flags.add_double("days", 1.0, "synthetic trace days");
  auto reps = flags.add_int("reps", 2, "replications (sweep mode)");
  auto workers = flags.add_int("workers", 2,
                               "worker threads (0 = hardware concurrency)");
  auto seed = flags.add_uint64("seed", 42, "RNG seed (sweep mode)");
  auto metrics_out = flags.add_string(
      "metrics-out", "", "also write a run manifest with trace accounting");
  auto queue_name = flags.add_string("queue", "heap", kQueueFlagHelp);
  auto shards = flags.add_int(
      "shards", 0,
      "sweep mode: trace the sharded engine with this many shards "
      "(shard:<k> spans + shard.barrier instants; 0 = monolithic)");
  auto argv = to_argv(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  if (out_path->empty()) {
    throw std::invalid_argument("trace: --out is required\n" + flags.usage());
  }
  if (*shards < 0) {
    throw std::invalid_argument("trace: --shards must be >= 0");
  }
  if (*ring < 2) {
    throw std::invalid_argument("trace: --ring must be >= 2");
  }

  obs::Tracer tracer(static_cast<std::size_t>(*ring));
  std::vector<std::pair<std::string, std::string>> config;

  if (!scenario->empty()) {
    // Scenario mode: the pinned verify scenario with the tracer's observer
    // chained in front of the digest/invariant chain — the digest printed
    // here must equal the committed golden (tracing is observational only).
    const verify::Scenario* sc = verify::find_scenario(*scenario);
    if (!sc) {
      throw std::invalid_argument("trace: unknown scenario '" + *scenario +
                                  "' (see llverify --list)");
    }
    verify::ScenarioOptions options;
    options.queue = parse_queue_flag("trace", *queue_name);
    std::vector<std::unique_ptr<obs::TracingObserver>> observers;
    options.wrap_observer = [&](des::SimObserver* inner) {
      observers.push_back(
          std::make_unique<obs::TracingObserver>(&tracer, inner));
      return observers.back().get();
    };
    options.cluster_hook = [&](cluster::ClusterSim& sim) {
      sim.set_tracer(&tracer);
    };
    const verify::ScenarioResult result = sc->run(options);
    config = {{"scenario", *scenario},
              {"ring", std::to_string(*ring)}};
    out << "scenario " << sc->name << ": digest " << result.digest.hex()
        << ", " << result.events << " events, " << result.checks
        << " invariant checks\n";
  } else {
    // Sweep mode: a one-cell cluster sweep on the experiment engine with
    // every instrumented layer attached — per-tag fire spans chained after
    // the event-loop profiler, cluster virtual-time spans, per-cell spans,
    // and the work-stealing runner's batch/steal/suspend spans.
    const auto policy = parse_policy(*policy_name);
    if (!policy) {
      throw std::invalid_argument("trace: unknown policy '" + *policy_name +
                                  "' (LL, LF, IE, PM, LL-oracle)");
    }
    const auto pool = pool_from_flags("", *machines, *days, *seed + 1);
    const workload::BurstTable& table = workload::default_burst_table();

    cluster::ExperimentConfig cfg;
    cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
    cfg.cluster.queue = parse_queue_flag("trace", *queue_name);
    cfg.cluster.policy = *policy;
    cfg.workload =
        cluster::WorkloadSpec{static_cast<std::size_t>(*jobs), *demand};

    exp::ExperimentSpec spec;
    spec.name = "trace";
    spec.seed = *seed;
    spec.replications = static_cast<std::size_t>(*reps);
    spec.axes = {"policy"};
    const auto trace_shards = static_cast<std::size_t>(*shards);
    spec.add_cell(
        {{"policy", std::string(core::to_string(*policy))}},
        [cfg, pool, &table, &tracer, trace_shards](std::uint64_t s) mutable {
          cfg.seed = s;
          if (trace_shards > 0) {
            // Sharded engine: shard:<k> wall spans per window advance plus
            // shard.barrier instants (arg = imbalance wait ns).
            shard::RunHooks hooks;
            hooks.on_start = [&](shard::ShardedClusterSim& sim) {
              sim.set_tracer(&tracer);
            };
            hooks.on_finish = [&](shard::ShardedClusterSim& sim) {
              sim.set_tracer(nullptr);
            };
            return exp::open_metrics(shard::run_open(
                cfg, trace_shards, *pool, table, nullptr, nullptr, &hooks));
          }
          // Per-replication observer chain, thread-confined to this task:
          // tracer spans in front, profiler behind (per the obs layering),
          // both detached before the simulator dies.
          obs::EventLoopProfiler profiler;
          obs::TracingObserver observer(&tracer, &profiler);
          const auto name_tags = [&](auto& target) {
            target.name_tag(cluster::ClusterSim::kTagTick, "tick");
            target.name_tag(cluster::ClusterSim::kTagCompletion, "completion");
            target.name_tag(cluster::ClusterSim::kTagRecheck, "recheck");
            target.name_tag(cluster::ClusterSim::kTagMigration, "migration");
            target.name_tag(cluster::ClusterSim::kTagFault, "fault");
            target.name_tag(cluster::ClusterSim::kTagCheckpoint, "checkpoint");
          };
          name_tags(profiler);
          name_tags(observer);
          cluster::RunHooks hooks;
          hooks.on_start = [&](cluster::ClusterSim& sim) {
            sim.set_tracer(&tracer);
            sim.set_sim_observer(&observer);
          };
          hooks.on_finish = [&](cluster::ClusterSim& sim) {
            sim.set_sim_observer(nullptr);
            sim.set_tracer(nullptr);
          };
          return exp::open_metrics(
              cluster::run_open(cfg, *pool, table, nullptr, &hooks));
        });
    exp::EngineOptions options;
    options.jobs = static_cast<std::size_t>(*workers);
    options.tracer = &tracer;
    // run_sweep destroys its local runner before returning, so the tracer
    // is quiescent here and safe to export.
    (void)exp::run_sweep(spec, options);
    config = {
        {"policy", std::string(core::to_string(*policy))},
        {"nodes", std::to_string(*nodes)},
        {"jobs", std::to_string(*jobs)},
        {"reps", std::to_string(*reps)},
        {"workers", std::to_string(*workers)},
        {"ring", std::to_string(*ring)},
        {"master_seed", std::to_string(*seed)},
    };
    if (*shards > 0) {
      config.emplace_back("shards", std::to_string(*shards));
    }
  }

  const obs::Tracer::Snapshot snap = tracer.snapshot();
  {
    std::ofstream file(*out_path);
    if (!file) {
      throw std::runtime_error("cannot open " + *out_path + " for writing");
    }
    obs::Tracer::write_chrome_json(snap, file);
  }
  out << "wrote " << (snap.recorded - snap.dropped) << " of " << snap.recorded
      << " records (" << snap.dropped << " dropped, " << snap.threads
      << " thread ring(s)) to " << *out_path << "\n";

  if (!metrics_out->empty()) {
    obs::RunManifest manifest;
    manifest.tool = "llsim trace";
    manifest.version = obs::current_git_describe();
    manifest.seed = scenario->empty() ? *seed : verify::kGoldenSeed;
    manifest.config = std::move(config);
    obs::TraceStats trace_stats;
    trace_stats.tracer_recorded = snap.recorded;
    trace_stats.tracer_dropped = snap.dropped;
    manifest.trace = trace_stats;
    write_manifest_file(manifest, *metrics_out);
    out << "wrote run manifest to " << *metrics_out << "\n";
  }
  return 0;
}

int cmd_faults(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim faults",
                    "Compile a fault plan, print its pre-drawn timeline, and "
                    "run one faulty cluster scenario.");
  auto policy_name = flags.add_string("policy", "LL",
                                      "LL, LF, IE, PM, or LL-oracle");
  auto nodes = flags.add_int("nodes", 16, "cluster size");
  auto jobs = flags.add_int("jobs", 32, "foreign jobs");
  auto demand = flags.add_double("demand", 600.0, "CPU-seconds per job");
  auto mtbf = flags.add_double(
      "mtbf", 1800.0, "per-node mean time between crashes (s, 0 = none)");
  auto downtime = flags.add_double("downtime", 120.0,
                                   "mean crash downtime (s)");
  auto drop = flags.add_double("drop", 0.05,
                               "migration-link drop probability");
  auto checkpoint = flags.add_double("checkpoint", 600.0,
                                     "checkpoint interval (s, 0 = off)");
  auto storm_every = flags.add_double(
      "storm-every", 0.0, "mean s between reclamation storms (0 = off)");
  auto pressure_every = flags.add_double(
      "pressure-every", 0.0,
      "mean s between memory-pressure spikes (0 = off)");
  auto closed = flags.add_double("closed", 0.0,
                                 "if > 0: closed-system run of this many "
                                 "seconds (throughput mode)");
  auto traces_dir = flags.add_string("traces", "", "trace directory (optional)");
  auto machines = flags.add_int("machines", 16, "synthetic machines if no dir");
  auto days = flags.add_double("days", 1.0, "synthetic trace days");
  auto metrics_out = flags.add_string("metrics-out", "",
                                      "also write a run manifest (JSON)");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto queue_name = flags.add_string("queue", "heap", kQueueFlagHelp);
  auto argv = to_argv(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());

  const auto policy = parse_policy(*policy_name);
  if (!policy) {
    throw std::invalid_argument("faults: unknown policy '" + *policy_name +
                                "' (LL, LF, IE, PM, LL-oracle)");
  }
  const auto pool = pool_from_flags(*traces_dir, *machines, *days, *seed + 1);

  cluster::ExperimentConfig cfg;
  cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
  cfg.cluster.queue = parse_queue_flag("faults", *queue_name);
  cfg.cluster.policy = *policy;
  cfg.workload =
      cluster::WorkloadSpec{static_cast<std::size_t>(*jobs), *demand};
  cfg.seed = *seed;
  if (*mtbf > 0.0) {
    cfg.cluster.faults.crash.arrivals = fault::ArrivalProcess::exponential(
        static_cast<double>(cfg.cluster.node_count) / *mtbf);
    cfg.cluster.faults.crash.mean_downtime = *downtime;
  }
  cfg.cluster.faults.link.drop_probability = *drop;
  if (*storm_every > 0.0) {
    cfg.cluster.faults.storm.arrivals =
        fault::ArrivalProcess::exponential(1.0 / *storm_every);
  }
  if (*pressure_every > 0.0) {
    cfg.cluster.faults.pressure.arrivals =
        fault::ArrivalProcess::exponential(1.0 / *pressure_every);
  }
  cfg.cluster.checkpoint.interval = *checkpoint;

  obs::MetricRegistry registry;
  std::vector<obs::MetricSample> metrics;
  cluster::RunHooks hooks;
  hooks.on_start = [&](cluster::ClusterSim& sim) {
    if (cfg.cluster.faults.empty()) {
      out << "fault plan is empty — this is the fault-free baseline run\n\n";
    } else {
      out << "compiled fault timeline (seed " << *seed << "):\n";
      sim.fault_schedule().write_timeline(out);
      out << "\n";
    }
    sim.set_metrics(&registry);
  };
  hooks.on_finish = [&](cluster::ClusterSim& sim) {
    metrics = registry.snapshot(sim.now());
    sim.set_metrics(nullptr);
  };
  const cluster::ClusterReport report =
      *closed > 0.0
          ? cluster::run_closed(cfg, *pool, workload::default_burst_table(),
                                *closed, &hooks)
          : cluster::run_open(cfg, *pool, workload::default_burst_table(),
                              nullptr, &hooks);

  util::Table table({"metric", "value"});
  table.add_row({"policy", std::string(core::to_string(*policy))});
  table.add_row({"mode", *closed > 0.0
                             ? util::format("closed (%.0f s)", *closed)
                             : std::string("open (family)")});
  if (*closed > 0.0) {
    table.add_row({"throughput (cpu-s/s)", util::fixed(report.throughput, 2)});
  } else {
    table.add_row({"avg job (s)", util::fixed(report.avg_completion, 1)});
    table.add_row({"family time (s)", util::fixed(report.family_time, 1)});
  }
  table.add_row({"crashes", std::to_string(report.crashes)});
  table.add_row({"restarts (re-queued jobs)", std::to_string(report.restarts)});
  table.add_row({"checkpoints taken", std::to_string(report.checkpoints)});
  table.add_row({"work lost (cpu-s)", util::fixed(report.work_lost, 1)});
  table.add_row({"goodput", util::percent(report.goodput, 2)});
  table.add_row({"migrations", std::to_string(report.migrations)});
  table.add_row({"foreground delay", util::percent(report.foreground_delay, 2)});
  out << table.render();

  if (!metrics_out->empty()) {
    obs::RunManifest manifest;
    manifest.tool = "llsim faults";
    manifest.version = obs::current_git_describe();
    manifest.seed = *seed;
    manifest.config = {
        {"policy", std::string(core::to_string(*policy))},
        {"nodes", std::to_string(*nodes)},
        {"jobs", std::to_string(*jobs)},
        {"demand", util::format("%g", *demand)},
        {"mtbf", util::format("%g", *mtbf)},
        {"downtime", util::format("%g", *downtime)},
        {"drop", util::format("%g", *drop)},
        {"checkpoint", util::format("%g", *checkpoint)},
        {"storm_every", util::format("%g", *storm_every)},
        {"pressure_every", util::format("%g", *pressure_every)},
        {"closed", util::format("%g", *closed)},
    };
    manifest.metrics = std::move(metrics);
    manifest.goodput = report.goodput;
    manifest.work_lost = report.work_lost;
    write_manifest_file(manifest, *metrics_out);
    out << "\nwrote run manifest to " << *metrics_out << "\n";
  }
  return 0;
}

// ---- serve ----------------------------------------------------------------

/// Self-pipe for SIGINT/SIGTERM: the handler only write()s (async-signal-
/// safe); the main thread blocks on the read end and runs the graceful
/// drain itself.
int g_serve_signal_fd = -1;

void serve_signal_handler(int /*sig*/) {
  const char byte = 1;
  if (g_serve_signal_fd >= 0) {
    [[maybe_unused]] ssize_t n = ::write(g_serve_signal_fd, &byte, 1);
  }
}

int cmd_serve(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim serve",
                    "Serve sweep requests as newline-delimited JSON over "
                    "TCP (see DESIGN.md §13; drive it with tools/llload).");
  auto host = flags.add_string("host", "127.0.0.1", "bind address");
  auto port = flags.add_int("port", 0, "TCP port (0 = pick an ephemeral one)");
  auto port_file = flags.add_string(
      "port-file", "", "write the bound port to this file (for scripts)");
  auto queue_depth = flags.add_int("queue-depth", 256,
                                   "admission queue bound (full = reject "
                                   "with retry_after_ms)");
  auto batch_max = flags.add_int("batch-max", 32,
                                 "max requests per dispatcher batch");
  auto cache_entries = flags.add_int("cache-entries", 256,
                                     "result cache capacity (LRU beyond)");
  auto max_request = flags.add_int("max-request", 65536,
                                   "max request line length in bytes");
  auto retry_ms = flags.add_int("retry-after-ms", 25,
                                "backpressure hint sent on rejection");
  auto workers = flags.add_int("workers", 0,
                               "dedicated runner threads (0 = the shared "
                               "hardware-sized pool)");
  auto argv = to_argv(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());

  std::unique_ptr<util::TaskRunner> own_runner;
  if (*workers > 0) {
    own_runner = std::make_unique<util::TaskRunner>(
        static_cast<std::size_t>(*workers));
  }
  serve::ServerConfig config;
  config.host = *host;
  config.port = static_cast<int>(*port);
  config.queue_capacity = static_cast<std::size_t>(*queue_depth);
  config.batch_max = static_cast<std::size_t>(*batch_max);
  config.cache_capacity = static_cast<std::size_t>(*cache_entries);
  config.max_request_bytes = static_cast<std::size_t>(*max_request);
  config.retry_after_ms = static_cast<int>(*retry_ms);
  config.runner = own_runner.get();
  serve::Server server(config);
  server.start();

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error("serve: pipe() failed");
  }
  g_serve_signal_fd = pipe_fds[1];
  struct sigaction action {};
  action.sa_handler = serve_signal_handler;
  sigemptyset(&action.sa_mask);
  struct sigaction old_int {}, old_term {};
  ::sigaction(SIGINT, &action, &old_int);
  ::sigaction(SIGTERM, &action, &old_term);

  out << "llsim serve: listening on " << config.host << ":" << server.port()
      << "\n";
  out.flush();
  if (!port_file->empty()) {
    std::ofstream f(*port_file);
    f << server.port() << "\n";
  }

  char byte = 0;
  while (::read(pipe_fds[0], &byte, 1) < 0 && errno == EINTR) {
  }
  out << "llsim serve: draining\n";
  out.flush();
  server.shutdown();

  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGTERM, &old_term, nullptr);
  g_serve_signal_fd = -1;
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);

  out << "llsim serve: final stats " << server.stats_json() << "\n";
  return 0;
}

}  // namespace

std::optional<core::PolicyKind> parse_policy(std::string_view name) {
  if (name == "LL") return core::PolicyKind::LingerLonger;
  if (name == "LF") return core::PolicyKind::LingerForever;
  if (name == "IE") return core::PolicyKind::ImmediateEviction;
  if (name == "PM") return core::PolicyKind::PauseAndMigrate;
  if (name == "LL-oracle") return core::PolicyKind::OracleLinger;
  return std::nullopt;
}

std::optional<parallel::WidthPolicy> parse_width_policy(std::string_view name) {
  if (name == "reconfigure") return parallel::WidthPolicy::Reconfigure;
  if (name == "fixed-linger") return parallel::WidthPolicy::FixedLinger;
  if (name == "hybrid") return parallel::WidthPolicy::Hybrid;
  return std::nullopt;
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  try {
    if (args.empty() || args[0] == "--help" || args[0] == "-h" ||
        args[0] == "help") {
      out << kUsage;
      return args.empty() ? 2 : 0;
    }
    const std::string& cmd = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (cmd == "traces") return cmd_traces(rest, out);
    if (cmd == "analyze") return cmd_analyze(rest, out);
    if (cmd == "fit") return cmd_fit(rest, out);
    if (cmd == "cluster") return cmd_cluster(rest, out);
    if (cmd == "parallel") return cmd_parallel(rest, out);
    if (cmd == "profile") return cmd_profile(rest, out);
    if (cmd == "trace") return cmd_trace(rest, out);
    if (cmd == "faults") return cmd_faults(rest, out);
    if (cmd == "serve") return cmd_serve(rest, out);
    if (cmd == "bench") {
      serve::register_serve_benches();
      return exp::run_bench_cli(rest, out, err);
    }
    err << "llsim: unknown subcommand '" << cmd << "'\n\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    err << "llsim: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace ll::cli
