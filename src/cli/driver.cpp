#include "cli/driver.hpp"

#include <filesystem>
#include <ostream>
#include <string>

#include "cluster/experiment.hpp"
#include "trace/coarse_analysis.hpp"
#include "trace/coarse_generator.hpp"
#include "trace/trace_io.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/fit.hpp"
#include "workload/table_io.hpp"

namespace ll::cli {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kUsage =
    "llsim — Linger-Longer cluster-scheduling simulator\n"
    "\n"
    "Usage: llsim <subcommand> [flags]   (each subcommand accepts --help)\n"
    "\n"
    "Subcommands:\n"
    "  traces    synthesize workstation trace files\n"
    "  analyze   availability/memory statistics of a trace directory\n"
    "  fit       fit a 21-level burst table from a fine dispatch trace\n"
    "  cluster   run sequential foreign jobs under a scheduling policy\n"
    "  parallel  run parallel jobs under a width policy\n";

std::vector<const char*> to_argv(const std::vector<std::string>& args) {
  std::vector<const char*> argv{"llsim"};
  for (const std::string& a : args) argv.push_back(a.c_str());
  return argv;
}

/// Loads every .coarse file in a directory, sorted by name for determinism.
std::vector<trace::CoarseTrace> load_trace_dir(const std::string& dir) {
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".coarse") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<trace::CoarseTrace> pool;
  pool.reserve(paths.size());
  for (const fs::path& p : paths) pool.push_back(trace::load_coarse(p.string()));
  if (pool.empty()) {
    throw std::runtime_error("no .coarse traces found in " + dir);
  }
  return pool;
}

/// Builds the pool either from --traces DIR or synthetically.
std::vector<trace::CoarseTrace> pool_from_flags(const std::string& dir,
                                                std::int64_t machines,
                                                double days,
                                                std::uint64_t seed) {
  if (!dir.empty()) return load_trace_dir(dir);
  trace::CoarseGenConfig gen;
  gen.duration = days * 86400.0;
  gen.start_hour = days < 1.0 ? 9.0 : 0.0;
  return trace::generate_machine_pool(gen, static_cast<std::size_t>(machines),
                                      rng::Stream(seed));
}

int cmd_traces(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim traces", "Synthesize workstation trace files.");
  auto machines = flags.add_int("machines", 16, "machines to synthesize");
  auto days = flags.add_double("days", 1.0, "days per machine");
  auto out_dir = flags.add_string("out", "", "output directory (required)");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto argv = to_argv(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  if (out_dir->empty()) {
    throw std::invalid_argument("traces: --out is required\n" + flags.usage());
  }
  fs::create_directories(*out_dir);
  trace::CoarseGenConfig gen;
  gen.duration = *days * 86400.0;
  const auto pool = trace::generate_machine_pool(
      gen, static_cast<std::size_t>(*machines), rng::Stream(*seed));
  for (std::size_t m = 0; m < pool.size(); ++m) {
    trace::save_coarse(pool[m], *out_dir + "/machine" + std::to_string(m) +
                                    ".coarse");
  }
  const auto stats = trace::analyze_coarse(pool);
  out << "wrote " << pool.size() << " traces (" << *days
      << " day(s) each) to " << *out_dir << "\n"
      << "non-idle " << util::percent(stats.nonidle_fraction, 1)
      << ", mean cpu " << util::percent(stats.mean_cpu_overall, 1) << "\n";
  return 0;
}

int cmd_analyze(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim analyze", "Availability statistics of traces.");
  auto dir = flags.add_string("dir", "", "directory of .coarse traces");
  auto argv = to_argv(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  if (dir->empty()) {
    throw std::invalid_argument("analyze: --dir is required\n" + flags.usage());
  }
  const auto pool = load_trace_dir(*dir);
  const auto stats = trace::analyze_coarse(pool);
  util::Table table({"metric", "value"});
  table.add_row({"traces", std::to_string(pool.size())});
  table.add_row({"samples", std::to_string(stats.sample_count)});
  table.add_row({"non-idle fraction", util::percent(stats.nonidle_fraction, 1)});
  table.add_row({"non-idle below 10% cpu",
                 util::percent(stats.nonidle_below_10pct, 1)});
  table.add_row({"mean cpu overall", util::percent(stats.mean_cpu_overall, 1)});
  table.add_row({"mean cpu idle (l)", util::percent(stats.mean_cpu_idle, 1)});
  table.add_row({"mean cpu non-idle (h)",
                 util::percent(stats.mean_cpu_nonidle, 1)});
  table.add_row({"mean idle episode",
                 util::format("%.0f s", stats.mean_idle_episode)});
  table.add_row({"mean non-idle episode",
                 util::format("%.0f s", stats.mean_nonidle_episode)});
  const auto mem = trace::memory_availability(pool);
  table.add_row({">= 14 MB free",
                 util::percent(
                     trace::fraction_with_at_least(mem.all_kb, 14 * 1024), 1)});
  table.add_row({">= 10 MB free",
                 util::percent(
                     trace::fraction_with_at_least(mem.all_kb, 10 * 1024), 1)});
  out << table.render();
  return 0;
}

int cmd_fit(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim fit",
                    "Fit a 21-level burst table from a fine dispatch trace.");
  auto fine = flags.add_string("fine", "", "fine trace file (required)");
  auto out_path = flags.add_string("out", "", "burst-table output (required)");
  auto window = flags.add_double("window", 2.0, "bucketing window (s)");
  auto argv = to_argv(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());
  if (fine->empty() || out_path->empty()) {
    throw std::invalid_argument("fit: --fine and --out are required\n" +
                                flags.usage());
  }
  const trace::FineTrace dispatch = trace::load_fine(*fine);
  const auto analysis = workload::analyze_fine_trace(dispatch, *window);
  const workload::BurstTable table = analysis.to_table();
  workload::save_table(table, *out_path);
  std::size_t run_samples = 0;
  for (const auto& level : analysis.levels) run_samples += level.run.size();
  out << "fitted " << *out_path << " from " << dispatch.size()
      << " bursts (" << run_samples << " run samples), trace utilization "
      << util::percent(dispatch.utilization(), 1) << "\n";
  return 0;
}

int cmd_cluster(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim cluster",
                    "Run sequential foreign jobs under a scheduling policy.");
  auto policy_name = flags.add_string("policy", "LL",
                                      "LL, LF, IE, PM, or LL-oracle");
  auto nodes = flags.add_int("nodes", 64, "cluster size");
  auto jobs = flags.add_int("jobs", 128, "foreign jobs");
  auto demand = flags.add_double("demand", 600.0, "CPU-seconds per job");
  auto traces_dir = flags.add_string("traces", "", "trace directory (optional)");
  auto machines = flags.add_int("machines", 32, "synthetic machines if no dir");
  auto days = flags.add_double("days", 1.0, "synthetic trace days");
  auto table_path = flags.add_string("burst-table", "",
                                     "burst table file (default: built-in)");
  auto closed = flags.add_double("closed", 0.0,
                                 "if > 0: closed-system run of this many "
                                 "seconds (throughput mode)");
  auto pause = flags.add_double("pause-time", 60.0, "PM grace period");
  auto job_log = flags.add_string("job-log", "",
                                  "write per-job state transitions as CSV "
                                  "(open mode only)");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto argv = to_argv(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());

  const auto policy = parse_policy(*policy_name);
  if (!policy) {
    throw std::invalid_argument("cluster: unknown policy '" + *policy_name +
                                "' (LL, LF, IE, PM, LL-oracle)");
  }
  const auto pool = pool_from_flags(*traces_dir, *machines, *days, *seed + 1);
  const workload::BurstTable table = table_path->empty()
                                         ? workload::default_burst_table()
                                         : workload::load_table(*table_path);

  cluster::ExperimentConfig cfg;
  cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
  cfg.cluster.policy = *policy;
  cfg.cluster.policy_params.pause_time = *pause;
  cfg.workload =
      cluster::WorkloadSpec{static_cast<std::size_t>(*jobs), *demand};
  cfg.seed = *seed;

  util::Table report({"metric", "value"});
  report.add_row({"policy", std::string(core::to_string(*policy))});
  if (*closed > 0.0) {
    const auto r = cluster::run_closed(cfg, pool, table, *closed);
    report.add_row({"mode", util::format("closed (%.0f s)", *closed)});
    report.add_row({"throughput (cpu-s/s)", util::fixed(r.throughput, 2)});
    report.add_row({"completions", std::to_string(r.completed)});
    report.add_row({"migrations", std::to_string(r.migrations)});
    report.add_row({"foreground delay", util::percent(r.foreground_delay, 2)});
  } else {
    std::deque<cluster::JobRecord> job_records;
    const auto r = cluster::run_open(cfg, pool, table,
                                     job_log->empty() ? nullptr : &job_records);
    if (!job_log->empty()) {
      cluster::write_job_log(job_records, *job_log);
      out << "wrote job log to " << *job_log << "\n";
    }
    report.add_row({"mode", "open (family)"});
    report.add_row({"avg job (s)", util::fixed(r.avg_completion, 1)});
    report.add_row({"p50 / p90 (s)",
                    util::format("%.1f / %.1f", r.p50_completion,
                                 r.p90_completion)});
    report.add_row({"variation", util::percent(r.variation, 1)});
    report.add_row({"family time (s)", util::fixed(r.family_time, 1)});
    report.add_row({"migrations", std::to_string(r.migrations)});
    report.add_row({"foreground delay", util::percent(r.foreground_delay, 2)});
    report.add_row({"avg queued/running/lingering (s)",
                    util::format("%.0f / %.0f / %.0f", r.avg_queued,
                                 r.avg_running, r.avg_lingering)});
  }
  out << report.render();
  return 0;
}

int cmd_parallel(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim parallel",
                    "Run parallel jobs under a width policy.");
  auto policy_name = flags.add_string(
      "policy", "hybrid", "reconfigure, fixed-linger, or hybrid");
  auto nodes = flags.add_int("nodes", 32, "cluster size");
  auto jobs = flags.add_int("jobs", 4, "jobs held in the system");
  auto work = flags.add_double("work", 300.0, "cpu-seconds per job");
  auto granularity = flags.add_double("granularity", 0.5,
                                      "sync granularity (s)");
  auto duration = flags.add_double("duration", 3600.0, "simulated seconds");
  auto traces_dir = flags.add_string("traces", "", "trace directory (optional)");
  auto machines = flags.add_int("machines", 32, "synthetic machines if no dir");
  auto days = flags.add_double("days", 1.0, "synthetic trace days");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  auto argv = to_argv(args);
  flags.parse(static_cast<int>(argv.size()), argv.data());

  const auto policy = parse_width_policy(*policy_name);
  if (!policy) {
    throw std::invalid_argument(
        "parallel: unknown policy '" + *policy_name +
        "' (reconfigure, fixed-linger, hybrid)");
  }
  const auto pool = pool_from_flags(*traces_dir, *machines, *days, *seed + 1);

  parallel::ParallelClusterConfig cfg;
  cfg.node_count = static_cast<std::size_t>(*nodes);
  cfg.policy = *policy;
  cfg.fixed_width = cfg.node_count;

  parallel::ParallelJobSpec spec;
  spec.total_work = *work;
  spec.bsp.granularity = *granularity;
  spec.max_width = cfg.node_count;

  parallel::ParallelClusterSim sim(cfg, pool,
                                   workload::default_burst_table(),
                                   rng::Stream(*seed));
  sim.set_completion_callback(
      [&sim, spec](const parallel::ParallelJobRecord&) { sim.submit(spec); });
  for (std::int64_t j = 0; j < *jobs; ++j) sim.submit(spec);
  sim.run_for(*duration);

  std::size_t completed = 0;
  double turnaround = 0.0;
  double width = 0.0;
  for (const auto& job : sim.jobs()) {
    if (!job.completion) continue;
    ++completed;
    turnaround += job.turnaround();
    width += static_cast<double>(job.width);
  }
  util::Table report({"metric", "value"});
  report.add_row({"policy", std::string(parallel::to_string(*policy))});
  report.add_row({"work delivered (cpu-s/s)",
                  util::fixed(sim.delivered_work() / *duration, 2)});
  report.add_row({"jobs completed", std::to_string(completed)});
  if (completed > 0) {
    report.add_row({"mean turnaround (s)",
                    util::fixed(turnaround / static_cast<double>(completed), 1)});
    report.add_row({"mean width",
                    util::fixed(width / static_cast<double>(completed), 1)});
  }
  out << report.render();
  return 0;
}

}  // namespace

std::optional<core::PolicyKind> parse_policy(std::string_view name) {
  if (name == "LL") return core::PolicyKind::LingerLonger;
  if (name == "LF") return core::PolicyKind::LingerForever;
  if (name == "IE") return core::PolicyKind::ImmediateEviction;
  if (name == "PM") return core::PolicyKind::PauseAndMigrate;
  if (name == "LL-oracle") return core::PolicyKind::OracleLinger;
  return std::nullopt;
}

std::optional<parallel::WidthPolicy> parse_width_policy(std::string_view name) {
  if (name == "reconfigure") return parallel::WidthPolicy::Reconfigure;
  if (name == "fixed-linger") return parallel::WidthPolicy::FixedLinger;
  if (name == "hybrid") return parallel::WidthPolicy::Hybrid;
  return std::nullopt;
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  try {
    if (args.empty() || args[0] == "--help" || args[0] == "-h" ||
        args[0] == "help") {
      out << kUsage;
      return args.empty() ? 2 : 0;
    }
    const std::string& cmd = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (cmd == "traces") return cmd_traces(rest, out);
    if (cmd == "analyze") return cmd_analyze(rest, out);
    if (cmd == "fit") return cmd_fit(rest, out);
    if (cmd == "cluster") return cmd_cluster(rest, out);
    if (cmd == "parallel") return cmd_parallel(rest, out);
    err << "llsim: unknown subcommand '" << cmd << "'\n\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    err << "llsim: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace ll::cli
