#pragma once

/// \file driver.hpp
/// The `llsim` command-line driver, as a library so every code path is unit
/// testable. The thin binary in tools/llsim.cpp just forwards to run_cli().
///
/// Subcommands:
///   llsim traces   --machines N --days D --out DIR      synthesize traces
///   llsim analyze  --dir DIR                            §3.2 stats + memory
///   llsim fit      --fine FILE --out TABLE              burst table from a
///                                                       dispatch trace
///   llsim cluster  --policy LL|LF|IE|PM|LL-oracle ...   sequential-job runs
///   llsim parallel --policy reconfigure|fixed-linger|hybrid ...
///                                                       parallel-job runs
///
/// Every subcommand accepts --help and --seed. Trace directories use the
/// text formats of trace/trace_io.hpp; burst tables those of
/// workload/table_io.hpp.

#include <iosfwd>
#include <optional>
#include <string_view>
#include <vector>

#include "core/policy.hpp"
#include "parallel/parallel_cluster.hpp"

namespace ll::cli {

/// Runs the driver. `args` excludes the program name (subcommand first).
/// Output goes to `out`, diagnostics to `err`. Returns a process exit code.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

/// Parses a sequential-policy name ("LL", "LF", "IE", "PM", "LL-oracle").
[[nodiscard]] std::optional<core::PolicyKind> parse_policy(std::string_view name);

/// Parses a parallel width-policy name.
[[nodiscard]] std::optional<parallel::WidthPolicy> parse_width_policy(
    std::string_view name);

}  // namespace ll::cli
