#include "rng/rng.hpp"

#include <stdexcept>

namespace ll::rng {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_label(std::string_view label) {
  // FNV-1a 64-bit, then one SplitMix64 finalization for avalanche.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  std::uint64_t state = h;
  return splitmix64(state);
}

Engine::Engine(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Engine::result_type Engine::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Engine::uniform01() {
  // Top 53 bits -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

Stream Stream::fork(std::string_view label, std::uint64_t index) const {
  std::uint64_t state = seed_;
  std::uint64_t a = splitmix64(state);
  state = a ^ hash_label(label);
  std::uint64_t b = splitmix64(state);
  state = b + 0x632BE59BD9B4E019ULL * (index + 1);
  return Stream(splitmix64(state));
}

double Stream::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Stream::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
  // Rejection sampling over the largest multiple of n.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % n;
  std::uint64_t draw;
  do {
    draw = engine_();
  } while (draw >= limit);
  return draw % n;
}

}  // namespace ll::rng
