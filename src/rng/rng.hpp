#pragma once

/// \file rng.hpp
/// Deterministic, splittable random-number streams.
///
/// Every stochastic component of the simulator draws from its own named
/// sub-stream of a master seed, so results are reproducible from the seed
/// alone and *independent of evaluation order* — adding a new consumer of
/// randomness never perturbs the draws seen by existing ones. This is the
/// standard discipline for parallel discrete-event experiments: replications
/// fork by index, nodes fork by id, and each burst generator owns its stream.
///
/// The generator is xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
/// Stream forking hashes (parent_state, label, index) with SplitMix64 so
/// distinct labels yield statistically independent streams.

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>

namespace ll::rng {

/// xoshiro256++ engine. Satisfies std::uniform_random_bit_generator.
class Engine {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 expansion of `seed` (all-zero state is impossible).
  explicit Engine(std::uint64_t seed = 0xDEADBEEFCAFEF00DULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01();

  [[nodiscard]] std::array<std::uint64_t, 4> state() const { return state_; }

 private:
  std::array<std::uint64_t, 4> state_;
};

/// SplitMix64 step — used for seeding and stream derivation.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// FNV-1a hash of a label, mixed through SplitMix64. Deterministic across
/// platforms (no std::hash).
[[nodiscard]] std::uint64_t hash_label(std::string_view label);

/// A named, forkable random stream.
///
/// Stream master(seed);
/// Stream node_stream = master.fork("node", node_id);
/// Stream bursts      = node_stream.fork("bursts");
class Stream {
 public:
  explicit Stream(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Derives an independent child stream. Forking does not consume entropy
  /// from this stream — it is a pure function of (seed, label, index).
  [[nodiscard]] Stream fork(std::string_view label, std::uint64_t index = 0) const;

  Engine& engine() { return engine_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform double in [0, 1).
  double uniform01() { return engine_.uniform01(); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) — n must be > 0. Uses rejection to avoid bias.
  std::uint64_t uniform_index(std::uint64_t n);

 private:
  std::uint64_t seed_;
  Engine engine_;
};

}  // namespace ll::rng
