#include "rng/distributions.hpp"

#include <cmath>
#include <stdexcept>

namespace ll::rng {

Exponential::Exponential(double rate) : rate_(rate) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("Exponential: rate must be > 0");
  }
}

double Exponential::sample(Stream& stream) const {
  // Inverse CDF; 1 - u in (0, 1] avoids log(0).
  return -std::log(1.0 - stream.uniform01()) / rate_;
}

double Exponential::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-rate_ * x);
}

HyperExp2::HyperExp2(double p, double rate1, double rate2)
    : p_(p), rate1_(rate1), rate2_(rate2) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("HyperExp2: p must be in [0,1]");
  }
  if (!(rate1 > 0.0) || !(rate2 > 0.0)) {
    throw std::invalid_argument("HyperExp2: rates must be > 0");
  }
}

double HyperExp2::sample(Stream& stream) const {
  const double rate = stream.uniform01() < p_ ? rate1_ : rate2_;
  return -std::log(1.0 - stream.uniform01()) / rate;
}

double HyperExp2::mean() const { return p_ / rate1_ + (1.0 - p_) / rate2_; }

double HyperExp2::variance() const {
  const double m = mean();
  const double m2 = 2.0 * (p_ / (rate1_ * rate1_) + (1.0 - p_) / (rate2_ * rate2_));
  return m2 - m * m;
}

double HyperExp2::cv2() const {
  const double m = mean();
  return variance() / (m * m);
}

double HyperExp2::second_moment() const {
  return 2.0 * (p_ / (rate1_ * rate1_) + (1.0 - p_) / (rate2_ * rate2_));
}

double HyperExp2::mean_residual() const {
  const double m = mean();
  return m > 0.0 ? second_moment() / (2.0 * m) : 0.0;
}

double HyperExp2::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return p_ * (1.0 - std::exp(-rate1_ * x)) +
         (1.0 - p_) * (1.0 - std::exp(-rate2_ * x));
}

double HyperExp2::mean_excess(double c) const {
  if (c <= 0.0) return mean();
  // E[max(0, X-c)] = sum_i p_i e^{-r_i c} / r_i  (memorylessness per branch).
  return p_ * std::exp(-rate1_ * c) / rate1_ +
         (1.0 - p_) * std::exp(-rate2_ * c) / rate2_;
}

HyperExp2 fit_hyperexp2(double mean, double variance) {
  if (!(mean > 0.0)) {
    throw std::invalid_argument("fit_hyperexp2: mean must be > 0");
  }
  if (variance < 0.0) {
    throw std::invalid_argument("fit_hyperexp2: variance must be >= 0");
  }
  const double cv2 = variance / (mean * mean);
  if (cv2 <= 1.0 + 1e-12) {
    // Degenerate to exponential with the same mean.
    const double rate = 1.0 / mean;
    return HyperExp2(1.0, rate, rate);
  }
  // Balanced-means method of moments:
  //   p = (1 + sqrt((cv2-1)/(cv2+1))) / 2,  r1 = 2p/mean,  r2 = 2(1-p)/mean.
  // Both branches contribute mean/2 of the total mean ("balanced").
  const double root = std::sqrt((cv2 - 1.0) / (cv2 + 1.0));
  const double p = 0.5 * (1.0 + root);
  const double rate1 = 2.0 * p / mean;
  const double rate2 = 2.0 * (1.0 - p) / mean;
  return HyperExp2(p, rate1, rate2);
}

}  // namespace ll::rng
