#pragma once

/// \file distributions.hpp
/// The distributions the workload model needs: exponential and two-stage
/// hyperexponential (H2). The paper models fine-grain run/idle bursts as H2
/// random variables fitted per utilization bucket (§3.1, Figure 2).

#include <cstdint>

#include "rng/rng.hpp"

namespace ll::rng {

/// Exponential(rate). mean = 1/rate.
class Exponential {
 public:
  explicit Exponential(double rate);

  double sample(Stream& stream) const;

  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] double mean() const { return 1.0 / rate_; }
  [[nodiscard]] double variance() const { return 1.0 / (rate_ * rate_); }

  /// CDF F(x) = 1 - exp(-rate x) for x >= 0.
  [[nodiscard]] double cdf(double x) const;

 private:
  double rate_;
};

/// Two-stage hyperexponential: with probability p sample Exp(rate1), else
/// Exp(rate2). Coefficient of variation >= 1, which is what makes it the
/// natural model for the bursty CPU request traces of §3.1.
class HyperExp2 {
 public:
  /// p in [0, 1]; rates > 0.
  HyperExp2(double p, double rate1, double rate2);

  double sample(Stream& stream) const;

  [[nodiscard]] double p() const { return p_; }
  [[nodiscard]] double rate1() const { return rate1_; }
  [[nodiscard]] double rate2() const { return rate2_; }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  /// Squared coefficient of variation variance/mean^2.
  [[nodiscard]] double cv2() const;

  /// CDF F(x) = p(1 - e^{-r1 x}) + (1-p)(1 - e^{-r2 x}) for x >= 0.
  [[nodiscard]] double cdf(double x) const;

  /// E[X^2] = 2 * sum_i p_i / rate_i^2.
  [[nodiscard]] double second_moment() const;

  /// Mean residual life E[X^2] / (2 E[X]) — the expected remaining length of
  /// a burst observed at a random instant (renewal theory). The parallel
  /// communication model uses this for the wait a message handler suffers
  /// when it lands on a node mid run-burst.
  [[nodiscard]] double mean_residual() const;

  /// E[max(0, X - c)] — the expected *usable* tail beyond a threshold c.
  /// The fine-grain node model uses this closed form to validate the
  /// DES-measured cycle-stealing ratio (an idle gap of length X yields
  /// X - t_cs useful background cycles after the context switch-in).
  [[nodiscard]] double mean_excess(double c) const;

 private:
  double p_;
  double rate1_;
  double rate2_;
};

/// Fits an H2 to a (mean, variance) pair by the method of moments with
/// balanced means (Trivedi 1982, as cited by the paper for its burst fits).
///
/// For cv^2 <= 1 an H2 cannot match the variance; the fit degrades gracefully
/// to an exponential of the same mean (p = 1, both rates equal), which keeps
/// the generator well-defined at utilization buckets with near-deterministic
/// bursts.
///
/// Preconditions: mean > 0, variance >= 0.
[[nodiscard]] HyperExp2 fit_hyperexp2(double mean, double variance);

}  // namespace ll::rng
