#include "cluster/cluster_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>
#include <stdexcept>

#include "util/stable_vector.hpp"
#include "util/table.hpp"

namespace ll::cluster {
namespace {

constexpr double kRemainingEps = 1e-9;

// Observer tags for the engine's event kinds — they make the verification
// digests (and any future event-level tooling) distinguish *what* fired,
// not just when, so a refactor that reorders same-time events of different
// kinds changes the digest. Values live in cluster_sim.hpp so external
// tooling (the CLI profiler) can label them.
constexpr std::uint64_t kTagTick = ClusterSim::kTagTick;
constexpr std::uint64_t kTagCompletion = ClusterSim::kTagCompletion;
constexpr std::uint64_t kTagRecheck = ClusterSim::kTagRecheck;
constexpr std::uint64_t kTagMigration = ClusterSim::kTagMigration;
constexpr std::uint64_t kTagFault = ClusterSim::kTagFault;
constexpr std::uint64_t kTagCheckpoint = ClusterSim::kTagCheckpoint;

/// Per-job runtime bookkeeping, parallel to the public JobRecord table.
/// Defined at TU scope (not nested in Impl) so its member initializers are
/// complete by the time Impl declares its StableVector of them.
struct JobRuntime {
  double rate = 0.0;
  double last_update = 0.0;
  des::EventId completion_event = des::kNoEvent;
  des::EventId recheck_event = des::kNoEvent;
  int node = -1;
  bool wants_migration = false;
  bool displaced = false;  // in the displaced FIFO
  // Periodic-checkpoint timer while executing; doubles as the
  // checkpoint-write finish event while state is Checkpointing.
  des::EventId checkpoint_event = des::kNoEvent;
  // In-flight migration bookkeeping: the pending transfer-completion
  // event and both endpoints, so a crash at either end can abort the
  // transfer and release the reserved slot.
  des::EventId mig_event = des::kNoEvent;
  int mig_source = -1;
  int mig_target = -1;
  std::size_t mig_attempts = 0;  // link-drop re-attempts so far
  // Virtual-time span starts for the tracer (valid while the matching
  // state is in flight; harmless stale values otherwise).
  double mig_start = 0.0;
  double ckpt_start = 0.0;
};

}  // namespace

/// Cold per-node state: trace bindings, occupancy lists, the page pool, and
/// fault overlays. The scan-hot scalars (utilization, idle/down flags,
/// occupancy counts, episode clocks) live in the Impl's parallel SoA
/// vectors — the per-window tick and the placement scans walk every node,
/// and packing the scanned fields contiguously is what keeps a 100k-node
/// window O(nodes) cache lines instead of O(nodes) cache misses.
struct ClusterSim::Node {
  const trace::CoarseTrace* trace = nullptr;
  const std::vector<bool>* flags = nullptr;  // idle flags, per trace sample
  // Seconds of non-idle time remaining from each sample (oracle baseline).
  const std::vector<double>* remaining = nullptr;
  std::size_t offset_windows = 0;

  std::vector<JobId> occupants;  // resident foreign jobs (paper: at most 1)
  std::size_t reserved = 0;      // inbound migrations holding a slot
  double mem_factor = 1.0;
  std::optional<node::PagePool> pool;

  // Fault overlays (all inert on fault-free runs). A down node is neither
  // idle nor a migration target; a storm forces the node non-idle at
  // forced_util until forced_busy_until; a pressure spike inflates the
  // owner working set by pressure_kb until pressure_until.
  double down_until = 0.0;
  double down_since = 0.0;  // crash instant of the current outage (tracer)
  double forced_busy_until = 0.0;
  double forced_util = 0.0;
  double pressure_until = 0.0;
  std::uint32_t pressure_kb = 0;
};

struct ClusterSim::Impl {
  Impl(ClusterSim& owner, ClusterConfig config)
      : self(owner),
        cfg(std::move(config)),
        sim(des::Simulation::Options{cfg.queue}) {}

  ClusterSim& self;
  ClusterConfig cfg;
  des::Simulation sim;
  std::unique_ptr<core::Policy> policy;
  node::EffectiveRateTable rates =
      node::EffectiveRateTable::analytic(workload::default_burst_table(), 100e-6);
  std::vector<Node> nodes;

  // ---- hot per-node state, SoA --------------------------------------------
  // Parallel vectors indexed by node. best_free_node, tick, account_window
  // and note_metrics scan every node; these are the only fields they read,
  // so the scans stream through packed arrays (8/1/1/4/4/8 bytes per node)
  // instead of striding over ~200-byte Node records.
  std::vector<double> node_util;            // owner CPU this window
  std::vector<std::uint8_t> node_idle;      // recruitment-rule idle flag
  std::vector<std::uint8_t> node_down;      // crashed and not yet recovered
  std::vector<std::uint32_t> node_occ;      // occupants.size()
  std::vector<std::uint32_t> node_used;     // occupants + reserved slots
  std::vector<double> node_episode;         // start of current non-idle episode

  [[nodiscard]] bool is_idle(std::size_t i) const { return node_idle[i] != 0; }

  /// Re-mirrors a node's occupancy counts after any occupants/reserved
  /// mutation. Every mutation site calls this, so the SoA view is exact at
  /// every scan point.
  void sync_slots(std::size_t i) {
    node_occ[i] = static_cast<std::uint32_t>(nodes[i].occupants.size());
    node_used[i] = node_occ[i] + static_cast<std::uint32_t>(nodes[i].reserved);
  }

  // Chunked pool: grows from completion callbacks while engine frames still
  // hold references to existing entries (see ClusterSim::jobs()).
  util::StableVector<JobRuntime, 256> rt;

  std::deque<JobId> queue;      // fresh jobs awaiting first dispatch
  std::deque<JobId> displaced;  // evicted jobs awaiting a migration target

  // Observability (all optional; nullptr = detached, zero work). The
  // metric objects live inside the attached registry; we cache raw
  // pointers so the hot path pays only the null check.
  obs::Timeline* timeline = nullptr;
  obs::Counter* m_submitted = nullptr;
  obs::Counter* m_completed = nullptr;
  obs::Counter* m_migrations = nullptr;
  obs::Counter* m_crashes = nullptr;
  obs::Counter* m_restarts = nullptr;
  obs::Counter* m_checkpoints = nullptr;
  obs::Counter* m_aborts = nullptr;
  obs::Gauge* g_delivered = nullptr;
  obs::Gauge* g_work_lost = nullptr;
  obs::TimeWeighted* tw_queue = nullptr;
  obs::TimeWeighted* tw_occupied = nullptr;
  obs::TimeWeighted* tw_idle = nullptr;

  // Flight-recorder tracer (nullptr = detached) with its labels interned
  // once at attach time so the emit sites pay only the null check.
  obs::Tracer* tracer = nullptr;
  struct TraceLabels {
    std::uint32_t migration = 0;
    std::uint32_t mig_retry = 0;
    std::uint32_t mig_abort = 0;
    std::uint32_t requeue = 0;
    std::uint32_t crash = 0;
    std::uint32_t outage = 0;
    std::uint32_t storm = 0;
    std::uint32_t pressure = 0;
    std::uint32_t checkpoint = 0;
  } tl;

  /// Folds the current queue length / node occupancy into the time-weighted
  /// accumulators. Called wherever those quantities may have changed.
  void note_metrics() {
    if (tw_queue) {
      tw_queue->set(now(),
                    static_cast<double>(queue.size() + displaced.size()));
    }
    if (tw_occupied || tw_idle) {
      std::size_t occupied = 0;
      std::size_t idle = 0;
      const std::size_t n = nodes.size();
      for (std::size_t i = 0; i < n; ++i) {
        if (node_occ[i] != 0) ++occupied;
        if (node_idle[i] != 0) ++idle;
      }
      if (tw_occupied) tw_occupied->set(now(), static_cast<double>(occupied));
      if (tw_idle) tw_idle->set(now(), static_cast<double>(idle));
    }
  }

  double period = 2.0;
  std::size_t inflight_migrations = 0;
  // Compiled fault timeline + the lazily-consumed link-drop stream. Both
  // are only initialized when the config's spec is non-empty, so fault-free
  // runs fork no streams and schedule no events.
  fault::FaultSchedule faults;
  bool faults_active = false;
  rng::Stream link_stream{0};
  double fg_delay = 0.0;
  double fg_cpu = 0.0;
  double idle_node_time = 0.0;
  double total_node_time = 0.0;
  bool tick_scheduled = false;
  double tick_horizon = 0.0;
  std::function<void(const JobRecord&)> on_complete;

  // Idle-flag cache, one entry per distinct trace in the pool.
  std::vector<std::vector<bool>> flag_cache;
  // Remaining non-idle seconds from each sample (wrap-around; +inf when the
  // whole trace is non-idle). Only the OracleLinger policy consults it.
  std::vector<std::vector<double>> remaining_cache;

  /// Seconds of consecutive non-idle windows starting at each sample,
  /// honouring the wrap-around replay the nodes use.
  static std::vector<double> remaining_nonidle(const std::vector<bool>& flags,
                                               double period) {
    const std::size_t n = flags.size();
    std::vector<double> out(n, 0.0);
    bool any_idle = false;
    for (bool f : flags) any_idle |= f;
    if (!any_idle) {
      std::fill(out.begin(), out.end(),
                std::numeric_limits<double>::infinity());
      return out;
    }
    double run = 0.0;
    // Two reverse passes over the circular buffer: the first seeds the runs
    // across the wrap point, the second records them.
    for (std::size_t pass = 0; pass < 2; ++pass) {
      for (std::size_t k = n; k-- > 0;) {
        if (flags[k]) {
          run = 0.0;
        } else {
          run += period;
        }
        if (pass == 1) out[k] = run;
      }
    }
    return out;
  }

  // ---- helpers -----------------------------------------------------------

  [[nodiscard]] double now() const { return sim.now(); }

  [[nodiscard]] double migration_cost(const JobRecord& job) const {
    return cfg.migration.cost(job.bytes);
  }

  void ensure_tick() {
    if (tick_scheduled) return;
    if (self.active_jobs_ == 0 && now() >= tick_horizon) return;
    const double next =
        (std::floor(now() / period + 1e-9) + 1.0) * period;
    tick_scheduled = true;
    sim.schedule_at(next, [this] { tick(); }, kTagTick);
  }

  /// Occupants currently consuming CPU (Running or Lingering) — they
  /// processor-share the node's leftover rate.
  [[nodiscard]] std::size_t executing_count(const Node& n) const {
    std::size_t k = 0;
    for (JobId id : n.occupants) {
      const JobState s = self.jobs_[id].state;
      if (s == JobState::Running || s == JobState::Lingering) ++k;
    }
    return k;
  }

  /// Re-evaluates the donated page pool split across the node's occupants.
  void update_memory(Node& n) {
    if (!cfg.model_memory || !n.pool) return;
    const auto ws_pages = node::PagePool::kb_to_pages(cfg.job_mem_kb);
    const auto total =
        static_cast<std::uint32_t>(ws_pages * n.occupants.size());
    const auto resident = n.pool->request_foreign_pages(total);
    n.mem_factor = n.occupants.empty()
                       ? 1.0
                       : node::memory_progress_factor(resident, total);
  }

  void update_sample(std::size_t i) {
    Node& n = nodes[i];
    const std::size_t count = n.trace->samples().size();
    const auto window =
        (n.offset_windows +
         static_cast<std::size_t>(std::floor(now() / period + 1e-9))) % count;
    double util = std::clamp(n.trace->samples()[window].cpu, 0.0, 1.0);
    const bool was_idle = is_idle(i);
    bool idle = (*n.flags)[window];
    if (node_down[i] != 0) {
      // A crashed node donates nothing and hosts nothing until recovery.
      idle = false;
      util = 0.0;
    } else if (n.forced_busy_until > now() + 1e-12) {
      // Reclamation storm: the owner is back regardless of the trace. The
      // overlay ends at the first window boundary past forced_busy_until.
      idle = false;
      util = std::max(util, n.forced_util);
    }
    node_util[i] = util;
    node_idle[i] = idle ? 1 : 0;
    if (was_idle && !idle) node_episode[i] = now();
    update_memory_sample(i, window);
  }

  /// The memory half of update_sample: local working set from the trace
  /// (plus any active pressure spike), then the donated-pool split.
  void update_memory_sample(std::size_t i, std::size_t window) {
    Node& n = nodes[i];
    if (!cfg.model_memory || !n.pool) return;
    const auto free_kb =
        std::max<std::int32_t>(0, n.trace->samples()[window].mem_free_kb);
    auto used_kb = static_cast<std::uint32_t>(
        std::max<std::int64_t>(0, cfg.mem_total_kb - free_kb));
    if (now() < n.pressure_until) used_kb += n.pressure_kb;
    n.pool->set_local_pages(node::PagePool::kb_to_pages(used_kb));
    update_memory(n);
  }

  [[nodiscard]] std::size_t current_window(const Node& n) const {
    const std::size_t count = n.trace->samples().size();
    return (n.offset_windows +
            static_cast<std::size_t>(std::floor(now() / period + 1e-9))) %
           count;
  }

  /// Folds elapsed progress into the job; returns true if it just finished.
  bool integrate(JobId id) {
    JobRuntime& r = rt[id];
    JobRecord& job = self.jobs_[id];
    const double dt = now() - r.last_update;
    r.last_update = now();
    if (dt > 0.0 && r.rate > 0.0) {
      const double work = std::min(job.remaining, r.rate * dt);
      job.remaining -= work;
      self.delivered_cpu_ += work;
    }
    return job.remaining <= kRemainingEps;
  }

  /// CPU rate one executing occupant of node `i` receives right now: the
  /// node's leftover rate, degraded by memory pressure, processor-shared
  /// among the executing occupants.
  [[nodiscard]] double execution_rate(std::size_t i) const {
    const std::size_t k = executing_count(nodes[i]);
    if (k == 0) return 0.0;
    return rates.foreign_rate(node_util[i]) *
           (cfg.model_memory ? nodes[i].mem_factor : 1.0) /
           static_cast<double>(k);
  }

  void reschedule_completion(JobId id) {
    JobRuntime& r = rt[id];
    JobRecord& job = self.jobs_[id];
    sim.cancel(r.completion_event);
    r.completion_event = des::kNoEvent;
    if (job.state != JobState::Running && job.state != JobState::Lingering) {
      r.rate = 0.0;
      return;
    }
    r.rate = execution_rate(static_cast<std::size_t>(r.node));
    if (r.rate <= 0.0) return;
    const double eta = job.remaining / r.rate;
    r.completion_event = sim.schedule_in(
        eta,
        [this, id] {
          if (integrate(id)) {
            complete(id);
          } else {
            // Numerical slack: re-arm for the residue.
            rt[id].completion_event = des::kNoEvent;
            reschedule_completion(id);
          }
        },
        kTagCompletion);
  }

  /// Re-evaluates a job's progress rate after its node's window changed.
  void refresh_rate(JobId id) {
    if (integrate(id)) {
      complete(id);
      return;
    }
    reschedule_completion(id);
  }

  /// Processor-sharing: any change to a node's executing-occupant set or
  /// utilization changes every co-occupant's share. Integrates each at its
  /// old rate, then re-arms at the new share.
  void refresh_node_rates(std::size_t node_idx) {
    const std::vector<JobId> snapshot = nodes[node_idx].occupants;
    for (JobId id : snapshot) {
      const JobState s = self.jobs_[id].state;
      if (s == JobState::Running || s == JobState::Lingering) {
        refresh_rate(id);
      }
    }
  }

  void cancel_recheck(JobId id) {
    sim.cancel(rt[id].recheck_event);
    rt[id].recheck_event = des::kNoEvent;
  }

  void remove_from_displaced(JobId id) {
    if (!rt[id].displaced) return;
    rt[id].displaced = false;
    auto it = std::find(displaced.begin(), displaced.end(), id);
    if (it != displaced.end()) displaced.erase(it);
  }

  /// Policy consultation for a job occupying a non-idle node.
  void handle_nonidle(JobId id) {
    JobRuntime& r = rt[id];
    JobRecord& job = self.jobs_[id];
    const auto node_idx = static_cast<std::size_t>(r.node);
    Node& n = nodes[node_idx];
    cancel_recheck(id);

    core::PolicyContext ctx;
    ctx.episode_age = now() - node_episode[node_idx];
    ctx.node_utilization = node_util[node_idx];
    ctx.idle_utilization = self.idle_util_;
    ctx.migration_cost = migration_cost(job);
    if (n.remaining) {
      const std::size_t count = n.trace->samples().size();
      const auto window =
          (n.offset_windows +
           static_cast<std::size_t>(std::floor(now() / period + 1e-9))) %
          count;
      ctx.episode_remaining = (*n.remaining)[window];
    }
    const core::Decision d = policy->on_nonidle(ctx);

    switch (d.action) {
      case core::Decision::Action::Continue:
        if (integrate(id)) {
          complete(id);
          return;
        }
        job.set_state(JobState::Lingering, now());
        reschedule_completion(id);
        break;
      case core::Decision::Action::Linger:
        if (integrate(id)) {
          complete(id);
          return;
        }
        job.set_state(JobState::Lingering, now());
        reschedule_completion(id);
        r.recheck_event =
            sim.schedule_in(std::max(d.recheck_in, 1e-6),
                            [this, id] { on_recheck(id); }, kTagRecheck);
        break;
      case core::Decision::Action::Pause:
        if (integrate(id)) {
          complete(id);
          return;
        }
        job.set_state(JobState::Paused, now());
        reschedule_completion(id);  // clears the rate / completion event
        r.recheck_event =
            sim.schedule_in(std::max(d.recheck_in, 1e-6),
                            [this, id] { on_recheck(id); }, kTagRecheck);
        break;
      case core::Decision::Action::Migrate:
        r.wants_migration = true;
        if (policy->allows_lingering()) {
          // Keep executing while a target is sought.
          if (integrate(id)) {
            complete(id);
            return;
          }
          job.set_state(JobState::Lingering, now());
          reschedule_completion(id);
        } else {
          if (integrate(id)) {
            complete(id);
            return;
          }
          job.set_state(JobState::Paused, now());
          reschedule_completion(id);
          if (!r.displaced) {
            r.displaced = true;
            displaced.push_back(id);
          }
        }
        break;
    }
    // Keep the periodic-checkpoint timer in sync with the new state
    // (executing states keep one armed, suspended states none).
    sync_checkpoint(id);
  }

  void on_recheck(JobId id) {
    rt[id].recheck_event = des::kNoEvent;
    const JobRecord& job = self.jobs_[id];
    if (job.state == JobState::Done || job.state == JobState::Migrating ||
        job.state == JobState::Checkpointing || rt[id].node < 0) {
      return;
    }
    const auto node_idx = static_cast<std::size_t>(rt[id].node);
    if (is_idle(node_idx)) return;  // transition handler resumed the job
    handle_nonidle(id);
    refresh_node_rates(node_idx);  // pausing/resuming shifts the shares
    placement();
  }

  /// Owner departed: the node's occupants run at full (idle-node) terms.
  void handle_idle_transition(std::size_t node_idx) {
    const std::vector<JobId> snapshot = nodes[node_idx].occupants;
    for (JobId id : snapshot) {
      const JobState s = self.jobs_[id].state;
      // A job mid-checkpoint-write keeps writing; finish_checkpoint reads
      // the node's idle flag and resumes it at the right terms.
      if (s == JobState::Done || s == JobState::Checkpointing) continue;
      cancel_recheck(id);
      rt[id].wants_migration = false;
      remove_from_displaced(id);
      if (integrate(id)) {
        complete(id);
        continue;
      }
      self.jobs_[id].set_state(JobState::Running, now());
      reschedule_completion(id);
      sync_checkpoint(id);
    }
    refresh_node_rates(node_idx);
  }

  void place_job(JobId id, std::size_t node_idx) {
    Node& n = nodes[node_idx];
    JobRuntime& r = rt[id];
    JobRecord& job = self.jobs_[id];
    const bool idle = is_idle(node_idx);
    if (timeline) {
      timeline->record(now(), util::format("job %zu", static_cast<std::size_t>(id)),
                       idle ? "running" : "lingering",
                       util::format("node %zu", node_idx));
    }
    n.occupants.push_back(id);
    sync_slots(node_idx);
    r.node = static_cast<int>(node_idx);
    r.last_update = now();
    update_memory(n);
    job.set_state(idle ? JobState::Running : JobState::Lingering, now());
    reschedule_completion(id);
    if (!idle) handle_nonidle(id);
    // The newcomer changes every co-occupant's processor share.
    refresh_node_rates(node_idx);
    sync_checkpoint(id);
  }

  void release_node(JobId id, bool charge_owner_penalty = true) {
    JobRuntime& r = rt[id];
    if (r.node < 0) return;
    const auto node_idx = static_cast<std::size_t>(r.node);
    Node& n = nodes[node_idx];
    auto it = std::find(n.occupants.begin(), n.occupants.end(), id);
    if (it != n.occupants.end()) {
      n.occupants.erase(it);
      sync_slots(node_idx);
      update_memory(n);
      // A guest leaving an active owner's machine forces the owner to
      // re-fault the pages and cache lines the guest displaced (paper §1).
      // Crash departures skip the charge: there is no owner to delay.
      if (!is_idle(node_idx) && charge_owner_penalty) {
        fg_delay += cfg.owner_restore_penalty;
      }
    }
    r.node = -1;
    refresh_node_rates(node_idx);  // survivors inherit the freed share
  }

  void start_migration(JobId id, std::size_t target_idx) {
    JobRuntime& r = rt[id];
    JobRecord& job = self.jobs_[id];
    if (integrate(id)) {
      complete(id);
      return;
    }
    cancel_recheck(id);
    cancel_checkpoint(id);
    sim.cancel(r.completion_event);
    r.completion_event = des::kNoEvent;
    r.rate = 0.0;
    r.wants_migration = false;
    remove_from_displaced(id);
    const int source = r.node;
    release_node(id);

    ++nodes[target_idx].reserved;
    sync_slots(target_idx);
    job.set_state(JobState::Migrating, now());
    ++inflight_migrations;
    ++self.migrations_;
    if (m_migrations) m_migrations->add();
    if (timeline) {
      timeline->record(now(), util::format("job %zu", static_cast<std::size_t>(id)), "migrating",
                       util::format("-> node %zu", target_idx));
    }
    r.mig_source = source;
    r.mig_target = static_cast<int>(target_idx);
    r.mig_attempts = 0;
    r.mig_start = now();
    r.mig_event = sim.schedule_in(
        migration_cost(job),
        [this, id, target_idx] { finish_migration(id, target_idx); },
        kTagMigration);
  }

  void finish_migration(JobId id, std::size_t target_idx) {
    JobRuntime& r = rt[id];
    Node& target = nodes[target_idx];
    // Transient link fault? The transfer is re-attempted after a backoff
    // with the destination slot still reserved; when retries run out the
    // job fails back to the queue (fail_to_queue releases the slot).
    if (faults_active && cfg.faults.link.drop_probability > 0.0 &&
        link_stream.uniform01() < cfg.faults.link.drop_probability) {
      if (r.mig_attempts < cfg.faults.link.max_retries) {
        ++r.mig_attempts;
        ++self.migration_retries_;
        if (timeline) {
          timeline->record(now(), util::format("job %zu", static_cast<std::size_t>(id)),
                           "transfer dropped",
                           util::format("retry %zu", r.mig_attempts));
        }
        if (tracer) tracer->instant(tl.mig_retry, now(), id);
        r.mig_event = sim.schedule_in(
            cfg.faults.link.retry_backoff + migration_cost(self.jobs_[id]),
            [this, id, target_idx] { finish_migration(id, target_idx); },
            kTagMigration);
        return;
      }
      ++self.migration_aborts_;
      if (m_aborts) m_aborts->add();
      if (tracer) tracer->virtual_span(tl.mig_abort, r.mig_start, now(), id);
      fail_to_queue(id);
      placement();
      return;
    }
    r.mig_event = des::kNoEvent;
    r.mig_source = r.mig_target = -1;
    --inflight_migrations;
    if (target.reserved == 0) {
      throw std::logic_error(
          "ClusterSim: migration arrived with no reserved slot");
    }
    --target.reserved;
    sync_slots(target_idx);
    if (tracer) tracer->virtual_span(tl.migration, r.mig_start, now(), id);
    place_job(id, target_idx);
    placement();
  }

  [[nodiscard]] bool migration_slot_available() const {
    return cfg.max_concurrent_migrations == 0 ||
           inflight_migrations < cfg.max_concurrent_migrations;
  }

  /// Best node with a free slot, or nullopt. Preference order: emptier
  /// first (spread before sharing), then lower utilization, then index.
  /// This is THE placement scan: a straight pass over four SoA arrays,
  /// branch-light and cache-linear even at 100k nodes.
  [[nodiscard]] std::optional<std::size_t> best_free_node(bool want_idle) const {
    const std::uint8_t want = want_idle ? 1 : 0;
    const std::size_t n = nodes.size();
    std::optional<std::size_t> best;
    std::uint32_t best_used = 0;
    double best_util = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (node_down[i] != 0) continue;  // dead nodes host nothing (down =>
                                        // non-idle, but lingering policies
                                        // probe non-idle nodes)
      if (node_idle[i] != want) continue;
      const std::uint32_t used = node_used[i];
      if (used >= cfg.max_foreign_per_node) continue;
      if (!best) {
        best = i;
        best_used = used;
        best_util = node_util[i];
        continue;
      }
      if (used != best_used) {
        if (used < best_used) {
          best = i;
          best_used = used;
          best_util = node_util[i];
        }
      } else if (node_util[i] < best_util) {
        best = i;
        best_used = used;
        best_util = node_util[i];
      }
    }
    return best;
  }

  bool in_placement = false;
  bool placement_pending = false;

  void placement() {
    // Guard: completing a job inside start_migration() re-enters placement;
    // defer the nested pass so target choices are never stale.
    if (in_placement) {
      placement_pending = true;
      return;
    }
    in_placement = true;
    do {
      placement_pending = false;
      placement_pass();
    } while (placement_pending);
    in_placement = false;
    // Every path that changes queue length or node occupancy funnels
    // through a placement pass, so this one call keeps the time-weighted
    // accumulators exact.
    note_metrics();
  }

  void placement_pass() {
    // 1. Displaced (suspended) jobs migrate as soon as idle targets exist.
    while (!displaced.empty() && migration_slot_available()) {
      const auto target = best_free_node(/*want_idle=*/true);
      if (!target) break;
      const JobId id = displaced.front();
      displaced.pop_front();
      rt[id].displaced = false;
      start_migration(id, *target);
    }
    // 2. Fresh queue onto free slots: idle first, then (if the policy
    //    lingers) the most lightly loaded non-idle nodes.
    while (!queue.empty()) {
      auto target = best_free_node(/*want_idle=*/true);
      if (!target && policy->allows_lingering()) {
        target = best_free_node(/*want_idle=*/false);
      }
      if (!target) break;
      const JobId id = queue.front();
      queue.pop_front();
      place_job(id, *target);
    }
    // 3. Lingering jobs past their linger deadline move to leftover idle
    //    nodes, worst source first.
    {
      std::vector<JobId> movers;
      for (JobId id = 0; id < self.jobs_.size(); ++id) {
        if (rt[id].wants_migration && self.jobs_[id].state == JobState::Lingering) {
          movers.push_back(id);
        }
      }
      std::sort(movers.begin(), movers.end(), [this](JobId a, JobId b) {
        const double ua = node_util[static_cast<std::size_t>(rt[a].node)];
        const double ub = node_util[static_cast<std::size_t>(rt[b].node)];
        if (ua != ub) return ua > ub;
        return a < b;
      });
      for (JobId id : movers) {
        if (!migration_slot_available()) break;
        const auto target = best_free_node(/*want_idle=*/true);
        if (!target) break;
        start_migration(id, *target);
      }
    }
  }

  void complete(JobId id) {
    JobRuntime& r = rt[id];
    JobRecord& job = self.jobs_[id];
    sim.cancel(r.completion_event);
    r.completion_event = des::kNoEvent;
    cancel_recheck(id);
    cancel_checkpoint(id);
    r.wants_migration = false;
    remove_from_displaced(id);
    release_node(id);
    job.remaining = 0.0;
    job.set_state(JobState::Done, now());
    --self.active_jobs_;
    if (m_completed) m_completed->add();
    if (g_delivered) g_delivered->set(self.delivered_cpu_);
    if (timeline) timeline->record(now(), util::format("job %zu", static_cast<std::size_t>(id)), "done");
    if (on_complete) on_complete(job);
    placement();
  }

  void account_window() {
    const std::size_t n = nodes.size();
    for (std::size_t i = 0; i < n; ++i) {
      fg_cpu += node_util[i] * period;
      total_node_time += period;
      if (node_idle[i] != 0) idle_node_time += period;
      if (node_occ[i] == 0) continue;  // SoA guard: most nodes host nobody
      // Each guest actively stealing cycles adds its own switch overhead to
      // the owner's work.
      for (JobId id : nodes[i].occupants) {
        const JobState s = self.jobs_[id].state;
        if (s == JobState::Running || s == JobState::Lingering) {
          fg_delay += rates.ldr(node_util[i]) * node_util[i] * period;
        }
      }
    }
  }

  // ---- fault injection & checkpointing ----------------------------------

  void schedule_faults() {
    for (const fault::FaultEvent& ev : faults.events()) {
      const fault::FaultEvent* e = &ev;  // stable: events_ never mutates
      sim.schedule_at(ev.time, [this, e] { apply_fault(*e); }, kTagFault);
    }
  }

  void apply_fault(const fault::FaultEvent& ev) {
    switch (ev.kind) {
      case fault::FaultKind::NodeCrash:
        crash_node(ev.nodes.front(), ev.duration);
        break;
      case fault::FaultKind::Storm:
        start_storm(ev);
        break;
      case fault::FaultKind::Pressure:
        start_pressure(ev);
        break;
    }
  }

  void crash_node(std::size_t idx, double downtime) {
    Node& n = nodes[idx];
    ++self.crashes_;
    if (m_crashes) m_crashes->add();
    if (timeline) {
      timeline->record(now(), util::format("node %zu", idx), "crashed",
                       util::format("down %.1f s", downtime));
    }
    if (tracer) tracer->instant(tl.crash, now(), idx);
    const double until = now() + downtime;
    if (node_down[idx] != 0) {
      // Overlapping crash: extend the outage; the extra recovery event
      // scheduled here supersedes the earlier one (recover_node re-checks
      // down_until and ignores stale wakeups).
      if (until > n.down_until) {
        n.down_until = until;
        sim.schedule_at(until, [this, idx] { recover_node(idx); }, kTagFault);
      }
      return;
    }
    node_down[idx] = 1;
    n.down_until = until;
    n.down_since = now();
    node_idle[idx] = 0;
    node_util[idx] = 0.0;
    // Resident foreign jobs die with the node and restart from their last
    // checkpoint via the queue. Progress is integrated up to the crash
    // instant first so the rollback accounting is exact.
    const std::vector<JobId> snapshot = n.occupants;
    for (JobId id : snapshot) {
      if (self.jobs_[id].state == JobState::Done) continue;
      if (integrate(id)) {
        complete(id);
        continue;
      }
      fail_to_queue(id);
    }
    // In-flight migrations touching the dead node (either endpoint) abort:
    // the image source or destination is gone mid-transfer.
    for (JobId id = 0; id < self.jobs_.size(); ++id) {
      JobRuntime& r = rt[id];
      if (r.mig_event == des::kNoEvent) continue;
      if (r.mig_target == static_cast<int>(idx) ||
          r.mig_source == static_cast<int>(idx)) {
        ++self.migration_aborts_;
        if (m_aborts) m_aborts->add();
        if (tracer) tracer->virtual_span(tl.mig_abort, r.mig_start, now(), id);
        fail_to_queue(id);
      }
    }
    sim.schedule_at(n.down_until, [this, idx] { recover_node(idx); },
                    kTagFault);
    placement();
  }

  void recover_node(std::size_t idx) {
    Node& n = nodes[idx];
    if (node_down[idx] == 0) return;
    if (now() + 1e-9 < n.down_until) return;  // superseded by a longer outage
    node_down[idx] = 0;
    if (tracer) tracer->virtual_span(tl.outage, n.down_since, now(), idx);
    update_sample(idx);
    node_episode[idx] = now();
    if (timeline) {
      timeline->record(now(), util::format("node %zu", idx),
                       is_idle(idx) ? "recovered idle" : "recovered busy");
    }
    placement();
  }

  void start_storm(const fault::FaultEvent& ev) {
    for (std::size_t idx : ev.nodes) {
      Node& n = nodes[idx];
      if (node_down[idx] != 0) continue;  // already dead: nothing to reclaim
      n.forced_busy_until = std::max(n.forced_busy_until, now() + ev.duration);
      n.forced_util = std::max(n.forced_util, cfg.faults.storm.utilization);
      const bool was_idle = is_idle(idx);
      node_idle[idx] = 0;
      node_util[idx] = std::max(node_util[idx], n.forced_util);
      if (was_idle) {
        node_episode[idx] = now();
        if (timeline) {
          timeline->record(now(), util::format("node %zu", idx), "storm",
                           util::format("util %.2f", node_util[idx]));
        }
        if (tracer) tracer->instant(tl.storm, now(), idx);
        // Exactly the owner-returned path of tick(): every occupant faces
        // the policy at once — the storm's point is simultaneous eviction
        // pressure across the membership set.
        const std::vector<JobId> snapshot = n.occupants;
        for (JobId id : snapshot) {
          const JobState s = self.jobs_[id].state;
          if (s == JobState::Done || s == JobState::Checkpointing) continue;
          if (integrate(id)) {
            complete(id);
          } else {
            handle_nonidle(id);
          }
        }
      }
      refresh_node_rates(idx);
    }
    placement();
  }

  void start_pressure(const fault::FaultEvent& ev) {
    for (std::size_t idx : ev.nodes) {
      Node& n = nodes[idx];
      if (node_down[idx] != 0 || !cfg.model_memory || !n.pool) continue;
      n.pressure_until = std::max(n.pressure_until, now() + ev.duration);
      n.pressure_kb = std::max(n.pressure_kb, cfg.faults.pressure.extra_kb);
      if (timeline) {
        timeline->record(now(), util::format("node %zu", idx), "mem pressure",
                         util::format("+%u KB", n.pressure_kb));
      }
      if (tracer) tracer->instant(tl.pressure, now(), idx);
      // Re-split the page pool under the spike without re-reading the
      // owner-activity half of the window; the spike decays at the first
      // window boundary past pressure_until.
      update_memory_sample(idx, current_window(n));
      refresh_node_rates(idx);
    }
  }

  /// Tears a job out of wherever it is (node residence, in-flight
  /// migration, checkpoint write) and returns it to the dispatch queue,
  /// rolling progress back to its last checkpoint. Shared by crash victims
  /// and migrations whose retries ran out.
  void fail_to_queue(JobId id) {
    JobRuntime& r = rt[id];
    JobRecord& job = self.jobs_[id];
    sim.cancel(r.completion_event);
    r.completion_event = des::kNoEvent;
    cancel_recheck(id);
    cancel_checkpoint(id);
    r.rate = 0.0;
    r.wants_migration = false;
    remove_from_displaced(id);
    if (r.mig_event != des::kNoEvent) {
      sim.cancel(r.mig_event);  // no-op when the event is mid-fire
      r.mig_event = des::kNoEvent;
      --inflight_migrations;
      const auto target_idx = static_cast<std::size_t>(r.mig_target);
      Node& target = nodes[target_idx];
      if (target.reserved == 0) {
        throw std::logic_error(
            "ClusterSim: aborting a migration with no reserved slot");
      }
      --target.reserved;
      sync_slots(target_idx);
      r.mig_source = r.mig_target = -1;
    }
    release_node(id, /*charge_owner_penalty=*/false);
    const double progress = job.cpu_demand - job.remaining;
    const double lost = std::max(0.0, progress - job.checkpointed);
    if (lost > 0.0) {
      job.remaining += lost;
      self.delivered_cpu_ -= lost;
      self.work_lost_ += lost;
      if (g_work_lost) g_work_lost->set(self.work_lost_);
      if (g_delivered) g_delivered->set(self.delivered_cpu_);
    }
    ++job.restarts;
    ++self.restarts_;
    if (m_restarts) m_restarts->add();
    job.set_state(JobState::Queued, now());
    r.last_update = now();
    queue.push_back(id);
    if (timeline) {
      timeline->record(now(), util::format("job %zu", static_cast<std::size_t>(id)),
                       "requeued", util::format("lost %.2f s", lost));
    }
    if (tracer) tracer->instant(tl.requeue, now(), id);
  }

  void cancel_checkpoint(JobId id) {
    sim.cancel(rt[id].checkpoint_event);
    rt[id].checkpoint_event = des::kNoEvent;
  }

  /// Keeps the periodic-checkpoint timer consistent with the job's state:
  /// one pending timer while executing, none otherwise. With checkpointing
  /// disabled this never schedules anything — a compiled-in-but-unused
  /// checkpoint layer costs fault-free runs nothing (pinned by goldens and
  /// bench/micro_fault).
  void sync_checkpoint(JobId id) {
    if (!cfg.checkpoint.enabled()) return;
    JobRuntime& r = rt[id];
    const JobState s = self.jobs_[id].state;
    const bool executing = s == JobState::Running || s == JobState::Lingering;
    if (executing) {
      if (r.checkpoint_event == des::kNoEvent) {
        r.checkpoint_event = sim.schedule_in(
            cfg.checkpoint.interval, [this, id] { on_checkpoint(id); },
            kTagCheckpoint);
      }
    } else if (s != JobState::Checkpointing) {
      // While Checkpointing, checkpoint_event is the write-finish event.
      cancel_checkpoint(id);
    }
  }

  void on_checkpoint(JobId id) {
    JobRuntime& r = rt[id];
    r.checkpoint_event = des::kNoEvent;
    JobRecord& job = self.jobs_[id];
    if (job.state != JobState::Running && job.state != JobState::Lingering) {
      return;
    }
    if (integrate(id)) {
      complete(id);
      return;
    }
    sim.cancel(r.completion_event);
    r.completion_event = des::kNoEvent;
    cancel_recheck(id);  // a recheck mid-write would misread the state
    r.rate = 0.0;
    const auto node_idx = static_cast<std::size_t>(r.node);
    job.set_state(JobState::Checkpointing, now());
    r.ckpt_start = now();
    if (timeline) {
      timeline->record(now(), util::format("job %zu", static_cast<std::size_t>(id)),
                       "checkpointing");
    }
    refresh_node_rates(node_idx);  // the writer stops sharing the CPU
    r.checkpoint_event = sim.schedule_in(
        cfg.checkpoint.cost(job.bytes), [this, id] { finish_checkpoint(id); },
        kTagCheckpoint);
  }

  void finish_checkpoint(JobId id) {
    JobRuntime& r = rt[id];
    r.checkpoint_event = des::kNoEvent;
    JobRecord& job = self.jobs_[id];
    // A crash mid-write already re-queued the job (and the write is void).
    if (job.state != JobState::Checkpointing) return;
    job.checkpointed = job.cpu_demand - job.remaining;
    ++job.checkpoints;
    ++self.checkpoints_;
    if (m_checkpoints) m_checkpoints->add();
    if (tracer) tracer->virtual_span(tl.checkpoint, r.ckpt_start, now(), id);
    r.last_update = now();
    const auto node_idx = static_cast<std::size_t>(r.node);
    if (is_idle(node_idx)) {
      job.set_state(JobState::Running, now());
      reschedule_completion(id);
      sync_checkpoint(id);
    } else {
      handle_nonidle(id);  // re-arms the timer via its sync_checkpoint
      if (job.state == JobState::Done) return;
    }
    refresh_node_rates(node_idx);
    placement();
  }

  void tick() {
    tick_scheduled = false;
    const std::size_t n_count = nodes.size();
    for (std::size_t i = 0; i < n_count; ++i) {
      const bool was_idle = is_idle(i);
      update_sample(i);
      if (timeline && was_idle != is_idle(i)) {
        timeline->record(now(), util::format("node %zu", i),
                         is_idle(i) ? "idle" : "busy",
                         util::format("util %.2f", node_util[i]));
      }
      if (was_idle && !is_idle(i)) {
        // Owner returned mid-run: consult the policy for every occupant.
        const std::vector<JobId> snapshot = nodes[i].occupants;
        for (JobId id : snapshot) {
          const JobState s = self.jobs_[id].state;
          if (s == JobState::Done || s == JobState::Checkpointing) continue;
          if (integrate(id)) {
            complete(id);
          } else {
            handle_nonidle(id);
          }
        }
        refresh_node_rates(i);
      } else if (!was_idle && is_idle(i)) {
        handle_idle_transition(i);
      } else if (node_occ[i] != 0) {
        // Same state, possibly new utilization level: refresh the shares.
        // SoA guard: refreshing an empty node is a no-op — skipping the
        // call keeps the tick loop allocation-free for idle regions.
        refresh_node_rates(i);
      }
    }
    account_window();
    placement();
    ensure_tick();
  }
};

ClusterSim::ClusterSim(ClusterConfig config,
                       std::span<const trace::CoarseTrace> pool,
                       const workload::BurstTable& burst_table,
                       rng::Stream stream)
    : impl_(std::make_unique<Impl>(*this, std::move(config))) {
  Impl& im = *impl_;
  if (pool.empty()) {
    throw std::invalid_argument("ClusterSim: empty trace pool");
  }
  if (im.cfg.node_count == 0) {
    throw std::invalid_argument("ClusterSim: node_count must be > 0");
  }
  if (im.cfg.max_foreign_per_node == 0) {
    throw std::invalid_argument("ClusterSim: max_foreign_per_node must be > 0");
  }
  if (!(im.cfg.policy_params.pause_time >= 0.0)) {
    throw std::invalid_argument("ClusterSim: pause_time must be >= 0");
  }
  if (!(im.cfg.policy_params.linger_scale >= 0.0)) {
    throw std::invalid_argument("ClusterSim: linger_scale must be >= 0");
  }
  if (!(im.cfg.migration.bandwidth_bps > 0.0)) {
    throw std::invalid_argument(
        "ClusterSim: migration bandwidth must be > 0");
  }
  if (!(im.cfg.context_switch >= 0.0)) {
    throw std::invalid_argument("ClusterSim: context_switch must be >= 0");
  }
  im.cfg.checkpoint.validate();
  im.cfg.faults.validate();
  im.period = pool.front().period();
  for (const auto& t : pool) {
    if (t.empty()) throw std::invalid_argument("ClusterSim: empty trace in pool");
    if (t.period() != im.period) {
      throw std::invalid_argument("ClusterSim: traces must share one period");
    }
  }

  im.policy = core::make_policy(im.cfg.policy, im.cfg.policy_params);
  im.rates = node::EffectiveRateTable::analytic(burst_table, im.cfg.context_switch);

  // Idle-flag cache per pool entry + measured idle utilization "l".
  im.flag_cache.reserve(pool.size());
  double idle_cpu_sum = 0.0;
  std::size_t idle_cpu_count = 0;
  for (const auto& t : pool) {
    im.flag_cache.push_back(trace::idle_flags(t, im.cfg.recruitment));
    im.remaining_cache.push_back(
        Impl::remaining_nonidle(im.flag_cache.back(), im.period));
    const auto& flags = im.flag_cache.back();
    for (std::size_t i = 0; i < flags.size(); ++i) {
      if (flags[i]) {
        idle_cpu_sum += t.samples()[i].cpu;
        ++idle_cpu_count;
      }
    }
  }
  if (im.cfg.idle_utilization_estimate >= 0.0) {
    idle_util_ = im.cfg.idle_utilization_estimate;
  } else if (idle_cpu_count > 0) {
    idle_util_ = idle_cpu_sum / static_cast<double>(idle_cpu_count);
  }

  // Node setup: random trace, random window-aligned offset.
  rng::Stream setup = stream.fork("node-setup");
  im.nodes.resize(im.cfg.node_count);
  im.node_util.assign(im.cfg.node_count, 0.0);
  im.node_idle.assign(im.cfg.node_count, 1);
  im.node_down.assign(im.cfg.node_count, 0);
  im.node_occ.assign(im.cfg.node_count, 0);
  im.node_used.assign(im.cfg.node_count, 0);
  im.node_episode.assign(im.cfg.node_count, 0.0);
  for (std::size_t i = 0; i < im.cfg.node_count; ++i) {
    Node& n = im.nodes[i];
    const auto pick = im.cfg.randomize_placement
                          ? setup.uniform_index(pool.size())
                          : i % pool.size();
    n.trace = &pool[pick];
    n.flags = &im.flag_cache[pick];
    n.remaining = &im.remaining_cache[pick];
    n.offset_windows = im.cfg.randomize_placement
                           ? setup.uniform_index(n.trace->samples().size())
                           : 0;
    if (im.cfg.model_memory) {
      node::PagePoolConfig pc;
      pc.total_pages = node::PagePool::kb_to_pages(im.cfg.mem_total_kb);
      n.pool.emplace(pc);
    }
    // Initial sample at t = 0; nodes starting non-idle have episode age 0.
    im.update_sample(i);
    im.node_episode[i] = 0.0;
  }
  im.account_window();
  im.tick_scheduled = true;
  im.sim.schedule_at(im.period, [this] { impl_->tick(); }, kTagTick);

  // Fault timeline last, and only for non-empty specs: an empty spec forks
  // no streams and schedules no events, keeping fault-free runs bit-for-bit
  // identical to pre-fault builds (the goldens pin this). Forking is a pure
  // function of (seed, label), so even a non-empty spec cannot perturb the
  // node-setup draws above.
  im.faults_active = !im.cfg.faults.empty();
  if (im.faults_active) {
    im.faults = fault::FaultSchedule::compile(im.cfg.faults, im.cfg.node_count,
                                              stream.fork("faults"));
    im.link_stream = stream.fork("fault-link");
    im.schedule_faults();
  }
}

ClusterSim::~ClusterSim() = default;

JobId ClusterSim::submit(double cpu_demand_seconds) {
  if (!(cpu_demand_seconds > 0.0)) {
    throw std::invalid_argument("submit: demand must be > 0");
  }
  Impl& im = *impl_;
  const auto id = static_cast<JobId>(jobs_.size());
  JobRecord job;
  job.id = id;
  job.cpu_demand = cpu_demand_seconds;
  job.remaining = cpu_demand_seconds;
  job.bytes = im.cfg.job_bytes;
  job.submit_time = im.now();
  job.state = JobState::Queued;
  job.state_since = im.now();
  jobs_.push_back(std::move(job));
  im.rt.emplace_back();
  im.rt.back().last_update = im.now();
  ++active_jobs_;
  if (im.m_submitted) im.m_submitted->add();
  if (im.timeline) {
    im.timeline->record(im.now(), util::format("job %zu", static_cast<std::size_t>(id)), "queued",
                        util::format("demand %.1f s", cpu_demand_seconds));
  }
  im.queue.push_back(id);
  im.ensure_tick();
  im.placement();
  return id;
}

void ClusterSim::set_completion_callback(std::function<void(const JobRecord&)> cb) {
  impl_->on_complete = std::move(cb);
}

void ClusterSim::run_until_all_complete(double max_horizon) {
  Impl& im = *impl_;
  while (active_jobs_ > 0) {
    if (!im.sim.step()) {
      throw std::logic_error(
          "ClusterSim: event queue drained with jobs incomplete");
    }
    if (im.now() > max_horizon) {
      throw std::runtime_error("ClusterSim: exceeded max horizon with " +
                               std::to_string(active_jobs_) +
                               " jobs incomplete");
    }
  }
}

void ClusterSim::run_for(double duration) {
  Impl& im = *impl_;
  if (!(duration >= 0.0)) {
    throw std::invalid_argument("run_for: negative duration");
  }
  im.tick_horizon = std::max(im.tick_horizon, im.now() + duration);
  im.ensure_tick();
  im.sim.run_until(im.now() + duration);
  // Fold partial progress at the horizon so delivered_cpu() is exact.
  for (JobId id = 0; id < jobs_.size(); ++id) {
    if (jobs_[id].state == JobState::Running ||
        jobs_[id].state == JobState::Lingering) {
      if (im.integrate(id)) im.complete(id);
    }
  }
}

double ClusterSim::now() const { return impl_->now(); }

const ClusterConfig& ClusterSim::config() const { return impl_->cfg; }

void ClusterSim::set_metrics(obs::MetricRegistry* registry) {
  Impl& im = *impl_;
  if (!registry) {
    im.m_submitted = im.m_completed = im.m_migrations = nullptr;
    im.m_crashes = im.m_restarts = im.m_checkpoints = im.m_aborts = nullptr;
    im.g_delivered = im.g_work_lost = nullptr;
    im.tw_queue = im.tw_occupied = im.tw_idle = nullptr;
    return;
  }
  im.m_submitted = &registry->counter("cluster.jobs_submitted");
  im.m_completed = &registry->counter("cluster.jobs_completed");
  im.m_migrations = &registry->counter("cluster.migrations");
  im.m_crashes = &registry->counter("fault.crashes");
  im.m_restarts = &registry->counter("fault.restarts");
  im.m_checkpoints = &registry->counter("fault.checkpoints");
  im.m_aborts = &registry->counter("fault.migration_aborts");
  im.g_delivered = &registry->gauge("cluster.delivered_cpu_seconds");
  im.g_work_lost = &registry->gauge("fault.work_lost_cpu_seconds");
  im.tw_queue = &registry->time_weighted("cluster.queue_length");
  im.tw_occupied = &registry->time_weighted("cluster.occupied_nodes");
  im.tw_idle = &registry->time_weighted("cluster.idle_nodes");
  im.note_metrics();
}

void ClusterSim::set_timeline(obs::Timeline* timeline) {
  impl_->timeline = timeline;
}

void ClusterSim::set_tracer(obs::Tracer* tracer) {
  Impl& im = *impl_;
  im.tracer = tracer;
  if (!tracer) return;
  im.tl.migration = tracer->label("cluster.migration");
  im.tl.mig_retry = tracer->label("cluster.migration.retry");
  im.tl.mig_abort = tracer->label("cluster.migration.abort");
  im.tl.requeue = tracer->label("cluster.requeue");
  im.tl.crash = tracer->label("fault.crash");
  im.tl.outage = tracer->label("fault.outage");
  im.tl.storm = tracer->label("fault.storm");
  im.tl.pressure = tracer->label("fault.pressure");
  im.tl.checkpoint = tracer->label("cluster.checkpoint");
}

des::SimObserver* ClusterSim::set_sim_observer(des::SimObserver* observer) {
  return impl_->sim.set_observer(observer);
}

const des::Simulation& ClusterSim::engine() const { return impl_->sim; }

std::vector<ClusterSim::NodeSnapshot> ClusterSim::node_snapshots() const {
  const Impl& im = *impl_;
  std::vector<NodeSnapshot> out;
  out.reserve(im.nodes.size());
  for (std::size_t i = 0; i < im.nodes.size(); ++i) {
    NodeSnapshot s;
    s.idle = im.node_idle[i] != 0;
    s.down = im.node_down[i] != 0;
    s.utilization = im.node_util[i];
    s.reserved = im.nodes[i].reserved;
    s.occupants = im.nodes[i].occupants;
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t ClusterSim::inflight_migrations() const {
  return impl_->inflight_migrations;
}

const fault::FaultSchedule& ClusterSim::fault_schedule() const {
  return impl_->faults;
}

double ClusterSim::foreground_delay_ratio() const {
  return impl_->fg_cpu > 0.0 ? impl_->fg_delay / impl_->fg_cpu : 0.0;
}

double ClusterSim::observed_idle_fraction() const {
  return impl_->total_node_time > 0.0
             ? impl_->idle_node_time / impl_->total_node_time
             : 0.0;
}

}  // namespace ll::cluster
