#pragma once

/// \file job.hpp
/// Foreign (guest) batch jobs and their lifecycle accounting.
///
/// The paper profiles the time jobs spend in each state — queued, running,
/// lingering (running on a non-idle node), paused, migrating (Figure 8) —
/// so the record keeps a per-state stopwatch updated on every transition.

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "util/stable_vector.hpp"

namespace ll::cluster {

using JobId = std::uint32_t;

enum class JobState : std::uint8_t {
  Queued,     ///< submitted, waiting for a node
  Running,    ///< executing on an idle node
  Lingering,  ///< executing at starvation priority on a non-idle node
  Paused,     ///< suspended in place (PM grace period / awaiting a target)
  Migrating,  ///< suspended while its image moves between nodes
  Done,
  /// Suspended while writing a checkpoint image (fault::CheckpointConfig).
  /// Appended after Done: the verification digests fold the numeric state
  /// values, so existing states must keep their values forever.
  Checkpointing,
};
inline constexpr std::size_t kJobStateCount = 7;

[[nodiscard]] std::string_view to_string(JobState state);

/// One foreign job's static description plus dynamic bookkeeping.
struct JobRecord {
  JobId id = 0;
  double cpu_demand = 0.0;   // total CPU-seconds required
  double remaining = 0.0;    // CPU-seconds still to deliver
  std::uint64_t bytes = 0;   // process image size (migration payload)
  double submit_time = 0.0;

  JobState state = JobState::Queued;
  double state_since = 0.0;
  std::array<double, kJobStateCount> state_time{};  // accumulated per state

  std::optional<double> first_start;  // first dispatch onto a node
  std::optional<double> completion;   // finish time

  /// CPU-seconds of progress preserved by the last completed checkpoint —
  /// a crash rolls `remaining` back to cpu_demand - checkpointed.
  double checkpointed = 0.0;
  std::uint32_t checkpoints = 0;  ///< checkpoints completed
  std::uint32_t restarts = 0;     ///< crash/abort re-queues suffered

  /// One entry per state transition (time and the state entered). Jobs see a
  /// handful of transitions over their lifetime, so the log is cheap; it
  /// feeds the debugging/event-export path (cluster::write_job_log) and the
  /// trajectory assertions in the tests.
  struct Transition {
    double time = 0.0;
    JobState to = JobState::Queued;
  };
  std::vector<Transition> history;

  /// Transitions to `next` at time `now`, folding the elapsed stint into
  /// state_time and appending to `history`. Transitioning to the current
  /// state is a no-op.
  void set_state(JobState next, double now);

  [[nodiscard]] double time_in(JobState s) const {
    return state_time[static_cast<std::size_t>(s)];
  }

  /// Queue wait + execution: completion - submit. Requires completion.
  [[nodiscard]] double turnaround() const;

  /// First-start to completion (the paper's "execution time" used for the
  /// variation metric). Requires completion and first_start.
  [[nodiscard]] double execution_time() const;
};

/// Pool-allocated job table, indexed by JobId. Chunked so completion
/// callbacks can submit new jobs (growing the table) while engine frames
/// still hold references to existing records — the property the previous
/// std::deque provided, now with contiguous 256-record chunks for the
/// scan-heavy consumers (state breakdowns, job logs, digests).
using JobStore = util::StableVector<JobRecord, 256>;

}  // namespace ll::cluster
