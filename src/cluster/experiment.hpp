#pragma once

/// \file experiment.hpp
/// Cluster experiment drivers for the paper's §4.2 evaluation.
///
/// Two workloads (Figure 7):
///  * Workload-1: 128 foreign jobs × 600 CPU-seconds on 64 nodes — heavy
///    demand, ~2 jobs per node.
///  * Workload-2: 16 jobs × 1800 CPU-seconds — light demand, ~1/4 of nodes.
///
/// Two modes:
///  * Open ("family"): all jobs submitted at t=0, run to completion —
///    yields average completion time, variation, family time, Figure 8's
///    state breakdown.
///  * Closed: the number of jobs in the system is held constant for a fixed
///    duration (completions trigger resubmission) — yields the throughput
///    metric (foreign CPU-seconds delivered per second).

#include <functional>
#include <span>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "stats/confidence.hpp"
#include "trace/coarse_generator.hpp"

namespace ll::cluster {

struct WorkloadSpec {
  std::size_t jobs = 128;
  double demand = 600.0;  // CPU-seconds per job
};

/// The paper's two workloads.
[[nodiscard]] WorkloadSpec workload_1();
[[nodiscard]] WorkloadSpec workload_2();

struct ClusterReport {
  // Open-mode metrics (zero for closed runs).
  double avg_completion = 0.0;  // mean (completion - submit), paper "Avg. Job"
  double variation = 0.0;       // stddev(execution time)/mean, paper "Variation"
  double family_time = 0.0;     // completion of the last job
  double p50_completion = 0.0;  // median turnaround
  double p90_completion = 0.0;  // 90th-percentile turnaround
  // Closed-mode metric (zero for open runs).
  double throughput = 0.0;  // foreign CPU-seconds delivered per second

  // Figure 8: average per-job time in each state.
  double avg_queued = 0.0;
  double avg_running = 0.0;
  double avg_lingering = 0.0;
  double avg_paused = 0.0;
  double avg_migrating = 0.0;

  double avg_checkpointing = 0.0;

  double foreground_delay = 0.0;  // paper: < 0.5%
  std::size_t migrations = 0;
  std::size_t completed = 0;
  double observed_idle_fraction = 0.0;
  double wall_time = 0.0;  // virtual seconds simulated

  // Fault/checkpoint metrics (all identity values on fault-free runs).
  double goodput = 1.0;     // delivered / (delivered + work_lost)
  double work_lost = 0.0;   // CPU-seconds computed then rolled back
  std::size_t restarts = 0;
  std::size_t crashes = 0;
  std::size_t checkpoints = 0;
};

struct ExperimentConfig {
  ClusterConfig cluster;
  WorkloadSpec workload;
  std::uint64_t seed = 42;
};

/// Observability hooks for the run drivers. `on_start` fires right after
/// the simulator is constructed (attach metrics registries, timelines,
/// engine observers); `on_finish` fires after the run completes but while
/// the simulator is still alive (snapshot the profiler against the engine).
/// Hooks must be observational only: attaching them must not change the
/// simulated behavior (the golden-digest suite pins this for the obs
/// layer's own hooks).
struct RunHooks {
  std::function<void(ClusterSim&)> on_start;
  std::function<void(ClusterSim&)> on_finish;
};

/// Open-mode run over an existing trace pool. When `jobs_out` is non-null it
/// receives the per-job records (state times, transition histories) for
/// export via write_job_log or custom analysis.
[[nodiscard]] ClusterReport run_open(const ExperimentConfig& config,
                                     std::span<const trace::CoarseTrace> pool,
                                     const workload::BurstTable& table,
                                     JobStore* jobs_out = nullptr,
                                     const RunHooks* hooks = nullptr);

/// Closed-mode run: holds `workload.jobs` jobs in the system for `duration`.
[[nodiscard]] ClusterReport run_closed(const ExperimentConfig& config,
                                       std::span<const trace::CoarseTrace> pool,
                                       const workload::BurstTable& table,
                                       double duration = 3600.0,
                                       const RunHooks* hooks = nullptr);

/// Runs `fn(seed)` for `replications` derived seeds on the shared bounded
/// task pool (util::TaskRunner::shared()) and returns the reports in seed
/// order regardless of execution order. `fn` must be thread-safe (each call
/// builds its own simulator). If a replication throws, the first failure in
/// seed order is rethrown after all replications have settled.
[[nodiscard]] std::vector<ClusterReport> replicate(
    std::size_t replications, std::uint64_t base_seed,
    const std::function<ClusterReport(std::uint64_t seed)>& fn);

/// Mean of a metric across reports with its 95% confidence interval.
[[nodiscard]] stats::ConfidenceInterval summarize(
    const std::vector<ClusterReport>& reports,
    const std::function<double(const ClusterReport&)>& metric);

/// Exports every job's state-transition history as CSV
/// (columns: job, time, state) — the debugging/visualization feed.
void write_job_log(const JobStore& jobs, std::ostream& out);
void write_job_log(const JobStore& jobs, const std::string& path);

}  // namespace ll::cluster
