#pragma once

/// \file cluster_sim.hpp
/// The cluster-level discrete-event simulator (paper §4.2).
///
/// N workstation nodes each replay a coarse utilization/memory/keyboard
/// trace (random trace, random window-aligned offset, as in the paper).
/// Foreign batch jobs are submitted to a central FIFO queue and placed onto
/// nodes according to one of the four policies. Within a 2-second coarse
/// window a node's owner utilization u is constant, so a foreign job's
/// progress integrates analytically at the calibrated effective rate
/// (1-u)·fcsr(u) — the fine-grain contention physics enters through the
/// EffectiveRateTable calibrated from the burst model, keeping 64-node,
/// multi-hour, multi-policy sweeps essentially instant without giving up the
/// fine-grain behaviour the policy exploits.
///
/// Eviction/migration mechanics:
///  * A migration suspends the job for the full migration latency
///    (endpoint processing + image transfer at the effective bandwidth).
///  * Policies that forbid lingering leave their job suspended in place when
///    no idle target exists; it resumes if the owner departs first (as
///    Condor does), otherwise it migrates as soon as a target frees up.
///  * Linger-Longer jobs keep executing while awaiting a target.
///
/// Foreground impact: every window a foreign job shares a node with owner
/// activity, the owner's work is charged the calibrated delay ratio ldr(u)
/// — aggregated into foreground_delay_ratio(), the paper's "< 0.5%" number.

#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "core/policy.hpp"
#include "cluster/job.hpp"
#include "des/simulation.hpp"
#include "fault/checkpoint.hpp"
#include "fault/fault_spec.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"
#include "node/effective_rate.hpp"
#include "node/memory_model.hpp"
#include "rng/rng.hpp"
#include "trace/recruitment.hpp"
#include "workload/burst_table.hpp"

namespace ll::cluster {

struct ClusterConfig {
  std::size_t node_count = 64;
  /// Event-queue backend for the internal engine. Both backends fire the
  /// exact same event sequence (the golden digests are backend-invariant);
  /// calendar is the right choice for very large node counts, where the
  /// pending-event population reaches the hundreds of thousands.
  des::QueueBackend queue = des::QueueBackend::kHeap;
  core::PolicyKind policy = core::PolicyKind::LingerLonger;
  core::PolicyParams policy_params;
  core::MigrationCostModel migration;
  trace::RecruitmentRule recruitment;
  /// Effective context-switch cost feeding the fcsr/ldr calibration.
  double context_switch = 100e-6;
  /// Foreign job process image (migration payload). Paper: 8 MB.
  std::uint64_t job_bytes = 8ull << 20;
  /// Foreign job resident working set, for the page-priority model.
  std::uint32_t job_mem_kb = 8192;
  /// Destination-utilization estimate "l" for the linger cost model.
  /// Negative => measure it from the trace pool (mean CPU over idle windows).
  double idle_utilization_estimate = -1.0;
  /// Foreign jobs allowed to share one node. The paper fixes this at 1 (the
  /// free-memory headroom fits "one compute-bound foreign job of moderate
  /// size"); co-resident jobs processor-share the leftover rate and compete
  /// for the donated page pool (abl_multi_occupancy).
  std::size_t max_foreign_per_node = 1;
  /// Cap on simultaneous in-flight migrations; 0 = unlimited (the effective
  /// bandwidth already reflects the paper's network-load throttling).
  std::size_t max_concurrent_migrations = 0;
  /// One-time owner-side cost (seconds of owner work) charged whenever a
  /// foreign job departs a node whose owner is active: the time to re-load
  /// the virtual-memory pages and caches the guest displaced. The paper's
  /// §1 argues eviction-based systems impose exactly this hidden cost; it
  /// accrues into foreground_delay_ratio(). 0 disables it.
  double owner_restore_penalty = 0.0;
  /// Model the priority page pools (memory pressure can slow foreign jobs).
  bool model_memory = true;
  std::uint32_t mem_total_kb = 65536;
  /// Assign each node a random trace and random window-aligned offset (the
  /// paper's methodology). Tests disable this to pin node i to pool[i % n]
  /// at offset 0 for exact, pattern-driven scenarios.
  bool randomize_placement = true;
  /// Fault-injection plan (node crashes, migration-link drops, reclamation
  /// storms, memory-pressure spikes). The default (empty) spec compiles no
  /// schedule, forks no rng streams and schedules no events, so fault-free
  /// runs are bit-for-bit identical to builds without the fault layer —
  /// pinned by the golden-digest suite.
  fault::FaultSpec faults;
  /// Checkpoint/restart model for foreign jobs; interval 0 disables it
  /// (crashes then lose a job's full progress).
  fault::CheckpointConfig checkpoint;
};

class ClusterSim {
 public:
  /// The trace pool must be non-empty and share one sample period; nodes
  /// draw (trace, offset) pairs from `stream`.
  ClusterSim(ClusterConfig config, std::span<const trace::CoarseTrace> pool,
             const workload::BurstTable& burst_table, rng::Stream stream);

  ~ClusterSim();
  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  /// Submits a job with the given CPU demand at the current simulation time.
  JobId submit(double cpu_demand_seconds);

  /// Invoked the moment a job completes (closed-system experiments resubmit
  /// replacements from here).
  void set_completion_callback(std::function<void(const JobRecord&)> cb);

  /// Runs until every submitted job has completed (or `max_horizon` virtual
  /// seconds elapse, which throws — a guard against misconfigured runs).
  void run_until_all_complete(double max_horizon = 1e7);

  /// Runs exactly `duration` further virtual seconds (closed-system mode).
  void run_for(double duration);

  [[nodiscard]] double now() const;
  /// A chunked pool on purpose: closed-system callbacks submit new jobs
  /// while earlier records are still referenced inside the engine, and
  /// JobStore growth never invalidates references to existing elements.
  [[nodiscard]] const JobStore& jobs() const { return jobs_; }
  [[nodiscard]] std::size_t incomplete_jobs() const { return active_jobs_; }

  /// Total foreign CPU-seconds delivered so far.
  [[nodiscard]] double delivered_cpu() const { return delivered_cpu_; }

  /// Aggregate owner-work delay ratio across the whole cluster and run.
  [[nodiscard]] double foreground_delay_ratio() const;

  [[nodiscard]] std::size_t migrations_started() const { return migrations_; }

  /// CPU-seconds computed and then lost to crashes / failed migrations
  /// (progress past the victim's last checkpoint). delivered_cpu() never
  /// includes lost work, so goodput = delivered / (delivered + lost).
  [[nodiscard]] double work_lost() const { return work_lost_; }

  /// Crash/abort re-queues across all jobs.
  [[nodiscard]] std::size_t restarts() const { return restarts_; }

  /// Node-crash events applied so far.
  [[nodiscard]] std::size_t crashes() const { return crashes_; }

  /// In-flight migrations aborted (dead endpoint or retries exhausted).
  [[nodiscard]] std::size_t migration_aborts() const {
    return migration_aborts_;
  }

  /// Migration transfers re-attempted after a link drop.
  [[nodiscard]] std::size_t migration_retries() const {
    return migration_retries_;
  }

  /// Checkpoints completed across all jobs.
  [[nodiscard]] std::size_t checkpoints_taken() const { return checkpoints_; }

  /// Migrations currently in flight; at any quiescent point it equals the
  /// sum of reserved slots across nodes (verify/check_cluster_occupancy).
  [[nodiscard]] std::size_t inflight_migrations() const;

  /// The compiled fault timeline this run executes (empty when the config's
  /// spec is empty). `llsim faults` prints it before running.
  [[nodiscard]] const fault::FaultSchedule& fault_schedule() const;

  /// Fraction of node-time in the idle state (diagnostic).
  [[nodiscard]] double observed_idle_fraction() const;

  /// The "l" value the linger cost model is using.
  [[nodiscard]] double idle_utilization() const { return idle_util_; }

  /// The configuration this simulator was built with.
  [[nodiscard]] const ClusterConfig& config() const;

  /// Attaches a metrics registry (nullptr detaches). The simulator registers
  /// cluster.* counters/gauges and cluster.*-over-virtual-time accumulators
  /// (queue length, occupied/idle node counts) and updates them at the
  /// points where the underlying quantity changes. Purely observational:
  /// attaching a registry cannot change simulated behavior (the golden
  /// digest suite pins this). The registry must outlive its registration.
  void set_metrics(obs::MetricRegistry* registry);

  /// Attaches a ring-buffered timeline (nullptr detaches) recording job
  /// state transitions and node idle/busy flips. Same observational-only
  /// contract as set_metrics.
  void set_timeline(obs::Timeline* timeline);

  /// Attaches a flight-recorder tracer (nullptr detaches) emitting
  /// virtual-time spans for migrations, checkpoint writes, and node
  /// outages, plus instants for crashes, storms, pressure spikes, link
  /// retries, and requeues. Same observational-only contract as
  /// set_metrics; the tracer must outlive its registration.
  void set_tracer(obs::Tracer* tracer);

  /// Attaches an observer to the internal event engine (nullptr detaches;
  /// returns the previous observer). The verification layer uses this to
  /// stream digests of every fired event and to machine-check engine
  /// invariants; the observer must outlive its registration.
  des::SimObserver* set_sim_observer(des::SimObserver* observer);

  /// Read-only view of the internal event engine (clock, event counters)
  /// for the verification layer's conservation checks.
  [[nodiscard]] const des::Simulation& engine() const;

  /// Read-only view of one node's occupancy, for the verification layer's
  /// occupancy-legality invariant (src/verify/invariants.hpp). Taken at a
  /// quiescent point (between run_* calls) the legality rules hold exactly.
  struct NodeSnapshot {
    bool idle = true;              ///< recruitment-rule idle flag, this window
    bool down = false;             ///< crashed and not yet recovered
    double utilization = 0.0;      ///< owner CPU this window
    std::size_t reserved = 0;      ///< inbound migrations holding a slot
    std::vector<JobId> occupants;  ///< resident foreign jobs
  };
  [[nodiscard]] std::vector<NodeSnapshot> node_snapshots() const;

  /// Observer tags carried by the internal engine's events. The values are
  /// pinned by the golden digests (tests/golden/) — do not renumber.
  static constexpr std::uint64_t kTagTick = 1;
  static constexpr std::uint64_t kTagCompletion = 2;
  static constexpr std::uint64_t kTagRecheck = 3;
  static constexpr std::uint64_t kTagMigration = 4;
  static constexpr std::uint64_t kTagFault = 5;
  static constexpr std::uint64_t kTagCheckpoint = 6;

 private:
  struct Node;
  struct Impl;

  std::unique_ptr<Impl> impl_;
  JobStore jobs_;
  std::size_t active_jobs_ = 0;
  double delivered_cpu_ = 0.0;
  std::size_t migrations_ = 0;
  double work_lost_ = 0.0;
  std::size_t restarts_ = 0;
  std::size_t crashes_ = 0;
  std::size_t migration_aborts_ = 0;
  std::size_t migration_retries_ = 0;
  std::size_t checkpoints_ = 0;
  double idle_util_ = 0.05;
};

}  // namespace ll::cluster
