#include "cluster/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "stats/cdf.hpp"
#include "stats/summary.hpp"
#include "util/runner.hpp"

namespace ll::cluster {
namespace {

void fill_state_breakdown(ClusterReport& report,
                          const JobStore& jobs,
                          std::size_t job_count) {
  if (job_count == 0) return;
  const auto n = static_cast<double>(job_count);
  for (std::size_t i = 0; i < job_count && i < jobs.size(); ++i) {
    const JobRecord& job = jobs[i];
    report.avg_queued += job.time_in(JobState::Queued) / n;
    report.avg_running += job.time_in(JobState::Running) / n;
    report.avg_lingering += job.time_in(JobState::Lingering) / n;
    report.avg_paused += job.time_in(JobState::Paused) / n;
    report.avg_migrating += job.time_in(JobState::Migrating) / n;
    report.avg_checkpointing += job.time_in(JobState::Checkpointing) / n;
  }
}

void fill_fault_metrics(ClusterReport& report, const ClusterSim& sim) {
  report.work_lost = sim.work_lost();
  report.restarts = sim.restarts();
  report.crashes = sim.crashes();
  report.checkpoints = sim.checkpoints_taken();
  const double total = sim.delivered_cpu() + sim.work_lost();
  report.goodput = total > 0.0 ? sim.delivered_cpu() / total : 1.0;
}

}  // namespace

WorkloadSpec workload_1() { return WorkloadSpec{128, 600.0}; }

WorkloadSpec workload_2() { return WorkloadSpec{16, 1800.0}; }

ClusterReport run_open(const ExperimentConfig& config,
                       std::span<const trace::CoarseTrace> pool,
                       const workload::BurstTable& table,
                       JobStore* jobs_out,
                       const RunHooks* hooks) {
  rng::Stream master(config.seed);
  ClusterSim sim(config.cluster, pool, table, master.fork("cluster"));
  if (hooks && hooks->on_start) hooks->on_start(sim);
  for (std::size_t i = 0; i < config.workload.jobs; ++i) {
    sim.submit(config.workload.demand);
  }
  sim.run_until_all_complete();
  if (hooks && hooks->on_finish) hooks->on_finish(sim);

  ClusterReport report;
  stats::Summary turnaround;
  stats::Summary execution;
  std::vector<double> turnarounds;
  double family = 0.0;
  for (const JobRecord& job : sim.jobs()) {
    turnaround.add(job.turnaround());
    turnarounds.push_back(job.turnaround());
    execution.add(job.execution_time());
    family = std::max(family, *job.completion);
  }
  report.avg_completion = turnaround.mean();
  report.variation =
      execution.mean() > 0.0 ? execution.sample_stddev() / execution.mean() : 0.0;
  report.family_time = family;
  if (!turnarounds.empty()) {
    const stats::EmpiricalCdf cdf(std::move(turnarounds));
    report.p50_completion = cdf.quantile(0.5);
    report.p90_completion = cdf.quantile(0.9);
  }
  fill_state_breakdown(report, sim.jobs(), sim.jobs().size());
  report.foreground_delay = sim.foreground_delay_ratio();
  report.migrations = sim.migrations_started();
  report.completed = sim.jobs().size();
  report.observed_idle_fraction = sim.observed_idle_fraction();
  report.wall_time = sim.now();
  fill_fault_metrics(report, sim);
  if (jobs_out) *jobs_out = sim.jobs();
  return report;
}

ClusterReport run_closed(const ExperimentConfig& config,
                         std::span<const trace::CoarseTrace> pool,
                         const workload::BurstTable& table, double duration,
                         const RunHooks* hooks) {
  if (!(duration > 0.0)) {
    throw std::invalid_argument("run_closed: duration must be > 0");
  }
  rng::Stream master(config.seed);
  ClusterSim sim(config.cluster, pool, table, master.fork("cluster"));
  if (hooks && hooks->on_start) hooks->on_start(sim);
  // Hold the job population constant: every completion immediately enters a
  // replacement with the same demand.
  const double demand = config.workload.demand;
  sim.set_completion_callback(
      [&sim, demand](const JobRecord&) { sim.submit(demand); });
  for (std::size_t i = 0; i < config.workload.jobs; ++i) {
    sim.submit(demand);
  }
  sim.run_for(duration);
  if (hooks && hooks->on_finish) hooks->on_finish(sim);

  ClusterReport report;
  report.throughput = sim.delivered_cpu() / duration;
  std::size_t completed = 0;
  for (const JobRecord& job : sim.jobs()) {
    if (job.state == JobState::Done) ++completed;
  }
  report.completed = completed;
  fill_state_breakdown(report, sim.jobs(), sim.jobs().size());
  report.foreground_delay = sim.foreground_delay_ratio();
  report.migrations = sim.migrations_started();
  report.observed_idle_fraction = sim.observed_idle_fraction();
  report.wall_time = sim.now();
  fill_fault_metrics(report, sim);
  return report;
}

std::vector<ClusterReport> replicate(
    std::size_t replications, std::uint64_t base_seed,
    const std::function<ClusterReport(std::uint64_t seed)>& fn) {
  if (replications == 0) {
    throw std::invalid_argument("replicate: need at least one replication");
  }
  rng::Stream master(base_seed);
  // Results land in seed-indexed slots, so collection order (and therefore
  // the returned vector) is independent of how the pool schedules the work.
  std::vector<ClusterReport> reports(replications);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(replications);
  for (std::size_t i = 0; i < replications; ++i) {
    tasks.push_back([&fn, &slot = reports[i],
                     seed = master.fork("replication", i).seed()] {
      slot = fn(seed);
    });
  }
  // Bounded shared pool instead of a thread per replication; run() rethrows
  // the lowest-index failure after every task has settled, so a throwing
  // replication cannot leak threads still writing into `reports`.
  util::TaskRunner::shared().run(std::move(tasks));
  return reports;
}

void write_job_log(const JobStore& jobs, std::ostream& out) {
  out << "job,time,state\n";
  for (const JobRecord& job : jobs) {
    // The submission itself (Queued at submit_time) precedes the recorded
    // transitions.
    out << job.id << ',' << job.submit_time << ','
        << to_string(JobState::Queued) << '\n';
    for (const JobRecord::Transition& t : job.history) {
      out << job.id << ',' << t.time << ',' << to_string(t.to) << '\n';
    }
  }
}

void write_job_log(const JobStore& jobs, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_job_log: cannot open " + path);
  write_job_log(jobs, out);
}

stats::ConfidenceInterval summarize(
    const std::vector<ClusterReport>& reports,
    const std::function<double(const ClusterReport&)>& metric) {
  std::vector<double> values;
  values.reserve(reports.size());
  for (const ClusterReport& r : reports) values.push_back(metric(r));
  return stats::mean_confidence_95(values);
}

}  // namespace ll::cluster
