#include "cluster/job.hpp"

#include <stdexcept>

namespace ll::cluster {

std::string_view to_string(JobState state) {
  switch (state) {
    case JobState::Queued:
      return "queued";
    case JobState::Running:
      return "running";
    case JobState::Lingering:
      return "lingering";
    case JobState::Paused:
      return "paused";
    case JobState::Migrating:
      return "migrating";
    case JobState::Done:
      return "done";
    case JobState::Checkpointing:
      return "checkpointing";
  }
  throw std::logic_error("to_string: unknown JobState");
}

void JobRecord::set_state(JobState next, double now) {
  if (now < state_since) {
    throw std::logic_error("JobRecord::set_state: time went backwards");
  }
  if (next == state) return;
  state_time[static_cast<std::size_t>(state)] += now - state_since;
  state = next;
  state_since = now;
  history.push_back(Transition{now, next});
  if ((next == JobState::Running || next == JobState::Lingering) &&
      !first_start) {
    first_start = now;
  }
  if (next == JobState::Done) completion = now;
}

double JobRecord::turnaround() const {
  if (!completion) throw std::logic_error("turnaround: job not complete");
  return *completion - submit_time;
}

double JobRecord::execution_time() const {
  if (!completion || !first_start) {
    throw std::logic_error("execution_time: job not complete or never started");
  }
  return *completion - *first_start;
}

}  // namespace ll::cluster
