#pragma once

/// \file memory_model.hpp
/// Priority page allocation (paper §3.2, after the Stealth scheduler).
///
/// Memory is conceptually divided into two pools: pages owned by local
/// (foreground) jobs and pages donated to the foreign job. Whenever a local
/// job frees a page it becomes available to the foreign job; whenever local
/// demand grows it reclaims pages *from the foreign job first* and only then
/// pages out its own — so the owner's working set is never displaced by a
/// lingering guest.
///
/// The pool model is page-accurate; the progress model maps foreign
/// residency to a throughput factor so the cluster simulator can account for
/// memory pressure without simulating individual references.

#include <cstdint>

namespace ll::node {

struct PagePoolConfig {
  std::uint32_t total_pages = 16384;  // 64 MB of 4 KB pages, as in the paper
  std::uint32_t page_kb = 4;
  /// Pages the kernel keeps on its own free list and never donates
  /// (UNIX free-list reserve noted in the paper's §3.2 footnote).
  std::uint32_t reserved_pages = 512;
};

/// The two-pool priority page allocator for one node.
class PagePool {
 public:
  explicit PagePool(PagePoolConfig config);

  /// Sets the local jobs' resident demand. Growth reclaims foreign pages
  /// first; shrinkage releases pages to the free list (and thus to the
  /// foreign job on its next request). Demand beyond physical capacity is
  /// clamped (the local jobs page against themselves — invisible to the
  /// foreign pool). Returns the number of foreign pages reclaimed.
  std::uint32_t set_local_pages(std::uint32_t pages);

  /// Foreign job asks to keep `target` pages resident; grants what the free
  /// pool allows. Returns the new foreign residency.
  std::uint32_t request_foreign_pages(std::uint32_t target);

  /// Releases all foreign pages (job migrated away or finished).
  void evict_foreign();

  [[nodiscard]] std::uint32_t total_pages() const { return config_.total_pages; }
  [[nodiscard]] std::uint32_t local_pages() const { return local_; }
  [[nodiscard]] std::uint32_t foreign_pages() const { return foreign_; }
  [[nodiscard]] std::uint32_t free_pages() const;

  [[nodiscard]] static std::uint32_t kb_to_pages(std::uint32_t kb,
                                                 std::uint32_t page_kb = 4);

 private:
  PagePoolConfig config_;
  std::uint32_t local_ = 0;
  std::uint32_t foreign_ = 0;
};

/// Maps a foreign job's residency to a progress factor in [floor, 1].
///
/// Fully resident => 1. Below the working set, the job page-faults against
/// the donated pool; modelled as proportional slowdown with a floor that
/// keeps jobs from stalling completely (matching the paper's observation
/// that one moderate foreign job virtually always fits).
[[nodiscard]] double memory_progress_factor(std::uint32_t resident_pages,
                                            std::uint32_t working_set_pages,
                                            double floor = 0.05);

}  // namespace ll::node
