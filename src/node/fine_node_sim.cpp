#include "node/fine_node_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace ll::node {

FineNodeResult simulate_fine_node(const FineNodeConfig& config,
                                  const workload::BurstTable& table,
                                  rng::Stream stream) {
  if (!(config.utilization > 0.0 && config.utilization < 1.0)) {
    throw std::invalid_argument("simulate_fine_node: utilization must be in (0,1)");
  }
  if (config.context_switch < 0.0) {
    throw std::invalid_argument("simulate_fine_node: negative context switch");
  }
  if (!(config.duration > 0.0)) {
    throw std::invalid_argument("simulate_fine_node: duration must be > 0");
  }

  const workload::BurstDistributions dist =
      table.distributions_at(config.utilization);
  const double c = config.context_switch;

  FineNodeResult result;
  double t = 0.0;
  bool foreign_on_cpu = false;  // foreign job warm on the CPU right now
  bool run_phase = false;       // start with an idle gap

  while (t < config.duration) {
    if (run_phase) {
      const double r = dist.run.sample(stream);
      result.local_cpu += r;
      double service = r;
      if (foreign_on_cpu && config.foreign_present) {
        // Interrupt preempts the foreign job instantly; the foreground
        // process then pays the effective switch cost (cache reload) before
        // its request completes.
        service += c;
        result.local_delay += c;
        ++result.preemptions;
        foreign_on_cpu = false;
      }
      t += service;
    } else {
      const double gap = dist.idle.sample(stream);
      result.idle_cpu += gap;
      if (config.foreign_present) {
        if (gap > c) {
          // Switch the foreign job in (cache warm-up), then it runs for the
          // remainder of the gap.
          result.foreign_cpu += gap - c;
          foreign_on_cpu = true;
        }
        // Gaps shorter than the switch cost yield nothing and leave the
        // foreign job cold; no preemption penalty will be charged either.
      }
      t += gap;
    }
    run_phase = !run_phase;
  }
  result.wall = t;
  return result;
}

FineNodeResult simulate_fine_node_trace(const trace::CoarseTrace& coarse,
                                        const workload::BurstTable& table,
                                        double context_switch, double duration,
                                        rng::Stream stream, double offset) {
  if (context_switch < 0.0) {
    throw std::invalid_argument("simulate_fine_node_trace: negative switch");
  }
  if (!(duration > 0.0)) {
    throw std::invalid_argument("simulate_fine_node_trace: duration must be > 0");
  }
  workload::LocalWorkloadGenerator generator(coarse, table, std::move(stream),
                                             offset);
  const double c = context_switch;
  FineNodeResult result;
  bool foreign_on_cpu = false;
  while (generator.now() < duration) {
    const auto burst = generator.next();
    // Truncate the final burst at the horizon so accounting is exact.
    const double len =
        std::min(burst.burst.duration, duration - burst.start);
    if (len <= 0.0) break;
    if (burst.burst.kind == trace::BurstKind::Run) {
      result.local_cpu += len;
      if (foreign_on_cpu) {
        result.local_delay += c;
        ++result.preemptions;
        foreign_on_cpu = false;
      }
    } else {
      result.idle_cpu += len;
      if (len > c) {
        result.foreign_cpu += len - c;
        foreign_on_cpu = true;
      }
    }
  }
  result.wall = duration;
  return result;
}

void export_metrics(const FineNodeResult& result, std::string_view prefix,
                    obs::MetricRegistry& registry) {
  const std::string p(prefix);
  registry.gauge(p + ".local_cpu_seconds").set(result.local_cpu);
  registry.gauge(p + ".local_delay_seconds").set(result.local_delay);
  registry.gauge(p + ".idle_cpu_seconds").set(result.idle_cpu);
  registry.gauge(p + ".foreign_cpu_seconds").set(result.foreign_cpu);
  registry.gauge(p + ".wall_seconds").set(result.wall);
  registry.gauge(p + ".ldr").set(result.ldr());
  registry.gauge(p + ".fcsr").set(result.fcsr());
  registry.counter(p + ".preemptions").add(result.preemptions);
}

FineNodeExpectation expected_fine_node(double utilization, double context_switch,
                                       const workload::BurstTable& table) {
  const workload::BurstDistributions dist = table.distributions_at(utilization);
  FineNodeExpectation out;
  const double mean_idle = dist.idle.mean();
  const double mean_run = dist.run.mean();
  if (mean_idle > 0.0) {
    out.fcsr = dist.idle.mean_excess(context_switch) / mean_idle;
  }
  if (mean_run > 0.0) {
    const double p_warm = 1.0 - dist.idle.cdf(context_switch);
    out.ldr = context_switch * p_warm / mean_run;
  }
  return out;
}

}  // namespace ll::node
