#include "node/effective_rate.hpp"

#include <algorithm>
#include <cmath>

namespace ll::node {
namespace {

// Utilizations are evaluated strictly inside (0,1); the endpoint levels copy
// their inner neighbours so interpolation stays sane at the extremes.
constexpr double kEdge = 1e-3;

double level_u(std::size_t i) {
  const double u = workload::BurstTable::level_utilization(i);
  return std::clamp(u, kEdge, 1.0 - kEdge);
}

}  // namespace

EffectiveRateTable EffectiveRateTable::analytic(const workload::BurstTable& table,
                                                double context_switch) {
  EffectiveRateTable out;
  for (std::size_t i = 0; i < workload::kUtilizationLevels; ++i) {
    const FineNodeExpectation e =
        expected_fine_node(level_u(i), context_switch, table);
    out.fcsr_[i] = e.fcsr;
    out.ldr_[i] = e.ldr;
  }
  return out;
}

EffectiveRateTable EffectiveRateTable::simulated(const workload::BurstTable& table,
                                                 double context_switch,
                                                 double duration,
                                                 const rng::Stream& stream) {
  EffectiveRateTable out;
  for (std::size_t i = 0; i < workload::kUtilizationLevels; ++i) {
    FineNodeConfig config;
    config.utilization = level_u(i);
    config.context_switch = context_switch;
    config.duration = duration;
    const FineNodeResult r =
        simulate_fine_node(config, table, stream.fork("level", i));
    out.fcsr_[i] = r.fcsr();
    out.ldr_[i] = r.ldr();
  }
  return out;
}

double EffectiveRateTable::interpolate(
    const std::array<double, workload::kUtilizationLevels>& values, double u) {
  u = std::clamp(u, 0.0, 1.0);
  const double pos = u * static_cast<double>(workload::kUtilizationLevels - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  if (lo >= workload::kUtilizationLevels - 1) return values.back();
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[lo + 1] - values[lo]);
}

double EffectiveRateTable::fcsr(double u) const { return interpolate(fcsr_, u); }

double EffectiveRateTable::ldr(double u) const { return interpolate(ldr_, u); }

double EffectiveRateTable::foreign_rate(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  return (1.0 - u) * fcsr(u);
}

}  // namespace ll::node
