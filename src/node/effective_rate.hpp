#pragma once

/// \file effective_rate.hpp
/// Calibrated effective-rate tables bridging the two simulation
/// granularities.
///
/// The cluster simulator integrates foreign-job progress analytically within
/// each 2-second coarse window: a lingering foreign job on a node whose owner
/// utilization is u progresses at rate
///
///     rate(u) = (1 - u) * fcsr(u)
///
/// and imposes a foreground delay ratio ldr(u) on the owner's work. Both
/// factors come from the fine-grain node simulation (or its closed form),
/// evaluated once per utilization level and interpolated.

#include <array>

#include "node/fine_node_sim.hpp"
#include "workload/burst_table.hpp"

namespace ll::node {

/// Per-utilization-level fcsr/ldr factors with linear interpolation.
class EffectiveRateTable {
 public:
  /// Builds the table from the closed-form expectations (fast, exact under
  /// the H2 model). Levels 0 and 1 are the natural limits (fcsr -> its
  /// neighbour's value, unused in practice since u is clamped inside).
  static EffectiveRateTable analytic(const workload::BurstTable& table,
                                     double context_switch);

  /// Builds the table by running the fine-grain simulation at each level
  /// (slower; used by tests to validate `analytic` end-to-end).
  static EffectiveRateTable simulated(const workload::BurstTable& table,
                                      double context_switch, double duration,
                                      const rng::Stream& stream);

  /// Fraction of idle cycles a lingering foreign job captures at owner
  /// utilization u.
  [[nodiscard]] double fcsr(double u) const;

  /// Foreground delay ratio imposed by a lingering foreign job at owner
  /// utilization u.
  [[nodiscard]] double ldr(double u) const;

  /// Foreign-job progress rate (CPU-seconds per wall-second) on a node with
  /// owner utilization u: (1-u) * fcsr(u).
  [[nodiscard]] double foreign_rate(double u) const;

 private:
  EffectiveRateTable() = default;
  [[nodiscard]] static double interpolate(
      const std::array<double, workload::kUtilizationLevels>& values, double u);

  std::array<double, workload::kUtilizationLevels> fcsr_{};
  std::array<double, workload::kUtilizationLevels> ldr_{};
};

}  // namespace ll::node
