#include "node/memory_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace ll::node {

PagePool::PagePool(PagePoolConfig config) : config_(config) {
  if (config_.total_pages == 0) {
    throw std::invalid_argument("PagePool: total_pages must be > 0");
  }
  if (config_.reserved_pages >= config_.total_pages) {
    throw std::invalid_argument("PagePool: reserve exceeds physical memory");
  }
}

std::uint32_t PagePool::free_pages() const {
  const std::uint32_t used = local_ + foreign_ + config_.reserved_pages;
  return used >= config_.total_pages ? 0 : config_.total_pages - used;
}

std::uint32_t PagePool::set_local_pages(std::uint32_t pages) {
  // Local demand is clamped to what the machine can hold with the foreign
  // job fully evicted — beyond that the local jobs page against themselves.
  const std::uint32_t capacity = config_.total_pages - config_.reserved_pages;
  pages = std::min(pages, capacity);

  std::uint32_t reclaimed = 0;
  if (pages > local_) {
    const std::uint32_t growth = pages - local_;
    const std::uint32_t from_free = std::min(growth, free_pages());
    const std::uint32_t still_needed = growth - from_free;
    // Priority reclaim: take from the foreign pool before local paging.
    reclaimed = std::min(still_needed, foreign_);
    foreign_ -= reclaimed;
  }
  local_ = pages;
  return reclaimed;
}

std::uint32_t PagePool::request_foreign_pages(std::uint32_t target) {
  if (target >= foreign_) {
    const std::uint32_t growth =
        std::min<std::uint32_t>(target - foreign_, free_pages());
    foreign_ += growth;
  } else {
    foreign_ = target;
  }
  return foreign_;
}

void PagePool::evict_foreign() { foreign_ = 0; }

std::uint32_t PagePool::kb_to_pages(std::uint32_t kb, std::uint32_t page_kb) {
  if (page_kb == 0) throw std::invalid_argument("kb_to_pages: page_kb == 0");
  return (kb + page_kb - 1) / page_kb;
}

double memory_progress_factor(std::uint32_t resident_pages,
                              std::uint32_t working_set_pages, double floor) {
  if (working_set_pages == 0) return 1.0;
  if (resident_pages >= working_set_pages) return 1.0;
  const double frac = static_cast<double>(resident_pages) /
                      static_cast<double>(working_set_pages);
  return std::max(floor, frac);
}

}  // namespace ll::node
