#pragma once

/// \file fine_node_sim.hpp
/// Fine-grain single-node simulation of Linger-Longer's strict priority
/// scheduling (paper §4.1).
///
/// One workstation runs its owner's workload (alternating run/idle bursts
/// from the burst table) plus one compute-bound foreign job at a priority so
/// low the owner's processes starve it. Whenever a local process becomes
/// runnable the foreground is dispatched immediately — even mid-quantum — and
/// pays the *effective context-switch cost* (register save plus, dominantly,
/// cache-state reload; the paper adopts 100 µs from Mogul & Borg). The
/// foreign job likewise pays the switch-in cost at the start of each stolen
/// idle gap.
///
/// Two metrics, exactly as defined in the paper:
///  * LDR (local-job delay ratio): extra time experienced by local CPU
///    requests due to background-induced context switches, relative to their
///    base CPU demand.
///  * FCSR (fine-grain cycle-stealing ratio): fraction of the idle processor
///    cycles the foreign job turns into useful work.

#include <cstdint>
#include <string_view>

#include "obs/metrics.hpp"
#include "rng/rng.hpp"
#include "trace/records.hpp"
#include "workload/burst_table.hpp"
#include "workload/local_workload.hpp"

namespace ll::node {

struct FineNodeConfig {
  double utilization = 0.2;        // owner's mean CPU utilization, in (0,1)
  double context_switch = 100e-6;  // effective switch cost (seconds)
  double duration = 3600.0;        // simulated seconds
  bool foreign_present = true;     // lingering foreign job on the node?
};

struct FineNodeResult {
  double local_cpu = 0.0;      // owner CPU demand served (s)
  double local_delay = 0.0;    // extra switch time charged to local bursts (s)
  double idle_cpu = 0.0;       // idle cycles offered (s)
  double foreign_cpu = 0.0;    // useful cycles delivered to the foreign job (s)
  std::uint64_t preemptions = 0;  // foreign -> local forced switches
  double wall = 0.0;           // total simulated wall time (s)

  /// Local-job delay ratio (paper Figure 5a).
  [[nodiscard]] double ldr() const {
    return local_cpu > 0.0 ? local_delay / local_cpu : 0.0;
  }
  /// Fine-grain cycle-stealing ratio (paper Figure 5b).
  [[nodiscard]] double fcsr() const {
    return idle_cpu > 0.0 ? foreign_cpu / idle_cpu : 0.0;
  }
};

/// Runs the fine-grain node simulation. Deterministic in (config, table,
/// stream).
[[nodiscard]] FineNodeResult simulate_fine_node(const FineNodeConfig& config,
                                                const workload::BurstTable& table,
                                                rng::Stream stream);

/// Trace-driven variant: the owner's run/idle bursts come from the
/// two-level workload generator (coarse trace -> per-window utilization ->
/// fine-grain H2 bursts) instead of a fixed utilization, and a compute-bound
/// foreign job lingers throughout. This is the ground-truth model the
/// cluster simulator's window-integrated rates approximate; the integration
/// test suite verifies the two agree on delivered foreign CPU.
[[nodiscard]] FineNodeResult simulate_fine_node_trace(
    const trace::CoarseTrace& coarse, const workload::BurstTable& table,
    double context_switch, double duration, rng::Stream stream,
    double offset = 0.0);

/// Publishes a fine-node result into a metrics registry under
/// `<prefix>.{local_cpu,local_delay,idle_cpu,foreign_cpu,wall,ldr,fcsr}`
/// gauges plus a `<prefix>.preemptions` counter, so single-node runs land
/// in the same manifest shape as the cluster sweeps.
void export_metrics(const FineNodeResult& result, std::string_view prefix,
                    obs::MetricRegistry& registry);

/// Closed-form expectations under the H2 burst model, used to cross-check
/// the simulation in tests:
///   fcsr(u)  = E[max(0, I - c)] / E[I]
///   ldr(u)   = c * P(I > c) / E[R]
/// where I, R are the idle/run burst variables at utilization u and c the
/// context-switch cost (a local burst is delayed only if the foreign job
/// actually occupied the CPU, i.e. the preceding gap exceeded c).
struct FineNodeExpectation {
  double ldr = 0.0;
  double fcsr = 0.0;
};
[[nodiscard]] FineNodeExpectation expected_fine_node(
    double utilization, double context_switch, const workload::BurstTable& table);

}  // namespace ll::node
