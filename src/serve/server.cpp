#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace ll::serve {
namespace {

using Clock = std::chrono::steady_clock;

std::string sys_error(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", ms);
  return buf;
}

}  // namespace

/// One client socket. The fd closes when the last reference (reader thread
/// or queued work item) drops, so responses for admitted work can always be
/// written — at worst they fail with EPIPE after a disconnect.
struct Server::Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Writes the full buffer (looping over partial sends, MSG_NOSIGNAL so a
  /// vanished client is an EPIPE, not a process signal). Serialized by
  /// `write_mu` because reader (errors, ping) and dispatcher (results)
  /// both write.
  void send_line(const std::string& line) {
    std::scoped_lock lock(write_mu);
    if (!alive.load(std::memory_order_relaxed)) return;
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        alive.store(false, std::memory_order_relaxed);
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

  int fd;
  std::mutex write_mu;
  std::atomic<bool> alive{true};
};

struct Server::Work {
  std::shared_ptr<Connection> conn;
  std::uint64_t id = 0;
  ScenarioRequest scenario;
  std::uint64_t config_digest = 0;
  Clock::time_point admitted;
};

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      runner_(config_.runner ? config_.runner : &util::TaskRunner::shared()),
      cache_(config_.cache_capacity) {}

Server::~Server() { shutdown(); }

void Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error(sys_error("socket"));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: bad host '" + config_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = sys_error("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: " + err);
  }
  if (::listen(listen_fd_, 128) < 0) {
    const std::string err = sys_error("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatcher_thread_ = std::thread([this] { dispatcher_loop(); });
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or fatal) — either way, stop accepting
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>(fd);
    std::scoped_lock lock(conns_mu_);
    conns_.push_back(conn);
    reader_threads_.emplace_back([this, conn] { reader_loop(conn); });
  }
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // disconnect, error, or SHUT_RD during drain
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty()) handle_line(conn, line);
    }
    buffer.erase(0, start);
    if (buffer.size() > config_.max_request_bytes) {
      // An unframed line beyond the bound: the stream cannot be resynced,
      // so report and hang up rather than buffer without limit. (Full
      // SHUT_RDWR — unlike the drain path, there is no pending response
      // this connection is owed.)
      requests_error_.fetch_add(1, std::memory_order_relaxed);
      conn->send_line(error_response(
          0, "request exceeds " + std::to_string(config_.max_request_bytes) +
                 " bytes"));
      ::shutdown(conn->fd, SHUT_RDWR);
      return;
    }
  }
  ::shutdown(conn->fd, SHUT_RD);
}

void Server::handle_line(const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
  ParsedRequest req;
  try {
    req = parse_request(line);
  } catch (const RequestError& e) {
    requests_error_.fetch_add(1, std::memory_order_relaxed);
    conn->send_line(error_response(e.id(), e.what()));
    return;
  }
  switch (req.op) {
    case Op::kPing:
      conn->send_line(pong_response(req.id));
      return;
    case Op::kStats:
      conn->send_line(stats_response(req.id, stats_json()));
      return;
    case Op::kRun:
      break;
  }
  Work work;
  work.conn = conn;
  work.id = req.id;
  work.scenario = req.scenario;
  work.config_digest = req.scenario.config_digest();
  work.admitted = Clock::now();
  {
    std::scoped_lock lock(queue_mu_);
    if (stopping_.load()) {
      requests_error_.fetch_add(1, std::memory_order_relaxed);
      conn->send_line(error_response(req.id, "server shutting down"));
      return;
    }
    if (queue_.size() >= config_.queue_capacity) {
      requests_rejected_.fetch_add(1, std::memory_order_relaxed);
      conn->send_line(rejected_response(req.id, config_.retry_after_ms));
      return;
    }
    queue_.push_back(std::move(work));
  }
  queue_cv_.notify_one();
}

void Server::dispatcher_loop() {
  for (;;) {
    std::vector<Work> batch;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return stopping_.load() || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      const std::size_t n = std::min(queue_.size(), config_.batch_max);
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    if (config_.on_batch_start) config_.on_batch_start(batch.size());
    execute_batch(batch);
  }
}

void Server::execute_batch(std::vector<Work>& batch) {
  // Deduplicate by cache key first: one TaskRunner task per unique key.
  // This guarantees no task in the batch ever blocks on another task's
  // single-flight future (which could deadlock a small worker pool);
  // cross-batch duplicates hit the ready cache entry instead.
  struct Slot {
    ResultCache::ValuePtr value;
    bool hit = false;
    bool failed = false;
    std::string error;
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> group_of;
  std::vector<std::size_t> item_group(batch.size());
  std::vector<std::size_t> build_item;  // first item of each group
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto key = std::make_pair(batch[i].config_digest,
                                    batch[i].scenario.seed);
    const auto [it, inserted] = group_of.try_emplace(key, build_item.size());
    if (inserted) build_item.push_back(i);
    item_group[i] = it->second;
  }

  std::vector<Slot> slots(build_item.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(build_item.size());
  for (std::size_t g = 0; g < build_item.size(); ++g) {
    const Work& work = batch[build_item[g]];
    Slot* slot = &slots[g];
    const ScenarioRequest scenario = work.scenario;
    const std::uint64_t digest = work.config_digest;
    util::TaskRunner* runner = runner_;
    ResultCache* cache = &cache_;
    tasks.emplace_back([slot, scenario, digest, runner, cache] {
      try {
        ResultCache::Outcome outcome = cache->get_or_build(
            digest, scenario.seed, [&] { return scenario.run(runner); });
        slot->value = std::move(outcome.value);
        slot->hit = outcome.hit;
      } catch (const std::exception& e) {
        slot->failed = true;
        slot->error = e.what();
      }
    });
  }
  runner_->run(std::move(tasks));

  const Clock::time_point done = Clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Work& work = batch[i];
    const std::size_t g = item_group[i];
    const Slot& slot = slots[g];
    if (slot.failed) {
      requests_error_.fetch_add(1, std::memory_order_relaxed);
      work.conn->send_line(error_response(work.id, slot.error));
      continue;
    }
    // The first item of a group that built counts (and reports) the miss;
    // everyone else was served from cache or coalesced onto the build.
    const bool hit = slot.hit || i != build_item[g];
    (hit ? cache_hits_ : cache_misses_).fetch_add(1,
                                                  std::memory_order_relaxed);
    requests_ok_.fetch_add(1, std::memory_order_relaxed);
    work.conn->send_line(
        run_response(work.id, hit,
                     format_key(work.config_digest, work.scenario.seed),
                     *slot.value));
    latency_.record(
        std::chrono::duration<double>(done - work.admitted).count());
  }
  if (latency_.count() > 0) {
    p50_ms_.store(latency_.quantile(0.50) * 1e3, std::memory_order_relaxed);
    p90_ms_.store(latency_.quantile(0.90) * 1e3, std::memory_order_relaxed);
    p99_ms_.store(latency_.quantile(0.99) * 1e3, std::memory_order_relaxed);
  }
}

void Server::shutdown() {
  if (!started_.load()) return;
  {
    std::scoped_lock lock(queue_mu_);
    if (stopping_.exchange(true)) return;  // idempotent
  }
  // 1. Stop accepting: shutting the listener down unblocks accept().
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // 2. Wake every reader: SHUT_RD makes blocked recv() return 0, so the
  // queue stops growing once the readers are joined...
  {
    std::scoped_lock lock(conns_mu_);
    for (const auto& conn : conns_) ::shutdown(conn->fd, SHUT_RD);
  }
  std::vector<std::thread> readers;
  {
    std::scoped_lock lock(conns_mu_);
    readers.swap(reader_threads_);
  }
  for (std::thread& t : readers) t.join();
  // 3. ...and the dispatcher drains everything already admitted (writing
  // each response — the write sides are still open) before exiting.
  queue_cv_.notify_all();
  if (dispatcher_thread_.joinable()) dispatcher_thread_.join();
  std::scoped_lock lock(conns_mu_);
  conns_.clear();
}

std::size_t Server::queue_depth() const {
  std::scoped_lock lock(queue_mu_);
  return queue_.size();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  s.requests_error = requests_error_.load(std::memory_order_relaxed);
  s.requests_rejected = requests_rejected_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  return s;
}

std::string Server::stats_json() const {
  const ServerStats s = stats();
  std::ostringstream out;
  out << "{\"connections\": " << s.connections
      << ", \"requests_ok\": " << s.requests_ok
      << ", \"requests_error\": " << s.requests_error
      << ", \"requests_rejected\": " << s.requests_rejected
      << ", \"cache_hits\": " << s.cache_hits
      << ", \"cache_misses\": " << s.cache_misses
      << ", \"batches\": " << s.batches
      << ", \"cache_size\": " << cache_.size() << ", \"latency_p50_ms\": "
      << fmt_ms(p50_ms_.load(std::memory_order_relaxed))
      << ", \"latency_p90_ms\": "
      << fmt_ms(p90_ms_.load(std::memory_order_relaxed))
      << ", \"latency_p99_ms\": "
      << fmt_ms(p99_ms_.load(std::memory_order_relaxed)) << "}";
  return out.str();
}

void Server::export_metrics(obs::MetricRegistry& registry) const {
  const ServerStats s = stats();
  registry.counter("serve.connections").add(s.connections);
  registry.counter("serve.requests.ok").add(s.requests_ok);
  registry.counter("serve.requests.error").add(s.requests_error);
  registry.counter("serve.requests.rejected").add(s.requests_rejected);
  registry.counter("serve.cache.hits").add(s.cache_hits);
  registry.counter("serve.cache.misses").add(s.cache_misses);
  registry.counter("serve.batches").add(s.batches);
  latency_.export_to(registry, "serve.latency");
}

}  // namespace ll::serve
