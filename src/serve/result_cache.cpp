#include "serve/result_cache.hpp"

#include <algorithm>

namespace ll::serve {

ResultCache::ResultCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

ResultCache::Outcome ResultCache::get_or_build(
    std::uint64_t config_digest, std::uint64_t seed,
    const std::function<std::string()>& build) {
  const Key key{config_digest, seed};
  std::promise<ValuePtr> promise;
  std::shared_future<ValuePtr> future;
  bool builder = false;
  {
    std::scoped_lock lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      it->second.last_use = ++tick_;
      future = it->second.future;
    } else {
      ++misses_;
      builder = true;
      future = promise.get_future().share();
      if (cache_.size() >= capacity_) evict_down_to_locked(capacity_ - 1);
      cache_.emplace(key, Entry{future, ++tick_, /*ready=*/false});
    }
  }
  if (!builder) return Outcome{future.get(), /*hit=*/true};

  try {
    ValuePtr value = std::make_shared<const std::string>(build());
    promise.set_value(value);
    std::scoped_lock lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) it->second.ready = true;
    return Outcome{std::move(value), /*hit=*/false};
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::scoped_lock lock(mu_);
    cache_.erase(key);
    throw;
  }
}

void ResultCache::evict_down_to_locked(std::size_t limit) {
  while (cache_.size() > limit) {
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (!it->second.ready) continue;  // never evict an in-flight build
      if (victim == cache_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == cache_.end()) return;  // everything is in flight
    cache_.erase(victim);
  }
}

std::size_t ResultCache::hits() const {
  std::scoped_lock lock(mu_);
  return hits_;
}

std::size_t ResultCache::misses() const {
  std::scoped_lock lock(mu_);
  return misses_;
}

std::size_t ResultCache::size() const {
  std::scoped_lock lock(mu_);
  return cache_.size();
}

std::size_t ResultCache::capacity() const {
  std::scoped_lock lock(mu_);
  return capacity_;
}

void ResultCache::set_capacity(std::size_t capacity) {
  std::scoped_lock lock(mu_);
  capacity_ = std::max<std::size_t>(1, capacity);
  evict_down_to_locked(capacity_);
}

void ResultCache::clear() {
  std::scoped_lock lock(mu_);
  cache_.clear();
}

}  // namespace ll::serve
