#pragma once

/// \file result_cache.hpp
/// Content-addressed result cache for the serving layer: finished sweep
/// JSON keyed by (scenario config digest, seed). Same single-flight +
/// bounded-LRU discipline as exp::TracePoolCache — concurrent requests for
/// one key run the simulation exactly once (the others block on the
/// builder's future), failures propagate to every waiter and are never
/// cached, and ready entries beyond the capacity are evicted
/// least-recently-used (in-flight entries are never evicted).
///
/// Values are shared_ptr<const std::string> — the exact bytes exp::to_json
/// produced — so a hit is a pointer copy and the bytes on the wire are
/// bit-identical across hits, misses, and server restarts.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace ll::serve {

class ResultCache {
 public:
  using ValuePtr = std::shared_ptr<const std::string>;

  struct Outcome {
    ValuePtr value;
    bool hit = false;  ///< true when this call did not run the builder
  };

  static constexpr std::size_t kDefaultCapacity = 256;

  explicit ResultCache(std::size_t capacity = kDefaultCapacity);

  /// Returns the cached value for (config_digest, seed), running `build`
  /// exactly once per resident key across all threads. `hit` is false only
  /// for the call that executed `build`; callers that waited on an
  /// in-flight build count as hits (no work ran on their behalf).
  /// A throwing build rethrows in every waiting caller and leaves the key
  /// absent, so the next request retries.
  [[nodiscard]] Outcome get_or_build(std::uint64_t config_digest,
                                     std::uint64_t seed,
                                     const std::function<std::string()>& build);

  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const;
  void set_capacity(std::size_t capacity);
  void clear();

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;  // (digest, seed)
  struct Entry {
    std::shared_future<ValuePtr> future;
    std::uint64_t last_use = 0;
    bool ready = false;
  };

  void evict_down_to_locked(std::size_t limit);

  mutable std::mutex mu_;
  std::map<Key, Entry> cache_;
  std::uint64_t tick_ = 0;
  std::size_t capacity_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace ll::serve
