#pragma once

/// \file server.hpp
/// `llsim serve`: the simulator as a long-running service. Accepts NDJSON
/// requests (protocol.hpp) over TCP, multiplexes every admitted `run`
/// request onto the shared lock-free util::TaskRunner, and streams the
/// responses back as they complete.
///
/// Threading model:
///  * one accept thread;
///  * one reader thread per connection (blocking reads, line framing,
///    inline ping/stats replies, admission of run requests);
///  * ONE dispatcher thread that drains the bounded admission queue in
///    batches of up to `batch_max`, deduplicates each batch by cache key,
///    executes the unique keys as one TaskRunner batch, and writes the
///    responses. The dispatcher is the only thread touching the result
///    cache and the latency recorder, which is what makes the
///    single-writer MetricRegistry contract hold without locks.
///
/// Admission control: the queue is bounded at `queue_capacity`. A full
/// queue rejects immediately with {"status":"rejected",
/// "retry_after_ms":N} — explicit backpressure the client can act on —
/// instead of letting latency collapse under unbounded buffering.
///
/// Graceful shutdown (SIGINT/SIGTERM via cli): stop accepting, shut the
/// read side of every connection, join the readers (queue stops growing),
/// then drain every admitted request and write its response before the
/// dispatcher exits. Admitted work is never dropped.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/latency.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "util/runner.hpp"

namespace ll::obs {
class MetricRegistry;
}

namespace ll::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral (read the bound port via Server::port())
  std::size_t queue_capacity = 256;  ///< admission queue bound
  std::size_t batch_max = 32;        ///< max requests per dispatcher batch
  std::size_t cache_capacity = ResultCache::kDefaultCapacity;
  std::size_t max_request_bytes = 1 << 16;  ///< line-framing bound
  int retry_after_ms = 25;  ///< backpressure hint on rejection
  /// Runner executing the simulations; nullptr = util::TaskRunner::shared().
  util::TaskRunner* runner = nullptr;
  /// Test hook: runs on the dispatcher thread right before each batch
  /// executes (arg = batch size). Lets tests hold the dispatcher still
  /// while they overfill the admission queue deterministically.
  std::function<void(std::size_t)> on_batch_start;
};

/// Monotonic counters, snapshotted from atomics (readable from any thread).
struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_error = 0;
  std::uint64_t requests_rejected = 0;
  std::uint64_t cache_hits = 0;    ///< served from cache (incl. batch dedup)
  std::uint64_t cache_misses = 0;  ///< ran a simulation
  std::uint64_t batches = 0;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the accept + dispatcher threads. Throws
  /// std::runtime_error on socket errors (port in use, bad host).
  void start();

  /// The bound port (after start()); meaningful with config.port == 0.
  [[nodiscard]] int port() const { return port_; }

  /// Graceful drain, as documented above. Idempotent.
  void shutdown();

  [[nodiscard]] ServerStats stats() const;

  /// Requests admitted but not yet popped by the dispatcher (test probe).
  [[nodiscard]] std::size_t queue_depth() const;

  /// One-line JSON object of the stats + latency quantiles (the `stats`
  /// op's payload). Safe from any thread; quantiles reflect the last
  /// completed batch.
  [[nodiscard]] std::string stats_json() const;

  /// Exports counters + latency quantiles into a registry. Call only
  /// after shutdown() (single-writer contract).
  void export_metrics(obs::MetricRegistry& registry) const;

 private:
  struct Connection;
  struct Work;

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void dispatcher_loop();
  void execute_batch(std::vector<Work>& batch);
  void handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);

  ServerConfig config_;
  util::TaskRunner* runner_ = nullptr;
  ResultCache cache_;
  int listen_fd_ = -1;
  int port_ = 0;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};

  std::thread accept_thread_;
  std::thread dispatcher_thread_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> reader_threads_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Work> queue_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_error_{0};
  std::atomic<std::uint64_t> requests_rejected_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> batches_{0};

  // Dispatcher-only; quantile snapshots for stats_json are mirrored into
  // the atomics below after each batch.
  obs::LatencyRecorder latency_;
  std::atomic<double> p50_ms_{0.0};
  std::atomic<double> p90_ms_{0.0};
  std::atomic<double> p99_ms_{0.0};
};

}  // namespace ll::serve
