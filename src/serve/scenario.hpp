#pragma once

/// \file scenario.hpp
/// The serving layer's scenario model: one cluster sweep request, parsed
/// from the wire (protocol.hpp), canonically digested for the result cache,
/// and executed through the *same* engine path `llsim cluster` / `llsim
/// bench` use. Byte-identity between served and offline results is the
/// subsystem's core contract (tests/serve/server_test.cpp pins it), so
/// `run()` must mirror cli::cmd_cluster's one-cell sweep construction
/// exactly: same pool cache key, same spec name/axes/seeding, same
/// closed/open metric reduction, serialized by the same exp::to_json.

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/policy.hpp"
#include "util/runner.hpp"

namespace ll::util::json {
class Value;
}

namespace ll::serve {

/// One sweep request. Field defaults match `llsim cluster`'s flag defaults,
/// so an empty params object serves exactly what a bare `llsim cluster`
/// run prints with --json.
struct ScenarioRequest {
  core::PolicyKind policy = core::PolicyKind::LingerLonger;
  std::size_t nodes = 64;       ///< cluster size
  std::size_t jobs = 128;       ///< foreign jobs (open mode)
  double demand = 600.0;        ///< CPU-seconds per job
  std::size_t machines = 32;    ///< synthetic trace pool size
  double days = 1.0;            ///< synthetic trace length
  double closed = 0.0;          ///< > 0: closed-system run of this many s
  double pause = 60.0;          ///< PM grace period
  std::size_t reps = 1;         ///< replications
  std::uint64_t seed = 42;

  /// Parses the "params" object of a run request. Unknown keys are
  /// rejected (a typo silently serving the default would look like a cache
  /// bug); missing keys keep their defaults. Throws std::invalid_argument.
  [[nodiscard]] static ScenarioRequest from_json(const util::json::Value& v);

  /// Canonical FNV-1a digest over every field *except* the seed — the
  /// "config" half of the cache key. Two requests with equal digests run
  /// identical simulations per seed.
  [[nodiscard]] std::uint64_t config_digest() const;

  /// Runs the one-cell sweep and returns exp::to_json's exact bytes.
  /// `runner == nullptr` lets the engine build its own pool (the offline
  /// path); the server passes util::TaskRunner::shared().
  [[nodiscard]] std::string run(util::TaskRunner* runner) const;
};

/// Maps the wire policy names (the CLI's: LL, LF, IE, PM, LL-oracle).
/// Throws std::invalid_argument on unknown names.
[[nodiscard]] core::PolicyKind parse_policy_name(const std::string& name);

/// Registers the `serve_offline` bench: prints the exact JSON `run()`
/// serves for a given scenario, so CI can diff server output against the
/// offline engine byte-for-byte. Called once from the CLI layer (keeps
/// exp free of a serve dependency). Safe to call repeatedly.
void register_serve_benches();

}  // namespace ll::serve
