#include "serve/protocol.hpp"

#include <cstdio>
#include <sstream>

#include "util/json.hpp"
#include "verify/digest.hpp"

namespace ll::serve {

namespace json = util::json;

ParsedRequest parse_request(std::string_view line) {
  ParsedRequest req;
  json::Value doc;
  try {
    doc = json::parse(line);
  } catch (const std::exception& e) {
    throw RequestError(0, std::string("malformed JSON: ") + e.what());
  }
  if (doc.kind() != json::Kind::kObject) {
    throw RequestError(0, "request must be a JSON object");
  }
  // Recover the id before validating anything else, so every later error
  // response still correlates with the request that caused it.
  if (const json::Value* id = doc.find("id")) {
    try {
      req.id = id->as_u64();
    } catch (const std::exception&) {
      throw RequestError(0, "id must be a non-negative integer");
    }
  }
  const json::Value* op = doc.find("op");
  if (!op || op->kind() != json::Kind::kString) {
    throw RequestError(req.id, "missing string field 'op'");
  }
  const std::string& name = op->as_string();
  if (name == "run") {
    req.op = Op::kRun;
    try {
      if (const json::Value* params = doc.find("params")) {
        req.scenario = ScenarioRequest::from_json(*params);
      }
    } catch (const std::exception& e) {
      throw RequestError(req.id, e.what());
    }
  } else if (name == "ping") {
    req.op = Op::kPing;
  } else if (name == "stats") {
    req.op = Op::kStats;
  } else {
    throw RequestError(req.id, "unknown op '" + name +
                                   "' (run, ping, stats)");
  }
  return req;
}

std::string format_key(std::uint64_t config_digest, std::uint64_t seed) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(config_digest));
  return std::string(hex) + ":" + std::to_string(seed);
}

std::string run_response(std::uint64_t id, bool cache_hit,
                         const std::string& key,
                         const std::string& result_json) {
  std::ostringstream out;
  out << "{\"id\": " << id << ", \"status\": \"ok\", \"cache\": \""
      << (cache_hit ? "hit" : "miss") << "\", \"key\": \""
      << json::escape(key) << "\", \"result\": \""
      << json::escape(result_json) << "\"}\n";
  return out.str();
}

std::string pong_response(std::uint64_t id) {
  return "{\"id\": " + std::to_string(id) +
         ", \"status\": \"ok\", \"pong\": true}\n";
}

std::string stats_response(std::uint64_t id,
                           const std::string& stats_object) {
  return "{\"id\": " + std::to_string(id) + ", \"status\": \"ok\", \"stats\": " +
         stats_object + "}\n";
}

std::string error_response(std::uint64_t id, const std::string& message) {
  return "{\"id\": " + std::to_string(id) + ", \"status\": \"error\", " +
         "\"error\": \"" + json::escape(message) + "\"}\n";
}

std::string rejected_response(std::uint64_t id, int retry_after_ms) {
  return "{\"id\": " + std::to_string(id) + ", \"status\": \"rejected\", " +
         "\"error\": \"queue full\", \"retry_after_ms\": " +
         std::to_string(retry_after_ms) + "}\n";
}

}  // namespace ll::serve
