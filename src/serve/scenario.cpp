#include "serve/scenario.hpp"

#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/experiment.hpp"
#include "exp/drivers.hpp"
#include "exp/engine.hpp"
#include "exp/pool_cache.hpp"
#include "exp/registry.hpp"
#include "exp/result.hpp"
#include "exp/spec.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "verify/digest.hpp"
#include "workload/burst_table.hpp"

namespace ll::serve {
namespace {

namespace json = util::json;

/// Request-size ceilings. The server executes whatever it admits, so the
/// scenario parser is the admission control for *work size*: a request
/// asking for a million nodes is rejected at parse time, not discovered as
/// an hour-long simulation in the dispatcher.
constexpr std::size_t kMaxNodes = 4096;
constexpr std::size_t kMaxJobs = 100000;
constexpr std::size_t kMaxMachines = 1024;
constexpr std::size_t kMaxReps = 1000;
constexpr double kMaxDays = 32.0;
constexpr double kMaxClosedSeconds = 7.0 * 24.0 * 3600.0;

std::size_t size_field(const json::Value& v, const std::string& key,
                       std::size_t min, std::size_t max) {
  std::uint64_t raw = 0;
  try {
    raw = v.as_u64();
  } catch (const std::exception&) {
    throw std::invalid_argument("params." + key + " must be an integer");
  }
  if (raw < min || raw > max) {
    throw std::invalid_argument("params." + key + " out of range [" +
                                std::to_string(min) + ", " +
                                std::to_string(max) + "]");
  }
  return static_cast<std::size_t>(raw);
}

double double_field(const json::Value& v, const std::string& key, double min,
                    double max) {
  if (v.kind() != json::Kind::kNumber) {
    throw std::invalid_argument("params." + key + " must be a number");
  }
  const double d = v.as_number();
  if (!(d >= min && d <= max)) {  // NaN fails both comparisons
    throw std::invalid_argument("params." + key + " out of range");
  }
  return d;
}

}  // namespace

core::PolicyKind parse_policy_name(const std::string& name) {
  if (name == "LL") return core::PolicyKind::LingerLonger;
  if (name == "LF") return core::PolicyKind::LingerForever;
  if (name == "IE") return core::PolicyKind::ImmediateEviction;
  if (name == "PM") return core::PolicyKind::PauseAndMigrate;
  if (name == "LL-oracle") return core::PolicyKind::OracleLinger;
  throw std::invalid_argument("unknown policy '" + name +
                              "' (LL, LF, IE, PM, LL-oracle)");
}

ScenarioRequest ScenarioRequest::from_json(const json::Value& v) {
  ScenarioRequest req;
  if (v.kind() == json::Kind::kNull) return req;  // all defaults
  if (v.kind() != json::Kind::kObject) {
    throw std::invalid_argument("params must be an object");
  }
  for (const auto& [key, value] : v.as_object()) {
    if (key == "policy") {
      if (value.kind() != json::Kind::kString) {
        throw std::invalid_argument("params.policy must be a string");
      }
      req.policy = parse_policy_name(value.as_string());
    } else if (key == "nodes") {
      req.nodes = size_field(value, key, 1, kMaxNodes);
    } else if (key == "jobs") {
      req.jobs = size_field(value, key, 1, kMaxJobs);
    } else if (key == "demand") {
      req.demand = double_field(value, key, 1e-6, 1e9);
    } else if (key == "machines") {
      req.machines = size_field(value, key, 1, kMaxMachines);
    } else if (key == "days") {
      req.days = double_field(value, key, 1e-3, kMaxDays);
    } else if (key == "closed") {
      req.closed = double_field(value, key, 0.0, kMaxClosedSeconds);
    } else if (key == "pause") {
      req.pause = double_field(value, key, 0.0, 1e9);
    } else if (key == "reps") {
      req.reps = size_field(value, key, 1, kMaxReps);
    } else if (key == "seed") {
      try {
        req.seed = value.as_u64();
      } catch (const std::exception&) {
        throw std::invalid_argument("params.seed must be an integer");
      }
    } else {
      throw std::invalid_argument("params has unknown key '" + key + "'");
    }
  }
  return req;
}

std::uint64_t ScenarioRequest::config_digest() const {
  verify::Digest digest;
  // Version tag: bump when the scenario semantics change, so stale cached
  // results from an older server can never alias a new config.
  digest.add_string("serve.cluster.v1");
  digest.add_string(core::to_string(policy));
  digest.add_u64(nodes);
  digest.add_u64(jobs);
  digest.add_double(demand);
  digest.add_u64(machines);
  digest.add_double(days);
  digest.add_double(closed);
  digest.add_double(pause);
  digest.add_u64(reps);
  return digest.value();
}

std::string ScenarioRequest::run(util::TaskRunner* runner) const {
  // This mirrors cli::cmd_cluster's one-cell sweep exactly (same pool-cache
  // key, spec shape and metric reduction); any drift breaks the served ==
  // offline byte-identity test.
  const auto pool =
      exp::TracePoolCache::shared().standard(machines, days * 24.0, seed + 1);
  const workload::BurstTable& table = workload::default_burst_table();

  cluster::ExperimentConfig cfg;
  cfg.cluster.node_count = nodes;
  cfg.cluster.policy = policy;
  cfg.cluster.policy_params.pause_time = pause;
  cfg.workload = cluster::WorkloadSpec{jobs, demand};

  exp::ExperimentSpec spec;
  spec.name = "cluster";
  spec.seed = seed;
  spec.replications = reps;
  spec.axes = {"policy"};
  const double closed_duration = closed;
  spec.add_cell({{"policy", std::string(core::to_string(policy))}},
                [cfg, pool, &table, closed_duration](std::uint64_t s) mutable {
                  cfg.seed = s;
                  if (closed_duration > 0.0) {
                    return exp::closed_metrics(
                        cluster::run_closed(cfg, *pool, table,
                                            closed_duration));
                  }
                  return exp::open_metrics(cluster::run_open(cfg, *pool,
                                                             table));
                });

  exp::EngineOptions options;
  options.runner = runner;
  return exp::to_json(exp::run_sweep(spec, options));
}

namespace {

int run_serve_offline(const std::vector<std::string>& args,
                      std::ostream& out) {
  util::Flags flags("llsim bench serve_offline",
                    "Print the exact sweep JSON `llsim serve` returns for "
                    "one scenario (the byte-identity oracle).");
  auto policy = flags.add_string("policy", "LL", "LL, LF, IE, PM, LL-oracle");
  auto nodes = flags.add_int("nodes", 64, "cluster size");
  auto jobs = flags.add_int("jobs", 128, "foreign jobs");
  auto demand = flags.add_double("demand", 600.0, "CPU-seconds per job");
  auto machines = flags.add_int("machines", 32, "synthetic machines");
  auto days = flags.add_double("days", 1.0, "synthetic trace days");
  auto closed = flags.add_double("closed", 0.0,
                                 "if > 0: closed-system run of this many s");
  auto pause = flags.add_double("pause-time", 60.0, "PM grace period");
  auto reps = flags.add_int("reps", 1, "replications");
  auto seed = flags.add_uint64("seed", 42, "RNG seed");
  std::vector<const char*> argv{"serve_offline"};
  for (const std::string& a : args) argv.push_back(a.c_str());
  flags.parse(static_cast<int>(argv.size()), argv.data());

  ScenarioRequest req;
  req.policy = parse_policy_name(*policy);
  req.nodes = static_cast<std::size_t>(*nodes);
  req.jobs = static_cast<std::size_t>(*jobs);
  req.demand = *demand;
  req.machines = static_cast<std::size_t>(*machines);
  req.days = *days;
  req.closed = *closed;
  req.pause = *pause;
  req.reps = static_cast<std::size_t>(*reps);
  req.seed = *seed;
  out << req.run(nullptr);
  return 0;
}

}  // namespace

void register_serve_benches() {
  static std::once_flag once;
  std::call_once(once, [] {
    exp::BenchRegistry::instance().add(exp::Bench{
        "serve_offline",
        "exact JSON `llsim serve` returns for one scenario (byte-identity "
        "oracle for the serve tests)",
        run_serve_offline});
  });
}

}  // namespace ll::serve
