#pragma once

/// \file protocol.hpp
/// The `llsim serve` wire protocol: newline-delimited JSON over TCP, one
/// request object per line in, one response object per line out.
///
/// Requests:
///   {"id": 7, "op": "run", "params": {"policy": "IE", "reps": 3, ...}}
///   {"id": 8, "op": "ping"}
///   {"id": 9, "op": "stats"}
///
/// Responses (always a single line, `id` echoed so clients may pipeline):
///   {"id": 7, "status": "ok", "cache": "miss", "key": "<digest>:<seed>",
///    "result": "<sweep JSON, escaped into one string>"}
///   {"id": 8, "status": "ok", "pong": true}
///   {"id": 9, "status": "ok", "stats": {...}}
///   {"id": 7, "status": "error", "error": "<message>"}
///   {"id": 7, "status": "rejected", "error": "queue full",
///    "retry_after_ms": 25}
///
/// The sweep result rides as an escaped *string*, not an embedded object:
/// exp::to_json is multi-line by contract (its bytes are the determinism
/// artifact golden tests pin), and NDJSON framing requires one line per
/// response. Clients unescape the string to recover the exact offline
/// bytes — tests/serve/ proves equality with `llsim bench serve_offline`.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "serve/scenario.hpp"

namespace ll::serve {

enum class Op { kRun, kPing, kStats };

struct ParsedRequest {
  std::uint64_t id = 0;
  Op op = Op::kRun;
  ScenarioRequest scenario;  // meaningful for kRun only
};

/// Parse failure; carries the request id when one was recovered before the
/// failure, so the error response can still be correlated.
class RequestError : public std::runtime_error {
 public:
  RequestError(std::uint64_t id, const std::string& message)
      : std::runtime_error(message), id_(id) {}
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  std::uint64_t id_;
};

/// Parses one request line (without the trailing newline). Throws
/// RequestError on malformed JSON, unknown ops, or invalid params.
[[nodiscard]] ParsedRequest parse_request(std::string_view line);

/// The cache key's wire rendering: "<16-hex config digest>:<seed>".
[[nodiscard]] std::string format_key(std::uint64_t config_digest,
                                     std::uint64_t seed);

// Response serializers. Each returns one complete line ending in '\n'.
[[nodiscard]] std::string run_response(std::uint64_t id, bool cache_hit,
                                       const std::string& key,
                                       const std::string& result_json);
[[nodiscard]] std::string pong_response(std::uint64_t id);
/// `stats_object` must already be a single-line JSON object.
[[nodiscard]] std::string stats_response(std::uint64_t id,
                                         const std::string& stats_object);
[[nodiscard]] std::string error_response(std::uint64_t id,
                                         const std::string& message);
[[nodiscard]] std::string rejected_response(std::uint64_t id,
                                            int retry_after_ms);

}  // namespace ll::serve
