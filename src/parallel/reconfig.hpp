#pragma once

/// \file reconfig.hpp
/// Linger-Longer versus reconfiguration for parallel jobs (paper §5.1
/// Figure 11 and §5.2 Figure 13).
///
/// Scenario: a cluster of N nodes of which `idle_nodes` are idle and the
/// rest carry owner load at a fixed utilization. A parallel job with a fixed
/// total amount of work chooses its width:
///
///  * Linger-Longer with k processes ("LL-k"): if k or more nodes are idle,
///    run on k idle nodes; otherwise run on every idle node and linger on
///    enough non-idle nodes to reach width k.
///  * Reconfiguration: shrink to the largest power-of-two number of idle
///    nodes (the paper's constraint — many codes require power-of-two
///    widths); with zero idle nodes the job must take one busy node.
///
/// The paper ignores the cost of reconfiguring itself, and so do we (it
/// would only improve Linger-Longer's relative standing, as the paper notes).

#include "parallel/apps.hpp"
#include "parallel/bsp.hpp"

namespace ll::parallel {

struct ReconfigScenario {
  std::size_t cluster_nodes = 32;
  double nonidle_util = 0.20;  // owner load on non-idle nodes (paper: 20%)
  double total_work = 38.4;    // CPU-seconds summed over processes
  BspConfig bsp;               // communication/granularity template; the
                               // `processes` field is set per run
};

/// Completion time of the job run at width k under Linger-Longer.
/// Requires 1 <= k <= scenario.cluster_nodes and idle_nodes <= cluster_nodes.
[[nodiscard]] double ll_completion(const ReconfigScenario& scenario,
                                   std::size_t k, std::size_t idle_nodes,
                                   const workload::BurstTable& table,
                                   rng::Stream stream);

/// Completion time under the reconfiguration policy (largest power-of-two
/// width that fits on idle nodes; one busy node when none are idle).
[[nodiscard]] double reconfig_completion(const ReconfigScenario& scenario,
                                         std::size_t idle_nodes,
                                         const workload::BurstTable& table,
                                         rng::Stream stream);

/// Largest power of two <= n (n >= 1).
[[nodiscard]] std::size_t floor_pow2(std::size_t n);

/// The hybrid linger+reconfigure strategy the paper's §5.2 conclusions
/// suggest: choose the power-of-two width — allowing lingering on busy
/// nodes — that minimizes the cost-model *predicted* completion, then run
/// at that width. With many idle nodes this behaves like wide lingering;
/// on a crowded cluster it shrinks like reconfiguration.
[[nodiscard]] std::size_t choose_hybrid_width(const ReconfigScenario& scenario,
                                              std::size_t idle_nodes,
                                              const workload::BurstTable& table);

[[nodiscard]] double hybrid_completion(const ReconfigScenario& scenario,
                                       std::size_t idle_nodes,
                                       const workload::BurstTable& table,
                                       rng::Stream stream);

}  // namespace ll::parallel
