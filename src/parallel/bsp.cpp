#include "parallel/bsp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ll::parallel {
namespace {

constexpr double kUtilEps = 5e-3;

/// Message destinations for process p: nearest neighbours on a ring
/// (NEWS-style: alternating +1, -1, +2, -2, ... offsets).
std::vector<std::size_t> message_destinations(std::size_t p, std::size_t procs,
                                              std::size_t count) {
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t m = 0; m < count; ++m) {
    const auto distance = static_cast<long>(m / 2 + 1);
    const long offset = (m % 2 == 0) ? distance : -distance;
    const long raw = static_cast<long>(p) + offset;
    const auto n = static_cast<long>(procs);
    out.push_back(static_cast<std::size_t>(((raw % n) + n) % n));
  }
  return out;
}

void validate(const BspConfig& config, std::span<const double> node_utils) {
  if (config.processes == 0) {
    throw std::invalid_argument("BSP: processes must be > 0");
  }
  if (node_utils.size() != config.processes) {
    throw std::invalid_argument("BSP: node_utils size must equal processes");
  }
  if (!(config.granularity > 0.0)) {
    throw std::invalid_argument("BSP: granularity must be > 0");
  }
  for (double u : node_utils) {
    if (!(u >= 0.0 && u < 1.0)) {
      throw std::invalid_argument("BSP: node utilization must be in [0,1)");
    }
  }
}

}  // namespace

double sample_phase_duration(const BspConfig& config, double granularity,
                             std::span<const double> node_utils,
                             const ContentionSampler& sampler,
                             const workload::BurstTable& table,
                             rng::Stream& stream) {
  const std::size_t procs = config.processes;
  double max_compute = 0.0;
  std::vector<double> compute(procs, 0.0);
  for (std::size_t p = 0; p < procs; ++p) {
    compute[p] = sampler.sample(granularity, node_utils[p], stream);
    max_compute = std::max(max_compute, compute[p]);
  }

  std::vector<double> comm(procs, 0.0);
  double max_comm = 0.0;
  const double wire = config.per_message_overhead +
                      static_cast<double>(config.bytes_per_message) * 8.0 /
                          config.bandwidth_bps;
  for (std::size_t p = 0; p < procs; ++p) {
    // Sends are pipelined: wire serializations add up, destination handler
    // waits overlap (the section completes with the slowest destination).
    double handler_max = 0.0;
    std::size_t count = 0;
    for (std::size_t dest :
         message_destinations(p, procs, config.messages_per_process)) {
      handler_max = std::max(
          handler_max, expected_handler_delay(config, node_utils[dest], table));
      ++count;
    }
    comm[p] = wire * static_cast<double>(count) + handler_max;
    max_comm = std::max(max_comm, comm[p]);
  }

  if (config.closing_barrier) {
    // Opening barrier ends compute; closing barrier ends communication.
    return max_compute + max_comm;
  }
  // Without a closing barrier the next compute starts as each process
  // finishes its own exchanges; the phase critical path is per-process.
  double critical = 0.0;
  for (std::size_t p = 0; p < procs; ++p) {
    critical = std::max(critical, compute[p] + comm[p]);
  }
  return critical;
}

double expected_handler_delay(const BspConfig& config, double u,
                              const workload::BurstTable& table) {
  u = std::clamp(u, 0.0, 1.0);
  if (u < kUtilEps) return config.handler_cpu;
  // Receive-side software: stretched by the leftover rate, plus the expected
  // residual owner run burst when the message lands mid-burst (prob. u).
  const workload::BurstDistributions dist = table.distributions_at(u);
  return config.handler_cpu / (1.0 - u) + u * dist.run.mean_residual();
}

double expected_message_time(const BspConfig& config, double u,
                             const workload::BurstTable& table) {
  return config.per_message_overhead +
         static_cast<double>(config.bytes_per_message) * 8.0 /
             config.bandwidth_bps +
         expected_handler_delay(config, u, table);
}

BspResult simulate_bsp(const BspConfig& config,
                       std::span<const double> node_utils,
                       const workload::BurstTable& table, rng::Stream stream) {
  validate(config, node_utils);
  const ContentionSampler sampler(table, config.context_switch);
  const std::vector<double> all_idle(config.processes, 0.0);

  BspResult result;
  result.phases = config.phases;
  rng::Stream phase_stream = stream.fork("phases");
  for (std::size_t i = 0; i < config.phases; ++i) {
    result.time += sample_phase_duration(config, config.granularity, node_utils,
                                  sampler, table, phase_stream);
    result.ideal += sample_phase_duration(config, config.granularity, all_idle,
                                   sampler, table, phase_stream);
  }
  return result;
}

BspResult simulate_bsp_work(const BspConfig& config, double total_work,
                            std::span<const double> node_utils,
                            const workload::BurstTable& table,
                            rng::Stream stream) {
  validate(config, node_utils);
  if (!(total_work > 0.0)) {
    throw std::invalid_argument("BSP: total_work must be > 0");
  }
  const ContentionSampler sampler(table, config.context_switch);
  const std::vector<double> all_idle(config.processes, 0.0);
  const double work_per_phase =
      config.granularity * static_cast<double>(config.processes);

  BspResult result;
  rng::Stream phase_stream = stream.fork("phases");
  double remaining = total_work;
  while (remaining > 1e-12) {
    const double fraction = std::min(1.0, remaining / work_per_phase);
    const double g = config.granularity * fraction;
    result.time +=
        sample_phase_duration(config, g, node_utils, sampler, table, phase_stream);
    result.ideal +=
        sample_phase_duration(config, g, all_idle, sampler, table, phase_stream);
    remaining -= work_per_phase * fraction;
    ++result.phases;
  }
  return result;
}

}  // namespace ll::parallel
