#include "parallel/parallel_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

#include "des/simulation.hpp"
#include "parallel/reconfig.hpp"
#include "util/table.hpp"

namespace ll::parallel {
namespace {

// The contention sampler rejects utilizations indistinguishable from 1; a
// saturated owner window still leaves scheduler slack in practice.
constexpr double kMaxUtil = 0.99;

}  // namespace

std::string_view to_string(WidthPolicy policy) {
  switch (policy) {
    case WidthPolicy::Reconfigure:
      return "reconfigure";
    case WidthPolicy::FixedLinger:
      return "fixed-linger";
    case WidthPolicy::Hybrid:
      return "hybrid";
  }
  throw std::logic_error("to_string: unknown WidthPolicy");
}

double ParallelJobRecord::turnaround() const {
  if (!completion) throw std::logic_error("turnaround: job not complete");
  return *completion - submit_time;
}

double ParallelJobRecord::queue_wait() const {
  if (!start_time) throw std::logic_error("queue_wait: job never started");
  return *start_time - submit_time;
}

struct ParallelClusterSim::Impl {
  Impl(ParallelClusterSim& owner, ParallelClusterConfig config,
       const workload::BurstTable& burst_table)
      : self(owner),
        cfg(std::move(config)),
        table(&burst_table),
        sampler(burst_table, cfg.context_switch),
        sim(des::Simulation::Options{cfg.queue}) {}

  ParallelClusterSim& self;
  ParallelClusterConfig cfg;
  const workload::BurstTable* table;
  ContentionSampler sampler;
  des::Simulation sim;
  double period = 2.0;

  struct NodeState {
    const trace::CoarseTrace* trace = nullptr;
    const std::vector<bool>* flags = nullptr;
    std::size_t offset_windows = 0;
    int job = -1;  // assigned parallel job, -1 when free
    // Fault overlays (inert on fault-free runs). A down node keeps its job
    // assignment — the process restarts in place at recovery.
    bool down = false;
    double down_until = 0.0;
    double forced_busy_until = 0.0;  // reclamation storm
    double forced_util = 0.0;
  };
  std::vector<NodeState> nodes;
  std::vector<std::vector<bool>> flag_cache;

  struct JobRuntime {
    ParallelJobSpec spec;
    std::vector<std::size_t> assigned;
    double remaining = 0.0;
    rng::Stream stream{0};
    des::EventId phase_event = des::kNoEvent;  // pending barrier completion
    bool stalled = false;  // a member node is (or was) down mid-phase
  };
  // Deque: grows from completion callbacks while engine frames still hold
  // references to existing entries.
  std::deque<JobRuntime> rt;
  std::deque<std::uint32_t> queue;
  std::function<void(const ParallelJobRecord&)> on_complete;
  rng::Stream job_streams{0};  // master for per-job phase randomness

  // Observability (optional; nullptr = detached, zero work).
  obs::Counter* m_submitted = nullptr;
  obs::Counter* m_completed = nullptr;
  obs::Counter* m_phases = nullptr;
  obs::Gauge* g_delivered = nullptr;
  obs::TimeWeighted* tw_queue = nullptr;
  obs::TimeWeighted* tw_busy = nullptr;
  obs::Timeline* timeline = nullptr;

  void note_transition(std::uint32_t id, std::string_view state,
                       std::string detail = {}) {
    if (timeline) {
      timeline->record(now(),
                       util::format("job %zu", static_cast<std::size_t>(id)),
                       state, detail);
    }
  }

  void note_metrics() {
    if (tw_queue) tw_queue->set(now(), static_cast<double>(queue.size()));
    if (tw_busy) {
      std::size_t busy = 0;
      for (const NodeState& n : nodes) {
        if (n.job >= 0) ++busy;
      }
      tw_busy->set(now(), static_cast<double>(busy));
    }
  }

  bool retry_scheduled = false;
  double run_horizon = 0.0;

  [[nodiscard]] double now() const { return sim.now(); }

  [[nodiscard]] std::size_t window_of(const NodeState& n) const {
    const std::size_t count = n.trace->samples().size();
    return (n.offset_windows +
            static_cast<std::size_t>(std::floor(now() / period + 1e-9))) %
           count;
  }

  [[nodiscard]] double util_of(const NodeState& n) const {
    double u = std::clamp(n.trace->samples()[window_of(n)].cpu, 0.0, kMaxUtil);
    if (n.forced_busy_until > now() + 1e-12) {
      u = std::clamp(std::max(u, n.forced_util), 0.0, kMaxUtil);
    }
    return u;
  }

  [[nodiscard]] bool idle_now(const NodeState& n) const {
    if (n.down || n.forced_busy_until > now() + 1e-12) return false;
    return (*n.flags)[window_of(n)];
  }

  /// Free nodes split and sorted: idle first (by utilization), then busy.
  [[nodiscard]] std::vector<std::size_t> ranked_free_nodes(
      std::size_t* idle_count) const {
    std::vector<std::size_t> idle;
    std::vector<std::size_t> busy;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].job >= 0 || nodes[i].down) continue;
      (idle_now(nodes[i]) ? idle : busy).push_back(i);
    }
    auto by_util = [this](std::size_t a, std::size_t b) {
      const double ua = util_of(nodes[a]);
      const double ub = util_of(nodes[b]);
      if (ua != ub) return ua < ub;
      return a < b;
    };
    std::sort(idle.begin(), idle.end(), by_util);
    std::sort(busy.begin(), busy.end(), by_util);
    if (idle_count) *idle_count = idle.size();
    std::vector<std::size_t> out = std::move(idle);
    out.insert(out.end(), busy.begin(), busy.end());
    return out;
  }

  [[nodiscard]] std::size_t width_cap(std::size_t available,
                                      std::size_t max_width) const {
    const std::size_t cap = std::min(available, max_width);
    if (cap == 0) return 0;
    return cfg.power_of_two ? floor_pow2(cap) : cap;
  }

  /// Cost-model predicted completion of `spec` on the first `w` of `ranked`.
  [[nodiscard]] double predict_completion(const ParallelJobSpec& spec,
                                          std::span<const std::size_t> chosen) const {
    const auto w = chosen.size();
    BspConfig bsp = spec.bsp;
    bsp.processes = w;
    double worst_stretch = 1.0;
    double worst_util = 0.0;
    for (std::size_t node : chosen) {
      const double u = util_of(nodes[node]);
      worst_util = std::max(worst_util, u);
      worst_stretch = std::max(
          worst_stretch, sampler.expected(spec.bsp.granularity, u) /
                             spec.bsp.granularity);
    }
    const double phase_compute = spec.bsp.granularity * worst_stretch;
    const double wire = bsp.per_message_overhead +
                        static_cast<double>(bsp.bytes_per_message) * 8.0 /
                            bsp.bandwidth_bps;
    const double comm =
        wire * static_cast<double>(bsp.messages_per_process) +
        expected_handler_delay(bsp, worst_util, *table);
    const double phases =
        spec.total_work / (static_cast<double>(w) * spec.bsp.granularity);
    return phases * (phase_compute + comm);
  }

  /// Chooses the node set for the queue-head job, or empty if it must wait.
  [[nodiscard]] std::vector<std::size_t> choose_assignment(
      const ParallelJobSpec& spec) const {
    std::size_t idle_count = 0;
    const std::vector<std::size_t> ranked = ranked_free_nodes(&idle_count);

    switch (cfg.policy) {
      case WidthPolicy::Reconfigure: {
        // Idle nodes only; wait when none exist.
        const std::size_t w = width_cap(idle_count, spec.max_width);
        if (w == 0) return {};
        return {ranked.begin(), ranked.begin() + static_cast<long>(w)};
      }
      case WidthPolicy::FixedLinger: {
        const std::size_t w = std::min(cfg.fixed_width, spec.max_width);
        if (ranked.size() < w || w == 0) return {};
        return {ranked.begin(), ranked.begin() + static_cast<long>(w)};
      }
      case WidthPolicy::Hybrid: {
        if (ranked.empty()) return {};
        double best_time = std::numeric_limits<double>::infinity();
        std::size_t best_w = 0;
        for (std::size_t w = cfg.power_of_two ? 1 : ranked.size();
             w <= std::min(ranked.size(), spec.max_width);
             w = cfg.power_of_two ? w * 2 : w + 1) {
          const std::span<const std::size_t> chosen(ranked.data(), w);
          const double t = predict_completion(spec, chosen);
          // Prefer wider on near-ties: it frees the queue sooner.
          if (t < best_time * 0.999) {
            best_time = t;
            best_w = w;
          } else if (t <= best_time * 1.001 && w > best_w) {
            best_w = w;
          }
        }
        return {ranked.begin(), ranked.begin() + static_cast<long>(best_w)};
      }
    }
    throw std::logic_error("choose_assignment: unknown policy");
  }

  void try_dispatch() {
    while (!queue.empty()) {
      const std::uint32_t id = queue.front();
      std::vector<std::size_t> assignment = choose_assignment(rt[id].spec);
      if (assignment.empty()) break;  // FIFO head-of-line
      queue.pop_front();
      start_job(id, std::move(assignment));
    }
    ensure_retry();
    // Dispatch is the only place queue length or node assignment changes
    // besides submit/complete, and both of those end here.
    note_metrics();
  }

  void start_job(std::uint32_t id, std::vector<std::size_t> assignment) {
    JobRuntime& r = rt[id];
    ParallelJobRecord& job = self.jobs_[id];
    r.assigned = std::move(assignment);
    std::size_t idle = 0;
    for (std::size_t node : r.assigned) {
      nodes[node].job = static_cast<int>(id);
      if (idle_now(nodes[node])) ++idle;
    }
    job.start_time = now();
    job.width = r.assigned.size();
    job.idle_at_dispatch = idle;
    note_transition(id, "running",
                    util::format("width %zu", r.assigned.size()));
    schedule_phase(id);
  }

  void schedule_phase(std::uint32_t id) {
    JobRuntime& r = rt[id];
    const auto w = r.assigned.size();
    const double full = r.spec.bsp.granularity;
    const double work_per_phase = full * static_cast<double>(w);
    const double fraction = std::min(1.0, r.remaining / work_per_phase);
    const double g = full * fraction;

    BspConfig bsp = r.spec.bsp;
    bsp.processes = w;
    std::vector<double> utils;
    utils.reserve(w);
    for (std::size_t node : r.assigned) utils.push_back(util_of(nodes[node]));
    const double duration =
        sample_phase_duration(bsp, g, utils, sampler, *table, r.stream);

    const double work_done = work_per_phase * fraction;
    r.phase_event = sim.schedule_in(
        duration,
        [this, id, work_done] {
          JobRuntime& job_rt = rt[id];
          job_rt.phase_event = des::kNoEvent;
          job_rt.remaining -= work_done;
          self.delivered_work_ += work_done;
          if (m_phases) m_phases->add();
          if (g_delivered) g_delivered->set(self.delivered_work_);
          note_transition(id, "phase",
                          util::format("remaining %.3f", job_rt.remaining));
          if (job_rt.remaining <= 1e-9) {
            complete(id);
          } else {
            schedule_phase(id);
          }
        },
        ParallelClusterSim::kTagPhase);
  }

  void complete(std::uint32_t id) {
    JobRuntime& r = rt[id];
    ParallelJobRecord& job = self.jobs_[id];
    for (std::size_t node : r.assigned) nodes[node].job = -1;
    r.assigned.clear();
    r.remaining = 0.0;
    job.completion = now();
    --self.active_jobs_;
    if (m_completed) m_completed->add();
    note_transition(id, "done");
    if (on_complete) on_complete(job);
    try_dispatch();
  }

  // ---- fault injection ----------------------------------------------------

  fault::FaultSchedule faults;

  void schedule_faults() {
    for (const fault::FaultEvent& ev : faults.events()) {
      const fault::FaultEvent* e = &ev;  // stable: events_ never mutates
      sim.schedule_at(ev.time, [this, e] { apply_fault(*e); },
                      ParallelClusterSim::kTagFault);
    }
  }

  void apply_fault(const fault::FaultEvent& ev) {
    switch (ev.kind) {
      case fault::FaultKind::NodeCrash:
        crash_node(ev.nodes.front(), ev.duration);
        break;
      case fault::FaultKind::Storm:
        start_storm(ev);
        break;
      case fault::FaultKind::Pressure:
        break;  // no paging model here (see ParallelClusterConfig::faults)
    }
  }

  [[nodiscard]] bool all_members_up(const JobRuntime& r) const {
    for (std::size_t node : r.assigned) {
      if (nodes[node].down) return false;
    }
    return true;
  }

  void crash_node(std::size_t idx, double downtime) {
    NodeState& n = nodes[idx];
    ++self.crashes_;
    const double until = now() + downtime;
    if (n.down) {
      if (until > n.down_until) {
        n.down_until = until;
        sim.schedule_at(until, [this, idx] { recover_node(idx); },
                        ParallelClusterSim::kTagFault);
      }
      return;
    }
    n.down = true;
    n.down_until = until;
    if (timeline) {
      timeline->record(now(), util::format("node %zu", idx), "crashed",
                       util::format("down %.1f s", downtime));
    }
    // The hosted process dies mid-phase: the barrier can never complete, so
    // the whole phase aborts and every member of the job stalls until the
    // node is back (work is only credited at phase completion, so the
    // aborted phase is lost in full — barrier-granularity checkpointing).
    if (n.job >= 0) {
      const auto id = static_cast<std::uint32_t>(n.job);
      JobRuntime& r = rt[id];
      if (r.phase_event != des::kNoEvent) {
        sim.cancel(r.phase_event);
        r.phase_event = des::kNoEvent;
        ++self.jobs_[id].restarts;
        ++self.restarts_;
        note_transition(id, "stalled", util::format("node %zu down", idx));
      }
      r.stalled = true;
    }
    sim.schedule_at(n.down_until, [this, idx] { recover_node(idx); },
                    ParallelClusterSim::kTagFault);
  }

  void recover_node(std::size_t idx) {
    NodeState& n = nodes[idx];
    if (!n.down) return;
    if (now() + 1e-9 < n.down_until) return;  // superseded by a longer outage
    n.down = false;
    if (timeline) {
      timeline->record(now(), util::format("node %zu", idx), "recovered");
    }
    if (n.job >= 0) {
      const auto id = static_cast<std::uint32_t>(n.job);
      JobRuntime& r = rt[id];
      if (r.stalled && all_members_up(r)) {
        // Last member back: restart the aborted phase after the process
        // reload delay. The callback re-checks — another member may crash
        // during the delay.
        sim.schedule_in(
            cfg.crash_restart_delay,
            [this, id] {
              JobRuntime& job_rt = rt[id];
              if (!job_rt.stalled || !all_members_up(job_rt)) return;
              job_rt.stalled = false;
              note_transition(id, "restarted");
              schedule_phase(id);
            },
            ParallelClusterSim::kTagFault);
      }
    }
    try_dispatch();  // a recovered free node may unblock the queue head
  }

  void start_storm(const fault::FaultEvent& ev) {
    for (std::size_t idx : ev.nodes) {
      NodeState& n = nodes[idx];
      if (n.down) continue;
      n.forced_busy_until = std::max(n.forced_busy_until, now() + ev.duration);
      n.forced_util = std::max(n.forced_util, cfg.faults.storm.utilization);
    }
    // Running phases sampled their stretch at phase start; the storm slows
    // the phases that *start* inside it, same as any owner return.
  }

  /// While jobs wait, re-attempt dispatch every trace window — the set of
  /// idle nodes changes as owners come and go.
  void ensure_retry() {
    if (retry_scheduled || queue.empty()) return;
    retry_scheduled = true;
    const double next = (std::floor(now() / period + 1e-9) + 1.0) * period;
    sim.schedule_at(
        next,
        [this] {
          retry_scheduled = false;
          try_dispatch();
        },
        ParallelClusterSim::kTagRetry);
  }
};

ParallelClusterSim::ParallelClusterSim(ParallelClusterConfig config,
                                       std::span<const trace::CoarseTrace> pool,
                                       const workload::BurstTable& table,
                                       rng::Stream stream)
    : impl_(std::make_unique<Impl>(*this, std::move(config), table)) {
  Impl& im = *impl_;
  if (pool.empty()) {
    throw std::invalid_argument("ParallelClusterSim: empty trace pool");
  }
  if (im.cfg.node_count == 0) {
    throw std::invalid_argument("ParallelClusterSim: node_count must be > 0");
  }
  if (im.cfg.policy == WidthPolicy::FixedLinger &&
      (im.cfg.fixed_width == 0 || im.cfg.fixed_width > im.cfg.node_count)) {
    throw std::invalid_argument(
        "ParallelClusterSim: fixed_width outside [1, node_count]");
  }
  im.period = pool.front().period();
  for (const auto& t : pool) {
    if (t.empty()) {
      throw std::invalid_argument("ParallelClusterSim: empty trace in pool");
    }
    if (t.period() != im.period) {
      throw std::invalid_argument(
          "ParallelClusterSim: traces must share one period");
    }
    im.flag_cache.push_back(trace::idle_flags(t, im.cfg.recruitment));
  }

  if (!(im.cfg.crash_restart_delay >= 0.0)) {
    throw std::invalid_argument(
        "ParallelClusterSim: crash_restart_delay must be >= 0");
  }
  im.cfg.faults.validate();

  im.job_streams = stream.fork("jobs");
  rng::Stream setup = stream.fork("node-setup");
  im.nodes.resize(im.cfg.node_count);
  for (std::size_t i = 0; i < im.cfg.node_count; ++i) {
    auto& n = im.nodes[i];
    const auto pick = im.cfg.randomize_placement
                          ? setup.uniform_index(pool.size())
                          : i % pool.size();
    n.trace = &pool[pick];
    n.flags = &im.flag_cache[pick];
    n.offset_windows = im.cfg.randomize_placement
                           ? setup.uniform_index(n.trace->samples().size())
                           : 0;
  }

  // Empty spec: no schedule compiled, no stream forked, no events — the
  // fault layer is invisible to fault-free runs (golden-pinned).
  if (!im.cfg.faults.empty()) {
    im.faults = fault::FaultSchedule::compile(im.cfg.faults, im.cfg.node_count,
                                              stream.fork("faults"));
    im.schedule_faults();
  }
}

ParallelClusterSim::~ParallelClusterSim() = default;

std::uint32_t ParallelClusterSim::submit(ParallelJobSpec spec) {
  Impl& im = *impl_;
  if (!(spec.total_work > 0.0)) {
    throw std::invalid_argument("submit: total_work must be > 0");
  }
  if (spec.max_width == 0) {
    throw std::invalid_argument("submit: max_width must be > 0");
  }
  if (!(spec.bsp.granularity > 0.0)) {
    throw std::invalid_argument("submit: granularity must be > 0");
  }
  spec.max_width = std::min(spec.max_width, im.cfg.node_count);

  const auto id = static_cast<std::uint32_t>(jobs_.size());
  ParallelJobRecord record;
  record.id = id;
  record.total_work = spec.total_work;
  record.submit_time = im.now();
  jobs_.push_back(record);

  Impl::JobRuntime runtime;
  runtime.remaining = spec.total_work;
  runtime.spec = std::move(spec);
  runtime.stream = im.job_streams.fork("job", id);
  im.rt.push_back(std::move(runtime));
  ++active_jobs_;
  if (im.m_submitted) im.m_submitted->add();
  im.note_transition(id, "queued",
                     util::format("work %.0f", record.total_work));
  im.queue.push_back(id);
  im.try_dispatch();
  return id;
}

void ParallelClusterSim::set_metrics(obs::MetricRegistry* registry) {
  Impl& im = *impl_;
  if (!registry) {
    im.m_submitted = im.m_completed = im.m_phases = nullptr;
    im.g_delivered = nullptr;
    im.tw_queue = im.tw_busy = nullptr;
    return;
  }
  im.m_submitted = &registry->counter("parallel.jobs_submitted");
  im.m_completed = &registry->counter("parallel.jobs_completed");
  im.m_phases = &registry->counter("parallel.phases_completed");
  im.g_delivered = &registry->gauge("parallel.delivered_work_seconds");
  im.tw_queue = &registry->time_weighted("parallel.queue_length");
  im.tw_busy = &registry->time_weighted("parallel.busy_nodes");
  im.note_metrics();
}

void ParallelClusterSim::set_timeline(obs::Timeline* timeline) {
  impl_->timeline = timeline;
}

des::SimObserver* ParallelClusterSim::set_sim_observer(
    des::SimObserver* observer) {
  return impl_->sim.set_observer(observer);
}

const des::Simulation& ParallelClusterSim::engine() const {
  return impl_->sim;
}

void ParallelClusterSim::set_completion_callback(
    std::function<void(const ParallelJobRecord&)> cb) {
  impl_->on_complete = std::move(cb);
}

void ParallelClusterSim::run_until_all_complete(double max_horizon) {
  Impl& im = *impl_;
  while (active_jobs_ > 0) {
    if (!im.sim.step()) {
      throw std::logic_error(
          "ParallelClusterSim: event queue drained with jobs incomplete");
    }
    if (im.now() > max_horizon) {
      throw std::runtime_error("ParallelClusterSim: exceeded max horizon");
    }
  }
}

void ParallelClusterSim::run_for(double duration) {
  Impl& im = *impl_;
  if (!(duration >= 0.0)) {
    throw std::invalid_argument("run_for: negative duration");
  }
  im.run_horizon = im.now() + duration;
  im.sim.run_until(im.run_horizon);
}

double ParallelClusterSim::now() const { return impl_->now(); }

}  // namespace ll::parallel
