#pragma once

/// \file bsp.hpp
/// Bulk-synchronous parallel job model (paper §5.1).
///
/// Each iteration ("phase"): every process computes for the synchronization
/// granularity, an opening barrier ends the compute section, a communication
/// section exchanges messages, and an optional closing barrier ends the
/// iteration. Compute on a non-idle node is stretched burst-by-burst by the
/// ContentionSampler; the barrier makes the iteration wait for the slowest
/// process.
///
/// Communication is network/DMA-bound and is not slowed by the *sender's*
/// owner load, but the receive-side software (the paper's CVM runs as a user
/// process) is: a message to a non-idle node waits, in expectation, for the
/// residual owner run burst and has its handler CPU stretched by the
/// leftover rate. This is what makes communication-heavy applications the
/// least sensitive to lingering (paper §5.2: sor > water > fft).

#include <span>
#include <vector>

#include "parallel/contention.hpp"
#include "rng/rng.hpp"
#include "workload/burst_table.hpp"

namespace ll::parallel {

struct BspConfig {
  std::size_t processes = 8;
  double granularity = 0.1;  // compute seconds per process per phase
  std::size_t phases = 50;

  // Communication section, per process per phase.
  std::size_t messages_per_process = 4;  // NEWS exchange by default
  std::uint64_t bytes_per_message = 4096;
  double per_message_overhead = 0.5e-3;  // protocol/software fixed cost (s)
  double bandwidth_bps = 10e6;           // 10 Mbps Ethernet, as in the paper
  double handler_cpu = 1.0e-3;           // receive-side software time (s)
  bool closing_barrier = true;

  double context_switch = 100e-6;
};

struct BspResult {
  double time = 0.0;   // simulated completion time (s)
  double ideal = 0.0;  // completion time with every node idle (s)
  std::size_t phases = 0;

  [[nodiscard]] double slowdown() const { return ideal > 0.0 ? time / ideal : 0.0; }
};

/// Expected delivery time of one message whose *destination* node has owner
/// utilization u: overhead + wire time + handler stretched by the leftover
/// rate + expected residual owner burst on arrival.
[[nodiscard]] double expected_message_time(const BspConfig& config, double u,
                                           const workload::BurstTable& table);

/// The destination-side component alone (handler stretch + residual-burst
/// wait). A process's sends are pipelined, so within one communication
/// section the wire serializations add up but the per-destination handler
/// waits overlap — the section waits for the *slowest* destination, not the
/// sum. This overlap is why communication-bound applications (fft) are the
/// least sensitive to lingering (paper §5.2).
[[nodiscard]] double expected_handler_delay(const BspConfig& config, double u,
                                            const workload::BurstTable& table);

/// Samples the duration of ONE phase (stretched compute to the barrier plus
/// the communication section) for the given per-process owner utilizations
/// and compute granularity. Building block for co-simulations that must
/// interleave several parallel jobs whose node loads change over time (see
/// parallel_cluster.hpp).
[[nodiscard]] double sample_phase_duration(const BspConfig& config,
                                           double granularity,
                                           std::span<const double> node_utils,
                                           const ContentionSampler& sampler,
                                           const workload::BurstTable& table,
                                           rng::Stream& stream);

/// Simulates `config.phases` iterations. `node_utils[p]` is the owner
/// utilization of the node hosting process p (0 = idle node); size must
/// equal config.processes.
[[nodiscard]] BspResult simulate_bsp(const BspConfig& config,
                                     std::span<const double> node_utils,
                                     const workload::BurstTable& table,
                                     rng::Stream stream);

/// Fixed-work variant for the reconfiguration comparisons: runs whole
/// phases until `total_work` CPU-seconds (summed over processes) are done;
/// the last phase is shortened pro rata. Ignores config.phases.
[[nodiscard]] BspResult simulate_bsp_work(const BspConfig& config,
                                          double total_work,
                                          std::span<const double> node_utils,
                                          const workload::BurstTable& table,
                                          rng::Stream stream);

}  // namespace ll::parallel
