#include "parallel/reconfig.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "parallel/contention.hpp"

namespace ll::parallel {
namespace {

double run_width(const ReconfigScenario& scenario, std::size_t width,
                 std::size_t idle_procs, const workload::BurstTable& table,
                 rng::Stream stream) {
  BspConfig bsp = scenario.bsp;
  bsp.processes = width;
  std::vector<double> utils(width, 0.0);
  for (std::size_t i = idle_procs; i < width; ++i) {
    utils[i] = scenario.nonidle_util;
  }
  return simulate_bsp_work(bsp, scenario.total_work, utils, table,
                           std::move(stream))
      .time;
}

}  // namespace

std::size_t floor_pow2(std::size_t n) {
  if (n == 0) throw std::invalid_argument("floor_pow2: n must be >= 1");
  std::size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

double ll_completion(const ReconfigScenario& scenario, std::size_t k,
                     std::size_t idle_nodes, const workload::BurstTable& table,
                     rng::Stream stream) {
  if (k == 0 || k > scenario.cluster_nodes) {
    throw std::invalid_argument("ll_completion: width outside [1, nodes]");
  }
  if (idle_nodes > scenario.cluster_nodes) {
    throw std::invalid_argument("ll_completion: idle_nodes > cluster_nodes");
  }
  const std::size_t idle_procs = std::min(k, idle_nodes);
  return run_width(scenario, k, idle_procs, table, std::move(stream));
}

std::size_t choose_hybrid_width(const ReconfigScenario& scenario,
                                std::size_t idle_nodes,
                                const workload::BurstTable& table) {
  if (idle_nodes > scenario.cluster_nodes) {
    throw std::invalid_argument("choose_hybrid_width: idle_nodes > cluster");
  }
  const ContentionSampler sampler(table, scenario.bsp.context_switch);
  const double g = scenario.bsp.granularity;
  const double wire =
      scenario.bsp.per_message_overhead +
      static_cast<double>(scenario.bsp.bytes_per_message) * 8.0 /
          scenario.bsp.bandwidth_bps;

  double best_time = std::numeric_limits<double>::infinity();
  std::size_t best_w = 1;
  for (std::size_t w = 1; w <= scenario.cluster_nodes; w *= 2) {
    const bool lingers = w > idle_nodes;
    const double u = lingers ? scenario.nonidle_util : 0.0;
    const double stretch = lingers ? sampler.expected(g, u) / g : 1.0;
    const double comm =
        wire * static_cast<double>(scenario.bsp.messages_per_process) +
        expected_handler_delay(scenario.bsp, u, table);
    const double phases = scenario.total_work / (static_cast<double>(w) * g);
    const double predicted = phases * (g * stretch + comm);
    if (predicted < best_time * 0.999) {
      best_time = predicted;
      best_w = w;
    } else if (predicted <= best_time * 1.001 && w > best_w) {
      best_w = w;  // near-tie: prefer width (frees the cluster sooner)
    }
  }
  return best_w;
}

double hybrid_completion(const ReconfigScenario& scenario,
                         std::size_t idle_nodes,
                         const workload::BurstTable& table,
                         rng::Stream stream) {
  const std::size_t w = choose_hybrid_width(scenario, idle_nodes, table);
  return ll_completion(scenario, w, idle_nodes, table, std::move(stream));
}

double reconfig_completion(const ReconfigScenario& scenario,
                           std::size_t idle_nodes,
                           const workload::BurstTable& table,
                           rng::Stream stream) {
  if (idle_nodes > scenario.cluster_nodes) {
    throw std::invalid_argument("reconfig_completion: idle_nodes > cluster_nodes");
  }
  if (idle_nodes == 0) {
    // Nowhere idle: the job must take one busy node.
    return run_width(scenario, 1, 0, table, std::move(stream));
  }
  const std::size_t width = floor_pow2(idle_nodes);
  return run_width(scenario, width, width, table, std::move(stream));
}

}  // namespace ll::parallel
