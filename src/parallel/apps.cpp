#include "parallel/apps.hpp"

#include <stdexcept>

namespace ll::parallel {

AppModel sor_model(std::size_t processes) {
  AppModel app;
  app.name = "sor";
  app.bsp.processes = processes;
  app.bsp.phases = 40;
  app.bsp.granularity = 0.200;         // relaxation sweep per iteration
  app.bsp.messages_per_process = 2;    // north/south boundary rows
  app.bsp.bytes_per_message = 4096;    // one boundary row
  app.bsp.handler_cpu = 0.8e-3;
  return app;
}

AppModel water_model(std::size_t processes) {
  AppModel app;
  app.name = "water";
  app.bsp.processes = processes;
  app.bsp.phases = 30;
  app.bsp.granularity = 0.250;         // force computation is heavier
  app.bsp.messages_per_process = 6;    // partial all-pairs force exchange
  app.bsp.bytes_per_message = 8192;
  app.bsp.handler_cpu = 1.2e-3;
  return app;
}

AppModel fft_model(std::size_t processes) {
  AppModel app;
  app.name = "fft";
  app.bsp.processes = processes;
  app.bsp.phases = 30;
  app.bsp.granularity = 0.100;         // butterfly stages are cheap
  // All-to-all transpose: one message to every other process.
  app.bsp.messages_per_process = processes > 1 ? processes - 1 : 0;
  app.bsp.bytes_per_message = 16384;   // transpose blocks dominate
  app.bsp.handler_cpu = 1.0e-3;
  return app;
}

std::vector<AppModel> all_app_models(std::size_t processes) {
  return {sor_model(processes), water_model(processes), fft_model(processes)};
}

double app_slowdown(const AppModel& app, std::size_t nonidle_nodes,
                    double local_util, const workload::BurstTable& table,
                    rng::Stream stream) {
  if (nonidle_nodes > app.bsp.processes) {
    throw std::invalid_argument("app_slowdown: more non-idle nodes than processes");
  }
  std::vector<double> utils(app.bsp.processes, 0.0);
  for (std::size_t i = 0; i < nonidle_nodes; ++i) utils[i] = local_util;
  const BspResult r = simulate_bsp(app.bsp, utils, table, std::move(stream));
  return r.slowdown();
}

}  // namespace ll::parallel
