#pragma once

/// \file contention.hpp
/// Per-process CPU contention sampler for parallel jobs (paper §5).
///
/// A parallel job's process on a non-idle node runs at starvation priority:
/// it executes only inside the owner's idle gaps. Barrier-synchronized
/// applications are slowed by the *maximum* stretched compute time across
/// processes, so cluster-level rate averaging is not enough here — each
/// process's phase must be sampled burst-by-burst to preserve the heavy
/// tail of owner run bursts that dominates barrier waits.

#include "node/effective_rate.hpp"
#include "rng/rng.hpp"
#include "workload/burst_table.hpp"

namespace ll::parallel {

class ContentionSampler {
 public:
  /// `context_switch` is the effective switch cost charged when the process
  /// regains the CPU after an owner burst.
  ContentionSampler(const workload::BurstTable& table, double context_switch);

  /// Samples the wall time to complete `work` CPU-seconds of
  /// starvation-priority work on a node whose owner utilization is `u`.
  /// u == 0 (or < the table epsilon) returns `work` exactly.
  ///
  /// The process starts at a random phase of the owner's run/idle renewal
  /// process, approximated by beginning with an idle gap with probability
  /// (1 - u) and a run burst otherwise (full-length draws; the residual-
  /// length correction is negligible at the burst/phase ratios used here
  /// and the approximation is validated against the closed form in tests).
  [[nodiscard]] double sample(double work, double u, rng::Stream& stream) const;

  /// Closed-form expectation: work / ((1-u) * fcsr(u)). The sampler's mean
  /// converges to this; its distribution adds the tail the barrier max sees.
  [[nodiscard]] double expected(double work, double u) const;

  [[nodiscard]] const workload::BurstTable& table() const { return *table_; }
  [[nodiscard]] double context_switch() const { return context_switch_; }

 private:
  const workload::BurstTable* table_;
  double context_switch_;
  node::EffectiveRateTable rates_;
};

}  // namespace ll::parallel
