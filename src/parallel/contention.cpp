#include "parallel/contention.hpp"

#include <algorithm>
#include <stdexcept>

namespace ll::parallel {
namespace {

constexpr double kUtilEps = 5e-3;

}  // namespace

ContentionSampler::ContentionSampler(const workload::BurstTable& table,
                                     double context_switch)
    : table_(&table),
      context_switch_(context_switch),
      rates_(node::EffectiveRateTable::analytic(table, context_switch)) {
  if (context_switch < 0.0) {
    throw std::invalid_argument("ContentionSampler: negative context switch");
  }
}

double ContentionSampler::sample(double work, double u,
                                 rng::Stream& stream) const {
  if (!(work >= 0.0)) {
    throw std::invalid_argument("ContentionSampler::sample: negative work");
  }
  if (work == 0.0) return 0.0;
  u = std::clamp(u, 0.0, 1.0);
  if (u < kUtilEps) return work;
  if (u > 1.0 - kUtilEps) {
    throw std::invalid_argument(
        "ContentionSampler::sample: owner utilization ~1, process starves");
  }
  const workload::BurstDistributions dist = table_->distributions_at(u);
  double elapsed = 0.0;
  double remaining = work;
  // Random initial phase: idle gap with probability (1-u).
  bool in_idle = stream.uniform01() < (1.0 - u);
  while (remaining > 0.0) {
    if (in_idle) {
      const double gap = dist.idle.sample(stream);
      const double usable = gap - context_switch_;
      if (usable >= remaining) {
        elapsed += context_switch_ + remaining;
        remaining = 0.0;
        break;
      }
      if (usable > 0.0) remaining -= usable;
      elapsed += gap;
    } else {
      elapsed += dist.run.sample(stream);
    }
    in_idle = !in_idle;
  }
  return elapsed;
}

double ContentionSampler::expected(double work, double u) const {
  u = std::clamp(u, 0.0, 1.0);
  if (u < kUtilEps) return work;
  const double rate = rates_.foreign_rate(u);
  if (!(rate > 0.0)) {
    throw std::logic_error("ContentionSampler::expected: zero progress rate");
  }
  return work / rate;
}

}  // namespace ll::parallel
