#pragma once

/// \file apps.hpp
/// Application phase models for the three shared-memory programs of the
/// paper's §5.2 (sor, water, fft).
///
/// The paper ran the real binaries through a CVM software-DSM simulator fed
/// by ATOM instrumentation. That toolchain is not reproducible here, so each
/// application is modelled by its bulk-synchronous phase profile — per-phase
/// compute granularity, message count/size, and synchronization pattern —
/// which is exactly the channel through which lingering affects them. The
/// profiles encode the paper's characterization:
///
///  * sor   — Jacobi relaxation: modest per-phase compute, nearest-neighbour
///            boundary exchange only. Almost all time is barrier-synchronized
///            compute, so it is the *most* sensitive to local CPU activity.
///  * water — molecular dynamics (SPLASH-2): larger compute phases with
///            moderate all-pairs communication; intermediate sensitivity.
///  * fft   — transpose-based FFT: communication-dominated (all-to-all
///            transposes); time spent waiting on communication is not
///            stretched by local CPU load, so it is the *least* sensitive.

#include <string_view>
#include <vector>

#include "parallel/bsp.hpp"

namespace ll::parallel {

struct AppModel {
  std::string_view name;
  BspConfig bsp;  // processes/phases filled by the factory
};

/// Factories; `processes` is the parallel width the app runs at.
[[nodiscard]] AppModel sor_model(std::size_t processes);
[[nodiscard]] AppModel water_model(std::size_t processes);
[[nodiscard]] AppModel fft_model(std::size_t processes);
[[nodiscard]] std::vector<AppModel> all_app_models(std::size_t processes);

/// Slowdown of `app` when `nonidle_nodes` of its nodes carry owner load
/// `local_util` (paper Figure 12): ratio of completion time to the all-idle
/// completion time.
[[nodiscard]] double app_slowdown(const AppModel& app, std::size_t nonidle_nodes,
                                  double local_util,
                                  const workload::BurstTable& table,
                                  rng::Stream stream);

}  // namespace ll::parallel
