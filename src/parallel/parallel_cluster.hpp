#pragma once

/// \file parallel_cluster.hpp
/// Multi-job parallel cluster co-simulation — the end-to-end evaluation of
/// cluster throughput for parallel jobs that the paper names as work in
/// progress (§5/§7: "the strongest argument for using Linger-Longer is the
/// potential gain in the throughput of a cluster due to the ability to run
/// more parallel jobs at once").
///
/// A cluster of workstations replays coarse owner traces. Parallel
/// (bulk-synchronous) jobs arrive in a FIFO queue; a width policy decides
/// how many and which nodes each job takes:
///
///  * Reconfigure  — the Acha-style baseline: shrink to the largest
///    power-of-two number of *idle* nodes; wait if none are idle.
///  * FixedLinger  — always run at a fixed width, lingering at starvation
///    priority on non-idle nodes when idle ones run out.
///  * Hybrid       — the strategy the paper's §5.2 suggests: pick, at
///    dispatch time, the width (power-of-two) minimizing the cost-model
///    *predicted* completion over the best available nodes — wide with
///    lingering when owners are few, narrower when the cluster is busy.
///
/// Jobs execute phase by phase: each phase samples the barrier-synchronized
/// compute stretch per process against the hosting node's *current* trace
/// utilization, so owner sessions that start mid-job slow exactly the
/// phases they overlap.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "des/simulation.hpp"
#include "fault/fault_spec.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "parallel/bsp.hpp"
#include "rng/rng.hpp"
#include "trace/records.hpp"
#include "trace/recruitment.hpp"
#include "util/stable_vector.hpp"
#include "workload/burst_table.hpp"

namespace ll::parallel {

enum class WidthPolicy { Reconfigure, FixedLinger, Hybrid };

[[nodiscard]] std::string_view to_string(WidthPolicy policy);

struct ParallelJobSpec {
  double total_work = 38.4;  // CPU-seconds summed over processes
  /// Phase template: granularity, message pattern, barrier style. The
  /// `processes` field is set by the dispatcher to the chosen width.
  BspConfig bsp;
  std::size_t max_width = 32;
};

struct ParallelClusterConfig {
  std::size_t node_count = 32;
  /// Event-queue backend for the internal engine (backend-invariant, as in
  /// ClusterConfig::queue).
  des::QueueBackend queue = des::QueueBackend::kHeap;
  WidthPolicy policy = WidthPolicy::Hybrid;
  std::size_t fixed_width = 32;  // FixedLinger's width
  /// Constrain widths to powers of two (the paper's application constraint).
  bool power_of_two = true;
  trace::RecruitmentRule recruitment;
  double context_switch = 100e-6;
  /// As in ClusterSim: random (trace, offset) per node, or node i -> pool[i]
  /// at offset 0 for deterministic tests.
  bool randomize_placement = true;
  /// Fault plan. The BSP simulator honours node crashes and reclamation
  /// storms; link and memory-pressure faults are ClusterSim concepts (there
  /// is no migration or paging model here) and are ignored. A crash stalls
  /// the whole barrier-synchronized phase: the job's processes wait, and
  /// the aborted phase re-runs once every member node is back up (work is
  /// only credited at phase completion — barrier-granularity
  /// checkpointing). Empty spec => no streams forked, no events scheduled.
  fault::FaultSpec faults;
  /// Process restart latency after the last crashed member node recovers
  /// (image reload before the aborted phase re-runs).
  double crash_restart_delay = 5.0;
};

struct ParallelJobRecord {
  std::uint32_t id = 0;
  double total_work = 0.0;
  double submit_time = 0.0;
  std::optional<double> start_time;
  std::optional<double> completion;
  std::size_t width = 0;             // processes granted at dispatch
  std::size_t idle_at_dispatch = 0;  // idle nodes among those granted
  std::uint32_t restarts = 0;        // phases aborted by member-node crashes

  [[nodiscard]] double turnaround() const;
  [[nodiscard]] double queue_wait() const;
};

class ParallelClusterSim {
 public:
  ParallelClusterSim(ParallelClusterConfig config,
                     std::span<const trace::CoarseTrace> pool,
                     const workload::BurstTable& table, rng::Stream stream);
  ~ParallelClusterSim();
  ParallelClusterSim(const ParallelClusterSim&) = delete;
  ParallelClusterSim& operator=(const ParallelClusterSim&) = delete;

  /// Enqueues a job at the current simulation time.
  std::uint32_t submit(ParallelJobSpec spec);

  /// Invoked when a job completes (closed-system experiments resubmit here).
  void set_completion_callback(std::function<void(const ParallelJobRecord&)> cb);

  void run_until_all_complete(double max_horizon = 1e7);
  void run_for(double duration);

  [[nodiscard]] double now() const;
  /// A chunked pool on purpose: completion callbacks submit replacements
  /// while the engine still references earlier records (StableVector growth
  /// is pointer-stable).
  [[nodiscard]] const util::StableVector<ParallelJobRecord, 256>& jobs()
      const {
    return jobs_;
  }
  [[nodiscard]] std::size_t incomplete_jobs() const { return active_jobs_; }

  /// Parallel CPU-work completed so far (proc-seconds).
  [[nodiscard]] double delivered_work() const { return delivered_work_; }

  /// Node-crash events applied so far.
  [[nodiscard]] std::size_t crashes() const { return crashes_; }

  /// Barrier phases aborted by a member-node crash (each re-runs in full
  /// after recovery).
  [[nodiscard]] std::size_t restarts() const { return restarts_; }

  /// Attaches a metrics registry (nullptr detaches): parallel.* counters
  /// (jobs, phases) plus queue-length and busy-node accumulators over
  /// virtual time. Observational only — never changes simulated behavior.
  /// The registry must outlive its registration.
  void set_metrics(obs::MetricRegistry* registry);

  /// Attaches a state-transition timeline (nullptr detaches): BSP job
  /// dispatch/phase/completion transitions, one record per boundary. Same
  /// observational-only contract as set_metrics; the timeline must outlive
  /// its registration.
  void set_timeline(obs::Timeline* timeline);

  /// Attaches an observer to the internal event engine (nullptr detaches;
  /// returns the previous observer). Phase completions carry tag
  /// kTagPhase, dispatch retries kTagRetry.
  des::SimObserver* set_sim_observer(des::SimObserver* observer);

  /// Read-only view of the internal event engine (clock, event counters).
  [[nodiscard]] const des::Simulation& engine() const;

  /// Observer tags used by the internal engine's events.
  static constexpr std::uint64_t kTagPhase = 1;
  static constexpr std::uint64_t kTagRetry = 2;
  static constexpr std::uint64_t kTagFault = 3;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  util::StableVector<ParallelJobRecord, 256> jobs_;
  std::size_t active_jobs_ = 0;
  double delivered_work_ = 0.0;
  std::size_t crashes_ = 0;
  std::size_t restarts_ = 0;
};

}  // namespace ll::parallel
