#include "workload/burst_table.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ll::workload {

double BurstMoments::implied_utilization() const {
  const double total = run_mean + idle_mean;
  return total > 0.0 ? run_mean / total : 0.0;
}

BurstTable::BurstTable(std::array<BurstMoments, kUtilizationLevels> levels)
    : levels_(levels) {
  for (const BurstMoments& m : levels_) {
    if (m.run_mean < 0.0 || m.idle_mean < 0.0 || m.run_var < 0.0 ||
        m.idle_var < 0.0) {
      throw std::invalid_argument("BurstTable: negative moment");
    }
  }
}

const BurstMoments& BurstTable::level(std::size_t i) const {
  return levels_.at(i);
}

double BurstTable::level_utilization(std::size_t i) {
  return static_cast<double>(i) / static_cast<double>(kUtilizationLevels - 1);
}

BurstMoments BurstTable::moments_at(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  const double pos = u * static_cast<double>(kUtilizationLevels - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  if (lo >= kUtilizationLevels - 1) return levels_.back();
  const double frac = pos - static_cast<double>(lo);
  const BurstMoments& a = levels_[lo];
  const BurstMoments& b = levels_[lo + 1];
  auto lerp = [frac](double x, double y) { return x + frac * (y - x); };
  return BurstMoments{lerp(a.run_mean, b.run_mean), lerp(a.run_var, b.run_var),
                      lerp(a.idle_mean, b.idle_mean), lerp(a.idle_var, b.idle_var)};
}

BurstDistributions BurstTable::distributions_at(double u) const {
  if (!(u > 0.0 && u < 1.0)) {
    throw std::invalid_argument(
        "distributions_at: u must be strictly inside (0,1); the 0%/100% "
        "endpoints are degenerate");
  }
  const BurstMoments m = moments_at(u);
  if (!(m.run_mean > 0.0) || !(m.idle_mean > 0.0)) {
    throw std::logic_error("distributions_at: table has zero mean inside (0,1)");
  }
  return BurstDistributions{rng::fit_hyperexp2(m.run_mean, m.run_var),
                            rng::fit_hyperexp2(m.idle_mean, m.idle_var)};
}

const BurstTable& default_burst_table() {
  static const BurstTable table = [] {
    std::array<BurstMoments, kUtilizationLevels> levels{};
    constexpr double kRunCv2 = 1.8;
    constexpr double kIdleCv2 = 2.2;
    // idle_mean(u) = A e^{-ku} is monotone decreasing; the self-consistency
    // constraint run_mean = idle_mean * u/(1-u) is then monotone increasing
    // for any k < 4 (d/du [ln u - ln(1-u) - ku] = 1/u + 1/(1-u) - k > 0).
    // A and k are chosen so run bursts span ~10 ms (low utilization) to
    // ~250 ms (95%), the range of the paper's Figure 3.
    constexpr double kIdleScale = 0.227;  // A
    constexpr double kIdleDecay = 3.0;    // k
    auto idle_of = [](double u) {
      return kIdleScale * std::exp(-kIdleDecay * u);
    };
    for (std::size_t i = 0; i < kUtilizationLevels; ++i) {
      const double u = BurstTable::level_utilization(i);
      BurstMoments& m = levels[i];
      if (i == 0) {
        // Near-zero utilization: run bursts keep their ~10 ms size — they
        // just become rare (very long idle gaps). Interpolating run_mean
        // toward zero instead would make the per-burst context-switch cost
        // ratio (LDR) diverge at lightly loaded nodes.
        const double run = idle_of(0.05) * 0.05 / (1.0 - 0.05);
        const double idle = run * (1.0 - 0.005) / 0.005;
        m = BurstMoments{run, kRunCv2 * run * run, idle,
                         kIdleCv2 * idle * idle};
      } else if (i == kUtilizationLevels - 1) {
        // Pure run: no idle gaps. Run mean caps the 95%-level trend.
        const double run = 0.30;
        m = BurstMoments{run, kRunCv2 * run * run, 0.0, 0.0};
      } else {
        const double idle_mean = idle_of(u);
        const double run_mean = idle_mean * u / (1.0 - u);
        m = BurstMoments{run_mean, kRunCv2 * run_mean * run_mean, idle_mean,
                         kIdleCv2 * idle_mean * idle_mean};
      }
    }
    return BurstTable(levels);
  }();
  return table;
}

}  // namespace ll::workload
