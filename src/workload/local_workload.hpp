#pragma once

/// \file local_workload.hpp
/// The two-level local workload generator of paper Figure 6: a coarse trace
/// supplies each node's 2-second utilization and memory series; the burst
/// table turns each window's utilization into fine-grain run/idle bursts.
/// This is the foreground ("owner") workload against which foreign jobs
/// linger.

#include <optional>

#include "rng/rng.hpp"
#include "trace/records.hpp"
#include "workload/burst_table.hpp"

namespace ll::workload {

/// Streams the fine-grain bursts of one node.
///
/// The generator walks virtual time; each emitted burst is annotated with its
/// start time. Windows whose coarse utilization is ~0 emit a single idle
/// burst spanning the window (and symmetrically for ~1), so fully idle
/// machines cost O(1) per window rather than O(bursts).
class LocalWorkloadGenerator {
 public:
  /// `offset` shifts the coarse trace (wrapped), so many simulated nodes can
  /// share one trace pool without lockstep behaviour, as in the paper.
  LocalWorkloadGenerator(const trace::CoarseTrace& trace,
                         const BurstTable& table, rng::Stream stream,
                         double offset = 0.0);

  struct TimedBurst {
    double start = 0.0;
    trace::Burst burst;
  };

  /// Emits the next burst. Never returns zero-duration bursts. Consecutive
  /// bursts abut: next().start == previous start + previous duration.
  TimedBurst next();

  /// Coarse utilization at generator time t (wrapped trace lookup).
  [[nodiscard]] double utilization_at(double t) const;

  /// Current generator time (start of the next burst to be emitted).
  [[nodiscard]] double now() const { return now_; }

 private:
  const trace::CoarseTrace& trace_;
  const BurstTable& table_;
  rng::Stream stream_;
  double offset_;
  double now_ = 0.0;
  bool run_next_ = false;  // bursts alternate; idle first
};

}  // namespace ll::workload
