#pragma once

/// \file fine_generator.hpp
/// Fine-grain trace synthesis: generates AIX-dispatch-style run/idle burst
/// traces from a burst table. This is the substitute for the University of
/// Maryland dispatch traces — the Figure 2/3 pipeline generates traces here,
/// re-fits them with `fit_burst_table`, and compares the fitted
/// hyperexponential CDFs against the empirical ones exactly as the paper
/// does against real data.

#include "rng/rng.hpp"
#include "trace/records.hpp"
#include "workload/burst_table.hpp"

namespace ll::workload {

/// Generates `duration` seconds of alternating run/idle bursts at a constant
/// target utilization `u` in (0,1). The final burst is truncated at the
/// duration boundary.
[[nodiscard]] trace::FineTrace generate_fine_trace(const BurstTable& table,
                                                   double u, double duration,
                                                   rng::Stream stream);

/// Generates a trace whose utilization steps through `profile` — one target
/// utilization per `window` seconds — exercising the bucketed analysis the
/// same way a real mixed-load trace would. Profile entries at 0 or 1 emit
/// pure idle / pure run windows.
[[nodiscard]] trace::FineTrace generate_fine_trace_profile(
    const BurstTable& table, const std::vector<double>& profile, double window,
    rng::Stream stream);

}  // namespace ll::workload
