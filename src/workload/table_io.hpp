#pragma once

/// \file table_io.hpp
/// Text serialization of burst tables. A site that fits a table from its own
/// dispatch traces (workload/fit.hpp) can persist it and feed it to every
/// simulator in place of the synthetic default:
///
///   auto table = ll::workload::analyze_fine_traces(my_traces).to_table();
///   ll::workload::save_table(table, "site.bursts");
///   ...
///   auto table = ll::workload::load_table("site.bursts");
///
/// Format: "# ll-burst-table v1" then one line per level:
///   "<level> <run_mean> <run_var> <idle_mean> <idle_var>"
/// All 21 levels must be present, in order.

#include <iosfwd>
#include <string>

#include "workload/burst_table.hpp"

namespace ll::workload {

void save_table(const BurstTable& table, std::ostream& out);
void save_table(const BurstTable& table, const std::string& path);

[[nodiscard]] BurstTable load_table(std::istream& in);
[[nodiscard]] BurstTable load_table(const std::string& path);

}  // namespace ll::workload
