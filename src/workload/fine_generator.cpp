#include "workload/fine_generator.hpp"

#include <stdexcept>

namespace ll::workload {
namespace {

constexpr double kUtilEps = 5e-3;  // below: pure idle; above 1-eps: pure run

}  // namespace

trace::FineTrace generate_fine_trace(const BurstTable& table, double u,
                                     double duration, rng::Stream stream) {
  if (!(u > 0.0 && u < 1.0)) {
    throw std::invalid_argument("generate_fine_trace: u must be in (0,1)");
  }
  if (!(duration > 0.0)) {
    throw std::invalid_argument("generate_fine_trace: duration must be > 0");
  }
  const BurstDistributions dist = table.distributions_at(u);
  trace::FineTrace out;
  double t = 0.0;
  bool run = false;  // start with an idle gap; stationary start is immaterial
                     // for the long traces the analysis consumes
  while (t < duration) {
    const double draw =
        run ? dist.run.sample(stream) : dist.idle.sample(stream);
    const double len = std::min(draw, duration - t);
    out.push(run ? trace::BurstKind::Run : trace::BurstKind::Idle, len);
    t += len;
    run = !run;
  }
  return out;
}

trace::FineTrace generate_fine_trace_profile(const BurstTable& table,
                                             const std::vector<double>& profile,
                                             double window, rng::Stream stream) {
  if (!(window > 0.0)) {
    throw std::invalid_argument("generate_fine_trace_profile: window must be > 0");
  }
  trace::FineTrace out;
  bool run = false;
  for (std::size_t w = 0; w < profile.size(); ++w) {
    const double u = profile[w];
    if (!(u >= 0.0 && u <= 1.0)) {
      throw std::invalid_argument("profile utilization outside [0,1]");
    }
    double t = 0.0;
    if (u < kUtilEps) {
      out.push(trace::BurstKind::Idle, window);
      run = false;
      continue;
    }
    if (u > 1.0 - kUtilEps) {
      out.push(trace::BurstKind::Run, window);
      run = true;
      continue;
    }
    const BurstDistributions dist = table.distributions_at(u);
    while (t < window) {
      const double draw =
          run ? dist.run.sample(stream) : dist.idle.sample(stream);
      const double len = std::min(draw, window - t);
      out.push(run ? trace::BurstKind::Run : trace::BurstKind::Idle, len);
      t += len;
      run = !run;
    }
  }
  return out;
}

}  // namespace ll::workload
