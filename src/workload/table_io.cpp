#include "workload/table_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ll::workload {

void save_table(const BurstTable& table, std::ostream& out) {
  out << "# ll-burst-table v1\n";
  out << std::setprecision(17);
  for (std::size_t i = 0; i < kUtilizationLevels; ++i) {
    const BurstMoments& m = table.level(i);
    out << i << ' ' << m.run_mean << ' ' << m.run_var << ' ' << m.idle_mean
        << ' ' << m.idle_var << '\n';
  }
}

void save_table(const BurstTable& table, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_table: cannot open " + path);
  save_table(table, out);
}

BurstTable load_table(std::istream& in) {
  std::string header;
  if (!std::getline(in, header) ||
      header.rfind("# ll-burst-table v1", 0) != 0) {
    throw std::runtime_error("load_table: bad or missing header");
  }
  std::array<BurstMoments, kUtilizationLevels> levels{};
  std::array<bool, kUtilizationLevels> seen{};
  std::string line;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::size_t level = 0;
    BurstMoments m;
    if (!(fields >> level >> m.run_mean >> m.run_var >> m.idle_mean >>
          m.idle_var) ||
        level >= kUtilizationLevels) {
      throw std::runtime_error("load_table: malformed line " +
                               std::to_string(line_no) + ": '" + line + "'");
    }
    if (seen[level]) {
      throw std::runtime_error("load_table: duplicate level " +
                               std::to_string(level));
    }
    seen[level] = true;
    levels[level] = m;
  }
  for (std::size_t i = 0; i < kUtilizationLevels; ++i) {
    if (!seen[i]) {
      throw std::runtime_error("load_table: missing level " +
                               std::to_string(i));
    }
  }
  return BurstTable(levels);
}

BurstTable load_table(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_table: cannot open " + path);
  return load_table(in);
}

}  // namespace ll::workload
