#include "workload/local_workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ll::workload {
namespace {

constexpr double kUtilEps = 5e-3;

}  // namespace

LocalWorkloadGenerator::LocalWorkloadGenerator(const trace::CoarseTrace& trace,
                                               const BurstTable& table,
                                               rng::Stream stream, double offset)
    : trace_(trace), table_(table), stream_(std::move(stream)), offset_(offset) {
  if (trace_.empty()) {
    throw std::invalid_argument("LocalWorkloadGenerator: empty coarse trace");
  }
  if (offset_ < 0.0) {
    throw std::invalid_argument("LocalWorkloadGenerator: negative offset");
  }
}

double LocalWorkloadGenerator::utilization_at(double t) const {
  return trace_.sample_at(offset_ + t).cpu;
}

LocalWorkloadGenerator::TimedBurst LocalWorkloadGenerator::next() {
  const double period = trace_.period();
  for (;;) {
    const double u = std::clamp(utilization_at(now_), 0.0, 1.0);
    // Time remaining in the current coarse window.
    const double in_window = std::fmod(offset_ + now_, period);
    const double window_left = period - in_window;

    if (u < kUtilEps) {
      // Whole remainder of the window is idle.
      TimedBurst out{now_, trace::Burst{trace::BurstKind::Idle, window_left}};
      now_ += window_left;
      run_next_ = true;  // a run burst plausibly follows activity onset
      return out;
    }
    if (u > 1.0 - kUtilEps) {
      TimedBurst out{now_, trace::Burst{trace::BurstKind::Run, window_left}};
      now_ += window_left;
      run_next_ = false;
      return out;
    }

    const BurstDistributions dist = table_.distributions_at(u);
    const bool run = run_next_;
    const double draw =
        run ? dist.run.sample(stream_) : dist.idle.sample(stream_);
    run_next_ = !run_next_;
    // Bursts do not cross window boundaries: the utilization level (and with
    // it the distribution) changes there. Truncation keeps the within-window
    // run fraction equal to u in expectation.
    const double len = std::min(draw, window_left);
    if (len <= 0.0) continue;  // degenerate draw; resample
    TimedBurst out{now_,
                   trace::Burst{run ? trace::BurstKind::Run : trace::BurstKind::Idle,
                                len}};
    now_ += len;
    return out;
  }
}

}  // namespace ll::workload
