#include "workload/fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/summary.hpp"

namespace ll::workload {
namespace {

std::size_t nearest_level(double utilization) {
  const double pos =
      utilization * static_cast<double>(kUtilizationLevels - 1);
  const auto idx = static_cast<long>(std::lround(pos));
  return static_cast<std::size_t>(
      std::clamp<long>(idx, 0, static_cast<long>(kUtilizationLevels) - 1));
}

}  // namespace

std::array<BurstMoments, kUtilizationLevels> BurstAnalysis::moments() const {
  std::array<BurstMoments, kUtilizationLevels> out{};
  for (std::size_t i = 0; i < kUtilizationLevels; ++i) {
    stats::Summary run;
    stats::Summary idle;
    for (double d : levels[i].run) run.add(d);
    for (double d : levels[i].idle) idle.add(d);
    out[i] = BurstMoments{run.mean(), run.variance(), idle.mean(),
                          idle.variance()};
  }
  return out;
}

BurstTable BurstAnalysis::to_table() const {
  auto m = moments();
  // A level counts as populated if it has any burst sample at all.
  auto populated = [this](std::size_t i) {
    return !levels[i].run.empty() || !levels[i].idle.empty();
  };
  // Collect populated indices.
  std::vector<std::size_t> known;
  for (std::size_t i = 0; i < kUtilizationLevels; ++i) {
    if (populated(i)) known.push_back(i);
  }
  if (known.empty()) {
    throw std::logic_error("BurstAnalysis::to_table: no samples at any level");
  }
  for (std::size_t i = 0; i < kUtilizationLevels; ++i) {
    if (populated(i)) continue;
    // Nearest known below and above.
    auto above = std::lower_bound(known.begin(), known.end(), i);
    if (above == known.begin()) {
      m[i] = m[known.front()];
    } else if (above == known.end()) {
      m[i] = m[known.back()];
    } else {
      const std::size_t hi = *above;
      const std::size_t lo = *(above - 1);
      const double frac = static_cast<double>(i - lo) /
                          static_cast<double>(hi - lo);
      auto lerp = [frac](double a, double b) { return a + frac * (b - a); };
      m[i] = BurstMoments{lerp(m[lo].run_mean, m[hi].run_mean),
                          lerp(m[lo].run_var, m[hi].run_var),
                          lerp(m[lo].idle_mean, m[hi].idle_mean),
                          lerp(m[lo].idle_var, m[hi].idle_var)};
    }
  }
  return BurstTable(m);
}

BurstAnalysis analyze_fine_trace(const trace::FineTrace& trace, double window) {
  if (!(window > 0.0)) {
    throw std::invalid_argument("analyze_fine_trace: window must be > 0");
  }
  BurstAnalysis out;
  const auto& bursts = trace.bursts();
  if (bursts.empty()) return out;

  const double total = trace.duration();
  const auto window_count =
      static_cast<std::size_t>(std::max(1.0, std::ceil(total / window)));

  // Pass 1: per-window run time (bursts chopped at boundaries).
  std::vector<double> run_time(window_count, 0.0);
  std::vector<double> time_in(window_count, 0.0);
  double t = 0.0;
  for (const trace::Burst& b : bursts) {
    double start = t;
    double remaining = b.duration;
    t += b.duration;
    while (remaining > 0.0) {
      const auto w = std::min(
          static_cast<std::size_t>(std::floor(start / window)), window_count - 1);
      const double in_window =
          std::min(remaining, (static_cast<double>(w) + 1.0) * window - start);
      // Guard against zero-progress from floating-point edge cases.
      const double step = std::max(in_window, 1e-12);
      if (b.kind == trace::BurstKind::Run) run_time[w] += step;
      time_in[w] += step;
      start += step;
      remaining -= step;
    }
  }

  std::vector<std::size_t> window_level(window_count, 0);
  for (std::size_t w = 0; w < window_count; ++w) {
    const double u = time_in[w] > 0.0 ? run_time[w] / time_in[w] : 0.0;
    window_level[w] = nearest_level(std::clamp(u, 0.0, 1.0));
  }

  // Pass 2: assign each burst (unchopped) to the level of the window holding
  // its start time.
  t = 0.0;
  for (const trace::Burst& b : bursts) {
    const auto w = std::min(static_cast<std::size_t>(std::floor(t / window)),
                            window_count - 1);
    LevelSamples& level = out.levels[window_level[w]];
    if (b.kind == trace::BurstKind::Run) {
      level.run.push_back(b.duration);
    } else {
      level.idle.push_back(b.duration);
    }
    t += b.duration;
  }
  return out;
}

BurstAnalysis analyze_fine_traces(const std::vector<trace::FineTrace>& traces,
                                  double window) {
  BurstAnalysis out;
  for (const trace::FineTrace& trace : traces) {
    BurstAnalysis one = analyze_fine_trace(trace, window);
    for (std::size_t i = 0; i < kUtilizationLevels; ++i) {
      auto& dst = out.levels[i];
      auto& src = one.levels[i];
      dst.run.insert(dst.run.end(), src.run.begin(), src.run.end());
      dst.idle.insert(dst.idle.end(), src.idle.begin(), src.idle.end());
    }
  }
  return out;
}

}  // namespace ll::workload
