#pragma once

/// \file burst_table.hpp
/// Per-utilization fine-grain burst model (paper §3.1, Figure 3).
///
/// The paper characterizes fine-grain CPU demand as alternating run/idle
/// bursts whose mean and variance depend on the mean utilization of the
/// surrounding 2-second window. Utilization is discretized into 21 levels
/// (0%, 5%, ..., 100%); generation linearly interpolates between the two
/// nearest levels and samples burst durations from 2-stage hyperexponential
/// distributions fitted by the method of moments.

#include <array>
#include <cstddef>

#include "rng/distributions.hpp"

namespace ll::workload {

/// Number of utilization levels (0%..100% in 5% steps), as in the paper.
inline constexpr std::size_t kUtilizationLevels = 21;

/// First and second moments of run and idle bursts at one utilization level.
struct BurstMoments {
  double run_mean = 0.0;   // seconds
  double run_var = 0.0;    // seconds^2
  double idle_mean = 0.0;  // seconds
  double idle_var = 0.0;   // seconds^2

  /// Utilization implied by the alternating renewal process,
  /// run_mean / (run_mean + idle_mean); 0 when both means are 0.
  [[nodiscard]] double implied_utilization() const;
};

/// Fitted sampling distributions for one utilization point.
struct BurstDistributions {
  rng::HyperExp2 run;
  rng::HyperExp2 idle;
};

/// The 21-level burst parameter table with linear interpolation.
class BurstTable {
 public:
  /// Level i corresponds to utilization i / (kUtilizationLevels - 1).
  explicit BurstTable(std::array<BurstMoments, kUtilizationLevels> levels);

  [[nodiscard]] const BurstMoments& level(std::size_t i) const;
  [[nodiscard]] static double level_utilization(std::size_t i);

  /// Linear interpolation between the two nearest levels; u clamped to [0,1].
  [[nodiscard]] BurstMoments moments_at(double u) const;

  /// H2 distributions fitted (balanced-means method of moments) to the
  /// interpolated moments. Requires 0 < u < 1 strictly — the endpoints are
  /// degenerate (pure idle / pure run) and handled by the generators.
  [[nodiscard]] BurstDistributions distributions_at(double u) const;

 private:
  std::array<BurstMoments, kUtilizationLevels> levels_;
};

/// The default table shipped with the library.
///
/// The paper's table is fitted from AIX dispatch traces we cannot obtain; this
/// one is synthesized to match the *shapes* of the paper's Figure 3 while
/// being self-consistent (each level's run/idle means imply exactly that
/// level's utilization, so the two-level generator reproduces the coarse
/// trace's utilization in expectation):
///
///   idle_mean(u) = 227 ms * e^{-3u}             (falling, Fig. 3 bottom-left)
///   run_mean(u)  = idle_mean(u) * u / (1 - u)   (rising ~10 ms -> ~250 ms)
///   run_var(u)   = 1.8 * run_mean(u)^2          (cv^2 = 1.8, hyperexponential)
///   idle_var(u)  = 2.2 * idle_mean(u)^2         (cv^2 = 2.2)
///
/// Endpoint levels 0% and 100% are stored as pure-idle / pure-run markers
/// (the opposing burst mean is 0).
[[nodiscard]] const BurstTable& default_burst_table();

}  // namespace ll::workload
