#pragma once

/// \file fit.hpp
/// The paper's fine-grain analysis pipeline (§3.1): divide a dispatch trace
/// into 2-second windows, compute each window's mean CPU utilization, assign
/// each window to the nearest of 21 utilization levels, and characterize the
/// run/idle burst durations of each level (histograms, moments, and the
/// method-of-moments hyperexponential fits of Figure 2).

#include <array>
#include <optional>
#include <vector>

#include "trace/records.hpp"
#include "workload/burst_table.hpp"

namespace ll::workload {

/// Raw per-level burst samples extracted from a trace.
struct LevelSamples {
  std::vector<double> run;   // run burst durations (s)
  std::vector<double> idle;  // idle burst durations (s)
};

/// Result of the bucketed analysis.
struct BurstAnalysis {
  std::array<LevelSamples, kUtilizationLevels> levels;

  /// Moments per level; levels with no samples get zeroed moments.
  [[nodiscard]] std::array<BurstMoments, kUtilizationLevels> moments() const;

  /// Builds a BurstTable from the measured moments. Levels without samples
  /// are filled by linear interpolation from the nearest populated
  /// neighbours (endpoints extrapolate flat), so a table fitted from a
  /// narrow-utilization trace is still total.
  [[nodiscard]] BurstTable to_table() const;
};

/// Analyzes a fine trace with the given window (2 s in the paper).
/// Each burst is assigned to the window containing its start time; window
/// utilization is the run fraction within the window (bursts chopped at
/// window boundaries for the utilization computation only).
[[nodiscard]] BurstAnalysis analyze_fine_trace(const trace::FineTrace& trace,
                                               double window = 2.0);

/// Convenience: analyze several traces into one pooled analysis.
[[nodiscard]] BurstAnalysis analyze_fine_traces(
    const std::vector<trace::FineTrace>& traces, double window = 2.0);

}  // namespace ll::workload
