#pragma once

/// \file simulation.hpp
/// Deterministic discrete-event simulation engine.
///
/// A Simulation owns a virtual clock (double seconds) and an event queue.
/// Events with equal timestamps fire in scheduling order (a monotone
/// sequence number breaks ties), which makes every experiment bit-for-bit
/// reproducible regardless of queue internals.
///
/// Events are plain callbacks. Scheduling returns an EventId that can cancel
/// the event later (lazy deletion: cancelled ids are skipped when popped).

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace ll::des {

/// Identifier of a scheduled event, usable with Simulation::cancel().
/// Id 0 is reserved and never issued (a default EventId is "no event").
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time in seconds.
  [[nodiscard]] double now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now). Returns the
  /// event's id. Throws std::invalid_argument for events in the past or
  /// non-finite times.
  EventId schedule_at(double when, Callback fn);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(double delay, Callback fn);

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled
  /// or kNoEvent id is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// True if `id` is pending (scheduled, not fired, not cancelled).
  [[nodiscard]] bool pending(EventId id) const;

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending_count() const;

  /// Runs until the queue is empty. Returns the number of events fired.
  std::size_t run();

  /// Runs events with time <= horizon, then advances the clock to exactly
  /// `horizon` (even if the queue empties earlier). Returns events fired.
  std::size_t run_until(double horizon);

  /// Fires the single earliest event, if any. Returns whether one fired.
  bool step();

  /// Total number of events fired so far (monitoring / perf tests).
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

 private:
  struct Entry {
    double time;
    EventId id;
    // Ordered min-first by (time, id); id is monotone so FIFO among ties.
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  // Pops cancelled entries off the top; returns false if queue exhausted.
  bool settle_top();

  double now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  // Callback storage by id; erased on fire/cancel. An unordered_map keeps
  // cancel() O(1) without touching the heap.
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace ll::des
