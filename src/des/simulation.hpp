#pragma once

/// \file simulation.hpp
/// Deterministic discrete-event simulation engine.
///
/// A Simulation owns a virtual clock (double seconds) and an event queue.
/// Events with equal timestamps fire in scheduling order (a monotone
/// sequence number breaks ties), which makes every experiment bit-for-bit
/// reproducible regardless of queue internals.
///
/// The queue itself is pluggable (des/event_queue.hpp): the default binary
/// heap, or a calendar queue for very large pending sets, selected via
/// Options. Both backends fire the exact same (time, id) sequence — the
/// golden digests (src/verify/) are backend-invariant by construction, and
/// CI diffs them to prove it.
///
/// Events are plain callbacks, stored in a paged arena indexed by id
/// (des/event_arena.hpp) with small-buffer callable storage
/// (des/small_fn.hpp): schedule and cancel are O(1) with no hashing and,
/// for ordinary captures, no allocation. Scheduling returns an EventId that
/// can cancel the event later (lazy deletion: cancelled ids are skipped
/// when popped).
///
/// An optional SimObserver receives schedule/fire/cancel notifications —
/// the verification layer (src/verify/) uses this to stream state digests
/// and invariant checks without touching the hot path, and the
/// observability layer chains the event-loop profiler (src/obs/profiler.hpp)
/// and the flight-recorder tracer (src/obs/tracer.hpp) through the same
/// slot. When no observer is registered the hooks cost a single never-taken
/// branch on a pointer the engine already has in cache.

#if defined(__FAST_MATH__)
#error "des/simulation relies on strict IEEE comparisons (event ordering, NaN rejection); build without -ffast-math"
#endif

#include <cstdint>
#include <memory>

#include "des/event_arena.hpp"
#include "des/event_queue.hpp"
#include "des/small_fn.hpp"

namespace ll::des {

/// Identifier of a scheduled event, usable with Simulation::cancel().
/// Id 0 is reserved and never issued (a default EventId is "no event").
/// Ids are issued densely (1, 2, 3, ...) — the digest layer and the event
/// arena both rely on that.
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

/// Passive observer of engine activity. Override only the hooks you need;
/// the defaults do nothing. `tag` is the caller-supplied label passed to
/// schedule_at/schedule_in (0 when the caller didn't tag the event) — the
/// verification digests fold (time, id, tag) of every fired event, so tags
/// let digests distinguish event *kinds* across refactors that renumber ids.
class SimObserver {
 public:
  virtual ~SimObserver() = default;
  virtual void on_schedule(double when, EventId id, std::uint64_t tag) {
    (void)when, (void)id, (void)tag;
  }
  virtual void on_fire(double time, EventId id, std::uint64_t tag) {
    (void)time, (void)id, (void)tag;
  }
  /// Fires after the event's callback returned (on_fire fires before it).
  /// The pair brackets the callback, which is what lets the event-loop
  /// profiler (src/obs/profiler.hpp) attribute wall-clock time to event
  /// tags. Not called when the callback throws — the digest/invariant
  /// contract of on_fire ("the fire happened") is unaffected either way.
  virtual void on_fire_done(double time, EventId id, std::uint64_t tag) {
    (void)time, (void)id, (void)tag;
  }
  virtual void on_cancel(EventId id, std::uint64_t tag) { (void)id, (void)tag; }
};

class Simulation {
 public:
  using Callback = SmallFn;

  /// Engine construction knobs. Every option preserves observable firing
  /// order — backends differ only in throughput.
  struct Options {
    QueueBackend queue = QueueBackend::kHeap;
  };

  Simulation() : Simulation(Options{}) {}
  explicit Simulation(const Options& options)
      : queue_(make_event_queue(options.queue)) {}
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time in seconds.
  [[nodiscard]] double now() const { return now_; }

  /// Which queue backend this engine runs on.
  [[nodiscard]] QueueBackend queue_backend() const {
    return queue_->backend();
  }

  /// Schedules `fn` to run at absolute time `when` (>= now). Returns the
  /// event's id. Throws std::invalid_argument for events in the past or
  /// non-finite times. `tag` labels the event for observers (0 = untagged).
  EventId schedule_at(double when, Callback fn, std::uint64_t tag = 0);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0, finite).
  EventId schedule_in(double delay, Callback fn, std::uint64_t tag = 0);

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled
  /// or kNoEvent id is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// True if `id` is pending (scheduled, not fired, not cancelled).
  [[nodiscard]] bool pending(EventId id) const {
    return id != kNoEvent && arena_.live(id);
  }

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending_count() const { return pending_; }

  /// Runs until the queue is empty. Returns the number of events fired.
  std::size_t run();

  /// Runs events with time <= horizon, then advances the clock to exactly
  /// `horizon` (even if the queue empties earlier). Returns events fired.
  /// Pinned edge case (tests/des/simulation_test.cpp): a callback firing at
  /// exactly `horizon` may schedule further events at exactly `horizon`;
  /// they fire within the same call (the queue is re-examined after every
  /// fire) and the clock still lands on exactly `horizon`.
  /// Throws std::invalid_argument for non-finite (NaN/±inf) or backward
  /// horizons; horizon == now() is a valid no-op that fires due events.
  std::size_t run_until(double horizon);

  /// Fires the single earliest event, if any. Returns whether one fired.
  bool step();

  /// Total number of events fired so far (monitoring / perf tests).
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

  /// Total number of events cancelled while still pending.
  [[nodiscard]] std::uint64_t events_cancelled() const { return cancelled_; }

  /// Total number of events ever scheduled. Conservation invariant:
  /// events_scheduled() == events_fired() + events_cancelled() +
  /// pending_count().
  [[nodiscard]] std::uint64_t events_scheduled() const {
    return next_id_ - 1;
  }

  /// Allocated slot capacity of the callback arena. Monitoring/test hook:
  /// the table must shrink back after a pending-set collapse — whether by
  /// cancel storm or by mass firing — instead of keeping its peak footprint
  /// for the rest of the run. The arena frees a 512-slot page the moment
  /// its last live event dies, so this tracks the pending population with
  /// one-page granularity.
  [[nodiscard]] std::size_t callback_buckets() const {
    return arena_.allocated_slots();
  }

  /// Slots per arena page; peak callback_buckets() for N simultaneous
  /// events is ceil((N + 1) / kCallbackPageSlots) pages (id 0 is reserved,
  /// shifting ids by one slot). Pinned by the peak-footprint regression
  /// test.
  static constexpr std::size_t kCallbackPageSlots = EventArena::kPageSlots;

  /// Registers (or, with nullptr, detaches) the observer. Returns the
  /// previously registered observer so callers can restore it. The observer
  /// must outlive its registration; the engine does not own it.
  SimObserver* set_observer(SimObserver* observer);

  /// Currently registered observer, or nullptr.
  [[nodiscard]] SimObserver* observer() const { return observer_; }

 private:
  // Drops cancelled entries off the top; returns the earliest live entry,
  // or nullptr when the queue is exhausted.
  const QueuedEvent* settle_top();

  double now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t pending_ = 0;
  SimObserver* observer_ = nullptr;
  std::unique_ptr<EventQueue> queue_;
  EventArena arena_;
};

}  // namespace ll::des
