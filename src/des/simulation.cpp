#include "des/simulation.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace ll::des {

EventId Simulation::schedule_at(double when, Callback fn) {
  if (!std::isfinite(when)) {
    throw std::invalid_argument("schedule_at: non-finite time");
  }
  if (when < now_) {
    throw std::invalid_argument("schedule_at: time " + std::to_string(when) +
                                " is before now " + std::to_string(now_));
  }
  if (!fn) {
    throw std::invalid_argument("schedule_at: empty callback");
  }
  const EventId id = next_id_++;
  queue_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId Simulation::schedule_in(double delay, Callback fn) {
  if (!(delay >= 0.0)) {
    throw std::invalid_argument("schedule_in: negative or NaN delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::cancel(EventId id) {
  if (id == kNoEvent) return false;
  return callbacks_.erase(id) > 0;
}

bool Simulation::pending(EventId id) const {
  return id != kNoEvent && callbacks_.contains(id);
}

std::size_t Simulation::pending_count() const { return callbacks_.size(); }

bool Simulation::settle_top() {
  while (!queue_.empty() && !callbacks_.contains(queue_.top().id)) {
    queue_.pop();  // lazily drop cancelled events
  }
  return !queue_.empty();
}

bool Simulation::step() {
  if (!settle_top()) return false;
  const Entry entry = queue_.top();
  queue_.pop();
  auto it = callbacks_.find(entry.id);
  Callback fn = std::move(it->second);
  callbacks_.erase(it);
  now_ = entry.time;
  ++fired_;
  fn();
  return true;
}

std::size_t Simulation::run() {
  std::size_t fired = 0;
  while (step()) ++fired;
  return fired;
}

std::size_t Simulation::run_until(double horizon) {
  if (!std::isfinite(horizon) || horizon < now_) {
    throw std::invalid_argument("run_until: invalid horizon");
  }
  std::size_t fired = 0;
  while (settle_top() && queue_.top().time <= horizon) {
    step();
    ++fired;
  }
  now_ = horizon;
  return fired;
}

}  // namespace ll::des
