#include "des/simulation.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace ll::des {

EventId Simulation::schedule_at(double when, Callback fn, std::uint64_t tag) {
  if (!std::isfinite(when)) {
    throw std::invalid_argument("schedule_at: non-finite time");
  }
  if (when < now_) {
    throw std::invalid_argument("schedule_at: time " + std::to_string(when) +
                                " is before now " + std::to_string(now_));
  }
  if (!fn) {
    throw std::invalid_argument("schedule_at: empty callback");
  }
  const EventId id = next_id_++;
  queue_->push(when, id);
  arena_.create(id, std::move(fn), tag);
  ++pending_;
  if (observer_) observer_->on_schedule(when, id, tag);
  return id;
}

EventId Simulation::schedule_in(double delay, Callback fn, std::uint64_t tag) {
  if (!std::isfinite(delay) || delay < 0.0) {
    throw std::invalid_argument("schedule_in: negative or non-finite delay");
  }
  return schedule_at(now_ + delay, std::move(fn), tag);
}

bool Simulation::cancel(EventId id) {
  if (id == kNoEvent || !arena_.live(id)) return false;
  std::uint64_t tag = 0;
  (void)arena_.take(id, tag);  // destroys the callback, frees the page
  --pending_;
  ++cancelled_;
  if (observer_) observer_->on_cancel(id, tag);
  return true;
}

SimObserver* Simulation::set_observer(SimObserver* observer) {
  return std::exchange(observer_, observer);
}

const QueuedEvent* Simulation::settle_top() {
  const QueuedEvent* top;
  while ((top = queue_->peek()) != nullptr && !arena_.live(top->id)) {
    queue_->pop();  // lazily drop cancelled events
  }
  return top;
}

bool Simulation::step() {
  const QueuedEvent* top = settle_top();
  if (top == nullptr) return false;
  const QueuedEvent entry = *top;
  queue_->pop();
  std::uint64_t tag = 0;
  Callback fn = arena_.take(entry.id, tag);
  --pending_;
  now_ = entry.time;
  ++fired_;
  // Notify before invoking so the digest records the fire even if the
  // callback throws, and so observer state is current for re-entrant
  // schedule/cancel calls made from inside the callback.
  if (observer_) observer_->on_fire(entry.time, entry.id, tag);
  fn();
  // Re-read observer_: the callback may have re-registered or detached it.
  if (observer_) observer_->on_fire_done(entry.time, entry.id, tag);
  return true;
}

std::size_t Simulation::run() {
  std::size_t fired = 0;
  while (step()) ++fired;
  return fired;
}

std::size_t Simulation::run_until(double horizon) {
  if (!std::isfinite(horizon)) {
    throw std::invalid_argument("run_until: non-finite horizon");
  }
  if (horizon < now_) {
    throw std::invalid_argument("run_until: horizon " +
                                std::to_string(horizon) + " is before now " +
                                std::to_string(now_));
  }
  std::size_t fired = 0;
  const QueuedEvent* top;
  while ((top = settle_top()) != nullptr && top->time <= horizon) {
    step();
    ++fired;
  }
  now_ = horizon;
  return fired;
}

}  // namespace ll::des
