#include "des/simulation.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace ll::des {

EventId Simulation::schedule_at(double when, Callback fn, std::uint64_t tag) {
  if (!std::isfinite(when)) {
    throw std::invalid_argument("schedule_at: non-finite time");
  }
  if (when < now_) {
    throw std::invalid_argument("schedule_at: time " + std::to_string(when) +
                                " is before now " + std::to_string(now_));
  }
  if (!fn) {
    throw std::invalid_argument("schedule_at: empty callback");
  }
  const EventId id = next_id_++;
  queue_.push(Entry{when, id, tag});
  callbacks_.emplace(id, Slot{std::move(fn), tag});
  if (observer_) observer_->on_schedule(when, id, tag);
  return id;
}

EventId Simulation::schedule_in(double delay, Callback fn, std::uint64_t tag) {
  if (!std::isfinite(delay) || delay < 0.0) {
    throw std::invalid_argument("schedule_in: negative or non-finite delay");
  }
  return schedule_at(now_ + delay, std::move(fn), tag);
}

bool Simulation::cancel(EventId id) {
  if (id == kNoEvent) return false;
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  const std::uint64_t tag = it->second.tag;
  callbacks_.erase(it);
  ++cancelled_;
  maybe_shrink_callbacks();
  if (observer_) observer_->on_cancel(id, tag);
  return true;
}

void Simulation::maybe_shrink_callbacks() {
  // Shrink only large, mostly-empty tables: occupancy below 1/8 of at least
  // 1024 buckets. The pending set is small at that point, so the rehash is
  // cheap, and repeated shrinks during a long drain amortize to O(n) total.
  constexpr std::size_t kMinBuckets = 1024;
  if (callbacks_.bucket_count() >= kMinBuckets &&
      callbacks_.size() * 8 < callbacks_.bucket_count()) {
    callbacks_.rehash(callbacks_.size() * 2);
  }
}

bool Simulation::pending(EventId id) const {
  return id != kNoEvent && callbacks_.contains(id);
}

std::size_t Simulation::pending_count() const { return callbacks_.size(); }

SimObserver* Simulation::set_observer(SimObserver* observer) {
  return std::exchange(observer_, observer);
}

bool Simulation::settle_top() {
  while (!queue_.empty() && !callbacks_.contains(queue_.top().id)) {
    queue_.pop();  // lazily drop cancelled events
  }
  return !queue_.empty();
}

bool Simulation::step() {
  if (!settle_top()) return false;
  const Entry entry = queue_.top();
  queue_.pop();
  auto it = callbacks_.find(entry.id);
  Callback fn = std::move(it->second.fn);
  callbacks_.erase(it);
  now_ = entry.time;
  ++fired_;
  // Notify before invoking so the digest records the fire even if the
  // callback throws, and so observer state is current for re-entrant
  // schedule/cancel calls made from inside the callback.
  if (observer_) observer_->on_fire(entry.time, entry.id, entry.tag);
  maybe_shrink_callbacks();
  fn();
  // Re-read observer_: the callback may have re-registered or detached it.
  if (observer_) observer_->on_fire_done(entry.time, entry.id, entry.tag);
  return true;
}

std::size_t Simulation::run() {
  std::size_t fired = 0;
  while (step()) ++fired;
  return fired;
}

std::size_t Simulation::run_until(double horizon) {
  if (!std::isfinite(horizon)) {
    throw std::invalid_argument("run_until: non-finite horizon");
  }
  if (horizon < now_) {
    throw std::invalid_argument("run_until: horizon " +
                                std::to_string(horizon) + " is before now " +
                                std::to_string(now_));
  }
  std::size_t fired = 0;
  while (settle_top() && queue_.top().time <= horizon) {
    step();
    ++fired;
  }
  now_ = horizon;
  return fired;
}

}  // namespace ll::des
