#include "des/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ll::des {

std::optional<QueueBackend> parse_queue_backend(std::string_view name) {
  if (name == "heap") return QueueBackend::kHeap;
  if (name == "calendar") return QueueBackend::kCalendar;
  return std::nullopt;
}

std::string_view to_string(QueueBackend backend) {
  switch (backend) {
    case QueueBackend::kHeap:
      return "heap";
    case QueueBackend::kCalendar:
      return "calendar";
  }
  return "?";
}

std::unique_ptr<EventQueue> make_event_queue(QueueBackend backend) {
  if (backend == QueueBackend::kCalendar) {
    return std::make_unique<CalendarEventQueue>();
  }
  return std::make_unique<HeapEventQueue>();
}

namespace {

// std::push_heap/pop_heap build a max-heap; invert before() for a min-heap.
struct HeapAfter {
  bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
    return b.before(a);
  }
};

}  // namespace

void HeapEventQueue::push(double time, std::uint64_t id) {
  heap_.push_back(QueuedEvent{time, id});
  std::push_heap(heap_.begin(), heap_.end(), HeapAfter{});
}

const QueuedEvent* HeapEventQueue::peek() {
  return heap_.empty() ? nullptr : &heap_.front();
}

void HeapEventQueue::pop() {
  std::pop_heap(heap_.begin(), heap_.end(), HeapAfter{});
  heap_.pop_back();
}

CalendarEventQueue::CalendarEventQueue() : buckets_(kMinBuckets) {}

CalendarEventQueue::Bucket& CalendarEventQueue::Bucket::operator=(
    Bucket&& other) noexcept {
  if (this != &other) {
    delete[] spill;
    size = other.size;
    cap = other.cap;
    spill = other.spill;
    for (std::uint32_t i = 0; i < kInline; ++i) inl[i] = other.inl[i];
    other.size = 0;
    other.cap = 0;
    other.spill = nullptr;
  }
  return *this;
}

void CalendarEventQueue::Bucket::append(const QueuedEvent& event) {
  if (cap == 0) {
    if (size < kInline) {
      inl[size++] = event;
      return;
    }
    // First spill: move the inline entries to a heap block.
    cap = 2 * kInline;
    spill = new QueuedEvent[cap];
    for (std::uint32_t i = 0; i < kInline; ++i) spill[i] = inl[i];
  } else if (size == cap) {
    const std::uint32_t new_cap = 2 * cap;
    auto* grown = new QueuedEvent[new_cap];
    for (std::uint32_t i = 0; i < size; ++i) grown[i] = spill[i];
    delete[] spill;
    spill = grown;
    cap = new_cap;
  }
  spill[size++] = event;
}

std::uint64_t CalendarEventQueue::virtual_bucket(double time) const {
  // Times are finite and non-negative (the engine rejects everything else
  // before pushing). The day mapping multiplies by the cached reciprocal —
  // any monotone mapping works as long as push and settle use the *same*
  // one, and a multiply is ~15ns cheaper than a divide on the hot path.
  // Far-future days that would overflow the 64-bit day index collapse into
  // one saturated day: the due-scan's min selection and the direct-scan
  // fallback keep pops correct, just not O(1), for that pathological tail.
  const double day = time * inv_width_;
  constexpr double kSaturate = 9.0e18;
  if (day >= kSaturate) return static_cast<std::uint64_t>(kSaturate);
  return static_cast<std::uint64_t>(day);
}

void CalendarEventQueue::push(double time, std::uint64_t id) {
  const QueuedEvent event{time, id};
  const std::uint64_t day = virtual_bucket(time);
  if (count_ == 0) {
    cursor_ = day;
  } else if (day < cursor_) {
    // Rewind: the new event is due before the scan position. Without this
    // the cursor would lap the whole calendar before noticing it.
    cursor_ = day;
    head_valid_ = false;
  } else if (head_valid_ && event.before(head_)) {
    // Earlier than the cached minimum but not before the cursor: same day,
    // same bucket — it becomes the new head, appended at the back.
    head_ = event;
    head_index_ = buckets_[static_cast<std::size_t>(day) & mask_].size;
  }
  // Unsorted append into the day's cache line (rarely, its spill block).
  buckets_[static_cast<std::size_t>(day) & mask_].append(event);
  ++count_;
  if (count_ > 2 * buckets_.size()) rebuild(2 * buckets_.size());
}

void CalendarEventQueue::settle_head() {
  // Walk days from the cursor; scan each bucket for its minimum entry that
  // is due on (or before) the current day. Buckets hold a couple of events
  // by construction, so the scan is one or two cache lines. One full lap
  // without a hit means the next event is at least a calendar year away —
  // find it directly and teleport the cursor to its day.
  for (std::size_t step = 0; step <= mask_; ++step) {
    const Bucket& bucket = buckets_[static_cast<std::size_t>(cursor_) & mask_];
    const QueuedEvent* entries = bucket.data();
    const QueuedEvent* best = nullptr;
    std::size_t best_index = 0;
    for (std::size_t i = 0; i < bucket.size; ++i) {
      const QueuedEvent& e = entries[i];
      if (virtual_bucket(e.time) <= cursor_ &&
          (best == nullptr || e.before(*best))) {
        best = &e;
        best_index = i;
      }
    }
    if (best != nullptr) {
      head_ = *best;
      head_index_ = best_index;
      head_valid_ = true;
      return;
    }
    ++cursor_;
  }
  const QueuedEvent* best = nullptr;
  std::size_t best_index = 0;
  for (const Bucket& bucket : buckets_) {
    const QueuedEvent* entries = bucket.data();
    for (std::size_t i = 0; i < bucket.size; ++i) {
      if (best == nullptr || entries[i].before(*best)) {
        best = &entries[i];
        best_index = i;
      }
    }
  }
  head_ = *best;  // count_ > 0 guarantees best != nullptr
  head_index_ = best_index;  // pop resolves the bucket via the new cursor
  head_valid_ = true;
  cursor_ = virtual_bucket(best->time);
}

const QueuedEvent* CalendarEventQueue::peek() {
  if (count_ == 0) return nullptr;
  if (!head_valid_) settle_head();
  return &head_;
}

void CalendarEventQueue::pop() {
  if (!head_valid_) settle_head();
  // Remove the settled head by swap-with-back: buckets are unsorted, and
  // pushes since the settle only appended (head_index_ stays valid; on an
  // append that beat the head, push re-pointed head_index_ at it).
  buckets_[static_cast<std::size_t>(cursor_) & mask_].remove(head_index_);
  --count_;
  head_valid_ = false;
  if (count_ < buckets_.size() / 2 && buckets_.size() > kMinBuckets) {
    rebuild(buckets_.size() / 2);
  }
}

void CalendarEventQueue::rebuild(std::size_t new_bucket_count) {
  std::vector<QueuedEvent> all;
  all.reserve(count_);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Bucket& bucket : buckets_) {
    const QueuedEvent* entries = bucket.data();
    for (std::size_t i = 0; i < bucket.size; ++i) {
      const QueuedEvent& e = entries[i];
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
      all.push_back(e);
    }
  }
  buckets_ = std::vector<Bucket>(new_bucket_count);
  mask_ = new_bucket_count - 1;
  // Width ~= the mean inter-event gap: ~1 event per day, so the common
  // push stays inside one inline cache line and the day scan meets work on
  // nearly every step. A degenerate span (all events simultaneous) keeps
  // the previous width.
  if (count_ > 1 && hi > lo) {
    const double span = hi - lo;
    width_ = std::max(span / static_cast<double>(count_),
                      hi / 9.0e15);  // keep day indices within 64 bits
    inv_width_ = 1.0 / width_;
  }
  if (count_ > 0) {
    cursor_ = virtual_bucket(lo);
  }
  head_valid_ = false;
  for (const QueuedEvent& e : all) {
    buckets_[static_cast<std::size_t>(virtual_bucket(e.time)) & mask_].append(
        e);
  }
}

}  // namespace ll::des
