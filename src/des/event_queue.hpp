#pragma once

/// \file event_queue.hpp
/// Pluggable priority-queue backends for the DES engine.
///
/// The Simulation (simulation.hpp) defines *what* fires — events in
/// (time, id) order, id monotone so equal timestamps fire FIFO — and the
/// EventQueue interface defines *how* the pending set is stored. Two
/// backends implement it:
///
///  * HeapEventQueue — the classic binary heap. O(log n) push/pop, no
///    tuning, the reference implementation every other backend must match
///    event-for-event.
///  * CalendarEventQueue — Brown's calendar queue: an array of bucketed
///    "days" of width w; an event at time t hashes to bucket
///    floor(t/w) mod nbuckets. With the bucket count and width tracking the
///    pending population, push and pop are amortized O(1), which is what
///    makes 100k-node scenarios with millions of pending events feasible.
///
/// Determinism contract (both backends, pinned by tests/des/ and the golden
/// digests): pops yield the exact (time, id)-sorted sequence of pushes.
/// Every structural decision in the calendar queue — bucket width, resize
/// thresholds, scan cursor — depends only on the sequence of push/pop calls,
/// never on wall-clock time or addresses, so reruns are byte-identical.
///
/// Cancellation is NOT the queue's concern: the engine cancels lazily by
/// dropping dead ids at pop time (the arena knows liveness in O(1)), so
/// queues only ever see push/peek/pop.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace ll::des {

/// Which EventQueue implementation a Simulation uses. Selectable per
/// engine via Simulation::Options and per run via the `--queue` CLI flag.
enum class QueueBackend : std::uint8_t {
  kHeap,      ///< binary heap (reference backend)
  kCalendar,  ///< auto-resizing calendar queue
};

/// Parses "heap" / "calendar"; nullopt on anything else.
[[nodiscard]] std::optional<QueueBackend> parse_queue_backend(
    std::string_view name);

[[nodiscard]] std::string_view to_string(QueueBackend backend);

/// One pending entry. The tag travels in the event arena, not the queue:
/// keeping entries at 16 bytes doubles how many fit a cache line during
/// heap sift / bucket scans.
struct QueuedEvent {
  double time;
  std::uint64_t id;

  /// Min-first total order: (time, id) with id monotone, so FIFO among
  /// equal timestamps. Written as two strict comparisons (not `!=`) so the
  /// order stays total even under compilers that relax floating-point
  /// equality (the engine additionally rejects NaN before any push).
  [[nodiscard]] bool before(const QueuedEvent& other) const {
    if (time < other.time) return true;
    if (time > other.time) return false;
    return id < other.id;
  }
};

/// Minimal min-queue interface the engine drives. Implementations must be
/// deterministic functions of the push/pop call sequence.
class EventQueue {
 public:
  virtual ~EventQueue() = default;

  virtual void push(double time, std::uint64_t id) = 0;

  /// Earliest entry, or nullptr when empty. The pointer is invalidated by
  /// the next push/pop. Non-const: backends may settle internal cursors.
  [[nodiscard]] virtual const QueuedEvent* peek() = 0;

  /// Removes the earliest entry. Precondition: peek() != nullptr.
  virtual void pop() = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual QueueBackend backend() const = 0;
};

[[nodiscard]] std::unique_ptr<EventQueue> make_event_queue(
    QueueBackend backend);

/// Binary heap over QueuedEvent. The reference backend.
class HeapEventQueue final : public EventQueue {
 public:
  void push(double time, std::uint64_t id) override;
  [[nodiscard]] const QueuedEvent* peek() override;
  void pop() override;
  [[nodiscard]] std::size_t size() const override { return heap_.size(); }
  [[nodiscard]] QueueBackend backend() const override {
    return QueueBackend::kHeap;
  }

 private:
  std::vector<QueuedEvent> heap_;  // min-heap via before()
};

/// Auto-resizing calendar queue.
///
/// Layout: nbuckets (power of two) buckets; an event at time t lives in
/// bucket floor(t/width) & (nbuckets-1). Each bucket is one UNSORTED
/// cache-line-sized day (up to 3 inline events, rare spills to a heap
/// block), so the common push touches exactly one line. A virtual-bucket
/// cursor walks "days"; settling scans the cursor's bucket for its minimum
/// due entry — ~1-2 events by the width policy — and pop removes it by
/// swap-with-back. The (time, id) order is strictly total, so the minimum
/// is unique and the pop sequence is identical to a sorted layout's.
/// Pushing an event earlier than the cursor rewinds the cursor (the
/// classic missed-bucket bug); a full lap without finding a due event
/// falls back to a direct min scan and teleports the cursor (handles
/// sparse far-future tails).
///
/// Resize policy keeps amortized O(1): grow (double) when the population
/// exceeds 2x nbuckets, shrink (halve) when it drops under nbuckets/2,
/// with the width re-estimated from the population's time span at each
/// rebuild — all pure functions of the operation sequence, so deterministic.
///
/// Known worst case (documented, accepted): a population where nearly all
/// pending events share one timestamp lands in one bucket, degrading the
/// due-day scan to O(bucket). Real simulations schedule on continuous
/// doubles where exact collisions are rare; the heap backend is the right
/// tool for adversarial collision-heavy workloads.
class CalendarEventQueue final : public EventQueue {
 public:
  CalendarEventQueue();

  void push(double time, std::uint64_t id) override;
  [[nodiscard]] const QueuedEvent* peek() override;
  void pop() override;
  [[nodiscard]] std::size_t size() const override { return count_; }
  [[nodiscard]] QueueBackend backend() const override {
    return QueueBackend::kCalendar;
  }

  /// Structure introspection for tests (resize determinism, bucket policy).
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] double bucket_width() const { return width_; }

  static constexpr std::size_t kMinBuckets = 16;

 private:
  /// One calendar day, sized and aligned to a single cache line: up to
  /// kInline events live inline, so the common push touches exactly one
  /// line (the sorted vector-of-vectors layout paid 3-4 dependent far
  /// loads per push and lost to the heap at 1M pending). Overcrowded days
  /// spill to a heap block; the width policy targets ~1 event per day, so
  /// spills are the tail, not the norm.
  struct alignas(64) Bucket {
    static constexpr std::uint32_t kInline = 3;

    std::uint32_t size = 0;
    std::uint32_t cap = 0;        // heap capacity; 0 => inline storage
    QueuedEvent* spill = nullptr;  // valid iff cap > 0
    QueuedEvent inl[kInline];

    Bucket() = default;
    Bucket(Bucket&& other) noexcept { *this = std::move(other); }
    Bucket& operator=(Bucket&& other) noexcept;
    Bucket(const Bucket&) = delete;
    Bucket& operator=(const Bucket&) = delete;
    ~Bucket() { delete[] spill; }

    [[nodiscard]] const QueuedEvent* data() const {
      return cap != 0 ? spill : inl;
    }
    [[nodiscard]] QueuedEvent* data() { return cap != 0 ? spill : inl; }

    void append(const QueuedEvent& event);
    /// Swap-with-back removal (buckets are unsorted).
    void remove(std::size_t index) {
      QueuedEvent* d = data();
      d[index] = d[size - 1];
      --size;
    }
  };
  static_assert(sizeof(Bucket) == 64, "Bucket must stay one cache line");

  [[nodiscard]] std::uint64_t virtual_bucket(double time) const;
  void settle_head();
  void rebuild(std::size_t new_bucket_count);

  std::vector<Bucket> buckets_;
  std::size_t mask_ = kMinBuckets - 1;  // buckets_.size() - 1
  double width_ = 1.0;
  double inv_width_ = 1.0;  // 1/width_: day mapping multiplies, never divides
  std::uint64_t cursor_ = 0;  // virtual bucket the scan is positioned on
  std::size_t count_ = 0;
  QueuedEvent head_{};        // cached minimum, valid iff head_valid_
  std::size_t head_index_ = 0;  // head_'s slot in the cursor's bucket
  bool head_valid_ = false;
};

}  // namespace ll::des
