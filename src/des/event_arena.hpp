#pragma once

/// \file event_arena.hpp
/// Paged arena for pending-event state, indexed directly by EventId.
///
/// The engine issues ids densely (1, 2, 3, ...), so per-event state does not
/// need a hash map: id -> (page = id / kPageSlots, slot = id % kPageSlots)
/// is a two-load array walk. That makes schedule, cancel, and the
/// cancelled-id liveness probe in the pop loop O(1) with no hashing, no
/// rehash pauses, and no per-event allocation — the former unordered_map
/// was the engine's hottest cache miss at 100k+ pending events.
///
/// Lifetime rules (documented in DESIGN.md §12):
///  * a slot is live from create() until take() — fire and cancel both
///    funnel through take(), which destroys the callback in place;
///  * a page is freed the moment its last live slot dies, even mid-run: ids
///    are never reused, so an all-dead page can never be touched again
///    (create() re-allocates on demand if the id frontier is still inside);
///  * freed pages park in a small recycling pool, so steady-state
///    schedule/fire churn allocates nothing.
///
/// allocated_bytes()/allocated_slots() expose the footprint; the engine's
/// callback_buckets() monitoring hook reports allocated_slots() so the
/// shrink-after-storm regression tests watch real memory, not hash buckets.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "des/small_fn.hpp"

namespace ll::des {

class EventArena {
 public:
  /// Slots per page. 512 x 64-byte slots = one 32 KiB page, small enough
  /// that a storm's tail (a few survivors pinning their page) wastes little
  /// and large enough that page turnover is rare.
  static constexpr std::size_t kPageSlots = 512;

  /// Registers state for a freshly issued id. Ids must be issued densely
  /// and never reused (the engine's next_id_ counter guarantees both).
  void create(std::uint64_t id, SmallFn fn, std::uint64_t tag) {
    const std::size_t page_index = id / kPageSlots;
    if (directory_.size() <= page_index) directory_.resize(page_index + 1);
    std::unique_ptr<Page>& page = directory_[page_index];
    if (!page) {
      if (!pool_.empty()) {
        page = std::move(pool_.back());
        pool_.pop_back();
      } else {
        page = std::make_unique<Page>();
      }
      ++allocated_pages_;
    }
    Slot& slot = page->slots[id % kPageSlots];
    slot.fn = std::move(fn);
    slot.tag = tag;
    ++page->live;
  }

  /// True while `id` is scheduled and neither fired nor cancelled.
  [[nodiscard]] bool live(std::uint64_t id) const {
    const std::size_t page_index = id / kPageSlots;
    if (page_index >= directory_.size()) return false;
    const Page* page = directory_[page_index].get();
    return page != nullptr &&
           static_cast<bool>(page->slots[id % kPageSlots].fn);
  }

  /// Ends `id`'s life (fire or cancel): moves the callback out, reports the
  /// tag, and frees the page if that was its last live slot. Precondition:
  /// live(id).
  [[nodiscard]] SmallFn take(std::uint64_t id, std::uint64_t& tag) {
    const std::size_t page_index = id / kPageSlots;
    Page& page = *directory_[page_index];
    Slot& slot = page.slots[id % kPageSlots];
    SmallFn fn = std::move(slot.fn);
    slot.fn.reset();
    tag = slot.tag;
    if (--page.live == 0) recycle(page_index);
    return fn;
  }

  /// Currently allocated slot capacity (pages x kPageSlots). The pool's
  /// parked pages are excluded: they are reserve capacity, not table size.
  [[nodiscard]] std::size_t allocated_slots() const {
    return allocated_pages_ * kPageSlots;
  }

  [[nodiscard]] std::size_t allocated_pages() const {
    return allocated_pages_;
  }

 private:
  struct Slot {
    SmallFn fn;         // engaged iff the slot is live
    std::uint64_t tag = 0;
  };
  struct Page {
    Slot slots[kPageSlots];
    std::uint32_t live = 0;
  };

  void recycle(std::size_t page_index) {
    --allocated_pages_;
    if (pool_.size() < kMaxPooledPages) {
      pool_.push_back(std::move(directory_[page_index]));
    } else {
      directory_[page_index].reset();
    }
  }

  // Enough reserve to absorb ping-pong at a page boundary; beyond that,
  // pages go back to the allocator so a drained storm releases its memory.
  static constexpr std::size_t kMaxPooledPages = 4;

  std::vector<std::unique_ptr<Page>> directory_;
  std::vector<std::unique_ptr<Page>> pool_;
  std::size_t allocated_pages_ = 0;
};

}  // namespace ll::des
