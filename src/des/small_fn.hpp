#pragma once

/// \file small_fn.hpp
/// Small-buffer move-only callable for the DES hot path.
///
/// `std::function` heap-allocates most captures and drags ~48 bytes of
/// control block through every schedule/fire. SmallFn stores callables up to
/// kInlineBytes inline (covering every lambda the engine and the cluster
/// model schedule today) and falls back to a single heap allocation only for
/// oversized or alignment-exotic captures. Moves are pointer-table dispatch,
/// never allocations, so the event arena (event_arena.hpp) can relocate
/// slots freely.
///
/// Semantics mirror the slice of std::function the engine used:
///  * default-constructed / nullptr SmallFn is empty (operator bool false;
///    Simulation::schedule_* rejects it);
///  * constructing from an empty std::function (or null function pointer)
///    also yields an empty SmallFn, preserving the engine's "reject empty
///    callback at schedule time" contract;
///  * move-only: the engine never copies callbacks, and dropping copyability
///    is what lets captures hold move-only state.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ll::des {

class SmallFn {
 public:
  /// Inline capture budget. 48 bytes fits six pointers — every callback in
  /// src/ today captures at most four words plus `this`.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using T = std::decay_t<F>;
    // Callables with a null state (empty std::function, null function
    // pointer) become an empty SmallFn so schedule-time rejection still
    // fires before anything reaches the queue.
    if constexpr (std::is_constructible_v<bool, const T&>) {
      if (!static_cast<bool>(f)) return;
    }
    emplace<T>(std::forward<F>(f));
  }

  SmallFn(SmallFn&& other) noexcept { steal(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void operator()() { ops_->invoke(&storage_); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct + destroy src
    void (*destroy)(void* self) noexcept;
  };

  template <typename T>
  static constexpr bool fits_inline() {
    return sizeof(T) <= kInlineBytes &&
           alignof(T) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<T>;
  }

  template <typename T>
  void emplace(T value) {
    if constexpr (fits_inline<T>()) {
      static constexpr Ops ops = {
          [](void* self) { (*std::launder(static_cast<T*>(self)))(); },
          [](void* dst, void* src) noexcept {
            T* from = std::launder(static_cast<T*>(src));
            ::new (dst) T(std::move(*from));
            from->~T();
          },
          [](void* self) noexcept {
            std::launder(static_cast<T*>(self))->~T();
          },
      };
      ::new (&storage_) T(std::move(value));
      ops_ = &ops;
    } else {
      static constexpr Ops ops = {
          [](void* self) { (**std::launder(static_cast<T**>(self)))(); },
          [](void* dst, void* src) noexcept {
            T** from = std::launder(static_cast<T**>(src));
            ::new (dst) T*(*from);
          },
          [](void* self) noexcept {
            delete *std::launder(static_cast<T**>(self));
          },
      };
      T* heap = new T(std::move(value));
      ::new (&storage_) T*(heap);
      ops_ = &ops;
    }
  }

  void steal(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(&storage_, &other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace ll::des
