#pragma once

/// \file scenarios.hpp
/// Pinned verification scenarios: small, fully seed-determined runs of each
/// simulator layer that produce a state digest and execute the invariant
/// checkers. They serve three masters:
///
///  * the golden-trace regression suite (tests/golden/) pins each
///    scenario's digest at kGoldenSeed, so any behavioral drift in
///    des/node/cluster/parallel fails tier-1;
///  * tools/llverify reruns every scenario twice per seed and diffs the
///    digests (differential determinism), and re-derives the RNG streams in
///    a perturbed fork order (stream independence);
///  * the invariant counts double as liveness evidence — a scenario that
///    executes zero checks is itself a failure.
///
/// Scenarios must be *pure functions of ScenarioOptions*: no wall clock, no
/// global mutable state, no platform-dependent iteration order.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "verify/digest.hpp"
#include "verify/invariants.hpp"

namespace ll::cluster {
class ClusterSim;
}

namespace ll::verify {

/// The seed the committed golden digests are pinned at.
inline constexpr std::uint64_t kGoldenSeed = 1998;  // SC'98

struct ScenarioOptions {
  std::uint64_t seed = kGoldenSeed;
  Mode mode = Mode::kCount;
  /// Event-queue backend for every engine the scenarios construct. The
  /// digests are backend-invariant by contract — llverify's --queue flag
  /// (and the CI digest-diff step) prove heap and calendar runs produce
  /// byte-identical digests for all scenarios.
  des::QueueBackend queue = des::QueueBackend::kHeap;
  /// When true, the scenario derives its RNG streams through a perturbed
  /// fork order (decoy forks interleaved). Stream forking is a pure function
  /// of (seed, label, index), so the digest must not change — llverify uses
  /// this to prove sub-stream independence end to end.
  bool reordered_streams = false;
  /// Optional: wraps the scenario's own observer chain before it is
  /// attached to an engine — the hook receives the scenario's
  /// digest/invariant chain head and returns the observer to attach
  /// (typically an obs::EventLoopProfiler forwarding to `inner`). The
  /// golden-digest suite in tests/obs/ uses this to prove attaching the
  /// profiler leaves every pinned digest byte-identical. A hook that does
  /// anything non-observational breaks the purity contract above.
  std::function<des::SimObserver*(des::SimObserver* inner)> wrap_observer;
  /// Optional: runs right after a scenario constructs a ClusterSim (attach
  /// a metrics registry / timeline). Same observational-only contract.
  std::function<void(cluster::ClusterSim&)> cluster_hook;
  /// Shard count for the cluster-backed scenarios. 0 (the default) runs the
  /// monolithic ClusterSim against the base goldens. K >= 1 runs the
  /// conservative time-windowed shard::ShardedClusterSim instead; its state
  /// digests are shard-count AND backend invariant by construction, so one
  /// pinned golden per scenario (<name>.shards.golden) covers every K.
  /// Scenarios that build no cluster ignore the option entirely.
  std::size_t shards = 0;
};

struct ScenarioResult {
  Digest digest;
  std::uint64_t events = 0;      ///< DES events folded into the digest
  std::uint64_t checks = 0;      ///< invariant checks executed
  std::uint64_t violations = 0;  ///< invariant checks failed (kCount mode)
};

struct Scenario {
  std::string name;         ///< e.g. "cluster-open-ll"
  std::string module;       ///< "des" | "node" | "cluster" | "parallel" | ...
  std::string description;  ///< one line for llverify --list
  std::function<ScenarioResult(const ScenarioOptions&)> run;
};

/// All registered scenarios, in stable registration order. Covers at least
/// one scenario per core module (des, node, cluster, parallel, trace,
/// workload, rng).
[[nodiscard]] const std::vector<Scenario>& scenarios();

/// Scenario by name, or nullptr.
[[nodiscard]] const Scenario* find_scenario(std::string_view name);

/// True when ScenarioOptions::shards changes this scenario's digest (it
/// constructs a cluster simulation). llverify uses this to pick between the
/// base golden and the sharded golden file.
[[nodiscard]] bool scenario_sharded(const Scenario& scenario);

/// Derives the scenario's root stream from the options, honouring the
/// reordered_streams perturbation (exposed for tests).
[[nodiscard]] rng::Stream scenario_stream(const ScenarioOptions& options,
                                          std::string_view name);

}  // namespace ll::verify
