#pragma once

/// \file digest.hpp
/// Streaming state digests for determinism and regression checking.
///
/// A Digest is a 64-bit FNV-1a hash fed incrementally with typed values.
/// Two runs of a simulation are byte-identical iff they fold the same
/// sequence of values — so a digest over every fired event's
/// (time, id, tag) tuple is a compact, order-sensitive fingerprint of an
/// entire experiment. The golden-trace regression suite (tests/golden/)
/// pins these fingerprints; tools/llverify diffs them across reruns.
///
/// Encoding rules keep digests platform-independent:
///  * integers are folded as 8 little-endian bytes regardless of host order;
///  * doubles are folded by IEEE-754 bit pattern, with -0.0 normalized to
///    +0.0 and every NaN collapsed to one canonical pattern;
///  * strings are length-prefixed so "ab","c" != "a","bc".

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "des/simulation.hpp"

namespace ll::verify {

class Digest {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  void add_byte(std::uint8_t b) {
    state_ ^= b;
    state_ *= kPrime;
  }

  /// Folds a 64-bit integer as little-endian bytes (host-order independent).
  void add_u64(std::uint64_t v);

  /// Folds a double by canonicalized IEEE-754 bit pattern.
  void add_double(double v);

  /// Folds a string, length-prefixed.
  void add_string(std::string_view s);

  /// Folds one event tuple — the unit the fired-event digests stream.
  void add_event(double time, std::uint64_t id, std::uint64_t tag) {
    add_double(time);
    add_u64(id);
    add_u64(tag);
  }

  [[nodiscard]] std::uint64_t value() const { return state_; }

  /// 16 lowercase hex digits, the format of the golden files.
  [[nodiscard]] std::string hex() const;

  /// Parses the hex() format back; nullopt on malformed input.
  [[nodiscard]] static std::optional<std::uint64_t> parse_hex(
      std::string_view s);

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// SimObserver that folds every *fired* event's (time, id, tag) into a
/// digest. Schedule/cancel activity is deliberately excluded: two runs are
/// behaviorally identical iff they fire the same events at the same times in
/// the same order, regardless of how much speculative scheduling each did.
class DigestObserver final : public des::SimObserver {
 public:
  void on_fire(double time, des::EventId id, std::uint64_t tag) override {
    digest_.add_event(time, id, tag);
    ++events_;
  }

  [[nodiscard]] const Digest& digest() const { return digest_; }
  [[nodiscard]] std::uint64_t events() const { return events_; }

 private:
  Digest digest_;
  std::uint64_t events_ = 0;
};

}  // namespace ll::verify
