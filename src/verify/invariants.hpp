#pragma once

/// \file invariants.hpp
/// Machine-checked invariants for the simulation engine and its models.
///
/// The paper's evaluation assumes the simulator conserves work, never runs
/// the clock backwards, and moves jobs only along the legal state machine.
/// This registry makes those assumptions executable: checkers report into an
/// InvariantRegistry which either throws on first violation (kAssert mode,
/// for tests) or counts violations cheaply (kCount mode, for benchmarks and
/// the llverify harness, where a single bad run should be summarized, not
/// aborted).
///
/// Built-in checkers:
///  * SimInvariantObserver — clock monotonicity and event-count conservation
///    (scheduled == fired + cancelled + pending) via the engine's observer
///    hooks;
///  * legal_job_transition / check_job_record — the JobState machine of
///    cluster/job.hpp, plus stopwatch/lifetime accounting;
///  * check_cluster_occupancy — node occupancy legality (slot caps, guest
///    states consistent with the owner's idle flag, no job on two nodes);
///  * check_bsp_result — barrier consistency of a BSP run (a barrier phase
///    can never beat its all-idle ideal).

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "cluster/job.hpp"
#include "des/simulation.hpp"
#include "parallel/bsp.hpp"

namespace ll::verify {

enum class Mode {
  kAssert,  ///< throw InvariantViolation on the first failed check
  kCount,   ///< count failures, retain the first few details
};

/// Thrown by kAssert-mode registries.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

struct Violation {
  std::string invariant;
  std::string detail;
};

class InvariantRegistry {
 public:
  explicit InvariantRegistry(Mode mode = Mode::kCount) : mode_(mode) {}

  /// Records one executed check; reports a violation when `ok` is false.
  /// `detail` is only materialized on failure (pass a callable for expensive
  /// messages via the overload below).
  void check(bool ok, std::string_view invariant, std::string_view detail);

  /// Lazy-detail variant: `detail_fn()` runs only on failure.
  template <typename DetailFn>
  void check_lazy(bool ok, std::string_view invariant, DetailFn&& detail_fn) {
    ++checks_;
    if (ok) return;
    fail(invariant, detail_fn());
  }

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] std::uint64_t checks() const { return checks_; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }

  /// First kMaxRetained violations, for reporting in kCount mode.
  [[nodiscard]] const std::vector<Violation>& retained() const {
    return retained_;
  }

  /// One-line human summary ("412 checks, 0 violations").
  [[nodiscard]] std::string summary() const;

  static constexpr std::size_t kMaxRetained = 16;

 private:
  void fail(std::string_view invariant, std::string detail);

  Mode mode_;
  std::uint64_t checks_ = 0;
  std::uint64_t violations_ = 0;
  std::vector<Violation> retained_;
};

/// Engine-level invariants streamed through the observer hooks:
///  * fire times are non-decreasing and never precede the schedule time;
///  * every fired/cancelled id was actually scheduled;
///  * on finalize(), scheduled == fired + cancelled + pending (conservation).
///
/// Attach with sim.set_observer(&checker) (or ClusterSim::set_sim_observer)
/// and call finalize() once the run is over. Chains to a `next` observer so
/// it can stack with a DigestObserver on the same engine.
class SimInvariantObserver final : public des::SimObserver {
 public:
  explicit SimInvariantObserver(const des::Simulation& sim,
                                InvariantRegistry& registry,
                                des::SimObserver* next = nullptr)
      : sim_(&sim), registry_(&registry), next_(next) {}

  void on_schedule(double when, des::EventId id, std::uint64_t tag) override;
  void on_fire(double time, des::EventId id, std::uint64_t tag) override;
  void on_fire_done(double time, des::EventId id, std::uint64_t tag) override;
  void on_cancel(des::EventId id, std::uint64_t tag) override;

  /// Conservation check over the whole run; call after the last run_*().
  void finalize();

  [[nodiscard]] std::uint64_t observed_scheduled() const { return scheduled_; }
  [[nodiscard]] std::uint64_t observed_fired() const { return fired_; }
  [[nodiscard]] std::uint64_t observed_cancelled() const { return cancelled_; }

 private:
  const des::Simulation* sim_;
  InvariantRegistry* registry_;
  des::SimObserver* next_;
  double last_fire_time_ = -std::numeric_limits<double>::infinity();
  std::uint64_t scheduled_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t cancelled_ = 0;
};

/// Legality of one JobState transition, per the lifecycle the cluster
/// simulator implements (see cluster/cluster_sim.cpp):
///   Queued        -> Running | Lingering
///   Running       -> Lingering | Paused | Done | Checkpointing | Queued
///   Lingering     -> Running | Paused | Migrating | Done | Checkpointing
///                    | Queued
///   Paused        -> Running | Lingering | Migrating | Done | Queued
///   Migrating     -> Running | Lingering | Queued
///   Checkpointing -> Running | Lingering | Paused | Queued
///   Done          -> (terminal)
/// The -> Queued edges are crash re-queues (fault injection); a checkpoint
/// write never completes the job (integration happens before the write
/// starts), so Checkpointing -> Done is illegal.
[[nodiscard]] bool legal_job_transition(cluster::JobState from,
                                        cluster::JobState to);

/// Checks one job record end to end: every logged transition is legal,
/// transition times are non-decreasing and start at/after submission,
/// first_start/completion are consistent with the history, and — for Done
/// jobs — the per-state stopwatches partition the whole lifetime.
void check_job_record(const cluster::JobRecord& job,
                      InvariantRegistry& registry);

/// Occupancy legality across a cluster at a quiescent point:
///  * occupants + reserved slots never exceed max_foreign_per_node;
///  * every occupant is Running, Lingering, Paused, or Checkpointing;
///  * Running guests only on idle (owner-away) nodes, Lingering/Paused
///    guests only on non-idle nodes (Checkpointing writes proceed under
///    either owner state);
///  * down (crashed) nodes host no occupants;
///  * no job occupies two nodes; Queued/Migrating/Done jobs occupy none;
///  * the reserved slots across all nodes sum to the in-flight migrations.
void check_cluster_occupancy(const cluster::ClusterSim& sim,
                             InvariantRegistry& registry);

/// Barrier consistency of a BSP result: times are finite and positive, the
/// phase count is consistent with the configuration, and the contended run
/// is never faster than its all-idle ideal (each phase's stretched compute
/// dominates the granularity and each handler delay dominates the idle
/// handler cost, so the inequality holds pointwise, not just in mean).
void check_bsp_result(const parallel::BspConfig& config,
                      const parallel::BspResult& result,
                      InvariantRegistry& registry);

}  // namespace ll::verify
