#include "verify/digest.hpp"

#include <bit>
#include <cmath>

namespace ll::verify {

void Digest::add_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    add_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Digest::add_double(double v) {
  if (std::isnan(v)) {
    // All NaNs (quiet/signaling, any payload) digest identically.
    add_u64(0x7FF8000000000000ULL);
    return;
  }
  if (v == 0.0) v = 0.0;  // -0.0 == 0.0 is true; normalize the bit pattern
  add_u64(std::bit_cast<std::uint64_t>(v));
}

void Digest::add_string(std::string_view s) {
  add_u64(s.size());
  for (char c : s) add_byte(static_cast<std::uint8_t>(c));
}

std::string Digest::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  std::uint64_t v = state_;
  for (std::size_t i = 16; i-- > 0;) {
    out[i] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

std::optional<std::uint64_t> Digest::parse_hex(std::string_view s) {
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

}  // namespace ll::verify
