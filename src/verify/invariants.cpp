#include "verify/invariants.hpp"

#include <cmath>
#include <sstream>
#include <unordered_map>

namespace ll::verify {

void InvariantRegistry::check(bool ok, std::string_view invariant,
                              std::string_view detail) {
  ++checks_;
  if (ok) return;
  fail(invariant, std::string(detail));
}

void InvariantRegistry::fail(std::string_view invariant, std::string detail) {
  ++violations_;
  if (mode_ == Mode::kAssert) {
    throw InvariantViolation("invariant '" + std::string(invariant) +
                             "' violated: " + detail);
  }
  if (retained_.size() < kMaxRetained) {
    retained_.push_back(Violation{std::string(invariant), std::move(detail)});
  }
}

std::string InvariantRegistry::summary() const {
  std::ostringstream os;
  os << checks_ << " checks, " << violations_ << " violations";
  return os.str();
}

// ---- engine invariants ----------------------------------------------------

void SimInvariantObserver::on_schedule(double when, des::EventId id,
                                       std::uint64_t tag) {
  ++scheduled_;
  registry_->check_lazy(std::isfinite(when), "sim.finite-schedule-time", [&] {
    return "scheduled event " + std::to_string(id) + " at non-finite time";
  });
  registry_->check_lazy(when >= sim_->now(), "sim.no-past-scheduling", [&] {
    return "event " + std::to_string(id) + " scheduled at " +
           std::to_string(when) + " before now " + std::to_string(sim_->now());
  });
  registry_->check_lazy(id != des::kNoEvent, "sim.nonzero-event-id",
                        [&] { return "issued reserved id 0"; });
  if (next_) next_->on_schedule(when, id, tag);
}

void SimInvariantObserver::on_fire(double time, des::EventId id,
                                   std::uint64_t tag) {
  ++fired_;
  registry_->check_lazy(
      time >= last_fire_time_, "sim.clock-monotonicity", [&] {
        return "event " + std::to_string(id) + " fired at " +
               std::to_string(time) + " after the clock reached " +
               std::to_string(last_fire_time_);
      });
  registry_->check_lazy(time == sim_->now(), "sim.fire-at-now", [&] {
    return "event " + std::to_string(id) + " reported at " +
           std::to_string(time) + " but clock reads " +
           std::to_string(sim_->now());
  });
  last_fire_time_ = std::max(last_fire_time_, time);
  if (next_) next_->on_fire(time, id, tag);
}

void SimInvariantObserver::on_fire_done(double time, des::EventId id,
                                        std::uint64_t tag) {
  if (next_) next_->on_fire_done(time, id, tag);
}

void SimInvariantObserver::on_cancel(des::EventId id, std::uint64_t tag) {
  ++cancelled_;
  if (next_) next_->on_cancel(id, tag);
}

void SimInvariantObserver::finalize() {
  // Conservation over the whole engine lifetime: every id ever issued is in
  // exactly one of {fired, cancelled, pending}. The engine's own counters
  // cover events scheduled before this observer attached.
  const std::uint64_t scheduled = sim_->events_scheduled();
  const std::uint64_t fired = sim_->events_fired();
  const std::uint64_t cancelled = sim_->events_cancelled();
  const std::uint64_t pending = sim_->pending_count();
  registry_->check_lazy(
      scheduled == fired + cancelled + pending, "sim.event-conservation", [&] {
        std::ostringstream os;
        os << "scheduled " << scheduled << " != fired " << fired
           << " + cancelled " << cancelled << " + pending " << pending;
        return os.str();
      });
}

// ---- job state machine ----------------------------------------------------

bool legal_job_transition(cluster::JobState from, cluster::JobState to) {
  using S = cluster::JobState;
  switch (from) {
    case S::Queued:
      return to == S::Running || to == S::Lingering;
    case S::Running:
      return to == S::Lingering || to == S::Paused || to == S::Done ||
             to == S::Checkpointing || to == S::Queued;
    case S::Lingering:
      return to == S::Running || to == S::Paused || to == S::Migrating ||
             to == S::Done || to == S::Checkpointing || to == S::Queued;
    case S::Paused:
      return to == S::Running || to == S::Lingering || to == S::Migrating ||
             to == S::Done || to == S::Queued;
    case S::Migrating:
      return to == S::Running || to == S::Lingering || to == S::Queued;
    case S::Checkpointing:
      // Integration happens before the write starts, so a checkpoint never
      // completes the job; a crash mid-write re-queues it.
      return to == S::Running || to == S::Lingering || to == S::Paused ||
             to == S::Queued;
    case S::Done:
      return false;
  }
  return false;
}

namespace {

std::string job_tag(const cluster::JobRecord& job) {
  return "job " + std::to_string(job.id);
}

}  // namespace

void check_job_record(const cluster::JobRecord& job,
                      InvariantRegistry& registry) {
  using S = cluster::JobState;
  S prev = S::Queued;
  double prev_time = job.submit_time;
  for (const auto& tr : job.history) {
    registry.check_lazy(
        legal_job_transition(prev, tr.to), "job.legal-transition", [&] {
          return job_tag(job) + ": " + std::string(to_string(prev)) + " -> " +
                 std::string(to_string(tr.to)) + " at t=" +
                 std::to_string(tr.time);
        });
    registry.check_lazy(tr.time >= prev_time, "job.transition-times-monotone",
                        [&] {
                          return job_tag(job) + ": transition at " +
                                 std::to_string(tr.time) + " precedes " +
                                 std::to_string(prev_time);
                        });
    prev = tr.to;
    prev_time = std::max(prev_time, tr.time);
  }
  registry.check_lazy(job.state == prev, "job.state-matches-history", [&] {
    return job_tag(job) + ": record state " +
           std::string(to_string(job.state)) + " but history ends in " +
           std::string(to_string(prev));
  });

  for (std::size_t s = 0; s < cluster::kJobStateCount; ++s) {
    registry.check_lazy(job.state_time[s] >= 0.0, "job.stopwatch-nonnegative",
                        [&] {
                          return job_tag(job) + ": state_time[" +
                                 std::to_string(s) + "] negative";
                        });
  }

  if (job.first_start) {
    registry.check_lazy(*job.first_start >= job.submit_time,
                        "job.first-start-after-submit", [&] {
                          return job_tag(job) + ": first_start precedes submit";
                        });
  }
  if (job.state == S::Done) {
    registry.check_lazy(job.completion.has_value(), "job.done-has-completion",
                        [&] { return job_tag(job) + ": Done w/o completion"; });
    registry.check_lazy(job.remaining <= 1e-6, "job.done-work-exhausted", [&] {
      return job_tag(job) + ": Done with remaining " +
             std::to_string(job.remaining);
    });
    if (job.completion) {
      // The per-state stopwatches partition [submit, completion] exactly.
      double total = 0.0;
      for (double t : job.state_time) total += t;
      const double lifetime = *job.completion - job.submit_time;
      registry.check_lazy(std::abs(total - lifetime) <=
                              1e-6 * std::max(1.0, lifetime),
                          "job.stopwatches-partition-lifetime", [&] {
                            return job_tag(job) + ": state times sum to " +
                                   std::to_string(total) + ", lifetime is " +
                                   std::to_string(lifetime);
                          });
    }
  } else {
    registry.check_lazy(!job.completion.has_value(),
                        "job.completion-implies-done", [&] {
                          return job_tag(job) + ": completion set while " +
                                 std::string(to_string(job.state));
                        });
  }
}

// ---- cluster occupancy ----------------------------------------------------

void check_cluster_occupancy(const cluster::ClusterSim& sim,
                             InvariantRegistry& registry) {
  using S = cluster::JobState;
  const auto snapshots = sim.node_snapshots();
  const auto& jobs = sim.jobs();
  const std::size_t max_slots = sim.config().max_foreign_per_node;

  std::unordered_map<cluster::JobId, std::size_t> residence;
  std::size_t reserved_total = 0;
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    const auto& node = snapshots[i];
    reserved_total += node.reserved;
    registry.check_lazy(!node.down || node.occupants.empty(),
                        "cluster.down-node-empty", [&] {
                          return "down node " + std::to_string(i) + " hosts " +
                                 std::to_string(node.occupants.size()) +
                                 " occupants";
                        });
    registry.check_lazy(node.occupants.size() + node.reserved <= max_slots,
                        "cluster.slot-cap", [&] {
                          return "node " + std::to_string(i) + " holds " +
                                 std::to_string(node.occupants.size()) +
                                 " occupants + " +
                                 std::to_string(node.reserved) +
                                 " reservations, cap " +
                                 std::to_string(max_slots);
                        });
    for (cluster::JobId id : node.occupants) {
      ++residence[id];
      registry.check_lazy(id < jobs.size(), "cluster.occupant-exists", [&] {
        return "node " + std::to_string(i) + " hosts unknown job " +
               std::to_string(id);
      });
      if (id >= jobs.size()) continue;
      const S s = jobs[id].state;
      registry.check_lazy(
          s == S::Running || s == S::Lingering || s == S::Paused ||
              s == S::Checkpointing,
          "cluster.occupant-state", [&] {
            return "node " + std::to_string(i) + " hosts job " +
                   std::to_string(id) + " in state " +
                   std::string(to_string(s));
          });
      // Occupancy legality against the owner: a guest Running at full rate
      // only when the owner is away; Lingering/Paused only when present.
      // Checkpointing writes proceed under either owner state.
      if (s == S::Running) {
        registry.check_lazy(node.idle, "cluster.running-implies-owner-away",
                            [&] {
                              return "job " + std::to_string(id) +
                                     " Running on non-idle node " +
                                     std::to_string(i);
                            });
      } else if (s == S::Lingering || s == S::Paused) {
        registry.check_lazy(!node.idle,
                            "cluster.lingering-implies-owner-present", [&] {
                              return "job " + std::to_string(id) + " " +
                                     std::string(to_string(s)) +
                                     " on idle node " + std::to_string(i);
                            });
      }
    }
  }

  registry.check_lazy(reserved_total == sim.inflight_migrations(),
                      "cluster.reservations-match-inflight", [&] {
                        return "reserved slots sum to " +
                               std::to_string(reserved_total) + " but " +
                               std::to_string(sim.inflight_migrations()) +
                               " migrations are in flight";
                      });

  for (const auto& job : jobs) {
    const auto it = residence.find(job.id);
    const std::size_t count = it == residence.end() ? 0 : it->second;
    const S s = job.state;
    const bool resident = s == S::Running || s == S::Lingering ||
                          s == S::Paused || s == S::Checkpointing;
    registry.check_lazy(count == (resident ? 1u : 0u),
                        "cluster.one-node-per-job", [&] {
                          return "job " + std::to_string(job.id) + " (" +
                                 std::string(to_string(s)) + ") resident on " +
                                 std::to_string(count) + " nodes";
                        });
  }
}

// ---- BSP barrier consistency ----------------------------------------------

void check_bsp_result(const parallel::BspConfig& config,
                      const parallel::BspResult& result,
                      InvariantRegistry& registry) {
  registry.check(std::isfinite(result.time) && std::isfinite(result.ideal),
                 "bsp.finite-times", "non-finite completion time");
  registry.check(result.phases > 0, "bsp.ran-phases", "zero phases recorded");
  if (config.granularity > 0.0 && result.phases > 0) {
    registry.check_lazy(result.time > 0.0 && result.ideal > 0.0,
                        "bsp.positive-times", [&] {
                          return "time " + std::to_string(result.time) +
                                 ", ideal " + std::to_string(result.ideal);
                        });
    // Each phase's stretched compute dominates the granularity and every
    // handler delay dominates the idle handler cost, so the contended run
    // can never beat the all-idle ideal — pointwise, hence in total.
    registry.check_lazy(result.time >= result.ideal * (1.0 - 1e-9),
                        "bsp.barrier-consistency", [&] {
                          return "contended time " +
                                 std::to_string(result.time) +
                                 " beats ideal " +
                                 std::to_string(result.ideal);
                        });
  }
}

}  // namespace ll::verify
