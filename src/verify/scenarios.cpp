#include "verify/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "node/fine_node_sim.hpp"
#include "shard/sharded_sim.hpp"
#include "parallel/bsp.hpp"
#include "trace/coarse_generator.hpp"
#include "workload/burst_table.hpp"
#include "workload/fine_generator.hpp"

namespace ll::verify {
namespace {

/// Harness state shared by every scenario body: a registry in the requested
/// mode and a digest, folded into one ScenarioResult at the end.
struct Harness {
  explicit Harness(const ScenarioOptions& options)
      : registry(options.mode) {}

  InvariantRegistry registry;
  Digest digest;

  ScenarioResult finish(std::uint64_t events = 0) {
    ScenarioResult res;
    res.digest = digest;
    res.events = events;
    res.checks = registry.checks();
    res.violations = registry.violations();
    return res;
  }
};

void fold_fine_result(Digest& d, const node::FineNodeResult& r) {
  d.add_double(r.local_cpu);
  d.add_double(r.local_delay);
  d.add_double(r.idle_cpu);
  d.add_double(r.foreign_cpu);
  d.add_u64(r.preemptions);
  d.add_double(r.wall);
}

void check_fine_result(const node::FineNodeConfig& cfg,
                       const node::FineNodeResult& r,
                       InvariantRegistry& reg) {
  reg.check(r.foreign_cpu <= r.idle_cpu + 1e-9, "node.steals-only-idle-cycles",
            "foreign CPU exceeds the idle cycles offered");
  reg.check(r.local_delay >= 0.0 && r.foreign_cpu >= 0.0,
            "node.nonnegative-accounting", "negative delay or foreign CPU");
  reg.check(r.wall >= cfg.duration - 1e-9, "node.covers-duration",
            "simulation ended before the configured duration");
}

void fold_cluster(Digest& d, const cluster::ClusterSim& sim) {
  for (const cluster::JobRecord& job : sim.jobs()) {
    d.add_u64(job.id);
    d.add_double(job.submit_time);
    d.add_double(job.remaining);
    for (const auto& tr : job.history) {
      d.add_double(tr.time);
      d.add_u64(static_cast<std::uint64_t>(tr.to));
    }
  }
  d.add_double(sim.delivered_cpu());
  d.add_u64(sim.migrations_started());
}

void check_cluster(const cluster::ClusterSim& sim, InvariantRegistry& reg) {
  check_cluster_occupancy(sim, reg);
  for (const cluster::JobRecord& job : sim.jobs()) {
    check_job_record(job, reg);
  }
}

/// State digest of a sharded run, the sharded analogue of fold_cluster:
/// per-job lifecycle (id, submit, remaining, transition history) plus the
/// canonical-order global reductions. Engine-level (time, id) event digests
/// are deliberately not folded — each shard runs a private tick chain, so
/// raw event streams vary with K while the state evolution does not.
void fold_sharded(Digest& d, const shard::ShardedClusterSim& sim) {
  for (const cluster::JobRecord& job : sim.jobs()) {
    d.add_u64(job.id);
    d.add_double(job.submit_time);
    d.add_double(job.remaining);
    for (const auto& tr : job.history) {
      d.add_double(tr.time);
      d.add_u64(static_cast<std::uint64_t>(tr.to));
    }
  }
  d.add_double(sim.delivered_cpu());
  d.add_u64(sim.migrations_started());
}

/// Occupancy legality over the sharded SoA at a quiescent point, mirroring
/// check_cluster_occupancy, plus per-shard engine conservation and the
/// per-job record checks.
void check_sharded(const shard::ShardedClusterSim& sim,
                   InvariantRegistry& reg) {
  constexpr auto kNoJob = shard::ShardedClusterSim::kNoJob;
  std::vector<unsigned char> seen(sim.jobs().size(), 0);
  std::size_t reserved_total = 0;
  for (std::size_t i = 0; i < sim.node_count(); ++i) {
    const auto v = sim.node_view(i);
    reserved_total += v.reserved;
    reg.check(v.reserved + (v.occupant != kNoJob ? 1u : 0u) <= 1,
              "shard.slot-cap", "occupant + reserved exceeds the slot cap");
    if (v.occupant == kNoJob) continue;
    reg.check(!v.down, "shard.down-hosts-none",
              "a crashed node still hosts a job");
    reg.check(!seen[v.occupant], "shard.job-on-one-node",
              "a job occupies two nodes");
    seen[v.occupant] = 1;
    const cluster::JobState st = sim.jobs()[v.occupant].state;
    reg.check(st == cluster::JobState::Running ||
                  st == cluster::JobState::Lingering ||
                  st == cluster::JobState::Paused ||
                  st == cluster::JobState::Checkpointing,
              "shard.occupant-state", "occupant in a non-resident state");
    if (st == cluster::JobState::Running) {
      reg.check(v.idle, "shard.running-on-idle",
                "Running guest on a non-idle node");
    }
    if (st == cluster::JobState::Lingering ||
        st == cluster::JobState::Paused) {
      reg.check(!v.idle, "shard.lingering-on-nonidle",
                "Lingering/Paused guest on an idle node");
    }
  }
  for (std::size_t k = 0; k < sim.shard_count(); ++k) {
    const des::Simulation& engine = sim.engine(k);
    reg.check(engine.events_scheduled() ==
                  engine.events_fired() + engine.events_cancelled() +
                      engine.pending_count(),
              "shard.engine-conservation",
              "scheduled != fired + cancelled + pending");
  }
  for (const cluster::JobRecord& job : sim.jobs()) {
    check_job_record(job, reg);
  }
}

std::vector<trace::CoarseTrace> small_pool(rng::Stream stream,
                                           std::size_t machines,
                                           double hours) {
  trace::CoarseGenConfig gen;
  gen.duration = hours * 3600.0;
  gen.start_hour = 9.0;  // working hours: mixed idle/busy structure
  return trace::generate_machine_pool(gen, machines, std::move(stream));
}

// ---- des ------------------------------------------------------------------

/// A self-exciting event storm: events spawn children, cancel random
/// victims, and pile up in equal-time clusters — exercising ordering,
/// cancellation and FIFO tie-breaking under observer digests.
ScenarioResult des_storm(const ScenarioOptions& options) {
  Harness h(options);
  des::Simulation sim(des::Simulation::Options{options.queue});
  DigestObserver digest;
  SimInvariantObserver inv(sim, h.registry, &digest);
  sim.set_observer(options.wrap_observer ? options.wrap_observer(&inv) : &inv);

  rng::Stream stream = scenario_stream(options, "des-storm");
  std::vector<des::EventId> live;

  std::function<void(int)> body = [&](int depth) {
    // Spawn up to two children with decreasing probability; cancel a random
    // live event a third of the time.
    if (depth < 6) {
      const std::uint64_t spawns = stream.uniform_index(3);
      for (std::uint64_t s = 0; s < spawns; ++s) {
        const double delta = stream.uniform(0.0, 5.0);
        const std::uint64_t tag = 10 + stream.uniform_index(4);
        live.push_back(sim.schedule_in(
            delta, [&body, depth] { body(depth + 1); }, tag));
      }
    }
    if (!live.empty() && stream.uniform01() < 0.33) {
      sim.cancel(live[stream.uniform_index(live.size())]);
    }
  };

  for (int i = 0; i < 96; ++i) {
    const double t = stream.uniform(0.0, 50.0);
    live.push_back(sim.schedule_at(t, [&body] { body(0); }, 1));
  }
  // Equal-time cluster: 32 events at exactly t = 25, FIFO among themselves.
  for (int i = 0; i < 32; ++i) {
    live.push_back(sim.schedule_at(25.0, [&body] { body(5); }, 2));
  }
  sim.run();
  inv.finalize();
  sim.set_observer(nullptr);

  h.digest = digest.digest();
  h.digest.add_u64(sim.events_fired());
  h.digest.add_u64(sim.events_cancelled());
  return h.finish(digest.events());
}

/// Cancellation churn with staged run_until horizons landing exactly on
/// event times — the paths the -ffast-math audit hardened.
ScenarioResult des_cancel_churn(const ScenarioOptions& options) {
  Harness h(options);
  des::Simulation sim(des::Simulation::Options{options.queue});
  DigestObserver digest;
  SimInvariantObserver inv(sim, h.registry, &digest);
  sim.set_observer(options.wrap_observer ? options.wrap_observer(&inv) : &inv);

  rng::Stream stream = scenario_stream(options, "des-cancel-churn");
  std::vector<des::EventId> ids;
  ids.reserve(512);
  for (int i = 0; i < 512; ++i) {
    const double t = std::floor(stream.uniform(0.0, 64.0) * 4.0) / 4.0;
    ids.push_back(sim.schedule_at(t, [] {}, 3));
  }
  // Cancel a pseudo-random half before running.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (stream.uniform01() < 0.5) sim.cancel(ids[i]);
  }
  // Drain in stages whose horizons coincide with quantized event times.
  for (double horizon = 8.0; horizon <= 64.0; horizon += 8.0) {
    sim.run_until(horizon);
    h.digest.add_double(sim.now());
    h.digest.add_u64(sim.pending_count());
  }
  sim.run();
  inv.finalize();
  sim.set_observer(nullptr);

  const Digest events = digest.digest();
  h.digest.add_u64(events.value());
  return h.finish(digest.events());
}

// ---- node -----------------------------------------------------------------

ScenarioResult node_fine(const ScenarioOptions& options) {
  Harness h(options);
  rng::Stream stream = scenario_stream(options, "node-fine");
  const auto& table = workload::default_burst_table();
  std::size_t i = 0;
  for (double u : {0.1, 0.4, 0.7}) {
    node::FineNodeConfig cfg;
    cfg.utilization = u;
    cfg.duration = 300.0;
    const auto r = node::simulate_fine_node(cfg, table, stream.fork("u", i++));
    check_fine_result(cfg, r, h.registry);
    fold_fine_result(h.digest, r);
  }
  return h.finish();
}

ScenarioResult node_trace(const ScenarioOptions& options) {
  Harness h(options);
  rng::Stream stream = scenario_stream(options, "node-trace");
  trace::CoarseGenConfig gen;
  gen.duration = 1800.0;
  gen.start_hour = 10.0;
  const trace::CoarseTrace coarse =
      trace::generate_coarse_trace(gen, stream.fork("coarse"));
  const auto r = node::simulate_fine_node_trace(
      coarse, workload::default_burst_table(), 100e-6, 900.0,
      stream.fork("fine"));
  node::FineNodeConfig cfg;
  cfg.duration = 900.0;
  check_fine_result(cfg, r, h.registry);
  fold_fine_result(h.digest, r);
  return h.finish();
}

// ---- cluster --------------------------------------------------------------

/// The sharded twin of cluster_run: same pool, config, workload and stream
/// derivation, executed on the conservative time-windowed engine. The
/// resulting digest is pinned in <name>.shards.golden and must be
/// byte-identical for every shard count and queue backend.
ScenarioResult sharded_cluster_run(
    const ScenarioOptions& options, std::string_view name,
    core::PolicyKind policy, std::size_t nodes, std::size_t jobs,
    double demand, bool closed,
    const std::function<void(cluster::ClusterConfig&)>& configure) {
  Harness h(options);
  rng::Stream stream = scenario_stream(options, name);
  const auto pool = small_pool(stream.fork("pool"), nodes, 2.0);

  cluster::ClusterConfig cfg;
  cfg.node_count = nodes;
  cfg.policy = policy;
  cfg.job_bytes = 1ull << 20;
  cfg.queue = options.queue;
  if (configure) configure(cfg);
  shard::ShardedClusterSim sim(cfg, options.shards, pool,
                               workload::default_burst_table(),
                               stream.fork("sim"));

  if (closed) {
    sim.set_completion_callback(
        [&sim, demand](const cluster::JobRecord&) { sim.submit(demand); });
    for (std::size_t j = 0; j < jobs; ++j) sim.submit(demand);
    sim.run_for(1800.0);
  } else {
    for (std::size_t j = 0; j < jobs; ++j) sim.submit(demand);
    sim.run_until_all_complete(1e6);
  }

  check_sharded(sim, h.registry);
  fold_sharded(h.digest, sim);
  if (!cfg.faults.empty() || cfg.checkpoint.enabled()) {
    h.digest.add_double(sim.work_lost());
    h.digest.add_u64(sim.restarts());
    h.digest.add_u64(sim.crashes());
    h.digest.add_u64(sim.checkpoints_taken());
  }
  return h.finish(sim.logical_events());
}

ScenarioResult cluster_run(
    const ScenarioOptions& options, std::string_view name,
    core::PolicyKind policy, std::size_t nodes, std::size_t jobs,
    double demand, bool closed,
    const std::function<void(cluster::ClusterConfig&)>& configure = {}) {
  if (options.shards > 0) {
    return sharded_cluster_run(options, name, policy, nodes, jobs, demand,
                               closed, configure);
  }
  Harness h(options);
  rng::Stream stream = scenario_stream(options, name);
  const auto pool = small_pool(stream.fork("pool"), nodes, 2.0);

  cluster::ClusterConfig cfg;
  cfg.node_count = nodes;
  cfg.policy = policy;
  cfg.job_bytes = 1ull << 20;
  cfg.queue = options.queue;
  if (configure) configure(cfg);
  cluster::ClusterSim sim(cfg, pool, workload::default_burst_table(),
                          stream.fork("sim"));

  if (options.cluster_hook) options.cluster_hook(sim);

  DigestObserver digest;
  SimInvariantObserver inv(sim.engine(), h.registry, &digest);
  sim.set_sim_observer(options.wrap_observer ? options.wrap_observer(&inv)
                                             : &inv);

  if (closed) {
    sim.set_completion_callback(
        [&sim, demand](const cluster::JobRecord&) { sim.submit(demand); });
    for (std::size_t j = 0; j < jobs; ++j) sim.submit(demand);
    sim.run_for(1800.0);
  } else {
    for (std::size_t j = 0; j < jobs; ++j) sim.submit(demand);
    sim.run_until_all_complete(1e6);
  }
  inv.finalize();
  sim.set_sim_observer(nullptr);

  check_cluster(sim, h.registry);
  h.digest = digest.digest();
  fold_cluster(h.digest, sim);
  if (!cfg.faults.empty() || cfg.checkpoint.enabled()) {
    // Fault scenarios additionally pin the rollback accounting; fault-free
    // scenarios fold nothing extra, keeping their digests byte-identical to
    // the pre-fault suite.
    h.digest.add_double(sim.work_lost());
    h.digest.add_u64(sim.restarts());
    h.digest.add_u64(sim.crashes());
    h.digest.add_u64(sim.checkpoints_taken());
  }
  return h.finish(digest.events());
}

// ---- parallel -------------------------------------------------------------

ScenarioResult parallel_bsp(const ScenarioOptions& options) {
  Harness h(options);
  rng::Stream stream = scenario_stream(options, "parallel-bsp");
  parallel::BspConfig cfg;
  cfg.processes = 8;
  cfg.phases = 40;
  cfg.granularity = 0.05;
  std::vector<double> utils(cfg.processes);
  for (double& u : utils) u = stream.uniform(0.0, 0.6);
  const auto r = parallel::simulate_bsp(cfg, utils,
                                        workload::default_burst_table(),
                                        stream.fork("bsp"));
  check_bsp_result(cfg, r, h.registry);
  h.digest.add_double(r.time);
  h.digest.add_double(r.ideal);
  h.digest.add_u64(r.phases);
  return h.finish();
}

ScenarioResult parallel_bsp_work(const ScenarioOptions& options) {
  Harness h(options);
  rng::Stream stream = scenario_stream(options, "parallel-bsp-work");
  parallel::BspConfig cfg;
  cfg.processes = 6;
  cfg.granularity = 0.1;
  cfg.closing_barrier = false;
  std::vector<double> utils(cfg.processes);
  for (double& u : utils) u = stream.uniform(0.0, 0.5);
  const auto r = parallel::simulate_bsp_work(cfg, 6.0, utils,
                                             workload::default_burst_table(),
                                             stream.fork("bsp"));
  check_bsp_result(cfg, r, h.registry);
  h.digest.add_double(r.time);
  h.digest.add_double(r.ideal);
  h.digest.add_u64(r.phases);
  return h.finish();
}

// ---- trace / workload / rng ----------------------------------------------

ScenarioResult trace_pool(const ScenarioOptions& options) {
  Harness h(options);
  rng::Stream stream = scenario_stream(options, "trace-pool");
  trace::CoarseGenConfig gen;
  gen.duration = 3600.0;
  gen.start_hour = 9.0;
  const auto pool = trace::generate_machine_pool(gen, 4, stream.fork("pool"));
  for (const auto& t : pool) {
    h.digest.add_double(t.period());
    for (const auto& s : t.samples()) {
      h.digest.add_double(s.cpu);
      h.digest.add_u64(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(s.mem_free_kb)));
      h.digest.add_byte(s.keyboard ? 1 : 0);
      h.registry.check(s.cpu >= 0.0 && s.cpu <= 1.0, "trace.cpu-in-range",
                       "sample CPU outside [0,1]");
      h.registry.check(s.mem_free_kb >= 0 &&
                           s.mem_free_kb <= gen.mem_total_kb,
                       "trace.mem-in-range", "free memory outside [0,total]");
    }
  }
  return h.finish();
}

ScenarioResult workload_bursts(const ScenarioOptions& options) {
  Harness h(options);
  rng::Stream stream = scenario_stream(options, "workload-bursts");
  const auto fine = workload::generate_fine_trace(
      workload::default_burst_table(), 0.3, 2000.0, stream.fork("trace"));
  for (const auto& b : fine.bursts()) {
    h.digest.add_u64(static_cast<std::uint64_t>(b.kind));
    h.digest.add_double(b.duration);
  }
  h.registry.check(!fine.empty(), "workload.nonempty", "no bursts generated");
  // Wide statistical guard: a 2000 s trace at target 0.3 never drifts this
  // far unless the generator itself broke.
  h.registry.check_lazy(
      fine.utilization() > 0.1 && fine.utilization() < 0.6,
      "workload.utilization-near-target", [&] {
        return "measured utilization " + std::to_string(fine.utilization()) +
               " for target 0.3";
      });
  return h.finish();
}

ScenarioResult rng_streams(const ScenarioOptions& options) {
  Harness h(options);
  rng::Stream master(options.seed);

  // Fork-order independence: the same child reached through different fork
  // orders yields the identical sequence.
  rng::Stream a_first = master.fork("a");
  rng::Stream b_then_a = master.fork("b");
  rng::Stream a_second = master.fork("a");
  bool identical = true;
  for (int i = 0; i < 64; ++i) {
    if (a_first.engine()() != a_second.engine()()) identical = false;
  }
  h.registry.check(identical, "rng.fork-order-independence",
                   "fork(\"a\") sequence depends on sibling fork order");

  // Fork purity: forking consumes no parent entropy.
  rng::Stream parent1(options.seed ^ 0x9E3779B97F4A7C15ULL);
  rng::Stream parent2(options.seed ^ 0x9E3779B97F4A7C15ULL);
  (void)parent1.fork("child", 7);
  bool pure = true;
  for (int i = 0; i < 64; ++i) {
    if (parent1.engine()() != parent2.engine()()) pure = false;
  }
  h.registry.check(pure, "rng.fork-is-pure",
                   "forking consumed parent entropy");

  // Digest the canonical sequences so the generator algorithm itself is
  // golden-pinned (a silent xoshiro/SplitMix change fails the suite).
  for (int i = 0; i < 32; ++i) h.digest.add_u64(b_then_a.engine()());
  rng::Stream indexed = master.fork("sub", 3);
  for (int i = 0; i < 32; ++i) h.digest.add_u64(indexed.engine()());
  return h.finish();
}

}  // namespace

rng::Stream scenario_stream(const ScenarioOptions& options,
                            std::string_view name) {
  rng::Stream master(options.seed);
  if (options.reordered_streams) {
    // Forking is a pure function of (seed, label, index): interleaving decoy
    // forks must not change what the scenario's own streams produce.
    (void)master.fork("decoy-before");
    rng::Stream root = master.fork(name);
    (void)root.fork("decoy-inside");
    (void)master.fork("decoy-after");
    return root;
  }
  return master.fork(name);
}

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> kScenarios = [] {
    std::vector<Scenario> v;
    v.push_back({"des-storm", "des",
                 "self-exciting event storm with spawning and cancellation",
                 des_storm});
    v.push_back({"des-cancel-churn", "des",
                 "cancellation churn with horizons on exact event times",
                 des_cancel_churn});
    v.push_back({"node-fine", "node",
                 "fine-grain node simulation at three utilization levels",
                 node_fine});
    v.push_back({"node-trace", "node",
                 "trace-driven fine node run over a generated coarse trace",
                 node_trace});
    v.push_back({"cluster-open-ll", "cluster",
                 "open-mode Linger-Longer run on a generated pool",
                 [](const ScenarioOptions& o) {
                   return cluster_run(o, "cluster-open-ll",
                                      core::PolicyKind::LingerLonger, 6, 10,
                                      50.0, /*closed=*/false);
                 }});
    v.push_back({"cluster-evict-ie", "cluster",
                 "immediate-eviction run forcing migrations",
                 [](const ScenarioOptions& o) {
                   return cluster_run(o, "cluster-evict-ie",
                                      core::PolicyKind::ImmediateEviction, 4,
                                      8, 40.0, /*closed=*/false);
                 }});
    v.push_back({"cluster-closed-pm", "cluster",
                 "closed-system pause-and-migrate run with resubmission",
                 [](const ScenarioOptions& o) {
                   return cluster_run(o, "cluster-closed-pm",
                                      core::PolicyKind::PauseAndMigrate, 4, 5,
                                      30.0, /*closed=*/true);
                 }});
    v.push_back({"fault-crash-migration", "fault",
                 "crashes + link drops during eviction migrations, with "
                 "checkpointing",
                 [](const ScenarioOptions& o) {
                   return cluster_run(
                       o, "fault-crash-migration",
                       core::PolicyKind::ImmediateEviction, 4, 8, 40.0,
                       /*closed=*/false, [](cluster::ClusterConfig& cfg) {
                         cfg.faults.crash.arrivals =
                             fault::ArrivalProcess::exponential(1.0 / 400.0);
                         cfg.faults.crash.mean_downtime = 60.0;
                         cfg.faults.link.drop_probability = 0.3;
                         cfg.faults.link.max_retries = 2;
                         cfg.faults.link.retry_backoff = 5.0;
                         cfg.checkpoint.interval = 120.0;
                       });
                 }});
    v.push_back({"fault-storm-pm", "fault",
                 "reclamation storms + memory pressure under pause-and-"
                 "migrate, closed system",
                 [](const ScenarioOptions& o) {
                   return cluster_run(
                       o, "fault-storm-pm", core::PolicyKind::PauseAndMigrate,
                       4, 5, 30.0,
                       /*closed=*/true, [](cluster::ClusterConfig& cfg) {
                         cfg.faults.storm.arrivals =
                             fault::ArrivalProcess::fixed(
                                 {300.0, 900.0, 1500.0});
                         cfg.faults.storm.node_fraction = 0.5;
                         cfg.faults.storm.duration = 200.0;
                         cfg.faults.storm.utilization = 0.95;
                         cfg.faults.pressure.arrivals =
                             fault::ArrivalProcess::fixed({600.0});
                         cfg.faults.pressure.duration = 400.0;
                         cfg.faults.pressure.extra_kb = 16384;
                         cfg.checkpoint.interval = 300.0;
                       });
                 }});
    v.push_back({"parallel-bsp", "parallel",
                 "barrier-synchronized BSP job under owner contention",
                 parallel_bsp});
    v.push_back({"parallel-bsp-work", "parallel",
                 "fixed-work BSP run without a closing barrier",
                 parallel_bsp_work});
    v.push_back({"trace-pool", "trace",
                 "synthetic coarse trace pool, every sample digested",
                 trace_pool});
    v.push_back({"workload-bursts", "workload",
                 "fine-grain burst trace generation at fixed utilization",
                 workload_bursts});
    v.push_back({"rng-streams", "rng",
                 "stream forking purity, order independence, pinned draws",
                 rng_streams});
    return v;
  }();
  return kScenarios;
}

const Scenario* find_scenario(std::string_view name) {
  for (const Scenario& s : scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

bool scenario_sharded(const Scenario& scenario) {
  return scenario.module == "cluster" || scenario.module == "fault";
}

}  // namespace ll::verify
