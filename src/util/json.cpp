#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace ll::util::json {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      fail("invalid literal (expected '" + std::string(lit) + "')");
    }
    pos_ += lit.size();
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value(parse_string());
      case 't':
        expect_literal("true");
        return Value(true);
      case 'f':
        expect_literal("false");
        return Value(false);
      case 'n':
        expect_literal("null");
        return Value(nullptr);
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object members;
    skip_ws();
    if (consume('}')) return Value(std::move(members));
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return Value(std::move(members));
    }
  }

  Value parse_array() {
    expect('[');
    Array items;
    skip_ws();
    if (consume(']')) return Value(std::move(items));
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return Value(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
            }
          }
          // Basic-plane code point to UTF-8 (our writers only escape
          // control characters, so surrogate pairs never occur).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    const bool negative = consume('-');
    bool integral = true;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      if (!std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        integral = false;
      }
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    // Integer literals take an exact int64/uint64 path: seeds and FNV-1a
    // digests are 64-bit and a double round-trip silently corrupts them
    // above 2^53. Out-of-range integers fall through to the double path.
    if (integral && pos_ > start + (negative ? 1u : 0u)) {
      const char* first = token.c_str() + (negative ? 1 : 0);
      const char* last = token.c_str() + token.size();
      if (negative) {
        std::int64_t i = 0;
        const auto [ptr, ec] = std::from_chars(token.c_str(), last, i);
        if (ec == std::errc() && ptr == last) return Value(i);
      } else {
        std::uint64_t u = 0;
        const auto [ptr, ec] = std::from_chars(first, last, u);
        if (ec == std::errc() && ptr == last) return Value(u);
      }
    }
    // strtod on a NUL-terminated copy: the same portability choice
    // util/flags.cpp makes (FP std::from_chars is uneven across libstdc++).
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::uint64_t Value::as_u64() const {
  if (kind_ != Kind::kNumber) {
    throw std::runtime_error("json: as_u64 on a non-number value");
  }
  switch (repr_) {
    case NumberRepr::kUint64:
      return uint_;
    case NumberRepr::kInt64:
      if (int_ < 0) throw std::runtime_error("json: as_u64 on a negative value");
      return static_cast<std::uint64_t>(int_);
    case NumberRepr::kDouble:
      break;
  }
  // A double-repr token (fraction/exponent form, or an out-of-range integer
  // literal): accept only values that convert back without loss.
  if (number_ < 0.0 || number_ >= 0x1p64 ||
      number_ != static_cast<double>(static_cast<std::uint64_t>(number_))) {
    throw std::runtime_error("json: number is not an exact uint64");
  }
  return static_cast<std::uint64_t>(number_);
}

std::int64_t Value::as_i64() const {
  if (kind_ != Kind::kNumber) {
    throw std::runtime_error("json: as_i64 on a non-number value");
  }
  switch (repr_) {
    case NumberRepr::kInt64:
      return int_;
    case NumberRepr::kUint64:
      if (uint_ > static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max())) {
        throw std::runtime_error("json: as_i64 overflow");
      }
      return static_cast<std::int64_t>(uint_);
    case NumberRepr::kDouble:
      break;
  }
  if (number_ < -0x1p63 || number_ >= 0x1p63 ||
      number_ != static_cast<double>(static_cast<std::int64_t>(number_))) {
    throw std::runtime_error("json: number is not an exact int64");
  }
  return static_cast<std::int64_t>(number_);
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : *object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string_view Value::kind_name(Kind kind) {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "unknown";
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace ll::util::json
