#include "util/runner.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <optional>
#include <thread>

#include "util/ring_deque.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>  // _mm_pause
#endif

namespace ll::util {
namespace {

std::atomic<std::uint64_t> g_threads_created{0};

/// One spin-loop breath: tells the core we are busy-waiting so it yields
/// pipeline resources to the sibling hyperthread (and saves power).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// Absolute steady_clock ns — the RunnerObserver timestamp base.
inline std::uint64_t observer_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct TaskRunner::Impl {
  /// Concurrently published run() calls (external callers + nested run()
  /// depth). Overflow falls back to inline execution — correct, just
  /// sequential.
  static constexpr std::size_t kMaxBatches = 64;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  /// Idle-escalation bounds: failed scans spin (`cpu_relax`) this many
  /// times, then yield this many times, then suspend on epoch_.wait().
  static constexpr std::size_t kSpinBound = 32;
  static constexpr std::size_t kYieldBound = 8;

  /// One in-flight run() call. Lives on the calling thread's stack; the
  /// hazard-pointer protocol below keeps it safe to scan from workers.
  struct Batch {
    std::vector<std::function<void()>>* tasks = nullptr;
    std::vector<std::exception_ptr> errors;  // per task, disjoint slots
    // Task indices, one deque per worker slot. std::deque because
    // RingDeque is neither movable nor copyable.
    std::deque<RingDeque<std::size_t>> queues;
    // Remaining task count. The release half of each decrement publishes
    // that task's errors[] write; the caller acquire-loads 0 before
    // reading them. notify_all on the last decrement wakes the caller.
    std::atomic<std::size_t> unfinished{0};
  };

  explicit Impl(std::size_t threads) {
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 4;
    }
    slots = threads;
    for (auto& s : batch_slots) s.store(nullptr, std::memory_order_relaxed);
    if (threads > 1) {
      hazards = std::make_unique<std::atomic<const Batch*>[]>(threads - 1);
      for (std::size_t w = 0; w + 1 < threads; ++w) {
        hazards[w].store(nullptr, std::memory_order_relaxed);
      }
      workers.reserve(threads - 1);
      for (std::size_t slot = 1; slot < threads; ++slot) {
        workers.emplace_back([this, slot] { worker_loop(slot); });
        g_threads_created.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  ~Impl() {
    stop.store(true, std::memory_order_release);
    wake_all();
    for (std::thread& t : workers) t.join();
  }

  /// Bumps the wake epoch and wakes one suspended worker. The bump is what
  /// prevents lost wakeups: a worker reads the epoch *before* its final
  /// failed scan, so a publish racing that scan changes the value and its
  /// epoch_.wait() returns immediately.
  void wake_one() noexcept {
    epoch.fetch_add(1, std::memory_order_release);
    epoch.notify_one();
  }

  void wake_all() noexcept {
    epoch.fetch_add(1, std::memory_order_release);
    epoch.notify_all();
  }

  /// Publishes `batch` into a free global slot (kNoSlot when all taken).
  std::size_t claim_slot(Batch* batch) noexcept {
    for (std::size_t i = 0; i < kMaxBatches; ++i) {
      Batch* expected = nullptr;
      if (batch_slots[i].compare_exchange_strong(expected, batch,
                                                 std::memory_order_seq_cst,
                                                 std::memory_order_relaxed)) {
        return i;
      }
    }
    return kNoSlot;
  }

  /// After unpublishing, waits until no worker still pins `batch` — only
  /// then may the caller's stack frame (which owns the batch) unwind. The
  /// window is tiny: a pin outlives unfinished==0 only across an
  /// empty-deque scan or the final decrement+notify.
  void drain_hazards(const Batch* batch) noexcept {
    for (std::size_t w = 0; w + 1 < slots; ++w) {
      while (hazards[w].load(std::memory_order_seq_cst) == batch) {
        cpu_relax();
      }
    }
  }

  void execute(Batch& batch, std::size_t index) {
    std::exception_ptr error;
    try {
      (*batch.tasks)[index]();
    } catch (...) {
      error = std::current_exception();
    }
    if (error) batch.errors[index] = std::move(error);
    stats_executed.fetch_add(1, std::memory_order_relaxed);
    if (batch.unfinished.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      batch.unfinished.notify_all();
    }
  }

  /// Sequential fallback (threads == 1, single-task batches, batch-slot
  /// overflow): same contract — every task runs, lowest-index rethrow.
  void run_inline(std::vector<std::function<void()>>& tasks) {
    std::exception_ptr first;
    for (auto& task : tasks) {
      try {
        task();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
      stats_executed.fetch_add(1, std::memory_order_relaxed);
    }
    if (first) std::rethrow_exception(first);
  }

  /// One thief pass: scan published batches; per batch try the own-slot
  /// deque LIFO, then steal FIFO from the other slots in pseudo-random
  /// order. On success the worker executes the task while its hazard slot
  /// still pins the batch, then clears the pin. Returns false when a full
  /// scan found nothing.
  bool try_run_one(std::size_t slot, std::uint64_t& rng) {
    thieves.fetch_add(1, std::memory_order_acq_rel);
    Batch* found = nullptr;
    std::size_t index = 0;
    std::atomic<const Batch*>& hazard = hazards[slot - 1];
    for (std::size_t i = 0; i < kMaxBatches && !found; ++i) {
      Batch* b = batch_slots[i].load(std::memory_order_acquire);
      if (b == nullptr) continue;
      // Hazard protocol: announce, then revalidate. After the seq_cst
      // announce, any caller that unpublishes this batch will see our pin
      // in drain_hazards and spin until we clear it; if the revalidation
      // fails the batch may already be gone and we must not touch it.
      hazard.store(b, std::memory_order_seq_cst);
      if (batch_slots[i].load(std::memory_order_seq_cst) != b) {
        hazard.store(nullptr, std::memory_order_release);
        continue;
      }
      if (auto idx = b->queues[slot].pop_bottom()) {
        found = b;
        index = *idx;
      } else {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const std::size_t start = static_cast<std::size_t>(rng >> 33) % slots;
        for (std::size_t k = 0; k < slots && !found; ++k) {
          const std::size_t victim = (start + k) % slots;
          if (victim == slot) continue;
          if (auto idx = b->queues[victim].steal_top()) {
            stats_stolen.fetch_add(1, std::memory_order_relaxed);
            if (RunnerObserver* o = observer.load(std::memory_order_acquire)) {
              o->on_steal(slot);
            }
            found = b;
            index = *idx;
          }
        }
      }
      if (!found) hazard.store(nullptr, std::memory_order_release);
    }
    if (!found) {
      thieves.fetch_sub(1, std::memory_order_acq_rel);
      return false;
    }
    actives.fetch_add(1, std::memory_order_relaxed);
    // Leaving thief mode with work in hand: if we were the last thief,
    // wake one sleeper so there is always a scout while work may remain —
    // this is the cascade that fans a fresh batch out to the whole pool
    // from the single wake_one() the publisher paid.
    if (thieves.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      wake_one();
    }
    execute(*found, index);
    hazard.store(nullptr, std::memory_order_release);
    actives.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Worker state machine: scan → (found: execute, reset) | (miss: spin ×
  /// kSpinBound → yield × kYieldBound → suspend on epoch.wait). The epoch
  /// is sampled before each scan, so a publish between sample and wait
  /// makes the wait a no-op.
  void worker_loop(std::size_t slot) {
    std::uint64_t rng = 0x9e3779b97f4a7c15ull * (slot + 1);
    std::size_t spins = 0;
    std::size_t yields = 0;
    for (;;) {
      const std::uint32_t ep = epoch.load(std::memory_order_acquire);
      if (stop.load(std::memory_order_acquire)) return;
      if (try_run_one(slot, rng)) {
        spins = 0;
        yields = 0;
        continue;
      }
      if (spins < kSpinBound) {
        ++spins;
        cpu_relax();
        continue;
      }
      if (yields < kYieldBound) {
        ++yields;
        std::this_thread::yield();
        continue;
      }
      stats_suspensions.fetch_add(1, std::memory_order_relaxed);
      if (RunnerObserver* o = observer.load(std::memory_order_acquire)) {
        const std::uint64_t t0 = observer_now_ns();
        epoch.wait(ep, std::memory_order_acquire);
        o->on_suspend(slot, t0, observer_now_ns());
      } else {
        epoch.wait(ep, std::memory_order_acquire);
      }
      spins = 0;
      yields = 0;
    }
  }

  std::size_t slots = 1;
  std::vector<std::thread> workers;
  // Published batches, scanned lock-free by every worker.
  std::array<std::atomic<Batch*>, kMaxBatches> batch_slots;
  // Per pool worker (index slot-1): the batch it is currently inside.
  std::unique_ptr<std::atomic<const Batch*>[]> hazards;
  std::atomic<bool> stop{false};
  // Sleep/wake epoch (32-bit: futex fast path on Linux).
  alignas(64) std::atomic<std::uint32_t> epoch{0};
  // Global activity census (workers executing / workers scanning).
  alignas(64) std::atomic<std::size_t> actives{0};
  std::atomic<std::size_t> thieves{0};
  // Cumulative scheduler counters (TaskRunner::stats()).
  alignas(64) std::atomic<std::uint64_t> stats_executed{0};
  std::atomic<std::uint64_t> stats_stolen{0};
  std::atomic<std::uint64_t> stats_suspensions{0};
  // Attached scheduler observer (nullptr = detached). Release store in
  // set_observer pairs with the acquire loads at the call sites.
  std::atomic<RunnerObserver*> observer{nullptr};

  /// The scheduling core of TaskRunner::run() (the public wrapper adds the
  /// observer's batch bracket).
  void run_batch(std::vector<std::function<void()>>& tasks) {
    if (slots == 1 || tasks.size() == 1) {
      // Nothing to parallelize: skip publication entirely. Scheduling-only
      // change, so results are identical to the pooled path by contract.
      run_inline(tasks);
      return;
    }

    Batch batch;
    batch.tasks = &tasks;
    batch.errors.resize(tasks.size());
    batch.unfinished.store(tasks.size(), std::memory_order_relaxed);
    // Deal indices round-robin, one fixed-capacity deque per worker slot.
    // All pushes happen before publication, so capacity == the dealt share
    // and push_bottom can never hit a full ring.
    const std::size_t share = (tasks.size() + slots - 1) / slots;
    for (std::size_t s = 0; s < slots; ++s) batch.queues.emplace_back(share);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      (void)batch.queues[i % slots].push_bottom(i);
    }

    const std::size_t claimed = claim_slot(&batch);
    if (claimed == kNoSlot) {
      run_inline(tasks);
      return;
    }
    wake_one();

    // The caller is worker 0: drain the own deque LIFO, then steal the
    // other slots FIFO. A failed full pass means every remaining task is
    // in flight on a pool worker — fall through to the completion wait.
    for (;;) {
      if (auto idx = batch.queues[0].pop_bottom()) {
        execute(batch, *idx);
        continue;
      }
      std::optional<std::size_t> idx;
      for (std::size_t v = 1; v < slots && !idx; ++v) {
        idx = batch.queues[v].steal_top();
      }
      if (!idx) break;
      stats_stolen.fetch_add(1, std::memory_order_relaxed);
      if (RunnerObserver* o = observer.load(std::memory_order_acquire)) {
        o->on_steal(0);
      }
      execute(batch, *idx);
    }
    std::size_t left = batch.unfinished.load(std::memory_order_acquire);
    while (left != 0) {
      batch.unfinished.wait(left, std::memory_order_acquire);
      left = batch.unfinished.load(std::memory_order_acquire);
    }

    // Unpublish, then wait out any worker still scanning this batch before
    // the stack frame that owns it unwinds.
    batch_slots[claimed].store(nullptr, std::memory_order_seq_cst);
    drain_hazards(&batch);

    for (const std::exception_ptr& error : batch.errors) {
      if (error) std::rethrow_exception(error);
    }
  }
};

TaskRunner::TaskRunner(std::size_t threads)
    : impl_(std::make_unique<Impl>(threads)) {}

TaskRunner::~TaskRunner() = default;

std::size_t TaskRunner::thread_count() const { return impl_->slots; }

TaskRunner::Stats TaskRunner::stats() const {
  Stats s;
  s.executed = impl_->stats_executed.load(std::memory_order_relaxed);
  s.stolen = impl_->stats_stolen.load(std::memory_order_relaxed);
  s.suspensions = impl_->stats_suspensions.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t TaskRunner::total_threads_created() {
  return g_threads_created.load(std::memory_order_relaxed);
}

TaskRunner& TaskRunner::shared() {
  static TaskRunner runner;
  return runner;
}

void TaskRunner::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;  // documented no-op: no publication, no wake
  RunnerObserver* obs = impl_->observer.load(std::memory_order_acquire);
  if (!obs) {
    impl_->run_batch(tasks);
    return;
  }
  // Batch bracket: the observer hears about the batch (task count + wall
  // interval) even when a task throws — the span is real work either way.
  const std::size_t count = tasks.size();
  const std::uint64_t t0 = observer_now_ns();
  try {
    impl_->run_batch(tasks);
  } catch (...) {
    obs->on_batch(count, t0, observer_now_ns());
    throw;
  }
  obs->on_batch(count, t0, observer_now_ns());
}

RunnerObserver* TaskRunner::set_observer(RunnerObserver* observer) {
  return impl_->observer.exchange(observer, std::memory_order_acq_rel);
}

}  // namespace ll::util
