#include "util/runner.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace ll::util {
namespace {

std::atomic<std::uint64_t> g_threads_created{0};

}  // namespace

struct TaskRunner::Impl {
  /// One in-flight run() call. Lives on the calling thread's stack; the
  /// runner's mutex guards every field.
  struct Batch {
    std::vector<std::function<void()>>* tasks = nullptr;
    std::vector<std::deque<std::size_t>> queues;  // task indices, per slot
    std::vector<std::exception_ptr> errors;       // per task
    std::size_t unfinished = 0;
  };

  explicit Impl(std::size_t threads) {
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 4;
    }
    slots = threads;
    workers.reserve(threads - 1);
    for (std::size_t slot = 1; slot < threads; ++slot) {
      workers.emplace_back([this, slot] { worker_loop(slot); });
      g_threads_created.fetch_add(1, std::memory_order_relaxed);
    }
  }

  ~Impl() {
    {
      std::scoped_lock lock(mu);
      stop = true;
    }
    work_cv.notify_all();
    for (std::thread& t : workers) t.join();
  }

  /// Pops one task of `batch` (own deque first, then steals from the back
  /// of the fullest other deque). Caller must hold `mu`.
  static bool pop_task(Batch& batch, std::size_t slot, std::size_t& index) {
    std::deque<std::size_t>& own = batch.queues[slot % batch.queues.size()];
    if (!own.empty()) {
      index = own.front();
      own.pop_front();
      return true;
    }
    std::deque<std::size_t>* victim = nullptr;
    for (std::deque<std::size_t>& q : batch.queues) {
      if (!q.empty() && (!victim || q.size() > victim->size())) victim = &q;
    }
    if (!victim) return false;
    index = victim->back();
    victim->pop_back();
    return true;
  }

  /// Finds a runnable task in any active batch. Caller must hold `mu`.
  bool next_task(std::size_t slot, Batch*& batch, std::size_t& index) {
    for (Batch* b : batches) {
      if (pop_task(*b, slot, index)) {
        batch = b;
        return true;
      }
    }
    return false;
  }

  void execute(std::unique_lock<std::mutex>& lock, Batch& batch,
               std::size_t index) {
    lock.unlock();
    std::exception_ptr error;
    try {
      (*batch.tasks)[index]();
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    batch.errors[index] = error;
    if (--batch.unfinished == 0) done_cv.notify_all();
  }

  void worker_loop(std::size_t slot) {
    std::unique_lock lock(mu);
    for (;;) {
      Batch* batch = nullptr;
      std::size_t index = 0;
      work_cv.wait(lock, [&] { return stop || next_task(slot, batch, index); });
      if (batch == nullptr) {
        if (stop) return;
        continue;
      }
      execute(lock, *batch, index);
    }
  }

  std::size_t slots = 1;
  std::vector<std::thread> workers;
  std::mutex mu;
  std::condition_variable work_cv;  // workers: new tasks or shutdown
  std::condition_variable done_cv;  // run() callers: batch drained
  std::vector<Batch*> batches;      // active run() calls, FIFO
  bool stop = false;
};

TaskRunner::TaskRunner(std::size_t threads)
    : impl_(std::make_unique<Impl>(threads)) {}

TaskRunner::~TaskRunner() = default;

std::size_t TaskRunner::thread_count() const { return impl_->slots; }

std::uint64_t TaskRunner::total_threads_created() {
  return g_threads_created.load(std::memory_order_relaxed);
}

TaskRunner& TaskRunner::shared() {
  static TaskRunner runner;
  return runner;
}

void TaskRunner::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  Impl::Batch batch;
  batch.tasks = &tasks;
  batch.errors.resize(tasks.size());
  batch.unfinished = tasks.size();
  batch.queues.resize(impl_->slots);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    batch.queues[i % impl_->slots].push_back(i);
  }

  std::unique_lock lock(impl_->mu);
  impl_->batches.push_back(&batch);
  impl_->work_cv.notify_all();
  // The caller is worker 0: drain this batch (stealing included), then wait
  // for tasks other workers still hold in flight.
  std::size_t index = 0;
  while (Impl::pop_task(batch, 0, index)) impl_->execute(lock, batch, index);
  impl_->done_cv.wait(lock, [&] { return batch.unfinished == 0; });
  std::erase(impl_->batches, &batch);
  lock.unlock();

  for (const std::exception_ptr& error : batch.errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace ll::util
