#pragma once

/// \file ascii_chart.hpp
/// Terminal line charts for the bench binaries: the paper's figures are
/// curves, and a shape is easier to judge as a picture than as a column of
/// numbers. Pure text, no dependencies; series are plotted on a shared
/// y-axis with per-series glyphs and a legend.

#include <limits>
#include <string>
#include <vector>

namespace ll::util {

/// One named series of (x, y) points. x values need not be uniform; points
/// are mapped linearly onto the canvas.
struct ChartSeries {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

struct ChartOptions {
  std::size_t width = 64;   // plot columns (excluding the y-axis labels)
  std::size_t height = 16;  // plot rows
  std::string x_label;
  std::string y_label;
  /// Force the y range; NaN = auto from the data.
  double y_min = std::numeric_limits<double>::quiet_NaN();
  double y_max = std::numeric_limits<double>::quiet_NaN();
};

/// Renders the chart. Glyphs cycle through "*+ox#@" per series; collisions
/// show the later series' glyph. Throws std::invalid_argument on empty or
/// inconsistent series.
[[nodiscard]] std::string render_chart(const std::vector<ChartSeries>& series,
                                       const ChartOptions& options = {});

}  // namespace ll::util
