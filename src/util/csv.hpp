#pragma once

/// \file csv.hpp
/// Tiny CSV writer. Benches optionally dump their series as CSV (via
/// --csv=<path>) so figures can be re-plotted outside the harness.

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace ll::util {

/// Writes rows of comma-separated values with RFC-4180 quoting.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error on
  /// failure. An empty path produces a disabled writer whose writes are no-ops
  /// — callers can unconditionally call row() behind a --csv flag.
  explicit CsvWriter(const std::string& path);

  [[nodiscard]] bool enabled() const { return out_.is_open(); }

  void row(const std::vector<std::string>& cells);
  void row(std::initializer_list<std::string_view> cells);

  /// Escapes a single cell per RFC 4180 (quotes when it contains , " or \n).
  [[nodiscard]] static std::string escape(std::string_view cell);

 private:
  std::ofstream out_;
};

}  // namespace ll::util
