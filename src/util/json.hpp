#pragma once

/// \file json.hpp
/// Minimal recursive-descent JSON reader.
///
/// The observability layer emits run manifests and metric snapshots as JSON
/// (src/obs/); the tests and the CI manifest validator (tools/llmanifest)
/// need to read that JSON back without adding a dependency. This is a
/// strict, small parser for that closed loop — it accepts exactly the
/// subset our writers produce (RFC 8259 minus \uXXXX surrogate pairs, which
/// our writers never emit; lone \uXXXX escapes decode to UTF-8).
///
/// Objects preserve insertion order (vector of pairs), matching the
/// determinism contract of every serializer in this repo.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ll::util::json {

class Value;

using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() = default;
  explicit Value(std::nullptr_t) {}
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double d) : kind_(Kind::kNumber), number_(d) {}
  explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit Value(Array a)
      : kind_(Kind::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : kind_(Kind::kObject), object_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const Array& as_array() const { return *array_; }
  [[nodiscard]] const Object& as_object() const { return *object_; }

  /// Object member lookup by key; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Human name of a kind ("object", "number", ...), for error messages.
  [[nodiscard]] static std::string_view kind_name(Kind kind);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws std::runtime_error with a byte offset on
/// malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// Escapes a string for embedding in JSON output (quotes not included).
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace ll::util::json
