#pragma once

/// \file json.hpp
/// Minimal recursive-descent JSON reader.
///
/// The observability layer emits run manifests and metric snapshots as JSON
/// (src/obs/); the tests and the CI manifest validator (tools/llmanifest)
/// need to read that JSON back without adding a dependency. This is a
/// strict, small parser for that closed loop — it accepts exactly the
/// subset our writers produce (RFC 8259 minus \uXXXX surrogate pairs, which
/// our writers never emit; lone \uXXXX escapes decode to UTF-8).
///
/// Objects preserve insertion order (vector of pairs), matching the
/// determinism contract of every serializer in this repo.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ll::util::json {

class Value;

using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() = default;
  explicit Value(std::nullptr_t) {}
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double d) : kind_(Kind::kNumber), number_(d) {}
  explicit Value(std::int64_t i)
      : kind_(Kind::kNumber),
        repr_(NumberRepr::kInt64),
        number_(static_cast<double>(i)),
        int_(i) {}
  explicit Value(std::uint64_t u)
      : kind_(Kind::kNumber),
        repr_(NumberRepr::kUint64),
        number_(static_cast<double>(u)),
        uint_(u) {}
  explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit Value(Array a)
      : kind_(Kind::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : kind_(Kind::kObject), object_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool as_bool() const { return bool_; }
  /// Number as double. Integral tokens above 2^53 lose precision through
  /// this accessor — callers that care use as_u64/as_i64 instead.
  [[nodiscard]] double as_number() const { return number_; }
  /// True when the token was an exact integer literal (no '.', exponent or
  /// overflow), so as_u64/as_i64 can return it without precision loss.
  [[nodiscard]] bool is_integer() const { return repr_ != NumberRepr::kDouble; }
  /// Exact unsigned 64-bit value. Throws std::runtime_error when the value
  /// is negative, fractional, or was not representable as an integer —
  /// the accessor FNV-1a digests and seeds must go through (a double
  /// round-trip silently corrupts them above 2^53).
  [[nodiscard]] std::uint64_t as_u64() const;
  /// Exact signed 64-bit value; throws like as_u64 on range/kind mismatch.
  [[nodiscard]] std::int64_t as_i64() const;
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const Array& as_array() const { return *array_; }
  [[nodiscard]] const Object& as_object() const { return *object_; }

  /// Object member lookup by key; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Human name of a kind ("object", "number", ...), for error messages.
  [[nodiscard]] static std::string_view kind_name(Kind kind);

 private:
  enum class NumberRepr { kDouble, kInt64, kUint64 };

  Kind kind_ = Kind::kNull;
  NumberRepr repr_ = NumberRepr::kDouble;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws std::runtime_error with a byte offset on
/// malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// Escapes a string for embedding in JSON output (quotes not included).
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace ll::util::json
