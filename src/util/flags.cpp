#include "util/flags.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace ll::util {
namespace {

std::int64_t parse_int(std::string_view name, std::string_view text) {
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("flag --" + std::string(name) +
                                ": expected integer, got '" + std::string(text) + "'");
  }
  return value;
}

std::uint64_t parse_uint(std::string_view name, std::string_view text) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("flag --" + std::string(name) +
                                ": expected unsigned integer, got '" +
                                std::string(text) + "'");
  }
  return value;
}

double parse_double(std::string_view name, std::string_view text) {
  // std::from_chars for double is unreliable across libstdc++ versions for
  // every format; strtod on a NUL-terminated copy is portable and exact.
  // strtod itself is more permissive than a flag should be: it skips
  // leading whitespace and accepts "nan"/"inf"/overflowing exponents.
  // Config values must be plain finite numbers, so reject all of those.
  std::string copy(text);
  const auto bad = [&]() -> std::invalid_argument {
    return std::invalid_argument("flag --" + std::string(name) +
                                 ": expected finite number, got '" + copy +
                                 "'");
  };
  if (copy.empty() ||
      std::isspace(static_cast<unsigned char>(copy.front()))) {
    throw bad();
  }
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) throw bad();     // trailing garbage
  if (errno == ERANGE && !std::isfinite(value)) throw bad();  // overflow
  if (!std::isfinite(value)) throw bad();                 // "nan", "inf"
  return value;
}

bool parse_bool(std::string_view name, std::string_view text) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") return true;
  if (text == "false" || text == "0" || text == "no" || text == "off") return false;
  throw std::invalid_argument("flag --" + std::string(name) +
                              ": expected boolean, got '" + std::string(text) + "'");
}

}  // namespace

Flags::Flags(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

Flags::Entry& Flags::add_entry(std::string_view name, std::string_view help,
                               std::string default_repr, bool is_bool) {
  auto [it, inserted] = entries_.try_emplace(std::string(name));
  if (!inserted) {
    throw std::logic_error("duplicate flag --" + std::string(name));
  }
  it->second.help = std::string(help);
  it->second.default_repr = std::move(default_repr);
  it->second.is_bool = is_bool;
  return it->second;
}

Flags::Handle<std::int64_t> Flags::add_int(std::string_view name, std::int64_t def,
                                           std::string_view help) {
  auto& slot = ints_.emplace_back(std::make_unique<std::int64_t>(def));
  std::int64_t* value = slot.get();
  add_entry(name, help, std::to_string(def), /*is_bool=*/false).apply =
      [value, name = std::string(name)](std::string_view text) {
        *value = parse_int(name, text);
      };
  return Handle<std::int64_t>(value);
}

Flags::Handle<std::uint64_t> Flags::add_uint64(std::string_view name,
                                               std::uint64_t def,
                                               std::string_view help) {
  auto& slot = uints_.emplace_back(std::make_unique<std::uint64_t>(def));
  std::uint64_t* value = slot.get();
  add_entry(name, help, std::to_string(def), /*is_bool=*/false).apply =
      [value, name = std::string(name)](std::string_view text) {
        *value = parse_uint(name, text);
      };
  return Handle<std::uint64_t>(value);
}

Flags::Handle<double> Flags::add_double(std::string_view name, double def,
                                        std::string_view help) {
  auto& slot = doubles_.emplace_back(std::make_unique<double>(def));
  double* value = slot.get();
  std::ostringstream repr;
  repr << def;
  add_entry(name, help, repr.str(), /*is_bool=*/false).apply =
      [value, name = std::string(name)](std::string_view text) {
        *value = parse_double(name, text);
      };
  return Handle<double>(value);
}

Flags::Handle<bool> Flags::add_bool(std::string_view name, bool def,
                                    std::string_view help) {
  auto& slot = bools_.emplace_back(std::make_unique<bool>(def));
  bool* value = slot.get();
  add_entry(name, help, def ? "true" : "false", /*is_bool=*/true).apply =
      [value, name = std::string(name)](std::string_view text) {
        *value = parse_bool(name, text);
      };
  return Handle<bool>(value);
}

Flags::Handle<std::string> Flags::add_string(std::string_view name,
                                             std::string_view def,
                                             std::string_view help) {
  auto& slot = strings_.emplace_back(std::make_unique<std::string>(def));
  std::string* value = slot.get();
  add_entry(name, help, "'" + std::string(def) + "'", /*is_bool=*/false).apply =
      [value](std::string_view text) { *value = std::string(text); };
  return Handle<std::string>(value);
}

void Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      std::exit(0);
    }
    if (!arg.starts_with("--")) {
      throw std::invalid_argument("unexpected positional argument '" +
                                  std::string(arg) + "'");
    }
    arg.remove_prefix(2);

    std::string_view name = arg;
    std::optional<std::string_view> value;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }

    // --no-foo for booleans.
    bool negated = false;
    auto it = entries_.find(name);
    if (it == entries_.end() && name.starts_with("no-")) {
      auto positive = entries_.find(name.substr(3));
      if (positive != entries_.end() && positive->second.is_bool) {
        it = positive;
        negated = true;
      }
    }
    if (it == entries_.end()) {
      throw std::invalid_argument("unknown flag --" + std::string(name) + "\n" +
                                  usage());
    }

    Entry& entry = it->second;
    if (negated) {
      if (value) {
        throw std::invalid_argument("--no-" + it->first + " takes no value");
      }
      entry.apply("false");
      continue;
    }
    if (entry.is_bool && !value) {
      entry.apply("true");
      continue;
    }
    if (!value) {
      if (i + 1 >= argc) {
        throw std::invalid_argument("flag --" + std::string(name) +
                                    " expects a value");
      }
      value = argv[++i];
    }
    entry.apply(*value);
  }
}

std::string Flags::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, entry] : entries_) {
    out << "  --" << name << "  (default " << entry.default_repr << ")\n      "
        << entry.help << "\n";
  }
  return out.str();
}

}  // namespace ll::util
