#pragma once

/// \file flags.hpp
/// Minimal command-line flag parser shared by benches and examples.
///
/// Flags are registered before parse() and take the forms
///   --name=value   --name value   --bool-flag   --no-bool-flag
/// Unknown flags are an error (benches should never silently ignore a
/// misspelled parameter sweep). `--help` prints the registry and exits.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ll::util {

/// A registry of typed command-line flags.
///
/// Usage:
///   Flags flags("fig07_cluster_table", "Reproduces the paper's Figure 7.");
///   auto seed  = flags.add_uint64("seed", 42, "master RNG seed");
///   auto nodes = flags.add_int("nodes", 64, "cluster size");
///   flags.parse(argc, argv);
///   run(*seed, *nodes);
class Flags {
 public:
  Flags(std::string program, std::string description);

  /// Registered flag handle; dereference after parse() for the final value.
  template <typename T>
  class Handle {
   public:
    explicit Handle(const T* value) : value_(value) {}
    const T& operator*() const { return *value_; }
    const T* operator->() const { return value_; }

   private:
    const T* value_;
  };

  Handle<std::int64_t> add_int(std::string_view name, std::int64_t def,
                               std::string_view help);
  Handle<std::uint64_t> add_uint64(std::string_view name, std::uint64_t def,
                                   std::string_view help);
  Handle<double> add_double(std::string_view name, double def,
                            std::string_view help);
  Handle<bool> add_bool(std::string_view name, bool def, std::string_view help);
  Handle<std::string> add_string(std::string_view name, std::string_view def,
                                 std::string_view help);

  /// Parses argv. On `--help` prints usage and std::exit(0). Throws
  /// std::invalid_argument on unknown flags or malformed values.
  void parse(int argc, const char* const* argv);

  /// Renders the usage/help text.
  [[nodiscard]] std::string usage() const;

 private:
  struct Entry {
    std::string help;
    std::string default_repr;
    bool is_bool = false;
    // Applies a textual value to the typed storage; throws on parse failure.
    std::function<void(std::string_view)> apply;
  };

  Entry& add_entry(std::string_view name, std::string_view help,
                   std::string default_repr, bool is_bool);

  std::string program_;
  std::string description_;
  std::map<std::string, Entry, std::less<>> entries_;
  // Typed storage. std::map nodes are pointer-stable, and these are deques of
  // values so Handle pointers stay valid as more flags are added.
  std::vector<std::unique_ptr<std::int64_t>> ints_;
  std::vector<std::unique_ptr<std::uint64_t>> uints_;
  std::vector<std::unique_ptr<double>> doubles_;
  std::vector<std::unique_ptr<bool>> bools_;
  std::vector<std::unique_ptr<std::string>> strings_;
};

}  // namespace ll::util
