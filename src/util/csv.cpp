#include "util/csv.hpp"

#include <stdexcept>

namespace ll::util {

CsvWriter::CsvWriter(const std::string& path) {
  if (path.empty()) return;
  out_.open(path, std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open '" + path + "'");
  }
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (!enabled()) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<std::string_view> cells) {
  if (!enabled()) return;
  bool first = true;
  for (std::string_view cell : cells) {
    if (!first) out_ << ',';
    first = false;
    out_ << escape(cell);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(std::string_view cell) {
  bool needs_quotes = cell.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace ll::util
