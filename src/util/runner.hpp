#pragma once

/// \file runner.hpp
/// Lock-free work-stealing task runner — the execution substrate of the
/// experiment engine (src/exp) and of cluster::replicate.
///
/// A TaskRunner owns a fixed set of worker threads. run() executes a batch
/// of independent tasks to completion with the *calling thread
/// participating as a worker*, so a runner with `threads == 1` spawns no
/// background threads at all and a process never holds more than
/// `threads - 1` pool threads regardless of how many batches it runs.
///
/// Scheduling is work-stealing over per-worker fixed-capacity lock-free
/// ring deques (util/ring_deque.hpp, Chase–Lev): the batch's task indices
/// are dealt round-robin into one deque per worker; each worker drains its
/// own deque LIFO (cache-hot work stays local) and, when empty, steals FIFO
/// from the others. There is no mutex anywhere on the per-task path — pop,
/// steal, completion accounting and sleep/wake are all atomics. Idle
/// workers escalate `_mm_pause` relax loops into `std::this_thread::yield`
/// and finally suspend on C++20 `std::atomic::wait`; publishing a batch
/// wakes exactly one sleeping thief, and each thief that acquires work
/// wakes the next (global actives/thieves counters drive the cascade), so
/// idle workers cost no CPU while wake-up latency stays one hop.
///
/// Determinism contract (unchanged from the mutex-era runner): tasks must
/// write to disjoint, pre-allocated result slots and must not read shared
/// mutable state — then the batch's combined result is bit-identical for
/// every thread count, because scheduling only changes *when* a task runs,
/// never *what* it computes.
///
/// Edge cases, pinned by tests:
///   - run({}) is a no-op: no publication, no wake-up, returns immediately.
///   - threads > tasks: the surplus workers find nothing to steal and
///     suspend on atomic::wait — they do not spin (bench/micro_steal.cpp
///     asserts the process CPU-time bound).
///
/// Exception safety: a throwing task never deadlocks or leaks the batch.
/// Remaining tasks still run; after the batch drains, run() rethrows the
/// pending exception with the smallest task index (deterministic choice).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace ll::util {

class TaskRunner {
 public:
  /// Scheduler counters, process-lifetime cumulative for this runner.
  /// Monitoring only — values are racy snapshots of relaxed atomics.
  struct Stats {
    std::uint64_t executed = 0;     ///< tasks run to completion
    std::uint64_t stolen = 0;       ///< tasks acquired via steal_top
    std::uint64_t suspensions = 0;  ///< worker atomic::wait suspensions
  };

  /// `threads == 0` selects std::thread::hardware_concurrency(). The caller
  /// counts as one worker, so `threads - 1` background threads are started.
  explicit TaskRunner(std::size_t threads = 0);
  ~TaskRunner();
  TaskRunner(const TaskRunner&) = delete;
  TaskRunner& operator=(const TaskRunner&) = delete;

  /// Runs every task to completion, then returns (or rethrows the
  /// lowest-index task exception). Reentrant: a task may itself call run()
  /// on the same runner — the inner batch is drained by the calling worker
  /// (with the pool stealing from it), so nesting cannot deadlock. Safe to
  /// call concurrently from multiple external threads.
  void run(std::vector<std::function<void()>> tasks);

  /// Worker count including the participating caller.
  [[nodiscard]] std::size_t thread_count() const;

  /// Cumulative scheduler counters (see Stats).
  [[nodiscard]] Stats stats() const;

  /// Background threads ever started by any TaskRunner in this process —
  /// the probe bench/micro_runner.cpp uses to verify the N+constant bound.
  [[nodiscard]] static std::uint64_t total_threads_created();

  /// Process-wide shared runner at hardware concurrency. Used by
  /// cluster::replicate and as the engine default, so concurrent sweeps
  /// share one bounded pool instead of multiplying threads.
  static TaskRunner& shared();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ll::util
