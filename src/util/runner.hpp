#pragma once

/// \file runner.hpp
/// Lock-free work-stealing task runner — the execution substrate of the
/// experiment engine (src/exp) and of cluster::replicate.
///
/// A TaskRunner owns a fixed set of worker threads. run() executes a batch
/// of independent tasks to completion with the *calling thread
/// participating as a worker*, so a runner with `threads == 1` spawns no
/// background threads at all and a process never holds more than
/// `threads - 1` pool threads regardless of how many batches it runs.
///
/// Scheduling is work-stealing over per-worker fixed-capacity lock-free
/// ring deques (util/ring_deque.hpp, Chase–Lev): the batch's task indices
/// are dealt round-robin into one deque per worker; each worker drains its
/// own deque LIFO (cache-hot work stays local) and, when empty, steals FIFO
/// from the others. There is no mutex anywhere on the per-task path — pop,
/// steal, completion accounting and sleep/wake are all atomics. Idle
/// workers escalate `_mm_pause` relax loops into `std::this_thread::yield`
/// and finally suspend on C++20 `std::atomic::wait`; publishing a batch
/// wakes exactly one sleeping thief, and each thief that acquires work
/// wakes the next (global actives/thieves counters drive the cascade), so
/// idle workers cost no CPU while wake-up latency stays one hop.
///
/// Determinism contract (unchanged from the mutex-era runner): tasks must
/// write to disjoint, pre-allocated result slots and must not read shared
/// mutable state — then the batch's combined result is bit-identical for
/// every thread count, because scheduling only changes *when* a task runs,
/// never *what* it computes.
///
/// Edge cases, pinned by tests:
///   - run({}) is a no-op: no publication, no wake-up, returns immediately.
///   - threads > tasks: the surplus workers find nothing to steal and
///     suspend on atomic::wait — they do not spin (bench/micro_steal.cpp
///     asserts the process CPU-time bound).
///
/// Exception safety: a throwing task never deadlocks or leaks the batch.
/// Remaining tasks still run; after the batch drains, run() rethrows the
/// pending exception with the smallest task index (deterministic choice).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace ll::util {

/// Passive observer of scheduler activity, the hook behind the tracer's
/// runner spans (obs::RunnerTraceAdapter — util is the bottom layer and
/// cannot see obs::, so the interface lives here). Timestamps are absolute
/// steady_clock nanoseconds (time_since_epoch), convertible by the
/// consumer to whatever base it uses.
///
/// Contract: callbacks fire on arbitrary threads (pool workers and every
/// run() caller) and must be thread-safe, cheap, and non-blocking. Every
/// call site is null-guarded, so a detached runner pays only a relaxed
/// atomic load; the timestamp reads happen only when an observer is
/// attached. The observer must outlive its attachment — detach with
/// set_observer(nullptr) (or destroy the runner) before destroying it,
/// and before reading any state the callbacks write from other threads.
class RunnerObserver {
 public:
  virtual ~RunnerObserver() = default;
  /// One run() batch completed (including inline fallbacks): `tasks` tasks
  /// over wall interval [t0_ns, t1_ns]. Fires on the calling thread, after
  /// every task finished (also when the batch rethrows).
  virtual void on_batch(std::size_t tasks, std::uint64_t t0_ns,
                        std::uint64_t t1_ns) = 0;
  /// A task was acquired via steal_top by worker `slot` (0 = a caller).
  virtual void on_steal(std::size_t slot) = 0;
  /// Pool worker `slot` suspended on atomic::wait for [t0_ns, t1_ns].
  virtual void on_suspend(std::size_t slot, std::uint64_t t0_ns,
                          std::uint64_t t1_ns) = 0;
};

class TaskRunner {
 public:
  /// Scheduler counters, process-lifetime cumulative for this runner.
  /// Monitoring only — values are racy snapshots of relaxed atomics.
  struct Stats {
    std::uint64_t executed = 0;     ///< tasks run to completion
    std::uint64_t stolen = 0;       ///< tasks acquired via steal_top
    std::uint64_t suspensions = 0;  ///< worker atomic::wait suspensions
  };

  /// `threads == 0` selects std::thread::hardware_concurrency(). The caller
  /// counts as one worker, so `threads - 1` background threads are started.
  explicit TaskRunner(std::size_t threads = 0);
  ~TaskRunner();
  TaskRunner(const TaskRunner&) = delete;
  TaskRunner& operator=(const TaskRunner&) = delete;

  /// Runs every task to completion, then returns (or rethrows the
  /// lowest-index task exception). Reentrant: a task may itself call run()
  /// on the same runner — the inner batch is drained by the calling worker
  /// (with the pool stealing from it), so nesting cannot deadlock. Safe to
  /// call concurrently from multiple external threads.
  void run(std::vector<std::function<void()>> tasks);

  /// Worker count including the participating caller.
  [[nodiscard]] std::size_t thread_count() const;

  /// Cumulative scheduler counters (see Stats).
  [[nodiscard]] Stats stats() const;

  /// Attaches a scheduler observer (nullptr detaches). Returns the
  /// previous observer. See RunnerObserver for the threading contract.
  RunnerObserver* set_observer(RunnerObserver* observer);

  /// Background threads ever started by any TaskRunner in this process —
  /// the probe bench/micro_runner.cpp uses to verify the N+constant bound.
  [[nodiscard]] static std::uint64_t total_threads_created();

  /// Process-wide shared runner at hardware concurrency. Used by
  /// cluster::replicate and as the engine default, so concurrent sweeps
  /// share one bounded pool instead of multiplying threads.
  static TaskRunner& shared();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ll::util
