#pragma once

/// \file runner.hpp
/// Bounded work-stealing task runner — the execution substrate of the
/// experiment engine (src/exp) and of cluster::replicate.
///
/// A TaskRunner owns a fixed set of worker threads. run() executes a batch
/// of independent tasks to completion with the *calling thread
/// participating as a worker*, so a runner with `threads == 1` spawns no
/// background threads at all and a process never holds more than
/// `threads - 1` pool threads regardless of how many batches it runs —
/// replacing the thread-per-replication std::async pattern whose thread
/// count grew with the replication count.
///
/// Scheduling is work-stealing: the batch's task indices are dealt
/// round-robin into one deque per worker; each worker drains its own deque
/// from the front and, when empty, steals from the back of the others.
/// Determinism contract: tasks must write to disjoint, pre-allocated result
/// slots and must not read shared mutable state — then the batch's combined
/// result is bit-identical for every thread count, because scheduling only
/// changes *when* a task runs, never *what* it computes.
///
/// Exception safety: a throwing task never deadlocks or leaks the batch.
/// Remaining tasks still run; after the batch drains, run() rethrows the
/// pending exception with the smallest task index (deterministic choice).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace ll::util {

class TaskRunner {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency(). The caller
  /// counts as one worker, so `threads - 1` background threads are started.
  explicit TaskRunner(std::size_t threads = 0);
  ~TaskRunner();
  TaskRunner(const TaskRunner&) = delete;
  TaskRunner& operator=(const TaskRunner&) = delete;

  /// Runs every task to completion, then returns (or rethrows the
  /// lowest-index task exception). Reentrant: a task may itself call run()
  /// on the same runner — the inner batch is drained by the calling worker,
  /// so nesting cannot deadlock.
  void run(std::vector<std::function<void()>> tasks);

  /// Worker count including the participating caller.
  [[nodiscard]] std::size_t thread_count() const;

  /// Background threads ever started by any TaskRunner in this process —
  /// the probe bench/micro_runner.cpp uses to verify the N+constant bound.
  [[nodiscard]] static std::uint64_t total_threads_created();

  /// Process-wide shared runner at hardware concurrency. Used by
  /// cluster::replicate and as the engine default, so concurrent sweeps
  /// share one bounded pool instead of multiplying threads.
  static TaskRunner& shared();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ll::util
