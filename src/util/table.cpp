#include "util/table.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace ll::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table requires at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > header_.size()) {
    throw std::invalid_argument("row has more cells than header columns");
  }
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), /*separator=*/false});
}

void Table::add_separator() { rows_.push_back(Row{{}, /*separator=*/true}); }

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  auto emit_line = [&](std::ostringstream& out, const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << cells[c] << std::string(width[c] - cells[c].size(), ' ');
    }
    out << " |\n";
  };
  auto emit_separator = [&](std::ostringstream& out) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      out << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
    }
    out << "-|\n";
  };

  std::ostringstream out;
  emit_line(out, header_);
  emit_separator(out);
  for (const Row& row : rows_) {
    if (row.separator) {
      emit_separator(out);
    } else {
      emit_line(out, row.cells);
    }
  }
  return out.str();
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, fmt, args);
  }
  va_end(args);
  return result;
}

std::string fixed(double value, int digits) {
  return format("%.*f", digits, value);
}

std::string percent(double fraction, int digits) {
  return format("%.*f%%", digits, fraction * 100.0);
}

}  // namespace ll::util
