#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/table.hpp"

namespace ll::util {
namespace {

constexpr char kGlyphs[] = "*+ox#@";
constexpr std::size_t kGlyphCount = sizeof(kGlyphs) - 1;

}  // namespace

std::string render_chart(const std::vector<ChartSeries>& series,
                         const ChartOptions& options) {
  if (series.empty()) {
    throw std::invalid_argument("render_chart: no series");
  }
  if (options.width < 8 || options.height < 4) {
    throw std::invalid_argument("render_chart: canvas too small");
  }
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -std::numeric_limits<double>::infinity();
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
  for (const ChartSeries& s : series) {
    if (s.xs.empty() || s.xs.size() != s.ys.size()) {
      throw std::invalid_argument("render_chart: series '" + s.name +
                                  "' empty or xs/ys size mismatch");
    }
    for (double x : s.xs) {
      // A NaN/inf point would reach lround() below with an unspecified
      // result; name the offending series instead.
      if (!std::isfinite(x)) {
        throw std::invalid_argument("render_chart: series '" + s.name +
                                    "' has a non-finite x value");
      }
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
    }
    for (double y : s.ys) {
      if (!std::isfinite(y)) {
        throw std::invalid_argument("render_chart: series '" + s.name +
                                    "' has a non-finite y value");
      }
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (!std::isnan(options.y_min)) y_min = options.y_min;
  if (!std::isnan(options.y_max)) y_max = options.y_max;
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  std::vector<std::string> canvas(options.height,
                                  std::string(options.width, ' '));
  auto col_of = [&](double x) {
    const double t = (x - x_min) / (x_max - x_min);
    const auto c = static_cast<long>(std::lround(
        t * static_cast<double>(options.width - 1)));
    return static_cast<std::size_t>(std::clamp<long>(
        c, 0, static_cast<long>(options.width) - 1));
  };
  auto row_of = [&](double y) {
    const double t = (y - y_min) / (y_max - y_min);
    const auto r = static_cast<long>(std::lround(
        (1.0 - t) * static_cast<double>(options.height - 1)));
    return static_cast<std::size_t>(std::clamp<long>(
        r, 0, static_cast<long>(options.height) - 1));
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % kGlyphCount];
    const ChartSeries& s = series[si];
    // Mark the sample points, then connect consecutive points with a crude
    // linear interpolation so trends read as lines.
    for (std::size_t i = 0; i + 1 < s.xs.size(); ++i) {
      const std::size_t c0 = col_of(s.xs[i]);
      const std::size_t c1 = col_of(s.xs[i + 1]);
      const std::size_t lo = std::min(c0, c1);
      const std::size_t hi = std::max(c0, c1);
      for (std::size_t c = lo; c <= hi; ++c) {
        const double t = hi == lo ? 0.0
                                  : static_cast<double>(c - lo) /
                                        static_cast<double>(hi - lo);
        const double y = c0 <= c1 ? s.ys[i] + t * (s.ys[i + 1] - s.ys[i])
                                  : s.ys[i + 1] + t * (s.ys[i] - s.ys[i + 1]);
        canvas[row_of(y)][c] = glyph;
      }
    }
    if (s.xs.size() == 1) canvas[row_of(s.ys[0])][col_of(s.xs[0])] = glyph;
  }

  std::ostringstream out;
  if (!options.y_label.empty()) out << options.y_label << "\n";
  const std::string top = format("%.3g", y_max);
  const std::string bottom = format("%.3g", y_min);
  const std::size_t label_width = std::max(top.size(), bottom.size());
  for (std::size_t r = 0; r < options.height; ++r) {
    std::string label;
    if (r == 0) {
      label = top;
    } else if (r == options.height - 1) {
      label = bottom;
    }
    out << std::string(label_width - label.size(), ' ') << label << " |"
        << canvas[r] << "\n";
  }
  out << std::string(label_width + 1, ' ') << '+'
      << std::string(options.width, '-') << "\n";
  // X-axis end labels.
  const std::string x_lo = format("%.3g", x_min);
  const std::string x_hi = format("%.3g", x_max);
  std::string axis(options.width, ' ');
  axis.replace(0, x_lo.size(), x_lo);
  if (x_hi.size() <= axis.size()) {
    axis.replace(axis.size() - x_hi.size(), x_hi.size(), x_hi);
  }
  out << std::string(label_width + 2, ' ') << axis;
  if (!options.x_label.empty()) out << "  " << options.x_label;
  out << "\n";
  // Legend.
  out << std::string(label_width + 2, ' ');
  for (std::size_t si = 0; si < series.size(); ++si) {
    if (si != 0) out << "   ";
    out << kGlyphs[si % kGlyphCount] << " " << series[si].name;
  }
  out << "\n";
  return out.str();
}

}  // namespace ll::util
