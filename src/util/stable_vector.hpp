#pragma once

/// \file stable_vector.hpp
/// Chunked pool with stable references and index access.
///
/// The cluster simulators grow their job tables from inside engine
/// callbacks: a completion handler may submit a replacement job while
/// earlier records are still referenced by live engine frames. std::vector
/// invalidates on growth; std::deque keeps references stable but allocates
/// tiny type-erased blocks (512 bytes in libstdc++ — a handful of JobRecords
/// each) and walks a two-level map per access. StableVector is the shape
/// the access pattern wants: fixed power-of-two chunks of ChunkSize
/// elements, so push_back never moves existing elements (references and
/// pointers stay valid for the container's lifetime), indexing is a shift,
/// a mask, and two loads, and a chunk is one contiguous cache-friendly run
/// for the scan-heavy consumers (state breakdowns, job logs, digests).
///
/// Growth-only by design: no erase, no insert — ids are stable indexes.
/// clear() keeps allocated chunks for reuse (the pool allocator part).

#include <cstddef>
#include <iterator>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace ll::util {

template <typename T, std::size_t ChunkSize = 256>
class StableVector {
  static_assert(ChunkSize > 0 && (ChunkSize & (ChunkSize - 1)) == 0,
                "ChunkSize must be a power of two");
  static_assert(std::is_default_constructible_v<T>,
                "StableVector slots are default-constructed per chunk");

 public:
  StableVector() = default;
  StableVector(StableVector&&) noexcept = default;
  StableVector& operator=(StableVector&&) noexcept = default;
  StableVector(const StableVector& other) { *this = other; }
  StableVector& operator=(const StableVector& other) {
    if (this == &other) return *this;
    clear();
    for (const T& value : other) push_back(value);
    return *this;
  }

  /// Appends a copy/move of `value`; returns the stable slot reference.
  T& push_back(T value) { return emplace_back(std::move(value)); }

  /// Appends a `T` constructed from `args`; returns the stable reference.
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    const std::size_t chunk = size_ >> kShift;
    if (chunk == chunks_.size()) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    T& slot = chunks_[chunk]->items[size_ & kMask];
    slot = T(std::forward<Args>(args)...);
    ++size_;
    return slot;
  }

  [[nodiscard]] T& operator[](std::size_t index) {
    return chunks_[index >> kShift]->items[index & kMask];
  }
  [[nodiscard]] const T& operator[](std::size_t index) const {
    return chunks_[index >> kShift]->items[index & kMask];
  }

  [[nodiscard]] T& front() { return (*this)[0]; }
  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] T& back() { return (*this)[size_ - 1]; }
  [[nodiscard]] const T& back() const { return (*this)[size_ - 1]; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Drops the elements but keeps the chunks: a cleared StableVector refills
  /// without touching the allocator (slots are overwritten by assignment).
  void clear() { size_ = 0; }

  template <bool Const>
  class Iterator {
    using Owner = std::conditional_t<Const, const StableVector, StableVector>;

   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using reference = std::conditional_t<Const, const T&, T&>;
    using pointer = std::conditional_t<Const, const T*, T*>;

    Iterator() = default;
    Iterator(Owner* owner, std::size_t index) : owner_(owner), index_(index) {}
    /// iterator -> const_iterator conversion.
    template <bool WasConst, typename = std::enable_if_t<Const && !WasConst>>
    Iterator(const Iterator<WasConst>& other)  // NOLINT
        : owner_(other.owner_), index_(other.index_) {}

    reference operator*() const { return (*owner_)[index_]; }
    pointer operator->() const { return &(*owner_)[index_]; }
    Iterator& operator++() {
      ++index_;
      return *this;
    }
    Iterator operator++(int) {
      Iterator copy = *this;
      ++index_;
      return copy;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.index_ == b.index_;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return a.index_ != b.index_;
    }

   private:
    friend class Iterator<!Const>;
    Owner* owner_ = nullptr;
    std::size_t index_ = 0;
  };

  using iterator = Iterator<false>;
  using const_iterator = Iterator<true>;
  using value_type = T;

  [[nodiscard]] iterator begin() { return {this, 0}; }
  [[nodiscard]] iterator end() { return {this, size_}; }
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size_}; }
  [[nodiscard]] const_iterator cbegin() const { return begin(); }
  [[nodiscard]] const_iterator cend() const { return end(); }

 private:
  static constexpr std::size_t kShift = [] {
    std::size_t shift = 0;
    while ((std::size_t{1} << shift) < ChunkSize) ++shift;
    return shift;
  }();
  static constexpr std::size_t kMask = ChunkSize - 1;

  struct Chunk {
    T items[ChunkSize];
  };

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_ = 0;
};

}  // namespace ll::util
