#pragma once

/// \file table.hpp
/// Column-aligned ASCII table printer. Benches use it to emit the same rows
/// the paper's tables and figure series report, in a stable, diffable format.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ll::util {

/// Builds a table row by row and renders it with padded columns.
///
///   Table t({"policy", "avg job (s)", "throughput"});
///   t.add_row({"LL", format("%.0f", x), ...});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row. Rows shorter than the header are padded with "";
  /// longer rows are an error.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<Row> rows_;
};

/// printf-style formatting into a std::string (type-checked by the compiler
/// via the format attribute on the implementation).
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with `digits` decimal places.
[[nodiscard]] std::string fixed(double value, int digits = 2);

/// Formats a fraction (0..1) as a percentage with `digits` decimals, e.g. "4.2%".
[[nodiscard]] std::string percent(double fraction, int digits = 1);

}  // namespace ll::util
