#pragma once

/// \file ring_deque.hpp
/// Fixed-capacity lock-free work-stealing deque (Chase–Lev), the scheduling
/// substrate of util::TaskRunner.
///
/// Ownership protocol — the correctness of the algorithm depends on it:
///   - exactly ONE thread (the owner) may call push_bottom() / pop_bottom();
///   - ANY number of other threads (thieves) may call steal_top()
///     concurrently with each other and with the owner.
/// The owner works LIFO (pop_bottom returns the most recently pushed
/// element — cache-hot work stays with the producer); thieves work FIFO
/// (steal_top takes the oldest element — the end the owner touches least,
/// minimizing contention).
///
/// The buffer is a power-of-two ring indexed by two monotonic 64-bit
/// cursors, `top_` (steal end) and `bottom_` (owner end); the occupied
/// region is [top_, bottom_). Capacity is fixed: push_bottom() returns
/// false when the ring is full instead of growing, which keeps the hot
/// path allocation-free and the memory bound explicit — TaskRunner sizes
/// each deque for its batch share up front.
///
/// Memory ordering (the §10 DESIGN.md argument, in short):
///   - push_bottom publishes the element with a release store of `bottom_`;
///     a thief acquire-loads `bottom_` before reading the cell, so the
///     element write happens-before the read.
///   - pop_bottom's reservation (`bottom_ = b-1`) uses a seq_cst store and
///     the subsequent `top_` load is seq_cst: the owner and any thief both
///     pass through the single total order of seq_cst operations, so at
///     most one of them can believe it took the last element without
///     synchronizing on `top_`'s CAS.
///   - the last-element race (one element, owner and thief both reaching
///     for it) is arbitrated by a seq_cst compare-exchange on `top_`;
///     exactly one contender wins.
/// Standalone fences are deliberately avoided (TSan does not model them);
/// every shared access is an atomic operation, so the TSan preset verifies
/// this file as written, not an approximation of it.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>

namespace ll::util {

template <typename T>
class RingDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "RingDeque elements are copied through atomic cells");

 public:
  /// Rounds `min_capacity` up to a power of two (at least 2).
  explicit RingDeque(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    buffer_ = std::make_unique<std::atomic<T>[]>(cap);
  }

  RingDeque(const RingDeque&) = delete;
  RingDeque& operator=(const RingDeque&) = delete;
  RingDeque(RingDeque&&) = delete;
  RingDeque& operator=(RingDeque&&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Owner only. False when the ring is full (never overwrites).
  [[nodiscard]] bool push_bottom(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(capacity())) return false;
    buffer_[static_cast<std::size_t>(b) & mask_].store(
        value, std::memory_order_relaxed);
    // Release: the element store above happens-before any thief that
    // acquire-loads this new bottom.
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only: LIFO. Empty deque (or a lost last-element race) returns
  /// nullopt.
  [[nodiscard]] std::optional<T> pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    // Seq_cst store + seq_cst load below form the store-load ordering the
    // classic algorithm gets from a full fence: every thief either sees
    // the reservation (and backs off `b`) or its top increment is seen
    // here — never neither.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // already empty: undo the reservation
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T value = buffer_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: arbitrate with concurrent thieves via top_'s CAS.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      if (!won) return std::nullopt;  // a thief took it first
    }
    return value;
  }

  /// Any thread: FIFO. Nullopt on empty, and also on a lost race with the
  /// owner or another thief — callers treat both as "nothing stolen" and
  /// retry or move on (some other thread made progress with the element).
  [[nodiscard]] std::optional<T> steal_top() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;
    // Read the cell BEFORE claiming it: once the CAS succeeds the owner may
    // reuse the slot, so a post-CAS read could see a later element.
    T value = buffer_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;
    }
    return value;
  }

  /// Approximate (racy) size — monitoring/victim selection only.
  [[nodiscard]] std::size_t size_relaxed() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty_relaxed() const { return size_relaxed() == 0; }

 private:
  std::size_t mask_ = 1;
  std::unique_ptr<std::atomic<T>[]> buffer_;
  // Separate cache lines: thieves hammer top_, the owner hammers bottom_.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace ll::util
