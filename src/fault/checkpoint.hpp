#pragma once

/// \file checkpoint.hpp
/// Checkpoint/restart cost model for foreign jobs.
///
/// A crash loses everything a job computed since its last checkpoint (all
/// of it in the no-checkpoint mode). Periodic checkpoints bound that loss at
/// the price of a write pause: fixed per-checkpoint latency plus image-size
/// over bandwidth — deliberately the same shape as
/// core::MigrationCostModel, because a checkpoint is a migration whose
/// destination is stable storage.

#include <cstdint>

namespace ll::fault {

struct CheckpointConfig {
  /// Seconds of execution between checkpoints; 0 disables checkpointing
  /// entirely (no events, no cost, crashes lose full progress).
  double interval = 0.0;
  /// Fixed per-checkpoint latency (quiesce + metadata), seconds.
  double fixed_cost = 0.3;
  /// Checkpoint write bandwidth, bits per second.
  double bandwidth_bps = 3e6;

  [[nodiscard]] bool enabled() const { return interval > 0.0; }

  /// Seconds one checkpoint of a `bytes`-sized image takes.
  [[nodiscard]] double cost(std::uint64_t bytes) const;

  /// Throws std::invalid_argument on nonsensical parameters.
  void validate() const;
};

}  // namespace ll::fault
