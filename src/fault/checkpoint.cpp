#include "fault/checkpoint.hpp"

#include <cmath>
#include <stdexcept>

namespace ll::fault {

double CheckpointConfig::cost(std::uint64_t bytes) const {
  return fixed_cost + static_cast<double>(bytes) * 8.0 / bandwidth_bps;
}

void CheckpointConfig::validate() const {
  if (!(std::isfinite(interval) && interval >= 0.0)) {
    throw std::invalid_argument("CheckpointConfig: interval must be >= 0");
  }
  if (!(std::isfinite(fixed_cost) && fixed_cost >= 0.0)) {
    throw std::invalid_argument("CheckpointConfig: fixed_cost must be >= 0");
  }
  if (!(std::isfinite(bandwidth_bps) && bandwidth_bps > 0.0)) {
    throw std::invalid_argument("CheckpointConfig: bandwidth must be > 0");
  }
}

}  // namespace ll::fault
