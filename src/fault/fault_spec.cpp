#include "fault/fault_spec.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>

#include "rng/distributions.hpp"
#include "util/table.hpp"

namespace ll::fault {
namespace {

void require(bool ok, const std::string& message) {
  if (!ok) throw std::invalid_argument("FaultSpec: " + message);
}

/// Distinct node indices, `fraction` of the cluster (at least one node),
/// drawn by partial Fisher-Yates and returned ascending so the compiled
/// timeline is readable and order-independent of the draw.
std::vector<std::size_t> draw_node_set(double fraction, std::size_t node_count,
                                       rng::Stream& stream) {
  auto want = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(node_count) - 1e-12));
  want = std::clamp<std::size_t>(want, 1, node_count);
  std::vector<std::size_t> indices(node_count);
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  for (std::size_t i = 0; i < want; ++i) {
    const auto j = i + stream.uniform_index(node_count - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(want);
  std::sort(indices.begin(), indices.end());
  return indices;
}

}  // namespace

ArrivalProcess ArrivalProcess::exponential(double rate) {
  ArrivalProcess out;
  out.kind = Kind::Exponential;
  out.rate = rate;
  return out;
}

ArrivalProcess ArrivalProcess::hyperexp2(double p, double rate1, double rate2) {
  ArrivalProcess out;
  out.kind = Kind::HyperExp2;
  out.p = p;
  out.rate1 = rate1;
  out.rate2 = rate2;
  return out;
}

ArrivalProcess ArrivalProcess::fixed(std::vector<double> times) {
  ArrivalProcess out;
  out.kind = Kind::Fixed;
  out.times = std::move(times);
  return out;
}

bool ArrivalProcess::empty() const {
  return kind == Kind::None || (kind == Kind::Fixed && times.empty());
}

void ArrivalProcess::validate(std::string_view what) const {
  const std::string where(what);
  switch (kind) {
    case Kind::None:
      return;
    case Kind::Exponential:
      require(std::isfinite(rate) && rate > 0.0,
              where + " arrival rate must be > 0");
      return;
    case Kind::HyperExp2:
      require(p >= 0.0 && p <= 1.0, where + " arrival p must be in [0, 1]");
      require(std::isfinite(rate1) && rate1 > 0.0 && std::isfinite(rate2) &&
                  rate2 > 0.0,
              where + " arrival rates must be > 0");
      return;
    case Kind::Fixed:
      for (double t : times) {
        require(std::isfinite(t) && t >= 0.0,
                where + " fixed arrival times must be finite and >= 0");
      }
      return;
  }
  throw std::logic_error("ArrivalProcess: unknown kind");
}

std::vector<double> ArrivalProcess::draw(double horizon,
                                         rng::Stream& stream) const {
  std::vector<double> out;
  switch (kind) {
    case Kind::None:
      break;
    case Kind::Exponential: {
      const rng::Exponential gap(rate);
      for (double t = gap.sample(stream); t < horizon; t += gap.sample(stream)) {
        out.push_back(t);
      }
      break;
    }
    case Kind::HyperExp2: {
      const rng::HyperExp2 gap(p, rate1, rate2);
      for (double t = gap.sample(stream); t < horizon; t += gap.sample(stream)) {
        out.push_back(t);
      }
      break;
    }
    case Kind::Fixed:
      for (double t : times) {
        if (t < horizon) out.push_back(t);
      }
      std::sort(out.begin(), out.end());
      break;
  }
  return out;
}

bool FaultSpec::empty() const {
  return crash.arrivals.empty() && storm.arrivals.empty() &&
         pressure.arrivals.empty() && link.drop_probability == 0.0;
}

void FaultSpec::validate() const {
  crash.arrivals.validate("crash");
  storm.arrivals.validate("storm");
  pressure.arrivals.validate("pressure");
  require(std::isfinite(horizon) && horizon > 0.0, "horizon must be > 0");
  require(std::isfinite(crash.mean_downtime) && crash.mean_downtime > 0.0,
          "crash mean_downtime must be > 0");
  require(link.drop_probability >= 0.0 && link.drop_probability < 1.0,
          "link drop_probability must be in [0, 1)");
  require(std::isfinite(link.retry_backoff) && link.retry_backoff >= 0.0,
          "link retry_backoff must be >= 0");
  require(storm.node_fraction > 0.0 && storm.node_fraction <= 1.0,
          "storm node_fraction must be in (0, 1]");
  require(std::isfinite(storm.duration) && storm.duration > 0.0,
          "storm duration must be > 0");
  require(storm.utilization >= 0.0 && storm.utilization <= 1.0,
          "storm utilization must be in [0, 1]");
  require(pressure.node_fraction > 0.0 && pressure.node_fraction <= 1.0,
          "pressure node_fraction must be in (0, 1]");
  require(std::isfinite(pressure.duration) && pressure.duration > 0.0,
          "pressure duration must be > 0");
  require(pressure.extra_kb > 0, "pressure extra_kb must be > 0");
}

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::NodeCrash:
      return "crash";
    case FaultKind::Storm:
      return "storm";
    case FaultKind::Pressure:
      return "pressure";
  }
  throw std::logic_error("to_string: unknown FaultKind");
}

FaultSchedule FaultSchedule::compile(const FaultSpec& spec,
                                     std::size_t node_count,
                                     rng::Stream stream) {
  spec.validate();
  if (node_count == 0) {
    throw std::invalid_argument("FaultSchedule: node_count must be > 0");
  }
  FaultSchedule out;
  out.spec_ = spec;

  if (!spec.crash.arrivals.empty()) {
    rng::Stream s = stream.fork("crash");
    for (double t : spec.crash.arrivals.draw(spec.horizon, s)) {
      FaultEvent ev;
      ev.time = t;
      ev.kind = FaultKind::NodeCrash;
      ev.nodes = {static_cast<std::size_t>(s.uniform_index(node_count))};
      ev.duration = spec.crash.exponential_downtime
                        ? rng::Exponential(1.0 / spec.crash.mean_downtime)
                              .sample(s)
                        : spec.crash.mean_downtime;
      out.events_.push_back(std::move(ev));
    }
  }
  if (!spec.storm.arrivals.empty()) {
    rng::Stream s = stream.fork("storm");
    for (double t : spec.storm.arrivals.draw(spec.horizon, s)) {
      FaultEvent ev;
      ev.time = t;
      ev.kind = FaultKind::Storm;
      ev.nodes = draw_node_set(spec.storm.node_fraction, node_count, s);
      ev.duration = spec.storm.duration;
      out.events_.push_back(std::move(ev));
    }
  }
  if (!spec.pressure.arrivals.empty()) {
    rng::Stream s = stream.fork("pressure");
    for (double t : spec.pressure.arrivals.draw(spec.horizon, s)) {
      FaultEvent ev;
      ev.time = t;
      ev.kind = FaultKind::Pressure;
      ev.nodes = draw_node_set(spec.pressure.node_fraction, node_count, s);
      ev.duration = spec.pressure.duration;
      out.events_.push_back(std::move(ev));
    }
  }
  // Stable: same-time events keep category order (crash < storm < pressure),
  // which the compile order above fixed deterministically.
  std::stable_sort(
      out.events_.begin(), out.events_.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  return out;
}

void FaultSchedule::write_timeline(std::ostream& out) const {
  util::Table table({"time (s)", "fault", "nodes", "duration (s)"});
  for (const FaultEvent& ev : events_) {
    std::string nodes;
    for (std::size_t i = 0; i < ev.nodes.size(); ++i) {
      if (i > 0) nodes += ",";
      if (i == 8 && ev.nodes.size() > 9) {
        nodes += util::format("… (%zu total)", ev.nodes.size());
        break;
      }
      nodes += std::to_string(ev.nodes[i]);
    }
    table.add_row({util::fixed(ev.time, 1), std::string(to_string(ev.kind)),
                   nodes, util::fixed(ev.duration, 1)});
  }
  out << table.render();
  if (spec_.link.drop_probability > 0.0) {
    out << util::format(
        "link faults: drop probability %.2f per transfer, %zu retries, "
        "%.1f s backoff\n",
        spec_.link.drop_probability, spec_.link.max_retries,
        spec_.link.retry_backoff);
  }
}

}  // namespace ll::fault
