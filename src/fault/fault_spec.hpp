#pragma once

/// \file fault_spec.hpp
/// Declarative fault-injection plans and their compiled, seed-stable
/// timelines.
///
/// The paper models only the benign availability story: owners return,
/// guests linger/pause/migrate, nodes never fail and the migration network
/// never drops a transfer. This subsystem layers the malign cases on top —
/// node crash + recovery, transient migration-link failures, owner
/// "reclamation storms" that force many simultaneous evictions, and
/// memory-pressure spikes that shrink the donated page pool — without
/// touching the DES core.
///
/// Determinism contract: a FaultSpec is *compiled* into a FaultSchedule —
/// every arrival time, crashed-node index, downtime and storm membership is
/// pre-drawn from a dedicated rng sub-stream at compile time, so the same
/// (spec, node_count, stream) always yields the identical timeline no matter
/// what the simulator does with it. Only migration-link drops are drawn
/// lazily (they depend on how many transfers the run attempts); they consume
/// a separate stream the simulator forks for exactly that purpose.
///
/// An empty spec compiles to an empty schedule: zero events, zero stream
/// draws, zero behavioral footprint. The golden-digest suite pins that a
/// fault-free configuration is bit-for-bit identical to a build without the
/// fault layer attached.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "rng/rng.hpp"

namespace ll::fault {

/// When fault events of one category occur. Arrivals are cluster-wide; the
/// compiler draws per-event details (which node, how long) separately.
struct ArrivalProcess {
  enum class Kind : std::uint8_t {
    None,         ///< the category is disabled
    Exponential,  ///< Poisson arrivals at `rate` per second
    HyperExp2,    ///< bursty arrivals: H2(p, rate1, rate2) inter-arrival gaps
    Fixed,        ///< explicit times (trace-positioned injection)
  };

  Kind kind = Kind::None;
  double rate = 0.0;                      // Exponential
  double p = 1.0, rate1 = 0.0, rate2 = 0.0;  // HyperExp2
  std::vector<double> times;              // Fixed

  [[nodiscard]] static ArrivalProcess none() { return {}; }
  [[nodiscard]] static ArrivalProcess exponential(double rate);
  [[nodiscard]] static ArrivalProcess hyperexp2(double p, double rate1,
                                                double rate2);
  [[nodiscard]] static ArrivalProcess fixed(std::vector<double> times);

  /// True when the process can never produce an event.
  [[nodiscard]] bool empty() const;

  /// Throws std::invalid_argument naming `what` on nonsensical parameters
  /// (non-positive rates, p outside [0,1], negative/non-finite fixed times).
  void validate(std::string_view what) const;

  /// Draws the sorted arrival times in [0, horizon). Deterministic in
  /// (spec, stream); an empty process returns no times and consumes no draws.
  [[nodiscard]] std::vector<double> draw(double horizon,
                                         rng::Stream& stream) const;
};

/// Whole-node crashes. Each arrival picks a victim uniformly at random; the
/// node is unusable for an exponential (or fixed) downtime, then recovers.
struct CrashSpec {
  ArrivalProcess arrivals;
  double mean_downtime = 120.0;
  /// Exponential downtimes (mean above) when true, fixed otherwise.
  bool exponential_downtime = true;
};

/// Transient migration-link failures: each completed transfer is dropped
/// with `drop_probability`, retried after a backoff up to `max_retries`
/// times while the destination slot stays reserved, then fails outright
/// (the job restarts from its last checkpoint via the queue).
struct LinkFaultSpec {
  double drop_probability = 0.0;  // [0, 1)
  std::size_t max_retries = 3;
  double retry_backoff = 5.0;  // seconds added before each re-attempt
};

/// Owner reclamation storms: a random `node_fraction` of the cluster turns
/// non-idle simultaneously at `utilization` for `duration` seconds — the
/// coordinated-return worst case for lingering policies.
struct StormSpec {
  ArrivalProcess arrivals;
  double node_fraction = 0.5;  // (0, 1]
  double duration = 300.0;
  double utilization = 0.9;  // forced owner CPU during the storm
};

/// Memory-pressure spikes: the owner working set on a random `node_fraction`
/// of nodes grows by `extra_kb` for `duration` seconds, shrinking the page
/// pool donated to foreign jobs (their progress degrades via the memory
/// model, exactly as a real owner launching a large application would).
struct PressureSpec {
  ArrivalProcess arrivals;
  double node_fraction = 1.0;  // (0, 1]
  double duration = 600.0;
  std::uint32_t extra_kb = 32768;
};

/// The complete declarative fault plan for one run.
struct FaultSpec {
  CrashSpec crash;
  LinkFaultSpec link;
  StormSpec storm;
  PressureSpec pressure;
  /// Timeline horizon: arrivals are drawn in [0, horizon).
  double horizon = 86400.0;

  /// True when the spec can never inject anything: no arrivals in any
  /// category and a zero link-drop probability. Simulators skip stream
  /// forking and event scheduling entirely for empty specs.
  [[nodiscard]] bool empty() const;

  /// Throws std::invalid_argument with a specific message on any
  /// nonsensical parameter. Cheap; safe to call unconditionally.
  void validate() const;
};

enum class FaultKind : std::uint8_t { NodeCrash, Storm, Pressure };

[[nodiscard]] std::string_view to_string(FaultKind kind);

/// One pre-drawn timeline entry.
struct FaultEvent {
  double time = 0.0;
  FaultKind kind = FaultKind::NodeCrash;
  /// Crashed node (size 1) or the affected storm/pressure membership set
  /// (distinct, ascending).
  std::vector<std::size_t> nodes;
  double duration = 0.0;  ///< downtime / storm length / spike length
};

/// A compiled, immutable fault timeline. Everything random is drawn at
/// compile time from dedicated sub-streams ("crash", "storm", "pressure" of
/// the stream handed in), so the timeline is a pure function of
/// (spec, node_count, stream seed).
class FaultSchedule {
 public:
  FaultSchedule() = default;

  [[nodiscard]] static FaultSchedule compile(const FaultSpec& spec,
                                             std::size_t node_count,
                                             rng::Stream stream);

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  /// Timeline entries sorted by (time, kind insertion order).
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Renders the timeline as a human-readable table (`llsim faults`).
  void write_timeline(std::ostream& out) const;

 private:
  FaultSpec spec_;
  std::vector<FaultEvent> events_;
};

}  // namespace ll::fault
