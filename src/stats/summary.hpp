#pragma once

/// \file summary.hpp
/// Streaming summary statistics (Welford's algorithm) with merge support,
/// used throughout the simulator for burst statistics, job completion times,
/// and metric accumulation.

#include <cstdint>

namespace ll::stats {

/// Numerically stable streaming mean/variance/min/max accumulator.
class Summary {
 public:
  void add(double x);

  /// Adds a value with a weight (e.g. time-weighted utilization samples).
  void add_weighted(double x, double weight);

  /// Merges another accumulator (parallel replication reduction).
  void merge(const Summary& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double weight() const { return weight_; }
  [[nodiscard]] double mean() const;
  /// Population variance (weighted second central moment / total weight).
  [[nodiscard]] double variance() const;
  /// Sample variance with Bessel's correction (unweighted counts only).
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sample_stddev() const;
  /// Coefficient of variation stddev/mean (0 when mean == 0).
  [[nodiscard]] double cv() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const;

 private:
  std::uint64_t count_ = 0;
  double weight_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // weighted sum of squared deviations
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ll::stats
