#include "stats/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ll::stats {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : samples_(std::move(samples)) {
  if (samples_.empty()) {
    throw std::invalid_argument("EmpiricalCdf: empty sample set");
  }
  std::sort(samples_.begin(), samples_.end());
}

double EmpiricalCdf::operator()(double x) const {
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (!(q > 0.0 && q <= 1.0)) {
    throw std::invalid_argument("EmpiricalCdf::quantile: q must be in (0,1]");
  }
  const auto n = samples_.size();
  auto idx = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n))) - 1;
  if (idx >= n) idx = n - 1;
  return samples_[idx];
}

double EmpiricalCdf::ks_distance(const std::function<double(double)>& cdf) const {
  const double n = static_cast<double>(samples_.size());
  double sup = 0.0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const double f = cdf(samples_[i]);
    // Empirical CDF jumps from i/n to (i+1)/n at samples_[i]; check both sides.
    sup = std::max(sup, std::abs(f - static_cast<double>(i) / n));
    sup = std::max(sup, std::abs(static_cast<double>(i + 1) / n - f));
  }
  return sup;
}

double EmpiricalCdf::ks_distance(const EmpiricalCdf& other) const {
  double sup = 0.0;
  for (double x : samples_) sup = std::max(sup, std::abs((*this)(x) - other(x)));
  for (double x : other.samples_) {
    sup = std::max(sup, std::abs((*this)(x) - other(x)));
  }
  return sup;
}

}  // namespace ll::stats
