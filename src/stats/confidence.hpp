#pragma once

/// \file confidence.hpp
/// Confidence intervals over independent replications. Cluster experiments
/// report means across seeds; the half-width makes "LL beats PM by 50%"
/// claims statistically grounded rather than single-run artifacts.

#include <vector>

namespace ll::stats {

struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;  // mean +/- half_width
  std::size_t n = 0;

  [[nodiscard]] double lo() const { return mean - half_width; }
  [[nodiscard]] double hi() const { return mean + half_width; }
};

/// Student-t two-sided critical value for the given degrees of freedom at
/// 95% confidence (table lookup with asymptotic fallback).
[[nodiscard]] double t_critical_95(std::size_t degrees_of_freedom);

/// 95% confidence interval of the mean of independent replications.
/// Empty input yields the zero interval {mean 0, half_width 0, n 0} so
/// aggregation over possibly-absent metrics needs no special casing; with
/// one sample the half-width is 0 (no spread estimate).
[[nodiscard]] ConfidenceInterval mean_confidence_95(const std::vector<double>& samples);

}  // namespace ll::stats
