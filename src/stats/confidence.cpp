#include "stats/confidence.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "stats/summary.hpp"

namespace ll::stats {

double t_critical_95(std::size_t degrees_of_freedom) {
  // Two-sided 95% critical values, df = 1..30.
  static constexpr std::array<double, 30> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (degrees_of_freedom == 0) {
    throw std::invalid_argument("t_critical_95: df must be > 0");
  }
  if (degrees_of_freedom <= kTable.size()) {
    return kTable[degrees_of_freedom - 1];
  }
  if (degrees_of_freedom <= 40) return 2.021;
  if (degrees_of_freedom <= 60) return 2.000;
  if (degrees_of_freedom <= 120) return 1.980;
  return 1.960;
}

ConfidenceInterval mean_confidence_95(const std::vector<double>& samples) {
  if (samples.empty()) {
    return ConfidenceInterval{};  // {mean 0, half_width 0, n 0}
  }
  Summary summary;
  for (double x : samples) summary.add(x);
  ConfidenceInterval ci;
  ci.mean = summary.mean();
  ci.n = samples.size();
  if (samples.size() >= 2) {
    const double se = summary.sample_stddev() /
                      std::sqrt(static_cast<double>(samples.size()));
    ci.half_width = t_critical_95(samples.size() - 1) * se;
  }
  return ci;
}

}  // namespace ll::stats
