#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ll::stats {

void Summary::add(double x) { add_weighted(x, 1.0); }

void Summary::add_weighted(double x, double weight) {
  if (weight < 0.0) {
    throw std::invalid_argument("Summary: negative weight");
  }
  if (weight == 0.0) return;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double new_weight = weight_ + weight;
  const double delta = x - mean_;
  const double r = weight / new_weight;
  mean_ += delta * r;
  m2_ += weight * delta * (x - mean_);
  weight_ = new_weight;
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = weight_ + other.weight_;
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * weight_ * other.weight_ / total;
  mean_ += delta * other.weight_ / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  weight_ = total;
}

double Summary::mean() const { return count_ == 0 ? 0.0 : mean_; }

double Summary::variance() const {
  return weight_ <= 0.0 ? 0.0 : m2_ / weight_;
}

double Summary::sample_variance() const {
  if (count_ < 2) return 0.0;
  // Bessel correction is only meaningful for unweighted samples where
  // weight_ == count_.
  return m2_ / (weight_ - 1.0);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::sample_stddev() const { return std::sqrt(sample_variance()); }

double Summary::cv() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

double Summary::sum() const { return mean_ * weight_; }

}  // namespace ll::stats
