#pragma once

/// \file histogram.hpp
/// Fixed-bin histogram over a [lo, hi) range with under/overflow bins.
/// The trace-analysis pipeline uses histograms of run/idle burst durations
/// per utilization bucket (paper Figure 2).

#include <cstdint>
#include <vector>

namespace ll::stats {

class Histogram {
 public:
  /// `bins` uniform bins spanning [lo, hi). Values outside land in the
  /// underflow/overflow counters.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Fraction of all observations at or below the upper edge of bin i
  /// (underflow included; overflow excluded until the last implicit edge).
  [[nodiscard]] double cumulative_fraction(std::size_t i) const;

  /// Approximate quantile by linear interpolation inside the containing bin.
  /// q in [0, 1]. Requires total() > 0.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace ll::stats
