#pragma once

/// \file cdf.hpp
/// Empirical CDFs. Used for the run/idle burst distribution comparison
/// (Figure 2), the available-memory distribution (Figure 4), and the tests
/// that verify generated samples match their fitted analytic distributions
/// (Kolmogorov–Smirnov distance).

#include <functional>
#include <vector>

namespace ll::stats {

/// Empirical cumulative distribution built from a sample vector.
class EmpiricalCdf {
 public:
  /// Takes and sorts a copy of the samples. Throws on an empty sample set.
  explicit EmpiricalCdf(std::vector<double> samples);

  /// F(x): fraction of samples <= x.
  [[nodiscard]] double operator()(double x) const;

  /// Inverse CDF: smallest sample s with F(s) >= q, q in (0, 1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] double min() const { return samples_.front(); }
  [[nodiscard]] double max() const { return samples_.back(); }
  [[nodiscard]] const std::vector<double>& sorted_samples() const {
    return samples_;
  }

  /// Kolmogorov–Smirnov distance sup_x |F_n(x) - F(x)| against an analytic
  /// CDF. Evaluated at sample points (where the sup of the difference with a
  /// continuous F is attained).
  [[nodiscard]] double ks_distance(const std::function<double(double)>& cdf) const;

  /// Two-sample KS distance against another empirical CDF.
  [[nodiscard]] double ks_distance(const EmpiricalCdf& other) const;

 private:
  std::vector<double> samples_;
};

}  // namespace ll::stats
