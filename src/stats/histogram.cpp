#include "stats/histogram.hpp"

#include <cmath>
#include <stdexcept>

namespace ll::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
}

void Histogram::add(double x) {
  // NaN would fall through both range checks below and index a bin via
  // static_cast<size_t>(NaN) — undefined behavior. Reject it at the door.
  if (std::isnan(x)) {
    throw std::invalid_argument("Histogram::add: NaN sample");
  }
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // float edge case at hi
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::bin_center(std::size_t i) const {
  return lo_ + width_ * (static_cast<double>(i) + 0.5);
}

double Histogram::cumulative_fraction(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram bin index");
  if (total_ == 0) return 0.0;
  std::uint64_t acc = underflow_;
  for (std::size_t b = 0; b <= i; ++b) acc += counts_[b];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) throw std::logic_error("Histogram::quantile on empty histogram");
  // Negated form so NaN (which fails every comparison) lands in the throw
  // instead of silently flowing through as "quantile ~ hi_".
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("quantile q outside [0,1]");
  }
  const auto target = q * static_cast<double>(total_);
  double acc = static_cast<double>(underflow_);
  if (target <= acc) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = acc + static_cast<double>(counts_[b]);
    if (target <= next && counts_[b] > 0) {
      const double frac = (target - acc) / static_cast<double>(counts_[b]);
      return bin_lo(b) + frac * width_;
    }
    acc = next;
  }
  return hi_;
}

}  // namespace ll::stats
