#pragma once

/// \file bench_util.hpp
/// Internal helpers shared by the registered benches: the standard flag set
/// (--seed/--reps/--jobs/--csv/--json) and the common emit path (banner +
/// table, or JSON to stdout, or CSV to a file). This is the once-per-bench
/// boilerplate the old standalone binaries each duplicated.

#include <fstream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/engine.hpp"
#include "exp/result.hpp"
#include "util/flags.hpp"

namespace ll::exp {

struct StandardFlags {
  util::Flags::Handle<std::uint64_t> seed;
  util::Flags::Handle<std::int64_t> reps;
  util::Flags::Handle<std::int64_t> jobs;
  util::Flags::Handle<std::string> csv;
  util::Flags::Handle<bool> json;
};

inline StandardFlags add_standard_flags(util::Flags& flags,
                                        std::int64_t default_reps) {
  return StandardFlags{
      flags.add_uint64("seed", 42, "master RNG seed"),
      flags.add_int("reps", default_reps,
                    "replications per cell (means with 95% CIs)"),
      flags.add_int("jobs", 0,
                    "worker threads for the sweep (0 = hardware concurrency)"),
      flags.add_string("csv", "", "optional CSV output path"),
      flags.add_bool("json", false,
                     "emit the sweep as JSON instead of a table"),
  };
}

inline void parse_args(util::Flags& flags, const std::string& program,
                       const std::vector<std::string>& args) {
  std::vector<const char*> argv{program.c_str()};
  for (const std::string& a : args) argv.push_back(a.c_str());
  flags.parse(static_cast<int>(argv.size()), argv.data());
}

inline EngineOptions engine_options(const StandardFlags& std_flags) {
  EngineOptions options;
  options.jobs = static_cast<std::size_t>(*std_flags.jobs);
  return options;
}

/// Applies the spec-level standard flags (seed, reps).
inline void apply_standard_flags(ExperimentSpec& spec,
                                 const StandardFlags& std_flags) {
  spec.seed = *std_flags.seed;
  spec.replications = static_cast<std::size_t>(*std_flags.reps);
}

/// Emits the sweep: JSON to `out` when --json, otherwise the banner
/// (figure id + claim + seed) and the ASCII table; --csv=<path> always
/// writes the CSV file in addition.
inline void emit_sweep(const SweepResult& sweep, const StandardFlags& std_flags,
                       std::ostream& out, const std::string& claim) {
  if (!std_flags.csv->empty()) {
    std::ofstream csv(*std_flags.csv, std::ios::trunc);
    if (!csv) {
      throw std::runtime_error("cannot open CSV output " + *std_flags.csv);
    }
    write_csv(sweep, csv);
  }
  if (*std_flags.json) {
    write_json(sweep, out);
    return;
  }
  out << "=== " << sweep.name << " ===\n"
      << claim << "\nseed=" << sweep.seed
      << " (shapes, not absolute values, are the comparison target)\n\n"
      << render_table(sweep);
}

}  // namespace ll::exp
