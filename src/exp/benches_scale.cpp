/// \file benches_scale.cpp
/// Registered scale extension: ext_scale drives the full cluster pipeline
/// at 100k nodes — the population the calendar event queue and the SoA
/// node-state layout exist for — and reports the Figure-7 metrics under
/// both queue backends side by side. Backend invariance means the two rows
/// must agree on every simulated metric (only wall time may differ), and
/// the engine guarantees the sweep is deterministic across --jobs.

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "cluster/experiment.hpp"
#include "des/event_queue.hpp"
#include "exp/bench_util.hpp"
#include "exp/benches.hpp"
#include "exp/drivers.hpp"
#include "exp/registry.hpp"
#include "shard/experiment.hpp"
#include "util/table.hpp"
#include "workload/burst_table.hpp"

namespace ll::exp {
namespace {

int run_ext_scale(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim bench ext_scale",
                    "100k-node cluster end to end: binary heap vs calendar "
                    "event queue at scale.");
  auto nodes = flags.add_int("nodes", 100000, "cluster size");
  auto machines = flags.add_int(
      "machines", 256, "distinct machine traces (nodes share the pool)");
  auto jobs_per_knode = flags.add_int(
      "jobs-per-knode", 250, "foreign jobs submitted per 1000 nodes");
  auto demand = flags.add_double("demand", 600.0, "CPU-seconds per job");
  auto closed_duration = flags.add_double(
      "closed-duration", 1800.0, "seconds the closed-system run is held");
  const StandardFlags std_flags = add_standard_flags(flags, 1);
  parse_args(flags, "llsim bench ext_scale", args);

  const auto node_count = static_cast<std::size_t>(*nodes);
  const auto pool = TracePoolCache::shared().standard(
      static_cast<std::size_t>(*machines), 24.0, *std_flags.seed + 1);
  const workload::BurstTable& table = workload::default_burst_table();

  cluster::WorkloadSpec workload;
  workload.jobs = std::max<std::size_t>(
      1, node_count * static_cast<std::size_t>(*jobs_per_knode) / 1000);
  workload.demand = *demand;

  // One single-cell sweep per backend, merged afterwards: cell seeds derive
  // from the cell *index*, so putting both backends in one sweep would hand
  // them different seeds and turn the invariance check into noise. With the
  // backend as the only difference, every simulated metric must agree
  // bit-for-bit.
  struct BackendSpec {
    const char* label;
    des::QueueBackend backend;
  };
  SweepResult merged;
  for (const BackendSpec& b :
       {BackendSpec{"heap", des::QueueBackend::kHeap},
        BackendSpec{"calendar", des::QueueBackend::kCalendar}}) {
    ExperimentSpec spec;
    spec.name = "ext_scale: 100k-node cluster, heap vs calendar event queue";
    spec.axes = {"queue"};
    apply_standard_flags(spec, std_flags);
    cluster::ExperimentConfig cfg;
    cfg.cluster.node_count = node_count;
    cfg.cluster.queue = b.backend;
    cfg.workload = workload;
    const double duration = *closed_duration;
    spec.add_cell({{"queue", b.label}},
                  [cfg, pool, &table, duration](std::uint64_t seed) mutable {
                    cfg.seed = seed;
                    return cluster_cell(cfg, pool, table, duration);
                  });
    SweepResult one = run_sweep(spec, engine_options(std_flags));
    if (merged.cells.empty()) {
      merged = std::move(one);
    } else {
      merged.cells.push_back(std::move(one.cells.front()));
    }
  }

  // Backend invariance, enforced: identical seeds must yield identical
  // metrics regardless of which queue ordered the events.
  const CellResult& heap_cell = merged.cells.front();
  const CellResult& cal_cell = merged.cells.back();
  for (std::size_t r = 0; r < heap_cell.replications.size(); ++r) {
    const auto& hm = heap_cell.replications[r].metrics();
    const auto& cm = cal_cell.replications[r].metrics();
    if (hm != cm) {
      out << "FAIL: heap and calendar backends disagree on simulated "
             "metrics (replication "
          << r << ")\n";
      return 1;
    }
  }

  emit_sweep(merged, std_flags, out,
             "The queue backend must not change a single simulated metric —\n"
             "the rows are checked bit-identical before printing; only wall\n"
             "time may differ. Results are deterministic across --jobs by "
             "the\nengine's slot contract.");
  out << "\nOK: " << heap_cell.replications.size()
      << " replication(s) bit-identical across queue backends\n";
  return 0;
}

/// ext_scale_sharded: the same 100k-node closed-system run on the
/// conservative time-windowed sharded engine at 1, 2 and 4 shards. Two
/// gates:
///  * correctness — every simulated metric must be bit-identical across
///    shard counts (the shard-count diff gate CI runs at reduced size);
///  * performance — 4 shards on the work-stealing runner must finish
///    >= --min-speedup x faster than 1 shard, enforced only when the box
///    has >= 4 hardware threads (below that the parallelism being measured
///    cannot manifest, so the gate relaxes and says so).
int run_ext_scale_sharded(const std::vector<std::string>& args,
                          std::ostream& out) {
  util::Flags flags("llsim bench ext_scale_sharded",
                    "100k-node cluster on the sharded engine: shard-count "
                    "invariance + parallel speedup.");
  auto nodes = flags.add_int("nodes", 100000, "cluster size");
  auto machines = flags.add_int(
      "machines", 256, "distinct machine traces (nodes share the pool)");
  auto jobs_per_knode = flags.add_int(
      "jobs-per-knode", 250, "foreign jobs submitted per 1000 nodes");
  auto demand = flags.add_double("demand", 600.0, "CPU-seconds per job");
  auto closed_duration = flags.add_double(
      "closed-duration", 1800.0, "seconds the closed-system run is held");
  auto queue_name = flags.add_string(
      "queue", "calendar", "event-queue backend per shard (heap | calendar)");
  auto seed = flags.add_uint64("seed", 42, "master RNG seed");
  auto min_speedup = flags.add_double(
      "min-speedup", 1.5,
      "required wall-time speedup of 4 shards over 1 (0 disables the gate)");
  parse_args(flags, "llsim bench ext_scale_sharded", args);

  const auto backend = des::parse_queue_backend(*queue_name);
  if (!backend) {
    out << "ext_scale_sharded: unknown --queue '" << *queue_name << "'\n";
    return 2;
  }
  const auto node_count = static_cast<std::size_t>(*nodes);
  const auto pool = TracePoolCache::shared().standard(
      static_cast<std::size_t>(*machines), 24.0, *seed + 1);
  const workload::BurstTable& table = workload::default_burst_table();

  cluster::ExperimentConfig cfg;
  cfg.cluster.node_count = node_count;
  cfg.cluster.queue = *backend;
  cfg.workload.jobs = std::max<std::size_t>(
      1, node_count * static_cast<std::size_t>(*jobs_per_knode) / 1000);
  cfg.workload.demand = *demand;
  cfg.seed = *seed;

  struct Row {
    std::size_t shards = 0;
    double wall = 0.0;
    cluster::ClusterReport report;
    shard::ShardStats stats;
  };
  std::vector<Row> rows;
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    Row row;
    row.shards = k;
    shard::RunHooks hooks;
    hooks.on_finish = [&row](shard::ShardedClusterSim& sim) {
      row.stats = sim.stats();
    };
    util::TaskRunner runner(k);
    const auto t0 = std::chrono::steady_clock::now();
    row.report = shard::run_closed(cfg, k, *pool, table, *closed_duration,
                                   k > 1 ? &runner : nullptr, &hooks);
    row.wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
    rows.push_back(std::move(row));
  }

  // Gate 1: shard-count invariance — every simulated metric bit-identical.
  const cluster::ClusterReport& base = rows.front().report;
  for (const Row& row : rows) {
    const cluster::ClusterReport& r = row.report;
    if (r.throughput != base.throughput || r.completed != base.completed ||
        r.migrations != base.migrations ||
        r.foreground_delay != base.foreground_delay ||
        r.work_lost != base.work_lost || r.wall_time != base.wall_time) {
      out << "FAIL: simulated metrics diverge between --shards 1 and "
             "--shards "
          << row.shards << " (shard-count invariance broken)\n";
      return 1;
    }
  }

  util::Table report({"shards", "wall s", "speedup", "throughput",
                      "completions", "migrations", "windows",
                      "max barrier wait us"});
  for (const Row& row : rows) {
    report.add_row(
        {std::to_string(row.shards), util::fixed(row.wall, 3),
         util::fixed(rows.front().wall / row.wall, 2),
         util::fixed(row.report.throughput, 2),
         std::to_string(row.report.completed),
         std::to_string(row.report.migrations),
         std::to_string(row.stats.windows),
         util::fixed(static_cast<double>(row.stats.max_barrier_wait_ns) / 1e3,
                     1)});
  }
  out << "=== ext_scale_sharded: conservative time-windowed engine ===\n"
      << "Simulated metrics are bit-identical across shard counts (checked\n"
      << "before printing); wall time is the only column allowed to move.\n"
      << "seed=" << *seed << "\n\n"
      << report.render();

  // Gate 2: parallel speedup at 4 shards.
  const double speedup = rows.front().wall / rows.back().wall;
  double required = *min_speedup;
  const std::size_t hw = std::thread::hardware_concurrency();
  if (required > 0.0 && hw < 4) {
    out << "\nnote: only " << hw
        << " hardware thread(s) — window parallelism cannot manifest; "
           "relaxing speedup gate (invariance gate still enforced)\n";
    required = 0.0;
  }
  if (required > 0.0 && speedup < required) {
    out << "\nFAIL: 4-shard speedup " << util::fixed(speedup, 2)
        << "x < required " << util::fixed(required, 2) << "x\n";
    return 1;
  }
  out << "\nOK: metrics bit-identical across {1,2,4} shards; 4-shard "
         "speedup "
      << util::fixed(speedup, 2) << "x"
      << (required > 0.0 ? " (gate " + util::fixed(required, 2) + "x)" : "")
      << "\n";
  return 0;
}

}  // namespace

void register_scale_benches(BenchRegistry& registry) {
  registry.add(Bench{"ext_scale",
                     "Extension — 100k-node run, heap vs calendar queue",
                     run_ext_scale});
  registry.add(Bench{"ext_scale_sharded",
                     "Extension — sharded time-windowed engine: invariance "
                     "across {1,2,4} shards + parallel speedup",
                     run_ext_scale_sharded});
}

}  // namespace ll::exp
