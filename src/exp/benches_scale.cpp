/// \file benches_scale.cpp
/// Registered scale extension: ext_scale drives the full cluster pipeline
/// at 100k nodes — the population the calendar event queue and the SoA
/// node-state layout exist for — and reports the Figure-7 metrics under
/// both queue backends side by side. Backend invariance means the two rows
/// must agree on every simulated metric (only wall time may differ), and
/// the engine guarantees the sweep is deterministic across --jobs.

#include <string>
#include <utility>

#include "cluster/experiment.hpp"
#include "des/event_queue.hpp"
#include "exp/bench_util.hpp"
#include "exp/benches.hpp"
#include "exp/drivers.hpp"
#include "exp/registry.hpp"
#include "workload/burst_table.hpp"

namespace ll::exp {
namespace {

int run_ext_scale(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim bench ext_scale",
                    "100k-node cluster end to end: binary heap vs calendar "
                    "event queue at scale.");
  auto nodes = flags.add_int("nodes", 100000, "cluster size");
  auto machines = flags.add_int(
      "machines", 256, "distinct machine traces (nodes share the pool)");
  auto jobs_per_knode = flags.add_int(
      "jobs-per-knode", 250, "foreign jobs submitted per 1000 nodes");
  auto demand = flags.add_double("demand", 600.0, "CPU-seconds per job");
  auto closed_duration = flags.add_double(
      "closed-duration", 1800.0, "seconds the closed-system run is held");
  const StandardFlags std_flags = add_standard_flags(flags, 1);
  parse_args(flags, "llsim bench ext_scale", args);

  const auto node_count = static_cast<std::size_t>(*nodes);
  const auto pool = TracePoolCache::shared().standard(
      static_cast<std::size_t>(*machines), 24.0, *std_flags.seed + 1);
  const workload::BurstTable& table = workload::default_burst_table();

  cluster::WorkloadSpec workload;
  workload.jobs = std::max<std::size_t>(
      1, node_count * static_cast<std::size_t>(*jobs_per_knode) / 1000);
  workload.demand = *demand;

  // One single-cell sweep per backend, merged afterwards: cell seeds derive
  // from the cell *index*, so putting both backends in one sweep would hand
  // them different seeds and turn the invariance check into noise. With the
  // backend as the only difference, every simulated metric must agree
  // bit-for-bit.
  struct BackendSpec {
    const char* label;
    des::QueueBackend backend;
  };
  SweepResult merged;
  for (const BackendSpec& b :
       {BackendSpec{"heap", des::QueueBackend::kHeap},
        BackendSpec{"calendar", des::QueueBackend::kCalendar}}) {
    ExperimentSpec spec;
    spec.name = "ext_scale: 100k-node cluster, heap vs calendar event queue";
    spec.axes = {"queue"};
    apply_standard_flags(spec, std_flags);
    cluster::ExperimentConfig cfg;
    cfg.cluster.node_count = node_count;
    cfg.cluster.queue = b.backend;
    cfg.workload = workload;
    const double duration = *closed_duration;
    spec.add_cell({{"queue", b.label}},
                  [cfg, pool, &table, duration](std::uint64_t seed) mutable {
                    cfg.seed = seed;
                    return cluster_cell(cfg, pool, table, duration);
                  });
    SweepResult one = run_sweep(spec, engine_options(std_flags));
    if (merged.cells.empty()) {
      merged = std::move(one);
    } else {
      merged.cells.push_back(std::move(one.cells.front()));
    }
  }

  // Backend invariance, enforced: identical seeds must yield identical
  // metrics regardless of which queue ordered the events.
  const CellResult& heap_cell = merged.cells.front();
  const CellResult& cal_cell = merged.cells.back();
  for (std::size_t r = 0; r < heap_cell.replications.size(); ++r) {
    const auto& hm = heap_cell.replications[r].metrics();
    const auto& cm = cal_cell.replications[r].metrics();
    if (hm != cm) {
      out << "FAIL: heap and calendar backends disagree on simulated "
             "metrics (replication "
          << r << ")\n";
      return 1;
    }
  }

  emit_sweep(merged, std_flags, out,
             "The queue backend must not change a single simulated metric —\n"
             "the rows are checked bit-identical before printing; only wall\n"
             "time may differ. Results are deterministic across --jobs by "
             "the\nengine's slot contract.");
  out << "\nOK: " << heap_cell.replications.size()
      << " replication(s) bit-identical across queue backends\n";
  return 0;
}

}  // namespace

void register_scale_benches(BenchRegistry& registry) {
  registry.add(Bench{"ext_scale",
                     "Extension — 100k-node run, heap vs calendar queue",
                     run_ext_scale});
}

}  // namespace ll::exp
