/// \file benches_cluster.cpp
/// Registered cluster benches: fig07 (the headline 4-policy × 2-workload
/// table) and fig08 (per-state time breakdown). Each declares its grid as
/// an ExperimentSpec and runs on the engine — pool construction, seeding,
/// replication, and emission all come from the shared substrate.

#include <array>

#include "cluster/experiment.hpp"
#include "exp/bench_util.hpp"
#include "exp/benches.hpp"
#include "exp/drivers.hpp"
#include "exp/registry.hpp"
#include "workload/burst_table.hpp"

namespace ll::exp {
namespace {

constexpr std::array<core::PolicyKind, 4> kAllPolicies{
    core::PolicyKind::LingerLonger, core::PolicyKind::LingerForever,
    core::PolicyKind::ImmediateEviction, core::PolicyKind::PauseAndMigrate};

struct NamedWorkload {
  const char* name;
  cluster::WorkloadSpec workload;
};

constexpr const char* kWorkload1 = "workload-1 (128 x 600 s)";
constexpr const char* kWorkload2 = "workload-2 (16 x 1800 s)";

int run_fig07(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim bench fig07",
                    "Cluster performance of LL/LF/IE/PM (paper Figure 7).");
  auto nodes = flags.add_int("nodes", 64, "cluster size");
  auto machines = flags.add_int("machines", 64, "distinct machine traces");
  const StandardFlags std_flags = add_standard_flags(flags, 5);
  parse_args(flags, "llsim bench fig07", args);

  const auto pool = TracePoolCache::shared().standard(
      static_cast<std::size_t>(*machines), 24.0, *std_flags.seed + 1);
  const workload::BurstTable& table = workload::default_burst_table();

  ExperimentSpec spec;
  spec.name = "fig07: cluster performance (4 policies x 2 workloads)";
  spec.axes = {"workload", "policy"};
  apply_standard_flags(spec, std_flags);
  for (const NamedWorkload& w :
       {NamedWorkload{kWorkload1, cluster::workload_1()},
        NamedWorkload{kWorkload2, cluster::workload_2()}}) {
    for (core::PolicyKind policy : kAllPolicies) {
      cluster::ExperimentConfig cfg;
      cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
      cfg.cluster.policy = policy;
      cfg.workload = w.workload;
      spec.add_cell({{"workload", w.name},
                     {"policy", std::string(core::to_string(policy))}},
                    [cfg, pool, &table](std::uint64_t seed) mutable {
                      cfg.seed = seed;
                      return cluster_cell(cfg, pool, table);
                    });
    }
  }

  const SweepResult sweep = run_sweep(spec, engine_options(std_flags));
  emit_sweep(sweep, std_flags, out,
             "Paper: lingering improves W1 throughput ~50-60% over eviction; "
             "all policies\ntie on the lightly loaded W2; foreground delay < "
             "0.5% throughout.");
  if (!*std_flags.json) {
    out << "\npaper W1 reference: avg 1044/1026/1531/1531, "
           "throughput 52.2/55.5/34.6/34.6\n";
  }
  return 0;
}

int run_fig08(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim bench fig08",
                    "Average per-job time in each state, per policy.");
  auto nodes = flags.add_int("nodes", 64, "cluster size");
  auto machines = flags.add_int("machines", 64, "distinct machine traces");
  const StandardFlags std_flags = add_standard_flags(flags, 1);
  parse_args(flags, "llsim bench fig08", args);

  const auto pool = TracePoolCache::shared().standard(
      static_cast<std::size_t>(*machines), 24.0, *std_flags.seed + 1);
  const workload::BurstTable& table = workload::default_burst_table();

  ExperimentSpec spec;
  spec.name = "fig08: average completion-time breakdown by state";
  spec.axes = {"workload", "policy"};
  apply_standard_flags(spec, std_flags);
  for (const NamedWorkload& w :
       {NamedWorkload{kWorkload1, cluster::workload_1()},
        NamedWorkload{kWorkload2, cluster::workload_2()}}) {
    for (core::PolicyKind policy : kAllPolicies) {
      cluster::ExperimentConfig cfg;
      cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
      cfg.cluster.policy = policy;
      cfg.workload = w.workload;
      spec.add_cell({{"workload", w.name},
                     {"policy", std::string(core::to_string(policy))}},
                    [cfg, pool, &table](std::uint64_t seed) mutable {
                      cfg.seed = seed;
                      const auto report = cluster::run_open(cfg, *pool, table);
                      RunResult r;
                      r.set("queued", report.avg_queued);
                      r.set("running", report.avg_running);
                      r.set("lingering", report.avg_lingering);
                      r.set("paused", report.avg_paused);
                      r.set("migrating", report.avg_migrating);
                      r.set("total", report.avg_queued + report.avg_running +
                                         report.avg_lingering +
                                         report.avg_paused +
                                         report.avg_migrating);
                      return r;
                    });
    }
  }

  const SweepResult sweep = run_sweep(spec, engine_options(std_flags));
  emit_sweep(sweep, std_flags, out,
             "Paper: LL/LF cut queueing dramatically on workload-1; all "
             "policies look alike\non workload-2 except for small linger "
             "fractions.");
  return 0;
}

}  // namespace

void register_cluster_benches(BenchRegistry& registry) {
  registry.add(Bench{"fig07",
                     "Fig. 7 — the headline 4-policy cluster table",
                     run_fig07});
  registry.add(Bench{"fig08", "Fig. 8 — per-state time breakdown", run_fig08});
}

}  // namespace ll::exp
