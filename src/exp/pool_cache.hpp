#pragma once

/// \file pool_cache.hpp
/// Shared trace-pool cache.
///
/// Every cluster/parallel experiment replays a pool of coarse machine
/// traces, and before the engine existed each bench binary — and each cell
/// inside it — regenerated that pool from scratch. Pools are pure functions
/// of (machines, hours, seed), so a sweep needs to build each distinct pool
/// exactly once; this cache enforces that, process-wide and thread-safe.
/// Cells hold the pool by shared_ptr-to-const: immutable, so sharing across
/// runner threads is race-free.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "trace/coarse_generator.hpp"

namespace ll::exp {

class TracePoolCache {
 public:
  using Pool = std::vector<trace::CoarseTrace>;
  using PoolPtr = std::shared_ptr<const Pool>;

  /// The standard synthetic pool (bench/common.hpp's convention, now the
  /// single definition): `hours` per machine; pools shorter than a day
  /// start at 09:00 so they cover working hours, full days at midnight.
  PoolPtr standard(std::size_t machines, double hours, std::uint64_t seed);

  /// Returns the cached pool for the key, building it via `build` exactly
  /// once per key (subsequent calls, from any thread, hit the cache).
  PoolPtr get_or_build(std::size_t machines, double hours, std::uint64_t seed,
                       const std::function<Pool()>& build);

  [[nodiscard]] std::size_t builds() const;
  [[nodiscard]] std::size_t hits() const;

  /// Drops every cached pool (tests; long-lived processes changing scale).
  void clear();

  /// Publishes exp.pool_cache.{builds,hits} counters into `registry`
  /// (absolute values at call time — call once, after the sweeps ran).
  void export_metrics(obs::MetricRegistry& registry) const;

  /// Process-wide instance shared by the engine, the CLI, and the benches.
  static TracePoolCache& shared();

 private:
  struct Key {
    std::size_t machines;
    double hours;
    std::uint64_t seed;
    bool operator<(const Key& o) const {
      if (machines != o.machines) return machines < o.machines;
      if (hours != o.hours) return hours < o.hours;
      return seed < o.seed;
    }
  };

  mutable std::mutex mu_;
  std::map<Key, PoolPtr> cache_;
  std::size_t builds_ = 0;
  std::size_t hits_ = 0;
};

}  // namespace ll::exp
