#pragma once

/// \file pool_cache.hpp
/// Shared trace-pool cache.
///
/// Every cluster/parallel experiment replays a pool of coarse machine
/// traces, and before the engine existed each bench binary — and each cell
/// inside it — regenerated that pool from scratch. Pools are pure functions
/// of (machines, hours, seed), so a sweep needs to build each distinct pool
/// exactly once; this cache enforces that, process-wide and thread-safe.
/// Cells hold the pool by shared_ptr-to-const: immutable, so sharing across
/// runner threads is race-free.
///
/// Single-flight: each key maps to a shared_future that is inserted before
/// the build starts, so two threads missing on the same key concurrently
/// never both generate the pool — the second waits on the first's future.
/// Builds for *different* keys run in parallel (the cache-wide mutex covers
/// only map bookkeeping, never a generation), which is what a long-running
/// server needs: one slow pool must not serialize unrelated requests.
///
/// The cache is bounded: at most `capacity()` pools are retained, evicting
/// the least-recently-used completed entry first, so a long-lived process
/// cannot grow it without limit. Evicted pools stay alive for as long as
/// any cell still holds the shared_ptr.

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "trace/coarse_generator.hpp"

namespace ll::exp {

class TracePoolCache {
 public:
  using Pool = std::vector<trace::CoarseTrace>;
  using PoolPtr = std::shared_ptr<const Pool>;

  /// The standard synthetic pool (bench/common.hpp's convention, now the
  /// single definition): `hours` per machine; pools shorter than a day
  /// start at 09:00 so they cover working hours, full days at midnight.
  PoolPtr standard(std::size_t machines, double hours, std::uint64_t seed);

  /// Returns the cached pool for the key, building it via `build` exactly
  /// once per key (subsequent calls, from any thread, hit the cache or wait
  /// on the in-flight build). A throwing build propagates to every waiter
  /// and leaves the key absent, so a later call retries.
  PoolPtr get_or_build(std::size_t machines, double hours, std::uint64_t seed,
                       const std::function<Pool()>& build);

  [[nodiscard]] std::size_t builds() const;
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t size() const;

  /// Bounds the number of retained pools (min 1; default kDefaultCapacity),
  /// evicting least-recently-used completed entries immediately if needed.
  /// In-flight builds are never evicted, so the cache may transiently hold
  /// more than `capacity` entries while builds overlap.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;

  static constexpr std::size_t kDefaultCapacity = 64;

  /// Drops every cached pool (tests; long-lived processes changing scale).
  void clear();

  /// Publishes exp.pool_cache.{builds,hits} counters into `registry`
  /// (absolute values at call time — call once, after the sweeps ran).
  void export_metrics(obs::MetricRegistry& registry) const;

  /// Process-wide instance shared by the engine, the CLI, and the benches.
  static TracePoolCache& shared();

 private:
  struct Key {
    std::size_t machines;
    double hours;
    std::uint64_t seed;
    bool operator<(const Key& o) const {
      if (machines != o.machines) return machines < o.machines;
      if (hours != o.hours) return hours < o.hours;
      return seed < o.seed;
    }
  };

  struct Entry {
    std::shared_future<PoolPtr> future;
    std::uint64_t last_use = 0;  ///< LRU clock tick of the last lookup
    bool ready = false;          ///< build finished (evictable)
  };

  /// Evicts ready entries, oldest last_use first, until at most
  /// `limit` entries remain (in-flight builds are skipped). Lock held.
  void evict_down_to_locked(std::size_t limit);

  mutable std::mutex mu_;
  std::map<Key, Entry> cache_;
  std::uint64_t tick_ = 0;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t builds_ = 0;
  std::size_t hits_ = 0;
};

}  // namespace ll::exp
