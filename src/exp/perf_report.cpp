#include "exp/perf_report.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "cluster/experiment.hpp"
#include "des/simulation.hpp"
#include "exp/drivers.hpp"
#include "exp/engine.hpp"
#include "exp/pool_cache.hpp"
#include "exp/spec.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "shard/experiment.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/runner.hpp"
#include "util/table.hpp"
#include "workload/burst_table.hpp"

namespace ll::exp {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Scales a probe size, with a floor so --report-scale=0.01 in tests still
/// exercises the real code paths.
std::size_t scaled(double base, double scale, std::size_t floor_items) {
  const double n = base * scale;
  return std::max(floor_items, static_cast<std::size_t>(std::llround(n)));
}

PerfEntry finish_entry(PerfEntry entry, double wall_s, std::uint64_t items) {
  entry.wall_s = wall_s;
  entry.items = items;
  entry.items_per_s = wall_s > 0.0 ? static_cast<double>(items) / wall_s : 0.0;
  return entry;
}

/// Dispatch throughput: batches of deliberately tiny tasks, where per-task
/// scheduling overhead dominates (the shape bench/micro_steal.cpp gates).
PerfEntry probe_micro_steal(std::uint64_t seed, std::size_t workers,
                            double scale) {
  const std::size_t total = scaled(200000.0, scale, 1024);
  const std::size_t batch = std::min<std::size_t>(total, 4096);
  util::TaskRunner runner(workers);
  std::vector<std::uint64_t> slots(batch, 0);
  const util::TaskRunner::Stats before = runner.stats();
  const Clock::time_point t0 = Clock::now();
  std::size_t dispatched = 0;
  while (dispatched < total) {
    const std::size_t n = std::min(batch, total - dispatched);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t* slot = &slots[i];
      const std::uint64_t x = seed + dispatched + i;
      tasks.emplace_back([slot, x] { *slot = x * 2654435761u; });
    }
    runner.run(std::move(tasks));
    dispatched += n;
  }
  const double wall = seconds_since(t0);
  const util::TaskRunner::Stats after = runner.stats();
  PerfEntry entry;
  entry.name = "micro_steal";
  entry.runner_tasks = after.executed - before.executed;
  entry.runner_steals = after.stolen - before.stolen;
  entry.runner_suspensions = after.suspensions - before.suspensions;
  return finish_entry(std::move(entry), wall, total);
}

/// Load balance: one batch whose per-task work varies ~64x (the shape real
/// sweeps have — cells of different policies and cluster sizes), where
/// stealing pays through balance rather than dispatch rate.
PerfEntry probe_micro_runner(std::uint64_t seed, std::size_t workers,
                             double scale) {
  const std::size_t count = scaled(2048.0, scale, 64);
  util::TaskRunner runner(workers);
  std::vector<std::uint64_t> slots(count, 0);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // 64 << (i % 7) spans 64..4096 inner iterations: a 64x spread.
    const std::size_t spins = std::size_t{64} << (i % 7);
    std::uint64_t* slot = &slots[i];
    const std::uint64_t x0 = seed ^ (i * 0x9e3779b97f4a7c15ull);
    tasks.emplace_back([slot, x0, spins] {
      std::uint64_t x = x0 | 1;
      for (std::size_t s = 0; s < spins; ++s) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
      }
      *slot = x;
    });
  }
  const util::TaskRunner::Stats before = runner.stats();
  const Clock::time_point t0 = Clock::now();
  runner.run(std::move(tasks));
  const double wall = seconds_since(t0);
  const util::TaskRunner::Stats after = runner.stats();
  PerfEntry entry;
  entry.name = "micro_runner";
  entry.runner_tasks = after.executed - before.executed;
  entry.runner_steals = after.stolen - before.stolen;
  entry.runner_suspensions = after.suspensions - before.suspensions;
  return finish_entry(std::move(entry), wall, count);
}

/// Fully traced DES loop: schedule-and-fire with a TracingObserver on the
/// engine, the densest per-event instrumentation the repo attaches. Tracks
/// the tracer's per-record cost trajectory (bench/micro_obs.cpp gates the
/// absolute bound; this records the trend).
PerfEntry probe_micro_obs(std::uint64_t /*seed*/, double scale) {
  const std::size_t events = scaled(300000.0, scale, 1024);
  obs::Tracer tracer;
  obs::TracingObserver observer(&tracer);
  const Clock::time_point t0 = Clock::now();
  des::Simulation sim;
  sim.set_observer(&observer);
  std::size_t fired = 0;
  for (std::size_t i = 0; i < events; ++i) {
    sim.schedule_at(static_cast<double>((i * 7919) % 104729),
                    [&fired] { ++fired; }, /*tag=*/1);
  }
  sim.run();
  const double wall = seconds_since(t0);
  if (fired != events) {
    throw std::runtime_error("micro_obs probe lost events");
  }
  PerfEntry entry;
  entry.name = "micro_obs";
  return finish_entry(std::move(entry), wall, events);
}

/// DES-core churn on the calendar backend: a hold model over a large steady
/// pending population — every fired event is replaced by a fresh schedule,
/// and every 4th iteration cancels a recently issued id and schedules a
/// substitute. bench/micro_des.cpp gates the calendar-vs-heap speedup at
/// 1M pending; this entry records the calendar backend's absolute
/// schedule/fire/cancel trajectory.
PerfEntry probe_micro_des(std::uint64_t seed, double scale) {
  const std::size_t pending = scaled(50000.0, scale, 512);
  const std::size_t fires = scaled(300000.0, scale, 2048);
  des::Simulation sim(des::Simulation::Options{des::QueueBackend::kCalendar});
  std::uint64_t state = seed | 1;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  // Continuous holds in [1, 65): a quantized lattice would pile equal
  // timestamps into a handful of calendar buckets and measure the queue's
  // documented worst case instead of its steady state.
  const auto hold_delta = [&next] {
    return 1.0 + static_cast<double>(next() >> 11) * 0x1.0p-53 * 64.0;
  };
  std::vector<des::EventId> recent(1024, des::kNoEvent);
  for (std::size_t i = 0; i < pending; ++i) {
    recent[i % recent.size()] = sim.schedule_in(hold_delta(), [] {}, 1);
  }
  const Clock::time_point t0 = Clock::now();
  for (std::size_t f = 0; f < fires; ++f) {
    sim.step();
    recent[f % recent.size()] = sim.schedule_in(hold_delta(), [] {}, 1);
    if ((f & 3u) == 3u) {
      // Cancelling an already-fired id is a harmless no-op; replacing only
      // successful cancels keeps the pending population exactly constant.
      if (sim.cancel(recent[next() % recent.size()])) {
        sim.schedule_in(hold_delta(), [] {}, 1);
      }
    }
  }
  const double wall = seconds_since(t0);
  if (sim.events_scheduled() !=
      sim.events_fired() + sim.events_cancelled() + sim.pending_count()) {
    throw std::runtime_error("micro_des probe broke event conservation");
  }
  PerfEntry entry;
  entry.name = "micro_des";
  return finish_entry(std::move(entry), wall, fires);
}

/// A fig07-shaped sweep at reduced size (2 workloads x 2 policies, 16
/// nodes) through the real engine + cluster_cell path, including the
/// engine's runner-counter accounting. This is the end-to-end number: if
/// the simulator itself regresses, this entry moves while the micro probes
/// stay put.
PerfEntry probe_fig07(std::uint64_t seed, std::size_t workers, double scale) {
  const auto reps = scaled(2.0, scale, 1);
  const auto pool = TracePoolCache::shared().standard(8, 24.0, seed + 1);
  const workload::BurstTable& table = workload::default_burst_table();

  ExperimentSpec spec;
  spec.name = "perf-report fig07 probe";
  spec.axes = {"workload", "policy"};
  spec.seed = seed;
  spec.replications = reps;
  struct NamedWorkload {
    const char* name;
    cluster::WorkloadSpec workload;
  };
  for (const NamedWorkload& w :
       {NamedWorkload{"w1", cluster::workload_1()},
        NamedWorkload{"w2", cluster::workload_2()}}) {
    for (core::PolicyKind policy : {core::PolicyKind::LingerLonger,
                                    core::PolicyKind::ImmediateEviction}) {
      cluster::ExperimentConfig cfg;
      cfg.cluster.node_count = 16;
      cfg.cluster.policy = policy;
      cfg.workload = w.workload;
      spec.add_cell({{"workload", w.name},
                     {"policy", std::string(core::to_string(policy))}},
                    [cfg, pool, &table](std::uint64_t s) mutable {
                      cfg.seed = s;
                      return cluster_cell(cfg, pool, table);
                    });
    }
  }

  obs::MetricRegistry metrics;
  EngineOptions options;
  options.jobs = workers;
  options.metrics = &metrics;
  const Clock::time_point t0 = Clock::now();
  const SweepResult sweep = run_sweep(spec, options);
  const double wall = seconds_since(t0);

  PerfEntry entry;
  entry.name = "fig07";
  entry.runner_tasks = metrics.counter("exp.runner.tasks").value();
  entry.runner_steals = metrics.counter("exp.runner.steals").value();
  entry.runner_suspensions = metrics.counter("exp.runner.suspensions").value();
  return finish_entry(std::move(entry), wall,
                      sweep.cells.size() * spec.replications);
}

/// Sharded-engine trajectory: a closed-system run on the conservative
/// time-windowed engine (4 shards on a private runner), sized so the
/// window/barrier machinery — not job arithmetic — dominates. Records
/// windows-per-second; ext_scale_sharded gates invariance and speedup, this
/// entry records the engine's absolute cost trend.
PerfEntry probe_micro_shard(std::uint64_t seed, double scale) {
  const std::size_t nodes = scaled(2000.0, scale, 64);
  cluster::ExperimentConfig cfg;
  cfg.cluster.node_count = nodes;
  cfg.cluster.queue = des::QueueBackend::kCalendar;
  cfg.workload.jobs = std::max<std::size_t>(1, nodes / 4);
  cfg.workload.demand = 600.0;
  cfg.seed = seed;
  const auto pool = TracePoolCache::shared().standard(64, 24.0, seed + 1);
  const workload::BurstTable& table = workload::default_burst_table();

  shard::ShardStats stats;
  shard::RunHooks hooks;
  hooks.on_finish = [&stats](shard::ShardedClusterSim& sim) {
    stats = sim.stats();
  };
  util::TaskRunner runner(4);
  const Clock::time_point t0 = Clock::now();
  const cluster::ClusterReport report =
      shard::run_closed(cfg, 4, *pool, table, 1800.0, &runner, &hooks);
  const double wall = seconds_since(t0);
  if (report.completed == 0 || stats.windows == 0) {
    throw std::runtime_error("micro_shard probe did no work");
  }
  PerfEntry entry;
  entry.name = "micro_shard";
  const util::TaskRunner::Stats rs = runner.stats();
  entry.runner_tasks = rs.executed;
  entry.runner_steals = rs.stolen;
  entry.runner_suspensions = rs.suspensions;
  return finish_entry(std::move(entry), wall, stats.windows);
}

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string fmt3(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

PerfReport run_perf_report(std::uint64_t seed, std::size_t workers,
                           double scale) {
  PerfReport report;
  report.seed = seed;
  report.workers = workers == 0 ? util::TaskRunner::shared().thread_count()
                                : workers;
  report.scale = scale;
  report.entries.push_back(probe_micro_steal(seed, report.workers, scale));
  report.entries.push_back(probe_micro_obs(seed, scale));
  report.entries.push_back(probe_micro_des(seed, scale));
  report.entries.push_back(probe_micro_runner(seed, report.workers, scale));
  report.entries.push_back(probe_fig07(seed, report.workers, scale));
  report.entries.push_back(probe_micro_shard(seed, scale));
  return report;
}

void write_perf_report_json(const PerfReport& report, std::ostream& out) {
  out << "{\n"
      << "  \"tool\": \"llsim bench --report\",\n"
      << "  \"version\": \"" << util::json::escape(obs::current_git_describe())
      << "\",\n"
      << "  \"seed\": " << report.seed << ",\n"
      << "  \"config\": {\"workers\": " << report.workers
      << ", \"scale\": " << fmt(report.scale) << "},\n"
      << "  \"entries\": [\n";
  for (std::size_t i = 0; i < report.entries.size(); ++i) {
    const PerfEntry& e = report.entries[i];
    out << "    {\"name\": \"" << util::json::escape(e.name)
        << "\", \"wall_s\": " << fmt(e.wall_s) << ", \"items\": " << e.items
        << ", \"items_per_s\": " << fmt(e.items_per_s)
        << ", \"runner_tasks\": " << e.runner_tasks
        << ", \"runner_steals\": " << e.runner_steals
        << ", \"runner_suspensions\": " << e.runner_suspensions << "}"
        << (i + 1 < report.entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int check_perf_report(const PerfReport& current,
                      const std::string& baseline_json, double tolerance,
                      std::ostream& out, bool require_clean_baseline) {
  namespace json = util::json;
  struct BaselineEntry {
    double wall_s = 0.0;
    std::uint64_t items = 0;
    bool has_items = false;
  };
  std::map<std::string, BaselineEntry> baseline;
  bool same_shape = false;  // baseline ran the identical probe sizes
  try {
    const json::Value doc = json::parse(baseline_json);
    if (doc.kind() != json::Kind::kObject) {
      throw std::runtime_error("top level is not an object");
    }
    // A baseline stamped from a dirty working tree is not reproducible —
    // nobody can check out the bytes it measured. With
    // require_clean_baseline (the CI bench-report job's mode) that is a
    // loud failure; otherwise a warning, so local --check against a
    // just-generated baseline keeps working mid-edit.
    const json::Value* version = doc.find("version");
    if (version && version->kind() == json::Kind::kString) {
      const std::string& v = version->as_string();
      constexpr std::string_view kDirty = "-dirty";
      if (v.size() >= kDirty.size() &&
          v.compare(v.size() - kDirty.size(), kDirty.size(), kDirty) == 0) {
        if (require_clean_baseline) {
          out << "perf-report check: FAIL — baseline version '" << v
              << "' was generated from a dirty tree; regenerate the "
                 "committed baseline from a clean checkout "
                 "(llsim bench --report)\n";
          return 1;
        }
        out << "perf-report check: warning — baseline version '" << v
            << "' was generated from a dirty tree\n";
      }
    }
    const json::Value* entries = doc.find("entries");
    if (!entries || entries->kind() != json::Kind::kArray) {
      throw std::runtime_error("missing \"entries\" array");
    }
    for (const json::Value& e : entries->as_array()) {
      const json::Value* name = e.find("name");
      const json::Value* wall = e.find("wall_s");
      if (!name || name->kind() != json::Kind::kString || !wall ||
          wall->kind() != json::Kind::kNumber) {
        throw std::runtime_error("entry lacks string name / numeric wall_s");
      }
      BaselineEntry be;
      be.wall_s = wall->as_number();
      if (const json::Value* items = e.find("items");
          items && items->kind() == json::Kind::kNumber) {
        be.items = items->as_u64();
        be.has_items = true;
      }
      baseline[name->as_string()] = be;
    }
    // Structural fields (items) are a pure function of (seed, scale,
    // workers); compare them exactly only when the two reports ran the
    // same configuration. version and wall_s jitter are never diffed —
    // wall time is ratio-gated, version is informational.
    const json::Value* seed = doc.find("seed");
    const json::Value* config = doc.find("config");
    if (seed && seed->kind() == json::Kind::kNumber && config &&
        config->kind() == json::Kind::kObject) {
      const json::Value* workers = config->find("workers");
      const json::Value* scale = config->find("scale");
      same_shape = workers && workers->kind() == json::Kind::kNumber &&
                   scale && scale->kind() == json::Kind::kNumber &&
                   seed->as_u64() == current.seed &&
                   workers->as_u64() == current.workers &&
                   scale->as_number() == current.scale;
    }
  } catch (const std::exception& e) {
    out << "perf-report check: cannot parse baseline: " << e.what() << "\n";
    return 2;
  }

  bool breached = false;
  util::Table table(
      {"entry", "baseline wall s", "current wall s", "ratio", "verdict"});
  for (const PerfEntry& e : current.entries) {
    const auto it = baseline.find(e.name);
    if (it == baseline.end()) {
      table.add_row({e.name, "-", fmt3(e.wall_s), "-",
                     "FAIL (not in baseline — regenerate it)"});
      breached = true;
      continue;
    }
    const double base = it->second.wall_s;
    // Sub-microsecond baselines carry no signal; any positive wall passes.
    const double ratio = base > 1e-6 ? e.wall_s / base : 0.0;
    const bool slow = ratio > tolerance;
    const bool items_drift =
        same_shape && it->second.has_items && it->second.items != e.items;
    std::string verdict = "ok";
    if (slow) {
      verdict = "FAIL (slower than tolerance)";
    } else if (items_drift) {
      verdict = "FAIL (items " + std::to_string(e.items) + " != baseline " +
                std::to_string(it->second.items) + ")";
    }
    table.add_row({e.name, fmt3(base), fmt3(e.wall_s), fmt3(ratio), verdict});
    if (slow || items_drift) breached = true;
    baseline.erase(it);
  }
  for (const auto& [name, be] : baseline) {
    table.add_row({name, fmt3(be.wall_s), "-", "-",
                   "FAIL (baseline entry not produced)"});
    breached = true;
  }
  out << "perf-report check (tolerance " << fmt3(tolerance) << "x):\n"
      << table.render();
  out << (breached ? "perf-report check: FAIL\n" : "perf-report check: ok\n");
  return breached ? 1 : 0;
}

int run_perf_report_cli(const std::vector<std::string>& args,
                        std::ostream& out, std::ostream& err) {
  util::Flags flags("llsim bench --report",
                    "Run the perf-trajectory probes and write a "
                    "schema-validated BENCH_*.json report.");
  auto out_path = flags.add_string("out", "BENCH_cpp.json",
                                   "report output path");
  auto check_path = flags.add_string(
      "check", "", "baseline report to diff wall times against");
  auto tolerance = flags.add_double(
      "tolerance", 10.0,
      "max allowed current/baseline wall-time ratio per entry");
  auto scale = flags.add_double(
      "report-scale", 1.0, "probe-size multiplier (tests shrink it)");
  auto workers = flags.add_int("workers", 0,
                               "runner workers (0 = hardware concurrency)");
  auto seed = flags.add_uint64("seed", 42, "probe task-graph seed");
  auto require_clean = flags.add_bool(
      "require-clean-baseline", false,
      "fail the check when the baseline's version carries a -dirty suffix "
      "(the CI mode — committed baselines must come from a clean tree)");
  try {
    std::vector<const char*> argv{"llsim bench --report"};
    for (const std::string& a : args) argv.push_back(a.c_str());
    flags.parse(static_cast<int>(argv.size()), argv.data());
  } catch (const std::exception& e) {
    err << "llsim bench --report: " << e.what() << "\n";
    return 2;
  }

  const PerfReport report = run_perf_report(
      *seed, static_cast<std::size_t>(*workers), *scale);

  std::ofstream file(*out_path);
  if (!file) {
    err << "llsim bench --report: cannot open " << *out_path
        << " for writing\n";
    return 2;
  }
  write_perf_report_json(report, file);

  util::Table table({"entry", "wall s", "items", "items/s", "runner tasks",
                     "steals", "suspensions"});
  for (const PerfEntry& e : report.entries) {
    table.add_row({e.name, fmt3(e.wall_s), std::to_string(e.items),
                   fmt(e.items_per_s), std::to_string(e.runner_tasks),
                   std::to_string(e.runner_steals),
                   std::to_string(e.runner_suspensions)});
  }
  out << "perf report (seed " << report.seed << ", workers " << report.workers
      << ", scale " << fmt(report.scale) << "):\n"
      << table.render() << "wrote " << *out_path << "\n";

  if (check_path->empty()) return 0;
  std::ifstream baseline_file(*check_path);
  if (!baseline_file) {
    err << "llsim bench --report: cannot open baseline " << *check_path
        << "\n";
    return 2;
  }
  std::ostringstream baseline;
  baseline << baseline_file.rdbuf();
  return check_perf_report(report, baseline.str(), *tolerance, out,
                           *require_clean);
}

}  // namespace ll::exp
