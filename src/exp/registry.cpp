#include "exp/registry.hpp"

#include <algorithm>
#include <iostream>
#include <ostream>

#include "exp/benches.hpp"

namespace ll::exp {

BenchRegistry& BenchRegistry::instance() {
  static BenchRegistry* registry = [] {
    auto* r = new BenchRegistry;
    register_cluster_benches(*r);
    register_parallel_benches(*r);
    register_ablation_benches(*r);
    return r;
  }();
  return *registry;
}

void BenchRegistry::add(Bench bench) { benches_.push_back(std::move(bench)); }

const Bench* BenchRegistry::find(std::string_view name) const {
  for (const Bench& b : benches_) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

std::vector<const Bench*> BenchRegistry::list() const {
  std::vector<const Bench*> out;
  out.reserve(benches_.size());
  for (const Bench& b : benches_) out.push_back(&b);
  std::sort(out.begin(), out.end(),
            [](const Bench* a, const Bench* b) { return a->name < b->name; });
  return out;
}

int run_bench_cli(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err) {
  const BenchRegistry& registry = BenchRegistry::instance();
  if (args.empty() || args[0] == "--list" || args[0] == "list") {
    out << "Registered benches (run with: llsim bench <name> [flags], "
           "--help for each):\n";
    for (const Bench* b : registry.list()) {
      out << "  " << b->name;
      for (std::size_t i = b->name.size(); i < 20; ++i) out << ' ';
      out << b->summary << "\n";
    }
    return 0;
  }
  const Bench* bench = registry.find(args[0]);
  if (!bench) {
    err << "llsim bench: unknown bench '" << args[0]
        << "' (see llsim bench --list)\n";
    return 2;
  }
  return bench->run(std::vector<std::string>(args.begin() + 1, args.end()),
                    out);
}

int bench_main(std::string_view name, int argc, char** argv) {
  const Bench* bench = BenchRegistry::instance().find(name);
  if (!bench) {
    std::cerr << "bench '" << name << "' is not registered\n";
    return 2;
  }
  return bench->run(std::vector<std::string>(argv + 1, argv + argc),
                    std::cout);
}

}  // namespace ll::exp
