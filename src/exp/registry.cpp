#include "exp/registry.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <ostream>
#include <stdexcept>

#include "exp/benches.hpp"
#include "exp/perf_report.hpp"
#include "exp/pool_cache.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace ll::exp {

BenchRegistry& BenchRegistry::instance() {
  static BenchRegistry* registry = [] {
    auto* r = new BenchRegistry;
    register_cluster_benches(*r);
    register_parallel_benches(*r);
    register_ablation_benches(*r);
    register_fault_benches(*r);
    register_scale_benches(*r);
    return r;
  }();
  return *registry;
}

void BenchRegistry::add(Bench bench) { benches_.push_back(std::move(bench)); }

const Bench* BenchRegistry::find(std::string_view name) const {
  for (const Bench& b : benches_) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

std::vector<const Bench*> BenchRegistry::list() const {
  std::vector<const Bench*> out;
  out.reserve(benches_.size());
  for (const Bench& b : benches_) out.push_back(&b);
  std::sort(out.begin(), out.end(),
            [](const Bench* a, const Bench* b) { return a->name < b->name; });
  return out;
}

int run_bench_cli(const std::vector<std::string>& raw_args, std::ostream& out,
                  std::ostream& err) {
  // Peel --metrics-out=FILE before dispatch: it is a cross-bench flag (every
  // registered bench gets a run manifest without re-implementing the
  // plumbing), so the bench's own flag parser must never see it.
  std::string metrics_out;
  std::vector<std::string> args;
  args.reserve(raw_args.size());
  for (const std::string& a : raw_args) {
    constexpr std::string_view kFlag = "--metrics-out=";
    if (a.rfind(kFlag, 0) == 0) {
      metrics_out = a.substr(kFlag.size());
    } else {
      args.push_back(a);
    }
  }

  // `llsim bench --report` is not a registered bench but the
  // perf-trajectory harness (exp/perf_report.hpp) — dispatch before the
  // registry lookup, like --list.
  if (!args.empty() && args[0] == "--report") {
    return run_perf_report_cli(
        std::vector<std::string>(args.begin() + 1, args.end()), out, err);
  }

  const BenchRegistry& registry = BenchRegistry::instance();
  if (args.empty() || args[0] == "--list" || args[0] == "list") {
    out << "Registered benches (run with: llsim bench <name> [flags], "
           "--help for each):\n";
    for (const Bench* b : registry.list()) {
      out << "  " << b->name;
      for (std::size_t i = b->name.size(); i < 20; ++i) out << ' ';
      out << b->summary << "\n";
    }
    out << "  --report            perf-trajectory probes -> BENCH_cpp.json "
           "(--check=FILE diffs a baseline)\n";
    return 0;
  }
  const Bench* bench = registry.find(args[0]);
  if (!bench) {
    err << "llsim bench: unknown bench '" << args[0]
        << "' (see llsim bench --list)\n";
    return 2;
  }
  const int rc =
      bench->run(std::vector<std::string>(args.begin() + 1, args.end()), out);
  if (rc == 0 && !metrics_out.empty()) {
    obs::MetricRegistry reg;
    TracePoolCache::shared().export_metrics(reg);
    obs::RunManifest manifest;
    manifest.tool = "llsim bench " + args[0];
    manifest.version = obs::current_git_describe();
    manifest.config = {{"bench", args[0]}};
    manifest.metrics = reg.snapshot(0.0);
    std::ofstream file(metrics_out);
    if (!file) {
      throw std::runtime_error("cannot open " + metrics_out +
                               " for writing");
    }
    obs::write_manifest_json(manifest, file);
    out << "wrote run manifest to " << metrics_out << "\n";
  }
  return rc;
}

int bench_main(std::string_view name, int argc, char** argv) {
  const Bench* bench = BenchRegistry::instance().find(name);
  if (!bench) {
    std::cerr << "bench '" << name << "' is not registered\n";
    return 2;
  }
  return bench->run(std::vector<std::string>(argv + 1, argv + argc),
                    std::cout);
}

}  // namespace ll::exp
