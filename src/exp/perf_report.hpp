#pragma once

/// \file perf_report.hpp
/// Perf-trajectory harness behind `llsim bench --report`: a fixed set of
/// timed probes over the repo's hot paths (runner dispatch, uneven-batch
/// stealing, instrumented DES loop, a fig07-shaped sweep) serialized as a
/// schema-validated JSON report (docs/bench_report.schema.json). The
/// committed BENCH_cpp.json at the repo root is the baseline; CI
/// regenerates the report and diffs wall times against it with a generous
/// tolerance, so the performance trajectory of the simulator is tracked in
/// the repo history instead of anecdotes.
///
/// Probes are deterministic in *work* (same seed → same task graph) but not
/// in wall time; comparisons are therefore ratio-with-tolerance, never
/// equality, and the default tolerance is wide enough to absorb
/// machine-to-machine variance while still catching order-of-magnitude
/// regressions (a lost fast path, an accidental O(n^2)).

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ll::exp {

/// One timed probe: wall seconds, logical items processed (tasks, events,
/// replications — the probe's own unit), and the work-stealing runner's
/// counter deltas where a runner is involved (zero otherwise).
struct PerfEntry {
  std::string name;
  double wall_s = 0.0;
  std::uint64_t items = 0;
  double items_per_s = 0.0;
  std::uint64_t runner_tasks = 0;
  std::uint64_t runner_steals = 0;
  std::uint64_t runner_suspensions = 0;
};

struct PerfReport {
  std::uint64_t seed = 42;
  std::size_t workers = 0;  ///< resolved worker count (never 0)
  double scale = 1.0;       ///< probe-size multiplier (tests shrink it)
  std::vector<PerfEntry> entries;
};

/// Runs all probes. `workers == 0` selects hardware concurrency; `scale`
/// multiplies every probe's problem size (>= some small floor each).
[[nodiscard]] PerfReport run_perf_report(std::uint64_t seed,
                                         std::size_t workers, double scale);

/// Serializes the report in the shape docs/bench_report.schema.json pins:
/// {tool, version, seed, config:{workers, scale}, entries:[...]}.
void write_perf_report_json(const PerfReport& report, std::ostream& out);

/// Compares `current` against a baseline report (JSON text). Fails — with
/// a per-entry diagnostic table on `out` — when an entry present in both
/// got slower than `tolerance` x the baseline wall time, when either side
/// has an entry the other lacks, or when the two reports ran the same
/// (seed, workers, scale) but an entry's structural `items` count drifted.
/// `version` and raw wall_s jitter are never diffed (wall time is only
/// ratio-gated); with `require_clean_baseline`, a baseline whose version
/// carries a "-dirty" suffix fails outright — committed baselines must be
/// regenerated from a clean checkout. Faster is never a failure. Returns 0
/// on pass, 1 on breach, 2 on an unparseable baseline.
[[nodiscard]] int check_perf_report(const PerfReport& current,
                                    const std::string& baseline_json,
                                    double tolerance, std::ostream& out,
                                    bool require_clean_baseline = false);

/// `llsim bench --report` entry: runs the probes, writes --out
/// (default BENCH_cpp.json), and optionally diffs against --check=FILE
/// with --tolerance. Returns the check's exit code (0 when no --check).
int run_perf_report_cli(const std::vector<std::string>& args,
                        std::ostream& out, std::ostream& err);

}  // namespace ll::exp
