/// \file benches_fault.cpp
/// Registered fault-robustness extension: ext_fault_robustness sweeps crash
/// rate x checkpoint interval x scheduling policy and reports goodput,
/// work lost, and restart counts next to the usual Figure-7 metrics.

#include <string>

#include "cluster/experiment.hpp"
#include "core/policy.hpp"
#include "exp/bench_util.hpp"
#include "exp/benches.hpp"
#include "exp/drivers.hpp"
#include "exp/registry.hpp"
#include "fault/fault_spec.hpp"
#include "util/table.hpp"
#include "workload/burst_table.hpp"

namespace ll::exp {
namespace {

int run_ext_fault_robustness(const std::vector<std::string>& args,
                             std::ostream& out) {
  util::Flags flags("llsim bench ext_fault_robustness",
                    "Policy robustness under node crashes, link drops, and "
                    "checkpointing.");
  auto nodes = flags.add_int("nodes", 16, "cluster size");
  auto machines = flags.add_int("machines", 16, "distinct machine traces");
  auto drop = flags.add_double("drop", 0.05,
                               "migration-link drop probability (faulty rows)");
  const StandardFlags std_flags = add_standard_flags(flags, 1);
  parse_args(flags, "llsim bench ext_fault_robustness", args);

  const auto pool = TracePoolCache::shared().standard(
      static_cast<std::size_t>(*machines), 24.0, *std_flags.seed + 1);
  const workload::BurstTable& table = workload::default_burst_table();

  struct MtbfSpec {
    const char* label;
    double per_node_mtbf;  // seconds; 0 = fault-free reference
  };
  struct CkptSpec {
    const char* label;
    double interval;  // seconds; 0 = no checkpointing
  };

  ExperimentSpec spec;
  spec.name = "ext_fault_robustness: goodput under crashes and checkpoints";
  spec.axes = {"policy", "mtbf", "checkpoint"};
  apply_standard_flags(spec, std_flags);
  for (core::PolicyKind policy :
       {core::PolicyKind::LingerLonger, core::PolicyKind::LingerForever,
        core::PolicyKind::ImmediateEviction,
        core::PolicyKind::PauseAndMigrate}) {
    for (const MtbfSpec& mtbf : {MtbfSpec{"none", 0.0}, MtbfSpec{"2 h", 7200.0},
                                 MtbfSpec{"30 min", 1800.0}}) {
      for (const CkptSpec& ckpt :
           {CkptSpec{"off", 0.0}, CkptSpec{"600 s", 600.0}}) {
        // mtbf=none x checkpoint=off is the fig07 reference row; the
        // fault-free-with-checkpoint row isolates pure checkpoint overhead.
        cluster::ExperimentConfig cfg;
        cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
        cfg.cluster.policy = policy;
        cfg.workload = cluster::WorkloadSpec{
            static_cast<std::size_t>(*nodes) * 2, 600.0};
        if (mtbf.per_node_mtbf > 0.0) {
          // Cluster-wide crash rate: node_count / per-node MTBF.
          cfg.cluster.faults.crash.arrivals = fault::ArrivalProcess::exponential(
              static_cast<double>(cfg.cluster.node_count) / mtbf.per_node_mtbf);
          cfg.cluster.faults.link.drop_probability = *drop;
        }
        cfg.cluster.checkpoint.interval = ckpt.interval;
        spec.add_cell({{"policy", std::string(core::to_string(policy))},
                       {"mtbf", mtbf.label},
                       {"checkpoint", ckpt.label}},
                      [cfg, pool, &table](std::uint64_t seed) mutable {
                        cfg.seed = seed;
                        return fault_cell(cfg, pool, table);
                      });
      }
    }
  }

  const SweepResult sweep = run_sweep(spec, engine_options(std_flags));
  emit_sweep(sweep, std_flags, out,
             "Checkpointing trades steady-state overhead for bounded work "
             "loss; eviction-based\npolicies lose less to crashes (smaller "
             "resident footprint) but deliver less overall.");
  return 0;
}

}  // namespace

void register_fault_benches(BenchRegistry& registry) {
  registry.add(
      Bench{"ext_fault_robustness",
            "Extension — policy robustness under crashes/checkpointing",
            run_ext_fault_robustness});
}

}  // namespace ll::exp
