#pragma once

/// \file registry.hpp
/// The benchx registry: every figure/ablation sweep registers a name, a
/// one-line summary, and an entry point taking (args, out). `llsim bench
/// <name>` and the thin standalone wrappers under bench/ dispatch through
/// it, replacing the per-binary main() boilerplate (flag setup, pool
/// construction, policy iteration, table/CSV emission) the 24 hand-rolled
/// benches duplicated.

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ll::exp {

struct Bench {
  std::string name;     // e.g. "fig07"
  std::string summary;  // one line for `llsim bench --list`
  std::function<int(const std::vector<std::string>& args, std::ostream& out)>
      run;
};

class BenchRegistry {
 public:
  /// The process-wide registry, pre-populated with the built-in benches.
  static BenchRegistry& instance();

  void add(Bench bench);
  [[nodiscard]] const Bench* find(std::string_view name) const;
  /// All benches, sorted by name.
  [[nodiscard]] std::vector<const Bench*> list() const;

 private:
  std::vector<Bench> benches_;
};

/// `llsim bench` entry: `--list` (or no args) lists the registry; otherwise
/// args[0] names the bench and the rest are its flags. Returns the bench's
/// exit code; 2 on unknown names.
int run_bench_cli(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err);

/// main() body for the thin standalone wrappers under bench/:
/// `bench_main("fig07", argc, argv)` forwards argv to the registered bench.
int bench_main(std::string_view name, int argc, char** argv);

}  // namespace ll::exp
