#pragma once

/// \file spec.hpp
/// Declarative sweep model: an ExperimentSpec describes a grid of cells
/// (policy × workload × overrides × …) and how often each is replicated;
/// the engine (engine.hpp) executes it on the bounded runner.
///
/// Seeding discipline: every (cell, replication) derives its seed from the
/// spec's master seed as Stream(seed).fork("cell", c).fork("replication", r)
/// — a pure function of the grid position, so adding cells or changing the
/// execution order/thread count never perturbs the draws of existing cells
/// (the same discipline rng.hpp applies inside one simulation).

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exp/result.hpp"
#include "rng/rng.hpp"

namespace ll::exp {

struct CellSpec {
  /// Axis labels identifying the cell, e.g. {"workload","workload-1"},
  /// {"policy","LL"}. Keys should match ExperimentSpec::axes.
  std::vector<std::pair<std::string, std::string>> labels;
  /// Runs one replication. Must be thread-safe (each call builds its own
  /// simulator from the seed) and must not depend on wall clock or shared
  /// mutable state — the engine's determinism guarantee rests on this.
  /// The engine invokes a fresh COPY of this callable per (cell,
  /// replication), so mutating by-value captures is safe; anything captured
  /// by reference must stay immutable for the sweep's duration.
  std::function<RunResult(std::uint64_t seed)> run;
};

struct ExperimentSpec {
  std::string name;
  std::uint64_t seed = 42;
  /// Replications per cell (each with its own derived seed).
  std::size_t replications = 1;
  /// Label keys, in grid order; sinks emit one column per axis.
  std::vector<std::string> axes;
  std::vector<CellSpec> cells;

  /// Appends a cell; returns it for further setup.
  CellSpec& add_cell(
      std::vector<std::pair<std::string, std::string>> labels,
      std::function<RunResult(std::uint64_t seed)> run);
};

/// The engine's per-replication seed derivation (exposed for tests and for
/// consumers that need to reproduce a single cell outside a sweep).
[[nodiscard]] std::uint64_t replication_seed(std::uint64_t master_seed,
                                             std::size_t cell,
                                             std::size_t replication);

}  // namespace ll::exp
