#include "exp/pool_cache.hpp"

#include "rng/rng.hpp"

namespace ll::exp {

TracePoolCache::PoolPtr TracePoolCache::standard(std::size_t machines,
                                                 double hours,
                                                 std::uint64_t seed) {
  return get_or_build(machines, hours, seed, [&] {
    trace::CoarseGenConfig gen;
    gen.duration = hours * 3600.0;
    gen.start_hour = hours < 24.0 ? 9.0 : 0.0;
    return trace::generate_machine_pool(gen, machines, rng::Stream(seed));
  });
}

TracePoolCache::PoolPtr TracePoolCache::get_or_build(
    std::size_t machines, double hours, std::uint64_t seed,
    const std::function<Pool()>& build) {
  const Key key{machines, hours, seed};
  // Holding the lock across the build keeps "exactly once" trivially true;
  // pools build in milliseconds relative to the sweeps that consume them.
  std::scoped_lock lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++builds_;
  PoolPtr pool = std::make_shared<const Pool>(build());
  cache_.emplace(key, pool);
  return pool;
}

std::size_t TracePoolCache::builds() const {
  std::scoped_lock lock(mu_);
  return builds_;
}

std::size_t TracePoolCache::hits() const {
  std::scoped_lock lock(mu_);
  return hits_;
}

void TracePoolCache::clear() {
  std::scoped_lock lock(mu_);
  cache_.clear();
}

void TracePoolCache::export_metrics(obs::MetricRegistry& registry) const {
  std::scoped_lock lock(mu_);
  registry.counter("exp.pool_cache.builds").add(builds_);
  registry.counter("exp.pool_cache.hits").add(hits_);
}

TracePoolCache& TracePoolCache::shared() {
  static TracePoolCache cache;
  return cache;
}

}  // namespace ll::exp
