#include "exp/pool_cache.hpp"

#include <algorithm>
#include <utility>

#include "rng/rng.hpp"

namespace ll::exp {

TracePoolCache::PoolPtr TracePoolCache::standard(std::size_t machines,
                                                 double hours,
                                                 std::uint64_t seed) {
  return get_or_build(machines, hours, seed, [&] {
    trace::CoarseGenConfig gen;
    gen.duration = hours * 3600.0;
    gen.start_hour = hours < 24.0 ? 9.0 : 0.0;
    return trace::generate_machine_pool(gen, machines, rng::Stream(seed));
  });
}

TracePoolCache::PoolPtr TracePoolCache::get_or_build(
    std::size_t machines, double hours, std::uint64_t seed,
    const std::function<Pool()>& build) {
  const Key key{machines, hours, seed};
  std::promise<PoolPtr> promise;
  std::shared_future<PoolPtr> future;
  bool builder = false;
  {
    std::scoped_lock lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      // Hit — including an in-flight build: the waiter below blocks on the
      // future without regenerating, which is the double-generation fix.
      ++hits_;
      it->second.last_use = ++tick_;
      future = it->second.future;
    } else {
      ++builds_;
      builder = true;
      future = promise.get_future().share();
      // Make room before inserting so the steady-state size stays bounded.
      if (cache_.size() >= capacity_) evict_down_to_locked(capacity_ - 1);
      cache_.emplace(key, Entry{future, ++tick_, /*ready=*/false});
    }
  }
  if (!builder) return future.get();  // rethrows a failed build

  try {
    PoolPtr pool = std::make_shared<const Pool>(build());
    promise.set_value(pool);
    std::scoped_lock lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) it->second.ready = true;
    return pool;
  } catch (...) {
    // Propagate to every waiter, then drop the key so a later call retries
    // instead of caching the failure forever.
    promise.set_exception(std::current_exception());
    std::scoped_lock lock(mu_);
    cache_.erase(key);
    throw;
  }
}

void TracePoolCache::evict_down_to_locked(std::size_t limit) {
  while (cache_.size() > limit) {
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (!it->second.ready) continue;  // never evict an in-flight build
      if (victim == cache_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == cache_.end()) return;  // everything is in flight
    cache_.erase(victim);
  }
}

std::size_t TracePoolCache::builds() const {
  std::scoped_lock lock(mu_);
  return builds_;
}

std::size_t TracePoolCache::hits() const {
  std::scoped_lock lock(mu_);
  return hits_;
}

std::size_t TracePoolCache::size() const {
  std::scoped_lock lock(mu_);
  return cache_.size();
}

void TracePoolCache::set_capacity(std::size_t capacity) {
  std::scoped_lock lock(mu_);
  capacity_ = std::max<std::size_t>(1, capacity);
  evict_down_to_locked(capacity_);
}

std::size_t TracePoolCache::capacity() const {
  std::scoped_lock lock(mu_);
  return capacity_;
}

void TracePoolCache::clear() {
  std::scoped_lock lock(mu_);
  cache_.clear();
}

void TracePoolCache::export_metrics(obs::MetricRegistry& registry) const {
  std::scoped_lock lock(mu_);
  registry.counter("exp.pool_cache.builds").add(builds_);
  registry.counter("exp.pool_cache.hits").add(hits_);
}

TracePoolCache& TracePoolCache::shared() {
  static TracePoolCache cache;
  return cache;
}

}  // namespace ll::exp
