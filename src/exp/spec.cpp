#include "exp/spec.hpp"

namespace ll::exp {

CellSpec& ExperimentSpec::add_cell(
    std::vector<std::pair<std::string, std::string>> labels,
    std::function<RunResult(std::uint64_t seed)> run) {
  cells.push_back(CellSpec{std::move(labels), std::move(run)});
  return cells.back();
}

std::uint64_t replication_seed(std::uint64_t master_seed, std::size_t cell,
                               std::size_t replication) {
  return rng::Stream(master_seed)
      .fork("cell", cell)
      .fork("replication", replication)
      .seed();
}

}  // namespace ll::exp
