#pragma once

/// \file benches.hpp
/// Internal: registration hooks for the built-in benches, grouped by the
/// subsystem they exercise. Called once by BenchRegistry::instance() —
/// explicit registration instead of static-initializer tricks, which the
/// linker may drop from a static library.

namespace ll::exp {

class BenchRegistry;

void register_cluster_benches(BenchRegistry& registry);
void register_parallel_benches(BenchRegistry& registry);
void register_ablation_benches(BenchRegistry& registry);
void register_fault_benches(BenchRegistry& registry);
void register_scale_benches(BenchRegistry& registry);

}  // namespace ll::exp
