/// \file benches_ablation.cpp
/// Registered ablations of DESIGN.md §5's design decisions, on the engine:
/// abl_pause_time, abl_predictor, abl_ctx_switch, abl_migration_cost.

#include <algorithm>

#include "cluster/experiment.hpp"
#include "core/cost_model.hpp"
#include "exp/bench_util.hpp"
#include "exp/benches.hpp"
#include "exp/drivers.hpp"
#include "exp/registry.hpp"
#include "node/fine_node_sim.hpp"
#include "util/table.hpp"
#include "workload/burst_table.hpp"

namespace ll::exp {
namespace {

int run_abl_pause_time(const std::vector<std::string>& args,
                       std::ostream& out) {
  util::Flags flags("llsim bench abl_pause_time",
                    "Pause-and-Migrate grace-period sweep.");
  auto nodes = flags.add_int("nodes", 32, "cluster size");
  auto machines = flags.add_int("machines", 32, "distinct machine traces");
  const StandardFlags std_flags = add_standard_flags(flags, 1);
  parse_args(flags, "llsim bench abl_pause_time", args);

  const auto pool = TracePoolCache::shared().standard(
      static_cast<std::size_t>(*machines), 24.0, *std_flags.seed + 1);
  const workload::BurstTable& table = workload::default_burst_table();

  ExperimentSpec spec;
  spec.name = "abl_pause_time: PM pause time";
  spec.axes = {"pause_s"};
  apply_standard_flags(spec, std_flags);
  cluster::ExperimentConfig base;
  base.cluster.node_count = static_cast<std::size_t>(*nodes);
  base.workload = cluster::WorkloadSpec{64, 600.0};
  for (double pause : {10.0, 30.0, 60.0, 120.0, 300.0, 900.0}) {
    cluster::ExperimentConfig cfg = base;
    cfg.cluster.policy = core::PolicyKind::PauseAndMigrate;
    cfg.cluster.policy_params.pause_time = pause;
    spec.add_cell({{"pause_s", util::fixed(pause, 0)}},
                  [cfg, pool, &table](std::uint64_t seed) mutable {
                    cfg.seed = seed;
                    return cluster_cell(cfg, pool, table);
                  });
  }
  // Reference row: Linger-Longer on the same configuration.
  {
    cluster::ExperimentConfig cfg = base;
    cfg.cluster.policy = core::PolicyKind::LingerLonger;
    spec.add_cell({{"pause_s", "LL reference"}},
                  [cfg, pool, &table](std::uint64_t seed) mutable {
                    cfg.seed = seed;
                    return cluster_cell(cfg, pool, table);
                  });
  }

  const SweepResult sweep = run_sweep(spec, engine_options(std_flags));
  emit_sweep(sweep, std_flags, out,
             "Repo default is 60 s (the recruitment threshold); short pauses "
             "migrate\nneedlessly, long pauses strand suspended jobs.");
  return 0;
}

int run_abl_predictor(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim bench abl_predictor",
                    "Linger-duration scale sweep around the 2T rule.");
  auto nodes = flags.add_int("nodes", 32, "cluster size");
  auto machines = flags.add_int("machines", 32, "distinct machine traces");
  const StandardFlags std_flags = add_standard_flags(flags, 1);
  parse_args(flags, "llsim bench abl_predictor", args);

  const workload::BurstTable& table = workload::default_burst_table();

  struct PoolSpec {
    const char* name;
    double hours;  // < 24 starts at 09:00 (working hours; busier nodes)
  };

  ExperimentSpec spec;
  spec.name = "abl_predictor: episode predictor (linger-duration scale)";
  spec.axes = {"pool", "predictor"};
  apply_standard_flags(spec, std_flags);
  for (const PoolSpec& pspec :
       {PoolSpec{"full-day pool (light owner load)", 24.0},
        PoolSpec{"working-hours pool (heavy owner load)", 8.0}}) {
    const auto pool = TracePoolCache::shared().standard(
        static_cast<std::size_t>(*machines), pspec.hours, *std_flags.seed + 1);
    // scale < 0 encodes the oracle baseline row.
    for (double scale : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 16.0, -1.0}) {
      cluster::ExperimentConfig cfg;
      cfg.cluster.node_count = static_cast<std::size_t>(*nodes);
      cfg.cluster.policy = scale < 0.0 ? core::PolicyKind::OracleLinger
                                       : core::PolicyKind::LingerLonger;
      cfg.cluster.policy_params.linger_scale = std::max(scale, 0.0);
      // Sub-saturated on purpose: idle target nodes must exist for the
      // migrate-or-linger decision to bind.
      cfg.workload = cluster::WorkloadSpec{
          static_cast<std::size_t>(*nodes) * 3 / 4, 600.0};
      const std::string label =
          scale < 0.0 ? "oracle" : "2T x " + util::fixed(scale, 2);
      spec.add_cell({{"pool", pspec.name}, {"predictor", label}},
                    [cfg, pool, &table](std::uint64_t seed) mutable {
                      cfg.seed = seed;
                      return cluster_cell(cfg, pool, table);
                    });
    }
  }

  const SweepResult sweep = run_sweep(spec, engine_options(std_flags));
  emit_sweep(sweep, std_flags, out,
             "scale 0 = eager migration, 1 = the paper's 2T rule, large = "
             "Linger-Forever.");
  if (!*std_flags.json) {
    out << "\nReading: on realistic traces non-idle nodes are mostly lightly "
           "loaded,\nso migrating rarely pays and every scale performs alike "
           "— the same reason\nLF nearly matches LL in the paper's Figure "
           "7.\n";
  }
  return 0;
}

int run_abl_ctx_switch(const std::vector<std::string>& args,
                       std::ostream& out) {
  util::Flags flags("llsim bench abl_ctx_switch",
                    "Effective context-switch cost sweep.");
  auto nodes = flags.add_int("nodes", 32, "cluster size");
  auto machines = flags.add_int("machines", 32, "distinct machine traces");
  auto util_flag = flags.add_double("util", 0.3, "single-node test load");
  const StandardFlags std_flags = add_standard_flags(flags, 1);
  parse_args(flags, "llsim bench abl_ctx_switch", args);

  const auto pool = TracePoolCache::shared().standard(
      static_cast<std::size_t>(*machines), 24.0, *std_flags.seed + 1);
  const workload::BurstTable& table = workload::default_burst_table();
  const double load = *util_flag;

  ExperimentSpec spec;
  spec.name = "abl_ctx_switch: effective context-switch cost";
  spec.axes = {"ctx_us"};
  apply_standard_flags(spec, std_flags);
  for (double cs : {25e-6, 50e-6, 100e-6, 200e-6, 300e-6, 500e-6, 1000e-6}) {
    spec.add_cell(
        {{"ctx_us", util::fixed(cs * 1e6, 0)}},
        [cs, load, pool, nodes = static_cast<std::size_t>(*nodes),
         &table](std::uint64_t seed) {
          rng::Stream stream(seed);
          node::FineNodeConfig fine;
          fine.utilization = load;
          fine.context_switch = cs;
          fine.duration = 3000.0;
          const auto single =
              node::simulate_fine_node(fine, table, stream.fork("fine"));

          cluster::ExperimentConfig cfg;
          cfg.cluster.node_count = nodes;
          cfg.cluster.policy = core::PolicyKind::LingerLonger;
          cfg.cluster.context_switch = cs;
          cfg.workload = cluster::WorkloadSpec{64, 600.0};
          cfg.seed = stream.fork("cluster").seed();
          const auto closed = cluster::run_closed(cfg, *pool, table, 3600.0);

          RunResult r;
          r.set("ldr", single.ldr());
          r.set("fcsr", single.fcsr());
          r.set("throughput", closed.throughput);
          r.set("fg_delay", closed.foreground_delay);
          return r;
        });
  }

  const SweepResult sweep = run_sweep(spec, engine_options(std_flags));
  emit_sweep(sweep, std_flags, out,
             "Paper's operating point is 100 us; delays stay <5% to 300 us, "
             "reach ~8% at 500 us.");
  return 0;
}

int run_abl_migration_cost(const std::vector<std::string>& args,
                           std::ostream& out) {
  util::Flags flags("llsim bench abl_migration_cost",
                    "Migration bandwidth and image-size sweep.");
  auto nodes = flags.add_int("nodes", 32, "cluster size");
  auto machines = flags.add_int("machines", 32, "distinct machine traces");
  const StandardFlags std_flags = add_standard_flags(flags, 1);
  parse_args(flags, "llsim bench abl_migration_cost", args);

  const auto pool = TracePoolCache::shared().standard(
      static_cast<std::size_t>(*machines), 24.0, *std_flags.seed + 1);
  const workload::BurstTable& table = workload::default_burst_table();

  ExperimentSpec spec;
  spec.name = "abl_migration_cost: migration cost (bandwidth x image size)";
  spec.axes = {"bw_mbps", "image_mb"};
  apply_standard_flags(spec, std_flags);
  for (double mbps : {1.5, 3.0, 10.0}) {
    for (double mb : {4.0, 8.0, 16.0}) {
      spec.add_cell(
          {{"bw_mbps", util::fixed(mbps, 1)}, {"image_mb", util::fixed(mb, 0)}},
          [mbps, mb, pool, nodes = static_cast<std::size_t>(*nodes),
           &table](std::uint64_t seed) {
            auto run_policy = [&](core::PolicyKind policy,
                                  std::size_t& migrations) {
              cluster::ExperimentConfig cfg;
              cfg.cluster.node_count = nodes;
              cfg.cluster.policy = policy;
              cfg.cluster.migration.bandwidth_bps = mbps * 1e6;
              cfg.cluster.job_bytes =
                  static_cast<std::uint64_t>(mb * 1024.0 * 1024.0);
              cfg.cluster.job_mem_kb = static_cast<std::uint32_t>(mb * 1024.0);
              cfg.workload = cluster::WorkloadSpec{64, 600.0};
              cfg.seed = seed;
              const auto report =
                  cluster::run_closed(cfg, *pool, table, 3600.0);
              migrations = report.migrations;
              return report.throughput;
            };
            std::size_t ll_migr = 0;
            std::size_t ie_migr = 0;
            const double ll =
                run_policy(core::PolicyKind::LingerLonger, ll_migr);
            const double ie =
                run_policy(core::PolicyKind::ImmediateEviction, ie_migr);
            core::MigrationCostModel model;
            model.bandwidth_bps = mbps * 1e6;
            RunResult r;
            r.set("t_migr",
                  model.cost(static_cast<std::uint64_t>(mb * 1024 * 1024)));
            r.set("ll_throughput", ll);
            r.set("ie_throughput", ie);
            r.set("ll_over_ie", ll / ie);
            r.set("ll_migrations", static_cast<double>(ll_migr));
            r.set("ie_migrations", static_cast<double>(ie_migr));
            return r;
          });
    }
  }

  const SweepResult sweep = run_sweep(spec, engine_options(std_flags));
  emit_sweep(sweep, std_flags, out,
             "Paper's point: 8 MB @ 3 Mbps effective => ~23 s per migration; "
             "the LL/IE gap\nwidens as migration gets more expensive.");
  return 0;
}

}  // namespace

void register_ablation_benches(BenchRegistry& registry) {
  registry.add(Bench{"abl_pause_time",
                     "Ablation — PM grace-period sweep (design decision #5)",
                     run_abl_pause_time});
  registry.add(Bench{"abl_predictor",
                     "Ablation — 2T linger-duration scale (design decision #1)",
                     run_abl_predictor});
  registry.add(Bench{"abl_ctx_switch",
                     "Ablation — context-switch cost sweep (design decision #2)",
                     run_abl_ctx_switch});
  registry.add(Bench{"abl_migration_cost",
                     "Ablation — migration bandwidth x image (design decision #4)",
                     run_abl_migration_cost});
}

}  // namespace ll::exp
