#pragma once

/// \file result.hpp
/// The structured result model of the experiment engine.
///
/// Every simulation run — cluster open/closed, parallel co-simulation, BSP
/// point, ablation cell — reduces to the same shape: a set of *named
/// metrics*. A sweep is a grid of cells, each replicated across seeds, each
/// replication producing one RunResult; the engine summarizes every metric
/// across replications with its 95% confidence interval. One model, three
/// sinks (ASCII table, CSV, JSON) replaces the per-bench ad-hoc
/// table/CSV emission and unifies cluster::ClusterReport with the parallel
/// cluster's inline report.
///
/// Determinism contract: all containers are insertion-ordered and all
/// numeric formatting is locale-independent printf, so serializing the same
/// SweepResult always yields the same bytes — the property the
/// thread-count-invariance test pins down.

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/confidence.hpp"

namespace ll::exp {

/// One run's named metrics, in insertion order.
class RunResult {
 public:
  /// Sets (or overwrites) a metric.
  void set(std::string_view name, double value);

  [[nodiscard]] std::optional<double> get(std::string_view name) const;

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& metrics()
      const {
    return metrics_;
  }

 private:
  std::vector<std::pair<std::string, double>> metrics_;
};

/// One grid cell: its axis labels (e.g. {"workload","workload-1"},
/// {"policy","LL"}), the per-replication results in seed order, and the
/// per-metric confidence summaries.
struct CellResult {
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<RunResult> replications;
  std::vector<std::pair<std::string, stats::ConfidenceInterval>> summaries;

  [[nodiscard]] std::string label(std::string_view axis) const;
  [[nodiscard]] const stats::ConfidenceInterval* summary(
      std::string_view metric) const;
};

struct SweepResult {
  std::string name;
  std::uint64_t seed = 0;
  std::size_t replications = 0;
  std::vector<std::string> axes;          // label keys, grid order
  std::vector<std::string> metric_names;  // union across cells, first-seen
  std::vector<CellResult> cells;          // spec order

  [[nodiscard]] const CellResult* find(
      std::initializer_list<std::pair<std::string_view, std::string_view>>
          labels) const;
};

/// ASCII sink: one row per cell, one column per axis, then per metric
/// "mean ±hw" (the half-width column is omitted when every cell ran a
/// single replication).
[[nodiscard]] std::string render_table(const SweepResult& sweep);

/// CSV sink: header `axes...,metric...,metric_ci95...`, one row per cell
/// (means; ci95 columns carry the half-widths).
void write_csv(const SweepResult& sweep, std::ostream& out);

/// JSON sink: the full structure — per-replication metrics and summaries —
/// with deterministic formatting ("%.17g", non-finite values as null).
void write_json(const SweepResult& sweep, std::ostream& out);

/// Convenience: serialize through the given sink into a string.
[[nodiscard]] std::string to_csv(const SweepResult& sweep);
[[nodiscard]] std::string to_json(const SweepResult& sweep);

}  // namespace ll::exp
