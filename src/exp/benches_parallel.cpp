/// \file benches_parallel.cpp
/// Registered parallel benches: fig09 (BSP slowdown vs one busy node's
/// utilization) and fig11 (Linger-Longer widths vs reconfiguration).

#include "exp/bench_util.hpp"
#include "exp/benches.hpp"
#include "exp/registry.hpp"
#include "parallel/bsp.hpp"
#include "parallel/reconfig.hpp"
#include "util/ascii_chart.hpp"
#include "util/table.hpp"
#include "workload/burst_table.hpp"

namespace ll::exp {
namespace {

int run_fig09(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim bench fig09",
                    "BSP job slowdown vs one node's owner utilization.");
  auto phases = flags.add_int("phases", 200, "BSP iterations per point");
  const StandardFlags std_flags = add_standard_flags(flags, 1);
  parse_args(flags, "llsim bench fig09", args);

  const workload::BurstTable& table = workload::default_burst_table();
  parallel::BspConfig bsp;
  bsp.processes = 8;
  bsp.granularity = 0.1;  // 100 ms between synchronization phases
  bsp.phases = static_cast<std::size_t>(*phases);
  bsp.messages_per_process = 4;  // NEWS exchange

  ExperimentSpec spec;
  spec.name = "fig09: 8-process BSP slowdown vs local utilization";
  spec.axes = {"utilization"};
  apply_standard_flags(spec, std_flags);
  for (int pct = 0; pct <= 90; pct += 10) {
    const double u = pct / 100.0;
    spec.add_cell({{"utilization", util::percent(u, 0)}},
                  [bsp, u, &table](std::uint64_t seed) {
                    std::vector<double> utils(8, 0.0);
                    utils[0] = u;
                    const auto result = parallel::simulate_bsp(
                        bsp, utils, table, rng::Stream(seed));
                    RunResult r;
                    r.set("slowdown", result.slowdown());
                    return r;
                  });
  }

  const SweepResult sweep = run_sweep(spec, engine_options(std_flags));
  emit_sweep(sweep, std_flags, out,
             "Paper: <=1.5x up to ~40% load on the one busy node; ~9-10x at "
             "90%.");
  if (!*std_flags.json) {
    util::ChartSeries curve{"slowdown", {}, {}};
    for (std::size_t c = 0; c < sweep.cells.size(); ++c) {
      curve.xs.push_back(static_cast<double>(c) * 10.0);
      curve.ys.push_back(sweep.cells[c].summary("slowdown")->mean);
    }
    util::ChartOptions chart;
    chart.x_label = "local CPU utilization (%)";
    chart.y_label = "slowdown";
    out << "\n" << util::render_chart({curve}, chart);
  }
  return 0;
}

int run_fig11(const std::vector<std::string>& args, std::ostream& out) {
  util::Flags flags("llsim bench fig11",
                    "LL(8/16/32) vs reconfiguration on 32 nodes.");
  auto util_flag = flags.add_double("util", 0.2, "owner load on busy nodes");
  auto work = flags.add_double("work", 38.4, "job size (cpu-seconds)");
  const StandardFlags std_flags = add_standard_flags(flags, 9);
  parse_args(flags, "llsim bench fig11", args);

  const workload::BurstTable& table = workload::default_burst_table();
  parallel::ReconfigScenario scenario;
  scenario.cluster_nodes = 32;
  scenario.nonidle_util = *util_flag;
  scenario.total_work = *work;
  scenario.bsp.granularity = 0.5;

  ExperimentSpec spec;
  spec.name = "fig11: Linger-Longer vs reconfiguration (32 nodes)";
  spec.axes = {"idle_nodes"};
  apply_standard_flags(spec, std_flags);
  for (int idle = 32; idle >= 0; --idle) {
    const auto idle_nodes = static_cast<std::size_t>(idle);
    spec.add_cell(
        {{"idle_nodes", std::to_string(idle)}},
        [scenario, idle_nodes, &table](std::uint64_t seed) {
          rng::Stream stream(seed);
          RunResult r;
          r.set("ll32", parallel::ll_completion(scenario, 32, idle_nodes,
                                                table, stream.fork("ll", 32)));
          r.set("ll16", parallel::ll_completion(scenario, 16, idle_nodes,
                                                table, stream.fork("ll", 16)));
          r.set("ll8", parallel::ll_completion(scenario, 8, idle_nodes, table,
                                               stream.fork("ll", 8)));
          r.set("reconfig", parallel::reconfig_completion(
                                scenario, idle_nodes, table,
                                stream.fork("rec")));
          return r;
        });
  }

  const SweepResult sweep = run_sweep(spec, engine_options(std_flags));
  emit_sweep(sweep, std_flags, out,
             "Paper: with <= 5 busy nodes, lingering at width 32 beats "
             "shrinking to 16;\nsmaller widths are flat lines unaffected by "
             "owner returns.");
  if (*std_flags.json) return 0;

  util::ChartSeries s32{"LL-32", {}, {}};
  util::ChartSeries s16{"LL-16", {}, {}};
  util::ChartSeries s8{"LL-8", {}, {}};
  util::ChartSeries srec{"reconfig", {}, {}};
  for (const CellResult& cell : sweep.cells) {
    const double x = std::stod(cell.label("idle_nodes"));
    s32.xs.push_back(x);
    s32.ys.push_back(cell.summary("ll32")->mean);
    s16.xs.push_back(x);
    s16.ys.push_back(cell.summary("ll16")->mean);
    s8.xs.push_back(x);
    s8.ys.push_back(cell.summary("ll8")->mean);
    srec.xs.push_back(x);
    srec.ys.push_back(cell.summary("reconfig")->mean);
  }
  util::ChartOptions chart;
  chart.x_label = "idle nodes";
  chart.y_label = "completion time (s)";
  chart.y_min = 0.0;
  chart.y_max = 12.0;  // clip reconfig's collapse tail, as the paper does
  out << "\n" << util::render_chart({s32, s16, s8, srec}, chart);

  // The crossover the paper calls out: within the regime where
  // reconfiguration still runs 16-wide, how many busy nodes can LL-32
  // tolerate before shrinking would have been better?
  int tolerated = 0;
  for (int busy = 1; busy <= 16; ++busy) {
    const CellResult* cell =
        sweep.find({{"idle_nodes", std::to_string(32 - busy)}});
    if (cell &&
        cell->summary("ll32")->mean <= cell->summary("reconfig")->mean) {
      tolerated = busy;
    } else {
      break;
    }
  }
  out << "\nLL-32 beats reconfiguration for up to " << tolerated
      << " busy nodes (paper: 5).\n";
  return 0;
}

}  // namespace

void register_parallel_benches(BenchRegistry& registry) {
  registry.add(Bench{"fig09", "Fig. 9 — BSP slowdown vs one busy node",
                     run_fig09});
  registry.add(Bench{"fig11", "Fig. 11 — LL vs reconfiguration, 32 nodes",
                     run_fig11});
}

}  // namespace ll::exp
