#include "exp/drivers.hpp"

#include "stats/summary.hpp"
#include "workload/burst_table.hpp"

namespace ll::exp {

RunResult open_metrics(const cluster::ClusterReport& report) {
  RunResult r;
  r.set("avg_job", report.avg_completion);
  r.set("variation", report.variation);
  r.set("family", report.family_time);
  r.set("p50", report.p50_completion);
  r.set("p90", report.p90_completion);
  r.set("queued", report.avg_queued);
  r.set("running", report.avg_running);
  r.set("lingering", report.avg_lingering);
  r.set("paused", report.avg_paused);
  r.set("migrating", report.avg_migrating);
  r.set("fg_delay", report.foreground_delay);
  r.set("migrations", static_cast<double>(report.migrations));
  return r;
}

RunResult closed_metrics(const cluster::ClusterReport& report) {
  RunResult r;
  r.set("throughput", report.throughput);
  r.set("completed", static_cast<double>(report.completed));
  r.set("fg_delay", report.foreground_delay);
  r.set("migrations", static_cast<double>(report.migrations));
  return r;
}

RunResult cluster_cell(const cluster::ExperimentConfig& config,
                       const TracePoolCache::PoolPtr& pool,
                       const workload::BurstTable& table,
                       double closed_duration) {
  RunResult r = open_metrics(cluster::run_open(config, *pool, table));
  const auto closed = cluster::run_closed(config, *pool, table, closed_duration);
  r.set("throughput", closed.throughput);
  return r;
}

RunResult fault_cell(const cluster::ExperimentConfig& config,
                     const TracePoolCache::PoolPtr& pool,
                     const workload::BurstTable& table,
                     double closed_duration) {
  RunResult r = open_metrics(cluster::run_open(config, *pool, table));
  const auto closed = cluster::run_closed(config, *pool, table, closed_duration);
  r.set("throughput", closed.throughput);
  r.set("goodput", closed.goodput);
  r.set("work_lost", closed.work_lost);
  r.set("restarts", static_cast<double>(closed.restarts));
  r.set("crashes", static_cast<double>(closed.crashes));
  r.set("checkpoints", static_cast<double>(closed.checkpoints));
  return r;
}

RunResult parallel_cell(const ParallelCellSpec& spec,
                        const TracePoolCache::PoolPtr& pool,
                        const workload::BurstTable& table,
                        std::uint64_t seed, const ParallelRunHooks* hooks) {
  parallel::ParallelClusterSim sim(spec.cluster, *pool, table,
                                   rng::Stream(seed));
  if (hooks && hooks->on_start) hooks->on_start(sim);
  const parallel::ParallelJobSpec job = spec.job;
  sim.set_completion_callback(
      [&sim, job](const parallel::ParallelJobRecord&) { sim.submit(job); });
  for (std::size_t j = 0; j < spec.jobs_in_system; ++j) sim.submit(job);
  sim.run_for(spec.duration);
  if (hooks && hooks->on_finish) hooks->on_finish(sim);

  stats::Summary turnaround;
  stats::Summary width;
  stats::Summary wait;
  std::size_t completed = 0;
  for (const auto& record : sim.jobs()) {
    if (!record.completion) continue;
    ++completed;
    turnaround.add(record.turnaround());
    width.add(static_cast<double>(record.width));
    wait.add(record.queue_wait());
  }
  RunResult r;
  r.set("work_per_s", sim.delivered_work() / spec.duration);
  r.set("completed", static_cast<double>(completed));
  r.set("jobs_per_hour",
        static_cast<double>(completed) * 3600.0 / spec.duration);
  r.set("mean_turnaround", completed ? turnaround.mean() : 0.0);
  r.set("mean_width", completed ? width.mean() : 0.0);
  r.set("mean_queue_wait", completed ? wait.mean() : 0.0);
  return r;
}

}  // namespace ll::exp
