#pragma once

/// \file drivers.hpp
/// Adapters from the simulators to the engine's result model — the bridge
/// every ported consumer (CLI subcommands, registered benches) shares
/// instead of hand-rolling report structs and table emission.

#include <cstdint>
#include <functional>
#include <memory>

#include "cluster/experiment.hpp"
#include "exp/pool_cache.hpp"
#include "exp/result.hpp"
#include "parallel/parallel_cluster.hpp"

namespace ll::exp {

/// Open-mode metrics of a ClusterReport as named metrics
/// (avg_job, variation, family, p50, p90, fg_delay, migrations, ...).
[[nodiscard]] RunResult open_metrics(const cluster::ClusterReport& report);

/// Closed-mode metrics (throughput, completed, fg_delay, migrations).
[[nodiscard]] RunResult closed_metrics(const cluster::ClusterReport& report);

/// One replication of the paper's §4.2 evaluation cell: an open run and a
/// closed run (same derived seed, as Figure 7 reports them side by side),
/// merged into one RunResult.
[[nodiscard]] RunResult cluster_cell(const cluster::ExperimentConfig& config,
                                     const TracePoolCache::PoolPtr& pool,
                                     const workload::BurstTable& table,
                                     double closed_duration = 3600.0);

/// cluster_cell plus the fault/checkpoint robustness metrics (goodput,
/// work_lost, restarts, crashes, checkpoints — closed-run values, as the
/// throughput is). With an empty FaultSpec the shared metrics are
/// bitwise-identical to cluster_cell's: same runs, same seeds, and the
/// fault columns collapse to their identity values.
[[nodiscard]] RunResult fault_cell(const cluster::ExperimentConfig& config,
                                   const TracePoolCache::PoolPtr& pool,
                                   const workload::BurstTable& table,
                                   double closed_duration = 3600.0);

struct ParallelCellSpec {
  parallel::ParallelClusterConfig cluster;
  parallel::ParallelJobSpec job;
  std::size_t jobs_in_system = 4;
  double duration = 3600.0;
};

/// Observability hooks for parallel_cell, mirroring cluster::RunHooks:
/// `on_start` fires after the simulator is constructed, `on_finish` after
/// the run while the simulator is still alive. Observational only.
struct ParallelRunHooks {
  std::function<void(parallel::ParallelClusterSim&)> on_start;
  std::function<void(parallel::ParallelClusterSim&)> on_finish;
};

/// One replication of the closed-system parallel-cluster experiment:
/// work_per_s, jobs_per_hour, mean_turnaround, mean_width, mean_queue_wait —
/// the structured form of the report cmd_parallel and
/// ext_parallel_throughput previously computed inline.
[[nodiscard]] RunResult parallel_cell(const ParallelCellSpec& spec,
                                      const TracePoolCache::PoolPtr& pool,
                                      const workload::BurstTable& table,
                                      std::uint64_t seed,
                                      const ParallelRunHooks* hooks = nullptr);

}  // namespace ll::exp
