#include "exp/result.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace ll::exp {
namespace {

/// Shortest round-trip-exact double representation, locale-independent.
std::string num(double value) {
  if (!std::isfinite(value)) return "null";
  std::string s = util::format("%.17g", value);
  // Prefer the shorter %g form when it round-trips exactly.
  const std::string shorter = util::format("%g", value);
  if (std::stod(shorter) == value) return shorter;
  return s;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void RunResult::set(std::string_view name, double value) {
  for (auto& [existing, v] : metrics_) {
    if (existing == name) {
      v = value;
      return;
    }
  }
  metrics_.emplace_back(std::string(name), value);
}

std::optional<double> RunResult::get(std::string_view name) const {
  for (const auto& [existing, v] : metrics_) {
    if (existing == name) return v;
  }
  return std::nullopt;
}

std::string CellResult::label(std::string_view axis) const {
  for (const auto& [key, value] : labels) {
    if (key == axis) return value;
  }
  return {};
}

const stats::ConfidenceInterval* CellResult::summary(
    std::string_view metric) const {
  for (const auto& [name, ci] : summaries) {
    if (name == metric) return &ci;
  }
  return nullptr;
}

const CellResult* SweepResult::find(
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) const {
  for (const CellResult& cell : cells) {
    bool all = true;
    for (const auto& [axis, value] : labels) {
      if (cell.label(axis) != value) {
        all = false;
        break;
      }
    }
    if (all) return &cell;
  }
  return nullptr;
}

std::string render_table(const SweepResult& sweep) {
  bool any_ci = false;
  for (const CellResult& cell : sweep.cells) {
    if (cell.replications.size() > 1) any_ci = true;
  }
  std::vector<std::string> header(sweep.axes);
  for (const std::string& metric : sweep.metric_names) {
    header.push_back(any_ci ? metric + " (±95%)" : metric);
  }
  util::Table table(std::move(header));
  for (const CellResult& cell : sweep.cells) {
    std::vector<std::string> row;
    for (const std::string& axis : sweep.axes) row.push_back(cell.label(axis));
    for (const std::string& metric : sweep.metric_names) {
      const stats::ConfidenceInterval* ci = cell.summary(metric);
      if (!ci) {
        row.emplace_back("-");
      } else if (any_ci && ci->n > 1) {
        row.push_back(util::format("%.4g ±%.3g", ci->mean, ci->half_width));
      } else {
        row.push_back(util::format("%.4g", ci->mean));
      }
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

void write_csv(const SweepResult& sweep, std::ostream& out) {
  std::vector<std::string> header(sweep.axes);
  for (const std::string& metric : sweep.metric_names) header.push_back(metric);
  for (const std::string& metric : sweep.metric_names) {
    header.push_back(metric + "_ci95");
  }
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out << ',';
    out << util::CsvWriter::escape(header[i]);
  }
  out << '\n';
  for (const CellResult& cell : sweep.cells) {
    bool first = true;
    for (const std::string& axis : sweep.axes) {
      if (!first) out << ',';
      first = false;
      out << util::CsvWriter::escape(cell.label(axis));
    }
    for (const std::string& metric : sweep.metric_names) {
      const stats::ConfidenceInterval* ci = cell.summary(metric);
      out << ',' << (ci ? num(ci->mean) : "");
    }
    for (const std::string& metric : sweep.metric_names) {
      const stats::ConfidenceInterval* ci = cell.summary(metric);
      out << ',' << (ci ? num(ci->half_width) : "");
    }
    out << '\n';
  }
}

void write_json(const SweepResult& sweep, std::ostream& out) {
  out << "{\n  \"name\": \"" << json_escape(sweep.name) << "\",\n"
      << "  \"seed\": " << sweep.seed << ",\n"
      << "  \"replications\": " << sweep.replications << ",\n"
      << "  \"cells\": [";
  for (std::size_t c = 0; c < sweep.cells.size(); ++c) {
    const CellResult& cell = sweep.cells[c];
    out << (c ? ",\n    {" : "\n    {") << "\"labels\": {";
    for (std::size_t i = 0; i < cell.labels.size(); ++i) {
      if (i) out << ", ";
      out << '"' << json_escape(cell.labels[i].first) << "\": \""
          << json_escape(cell.labels[i].second) << '"';
    }
    out << "},\n     \"replications\": [";
    for (std::size_t r = 0; r < cell.replications.size(); ++r) {
      const RunResult& run = cell.replications[r];
      out << (r ? ", {" : "{");
      for (std::size_t i = 0; i < run.metrics().size(); ++i) {
        if (i) out << ", ";
        out << '"' << json_escape(run.metrics()[i].first)
            << "\": " << num(run.metrics()[i].second);
      }
      out << '}';
    }
    out << "],\n     \"summary\": {";
    for (std::size_t i = 0; i < cell.summaries.size(); ++i) {
      const auto& [metric, ci] = cell.summaries[i];
      if (i) out << ", ";
      out << '"' << json_escape(metric) << "\": {\"mean\": " << num(ci.mean)
          << ", \"ci95\": " << num(ci.half_width) << ", \"n\": " << ci.n
          << '}';
    }
    out << "}}";
  }
  out << "\n  ]\n}\n";
}

std::string to_csv(const SweepResult& sweep) {
  std::ostringstream out;
  write_csv(sweep, out);
  return out.str();
}

std::string to_json(const SweepResult& sweep) {
  std::ostringstream out;
  write_json(sweep, out);
  return out.str();
}

}  // namespace ll::exp
