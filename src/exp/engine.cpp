#include "exp/engine.hpp"

#include <memory>
#include <stdexcept>

#include "stats/confidence.hpp"

namespace ll::exp {

SweepResult run_sweep(const ExperimentSpec& spec,
                      const EngineOptions& options) {
  if (spec.replications == 0) {
    throw std::invalid_argument("run_sweep: need at least one replication");
  }
  const std::size_t reps = spec.replications;
  std::vector<std::vector<RunResult>> slots(spec.cells.size());
  for (auto& cell_slots : slots) cell_slots.resize(reps);

  // One task per (cell, replication), writing to its own slot. Each task
  // gets its OWN COPY of the cell function: replications of the same cell
  // run concurrently, and a by-value capture the callable mutates (the
  // common `[cfg](seed) mutable { cfg.seed = seed; ... }` idiom) would
  // otherwise be shared mutable state racing across replications.
  // Per-cell span labels, interned up front so the task hot path pays two
  // clock reads and one ring push per replication and nothing else.
  std::vector<std::uint32_t> cell_labels;
  if (options.tracer) {
    cell_labels.reserve(spec.cells.size());
    for (const CellSpec& cell : spec.cells) {
      std::string name = "cell:";
      for (std::size_t i = 0; i < cell.labels.size(); ++i) {
        if (i != 0) name += '/';
        name += cell.labels[i].second;
      }
      cell_labels.push_back(options.tracer->label(name));
    }
  }

  std::vector<std::function<void()>> tasks;
  tasks.reserve(spec.cells.size() * reps);
  for (std::size_t c = 0; c < spec.cells.size(); ++c) {
    for (std::size_t r = 0; r < reps; ++r) {
      const std::uint64_t seed = replication_seed(spec.seed, c, r);
      if (options.tracer) {
        tasks.push_back([run = spec.cells[c].run, &slots, c, r, seed,
                         tracer = options.tracer, label = cell_labels[c]] {
          const std::uint64_t t0 = tracer->now_ns();
          slots[c][r] = run(seed);
          tracer->wall_span(label, t0, 0.0, r);
        });
      } else {
        tasks.push_back([run = spec.cells[c].run, &slots, c, r, seed] {
          slots[c][r] = run(seed);
        });
      }
    }
  }

  util::TaskRunner::Stats before;
  util::TaskRunner::Stats after;
  if (options.runner) {
    before = options.runner->stats();
    options.runner->run(std::move(tasks));
    after = options.runner->stats();
  } else {
    // Adapter before runner: pool workers can invoke the observer until
    // the runner destructor joins them, so the adapter must be destroyed
    // after the runner. That same join is what makes the tracer quiescent
    // (exportable) as soon as run_sweep returns.
    obs::RunnerTraceAdapter adapter(options.tracer);
    util::TaskRunner runner(options.jobs);
    if (options.tracer) runner.set_observer(&adapter);
    runner.run(std::move(tasks));
    after = runner.stats();
  }

  if (options.metrics) {
    options.metrics->counter("exp.sweeps").add();
    options.metrics->counter("exp.cells").add(spec.cells.size());
    options.metrics->counter("exp.replications").add(spec.cells.size() * reps);
    // Scheduler telemetry from the work-stealing runner. Deltas are racy
    // when the runner is shared across concurrent sweeps — counters only,
    // never part of any digested result.
    options.metrics->counter("exp.runner.tasks").add(after.executed -
                                                     before.executed);
    options.metrics->counter("exp.runner.steals").add(after.stolen -
                                                      before.stolen);
    options.metrics->counter("exp.runner.suspensions")
        .add(after.suspensions - before.suspensions);
  }

  SweepResult sweep;
  sweep.name = spec.name;
  sweep.seed = spec.seed;
  sweep.replications = reps;
  sweep.axes = spec.axes;
  sweep.cells.reserve(spec.cells.size());
  for (std::size_t c = 0; c < spec.cells.size(); ++c) {
    CellResult cell;
    cell.labels = spec.cells[c].labels;
    cell.replications = std::move(slots[c]);
    // Metric order: first-seen across this cell's replications; the union
    // also feeds the sweep-wide column order.
    std::vector<std::string> order;
    for (const RunResult& run : cell.replications) {
      for (const auto& [name, value] : run.metrics()) {
        (void)value;
        bool seen = false;
        for (const std::string& existing : order) {
          if (existing == name) {
            seen = true;
            break;
          }
        }
        if (!seen) order.push_back(name);
      }
    }
    for (const std::string& metric : order) {
      std::vector<double> values;
      values.reserve(cell.replications.size());
      for (const RunResult& run : cell.replications) {
        if (const auto v = run.get(metric)) values.push_back(*v);
      }
      cell.summaries.emplace_back(metric, stats::mean_confidence_95(values));
      bool seen = false;
      for (const std::string& existing : sweep.metric_names) {
        if (existing == metric) {
          seen = true;
          break;
        }
      }
      if (!seen) sweep.metric_names.push_back(metric);
    }
    sweep.cells.push_back(std::move(cell));
  }
  return sweep;
}

}  // namespace ll::exp
