#pragma once

/// \file engine.hpp
/// The experiment engine: executes an ExperimentSpec's (cell × replication)
/// grid on the bounded work-stealing runner (util/runner.hpp) and collects
/// a SweepResult in deterministic seed order.
///
/// Concurrency model: the grid is flattened into one task per replication;
/// every task writes its RunResult into a pre-allocated (cell, replication)
/// slot, so the assembled SweepResult — and therefore every sink's output —
/// is bit-identical for any `jobs` value. Thread count is bounded by the
/// runner: `jobs` workers total (the calling thread included), not one
/// thread per replication as the old cluster::replicate spawned.

#include <cstddef>

#include "exp/spec.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/runner.hpp"

namespace ll::exp {

struct EngineOptions {
  /// Worker threads for this sweep (0 = hardware concurrency). Ignored when
  /// `runner` is set.
  std::size_t jobs = 0;
  /// Run on an externally owned runner instead of constructing one — e.g.
  /// util::TaskRunner::shared() to share one pool across sweeps.
  util::TaskRunner* runner = nullptr;
  /// Optional engine accounting: run_sweep bumps exp.sweeps / exp.cells /
  /// exp.replications plus the work-stealing scheduler's
  /// exp.runner.{tasks,steals,suspensions} deltas after the batch drains
  /// (the registry is single-threaded by contract, so updates never race
  /// with cell tasks).
  obs::MetricRegistry* metrics = nullptr;
  /// Optional flight recorder: every (cell × replication) task is wrapped
  /// in a "cell:<axis values>" wall span (arg = replication index), and —
  /// when the engine owns the runner (no external `runner`) — a
  /// RunnerTraceAdapter records batch/steal/suspend spans, detached before
  /// the local runner is destroyed so the tracer is quiescent and
  /// exportable as soon as run_sweep returns. For an external runner the
  /// caller owns the adapter lifetime.
  obs::Tracer* tracer = nullptr;
};

/// Runs the sweep. Cell functions execute concurrently; results, summaries
/// and metric ordering are independent of thread count. Rethrows the first
/// (lowest grid index) cell exception after the batch drains.
[[nodiscard]] SweepResult run_sweep(const ExperimentSpec& spec,
                                    const EngineOptions& options = {});

}  // namespace ll::exp
