#include "trace/recruitment.hpp"

#include <cmath>

namespace ll::trace {
namespace {

std::vector<double> episode_lengths(const CoarseTrace& trace,
                                    const RecruitmentRule& rule,
                                    bool want_idle) {
  const std::vector<bool> flags = idle_flags(trace, rule);
  std::vector<double> lengths;
  std::size_t run = 0;
  for (bool idle : flags) {
    if (idle == want_idle) {
      ++run;
    } else if (run > 0) {
      lengths.push_back(static_cast<double>(run) * trace.period());
      run = 0;
    }
  }
  if (run > 0) lengths.push_back(static_cast<double>(run) * trace.period());
  return lengths;
}

}  // namespace

std::vector<bool> idle_flags(const CoarseTrace& trace,
                             const RecruitmentRule& rule) {
  const auto& samples = trace.samples();
  std::vector<bool> flags(samples.size(), false);
  if (samples.empty()) return flags;

  // Number of consecutive trailing quiet samples needed (>= 1).
  const auto needed = static_cast<std::size_t>(
      std::max(1.0, std::ceil(rule.quiet_seconds / trace.period())));

  std::size_t quiet_run = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const bool quiet = samples[i].cpu < rule.cpu_threshold && !samples[i].keyboard;
    quiet_run = quiet ? quiet_run + 1 : 0;
    flags[i] = quiet_run >= needed;
  }
  return flags;
}

double idle_fraction(const CoarseTrace& trace, const RecruitmentRule& rule) {
  const std::vector<bool> flags = idle_flags(trace, rule);
  if (flags.empty()) return 0.0;
  std::size_t idle = 0;
  for (bool f : flags) idle += f ? 1 : 0;
  return static_cast<double>(idle) / static_cast<double>(flags.size());
}

std::vector<double> nonidle_episode_lengths(const CoarseTrace& trace,
                                            const RecruitmentRule& rule) {
  return episode_lengths(trace, rule, /*want_idle=*/false);
}

std::vector<double> idle_episode_lengths(const CoarseTrace& trace,
                                         const RecruitmentRule& rule) {
  return episode_lengths(trace, rule, /*want_idle=*/true);
}

}  // namespace ll::trace
