#pragma once

/// \file records.hpp
/// Trace record containers for the two measurement levels of the paper's
/// workload characterization (§3):
///
/// * Fine-grain: AIX-style scheduler dispatch data reduced to an alternating
///   sequence of RUN / IDLE bursts of the workstation owner's processes.
///   Consecutive dispatches within one logical CPU request are already
///   aggregated into a single run burst (paper §3.1).
/// * Coarse-grain: Arpaci-style samples every 2 seconds of CPU utilization,
///   free memory, and keyboard activity (§3.2); the idle/non-idle flag is
///   *derived* from these by the recruitment rule (see recruitment.hpp).

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace ll::trace {

/// One fine-grain burst: the owner's processes are either occupying the CPU
/// (`Run`) or the CPU is free for that duration (`Idle`).
enum class BurstKind : std::uint8_t { Run, Idle };

struct Burst {
  BurstKind kind = BurstKind::Idle;
  double duration = 0.0;  // seconds
};

/// A fine-grain trace: alternating run/idle bursts (not enforced to strictly
/// alternate, since real dispatch traces can contain zero-length artifacts;
/// the analysis pipeline tolerates repeats by aggregation).
class FineTrace {
 public:
  FineTrace() = default;
  explicit FineTrace(std::vector<Burst> bursts) : bursts_(std::move(bursts)) {}

  void push(BurstKind kind, double duration) {
    if (duration < 0.0) throw std::invalid_argument("negative burst duration");
    bursts_.push_back(Burst{kind, duration});
  }

  [[nodiscard]] const std::vector<Burst>& bursts() const { return bursts_; }
  [[nodiscard]] std::size_t size() const { return bursts_.size(); }
  [[nodiscard]] bool empty() const { return bursts_.empty(); }

  /// Total trace duration (sum of burst durations).
  [[nodiscard]] double duration() const;

  /// Fraction of total duration in run bursts.
  [[nodiscard]] double utilization() const;

 private:
  std::vector<Burst> bursts_;
};

/// One coarse-grain sample (2-second period in the paper's traces).
struct CoarseSample {
  double cpu = 0.0;            // mean CPU utilization over the window, [0,1]
  std::int32_t mem_free_kb = 0;  // free physical memory at sample time
  bool keyboard = false;       // any keyboard/mouse activity in the window
};

/// A coarse-grain machine trace: fixed-period samples.
class CoarseTrace {
 public:
  explicit CoarseTrace(double period_seconds = 2.0)
      : period_(period_seconds) {
    if (!(period_ > 0.0)) throw std::invalid_argument("period must be > 0");
  }
  CoarseTrace(double period_seconds, std::vector<CoarseSample> samples)
      : period_(period_seconds), samples_(std::move(samples)) {
    if (!(period_ > 0.0)) throw std::invalid_argument("period must be > 0");
  }

  void push(CoarseSample sample) { samples_.push_back(sample); }

  [[nodiscard]] double period() const { return period_; }
  [[nodiscard]] const std::vector<CoarseSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double duration() const {
    return period_ * static_cast<double>(samples_.size());
  }

  /// Index of the sample covering time t, wrapping around the trace end —
  /// cluster simulations map each node to a random offset into a trace and
  /// may run longer than the trace (paper §4.2 starts each node at a random
  /// offset into a different machine trace).
  [[nodiscard]] std::size_t index_at(double t) const;

  [[nodiscard]] const CoarseSample& sample_at(double t) const {
    return samples_.at(index_at(t));
  }

  /// Mean CPU utilization across all samples.
  [[nodiscard]] double mean_cpu() const;

 private:
  double period_;
  std::vector<CoarseSample> samples_;
};

}  // namespace ll::trace
