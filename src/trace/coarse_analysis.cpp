#include "trace/coarse_analysis.hpp"

#include "stats/summary.hpp"

namespace ll::trace {

CoarseStats analyze_coarse(const std::vector<CoarseTrace>& pool,
                           const RecruitmentRule& rule) {
  CoarseStats out;
  stats::Summary overall;
  stats::Summary idle_cpu;
  stats::Summary nonidle_cpu;
  stats::Summary nonidle_episode;
  stats::Summary idle_episode;
  std::size_t nonidle_samples = 0;
  std::size_t nonidle_below = 0;
  std::size_t total = 0;

  for (const CoarseTrace& trace : pool) {
    const std::vector<bool> flags = idle_flags(trace, rule);
    const auto& samples = trace.samples();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      ++total;
      overall.add(samples[i].cpu);
      if (flags[i]) {
        idle_cpu.add(samples[i].cpu);
      } else {
        nonidle_cpu.add(samples[i].cpu);
        ++nonidle_samples;
        if (samples[i].cpu < 0.10) ++nonidle_below;
      }
    }
    for (double len : nonidle_episode_lengths(trace, rule)) nonidle_episode.add(len);
    for (double len : idle_episode_lengths(trace, rule)) idle_episode.add(len);
  }

  out.sample_count = total;
  if (total == 0) return out;
  out.nonidle_fraction =
      static_cast<double>(nonidle_samples) / static_cast<double>(total);
  out.mean_cpu_overall = overall.mean();
  out.mean_cpu_idle = idle_cpu.mean();
  out.mean_cpu_nonidle = nonidle_cpu.mean();
  out.nonidle_below_10pct =
      nonidle_samples == 0
          ? 0.0
          : static_cast<double>(nonidle_below) / static_cast<double>(nonidle_samples);
  out.mean_nonidle_episode = nonidle_episode.mean();
  out.mean_idle_episode = idle_episode.mean();
  return out;
}

MemoryAvailability memory_availability(const std::vector<CoarseTrace>& pool,
                                       const RecruitmentRule& rule) {
  MemoryAvailability out;
  for (const CoarseTrace& trace : pool) {
    const std::vector<bool> flags = idle_flags(trace, rule);
    const auto& samples = trace.samples();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const auto kb = static_cast<double>(samples[i].mem_free_kb);
      out.all_kb.push_back(kb);
      (flags[i] ? out.idle_kb : out.nonidle_kb).push_back(kb);
    }
  }
  return out;
}

double fraction_with_at_least(const std::vector<double>& kb_samples, double kb) {
  if (kb_samples.empty()) return 0.0;
  std::size_t count = 0;
  for (double v : kb_samples) {
    if (v >= kb) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(kb_samples.size());
}

}  // namespace ll::trace
