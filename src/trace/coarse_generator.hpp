#pragma once

/// \file coarse_generator.hpp
/// Synthetic coarse-grain workstation traces.
///
/// The paper drives its cluster simulations with the Arpaci et al. traces
/// (132 machines, 40 days, 2-second samples of CPU, memory, keyboard). Those
/// traces are not redistributable, so this generator synthesizes
/// session-structured traces tuned to reproduce the aggregate properties the
/// paper reports and that the scheduling results actually depend on:
///
///   * ~46% of time in the non-idle state under the recruitment rule
///     (CPU < 10% + no keyboard for 1 minute),
///   * ~76% of non-idle time with CPU utilization below 10%,
///   * free memory >= 14 MB for ~90% of time and >= 10 MB for ~95%
///     (64 MB machines), with no significant idle/non-idle difference,
///   * episode-length distributions with many short non-idle episodes
///     (the fine-grain opportunity Linger-Longer exploits).
///
/// Structure: a two-state user model (Away / Active session) with diurnal
/// modulation; within active sessions, typing/pause micro-structure drives
/// the keyboard flag and interactive CPU, and Poisson compute episodes
/// (compiles, simulations) drive high-utilization windows. Memory usage is a
/// per-session base plus a slow mean-reverting walk plus compute overhead.

#include <vector>

#include "rng/rng.hpp"
#include "trace/records.hpp"

namespace ll::trace {

struct CoarseGenConfig {
  double period = 2.0;               // seconds per sample
  double duration = 86400.0;         // trace length in seconds (1 day)
  double start_hour = 0.0;           // time-of-day at trace start (diurnal
                                     // model); traces shorter than a day
                                     // should usually start at 9.0 to cover
                                     // working hours
  std::int32_t mem_total_kb = 65536;  // 64 MB machines, as in the paper

  // --- user session model ---
  double away_mean = 900.0;     // mean away-period length (s)
  double active_mean = 2400.0;  // mean active-session length (s)
  double active_min = 120.0;    // sessions never shorter than this
  // Probability that the user returns after an away period, by time of day.
  double p_active_day = 0.85;      // 09:00-18:00
  double p_active_evening = 0.45;  // 18:00-23:00
  double p_active_night = 0.08;    // 23:00-09:00

  // --- typing/pause micro-structure inside a session ---
  double typing_mean = 45.0;   // mean typing stretch (s)
  double pause_mean = 30.0;    // mean thinking pause (s) — below the 60 s
                               // recruitment threshold, so pauses do not
                               // release the machine
  double kb_prob_typing = 0.85;  // per-sample keyboard probability
  double kb_prob_pause = 0.04;

  // --- interactive CPU while active ---
  double interactive_cpu_base = 0.015;
  double interactive_cpu_exp_mean = 0.025;  // + Exp(mean) tail

  // --- compute episodes (compiles, local simulations) ---
  double episode_rate_active = 1.0 / 360.0;  // Poisson, per active second
  double episode_rate_away = 1.0 / 7200.0;   // jobs left running unattended
  double episode_mean = 75.0;                // mean episode length (s)
  double episode_cpu_lo = 0.30;              // episode utilization ~ U[lo,hi]
  double episode_cpu_hi = 1.00;

  // --- background CPU while away ---
  double away_cpu_exp_mean = 0.012;

  // --- memory (KB) ---
  std::int32_t mem_base_active_lo = 26624;  // per-session base ~ U[lo,hi]
  std::int32_t mem_base_active_hi = 51200;
  // Away bases stay close to active ones: users leave their applications
  // open, and the paper observes no significant idle/non-idle difference in
  // free memory.
  std::int32_t mem_base_away_lo = 22528;
  std::int32_t mem_base_away_hi = 47104;
  std::int32_t mem_episode_lo = 4096;   // extra during a compute episode
  std::int32_t mem_episode_hi = 16384;
  double mem_walk_sd = 320.0;           // per-sample random-walk step (KB)
  double mem_walk_reversion = 0.02;     // pull back toward the session base
};

/// Generates one machine trace. Deterministic in (config, stream).
[[nodiscard]] CoarseTrace generate_coarse_trace(const CoarseGenConfig& config,
                                                rng::Stream stream);

/// Generates a pool of machine traces (forked sub-streams per machine), as
/// the cluster simulator expects — it assigns each simulated node a random
/// trace and a random starting offset, mirroring the paper's methodology.
[[nodiscard]] std::vector<CoarseTrace> generate_machine_pool(
    const CoarseGenConfig& config, std::size_t machines,
    const rng::Stream& master);

}  // namespace ll::trace
