#include "trace/coarse_generator.hpp"

#include <algorithm>
#include <cmath>

#include "rng/distributions.hpp"

namespace ll::trace {
namespace {

enum class UserState { Away, Active };

double hour_of_day(double t) { return std::fmod(t / 3600.0, 24.0); }

double p_active_at(const CoarseGenConfig& cfg, double t) {
  const double h = hour_of_day(t + cfg.start_hour * 3600.0);
  if (h >= 9.0 && h < 18.0) return cfg.p_active_day;
  if (h >= 18.0 && h < 23.0) return cfg.p_active_evening;
  return cfg.p_active_night;
}

double sample_exp(rng::Stream& s, double mean) {
  return -std::log(1.0 - s.uniform01()) * mean;
}

/// Gaussian via Box–Muller (one draw per call; simple and adequate here).
double sample_normal(rng::Stream& s) {
  const double u1 = 1.0 - s.uniform01();
  const double u2 = s.uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace

CoarseTrace generate_coarse_trace(const CoarseGenConfig& cfg,
                                  rng::Stream stream) {
  rng::Stream sessions = stream.fork("sessions");
  rng::Stream typing = stream.fork("typing");
  rng::Stream cpu = stream.fork("cpu");
  rng::Stream episodes = stream.fork("episodes");
  rng::Stream memory = stream.fork("memory");

  CoarseTrace trace(cfg.period);
  const auto samples =
      static_cast<std::size_t>(std::floor(cfg.duration / cfg.period));

  // User state machine.
  UserState user = UserState::Away;
  double state_remaining = sample_exp(sessions, cfg.away_mean);

  // Typing/pause micro-structure (only meaningful while Active).
  bool is_typing = true;
  double micro_remaining = sample_exp(typing, cfg.typing_mean);

  // Compute-episode overlay.
  double episode_remaining = 0.0;
  double episode_cpu = 0.0;
  double episode_mem = 0.0;

  // Memory state.
  double mem_base = memory.uniform(cfg.mem_base_away_lo, cfg.mem_base_away_hi);
  double mem_walk = 0.0;

  for (std::size_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) * cfg.period;

    // --- advance user state ---
    while (state_remaining <= 0.0) {
      if (user == UserState::Active) {
        user = UserState::Away;
        state_remaining += sample_exp(sessions, cfg.away_mean);
        mem_base = memory.uniform(cfg.mem_base_away_lo, cfg.mem_base_away_hi);
      } else if (sessions.uniform01() < p_active_at(cfg, t)) {
        user = UserState::Active;
        state_remaining +=
            cfg.active_min + sample_exp(sessions, cfg.active_mean - cfg.active_min);
        mem_base = memory.uniform(cfg.mem_base_active_lo, cfg.mem_base_active_hi);
        is_typing = true;
        micro_remaining = sample_exp(typing, cfg.typing_mean);
      } else {
        state_remaining += sample_exp(sessions, cfg.away_mean);
      }
    }
    state_remaining -= cfg.period;

    // --- typing / pause micro-structure ---
    bool keyboard = false;
    if (user == UserState::Active) {
      while (micro_remaining <= 0.0) {
        is_typing = !is_typing;
        micro_remaining +=
            sample_exp(typing, is_typing ? cfg.typing_mean : cfg.pause_mean);
      }
      micro_remaining -= cfg.period;
      const double p = is_typing ? cfg.kb_prob_typing : cfg.kb_prob_pause;
      keyboard = typing.uniform01() < p;
    }

    // --- compute episodes ---
    if (episode_remaining <= 0.0) {
      const double rate = user == UserState::Active ? cfg.episode_rate_active
                                                    : cfg.episode_rate_away;
      if (episodes.uniform01() < 1.0 - std::exp(-rate * cfg.period)) {
        episode_remaining = sample_exp(episodes, cfg.episode_mean);
        episode_cpu = episodes.uniform(cfg.episode_cpu_lo, cfg.episode_cpu_hi);
        episode_mem = episodes.uniform(cfg.mem_episode_lo, cfg.mem_episode_hi);
      }
    } else {
      episode_remaining -= cfg.period;
      if (episode_remaining <= 0.0) {
        episode_cpu = 0.0;
        episode_mem = 0.0;
      }
    }

    // --- CPU utilization for this window ---
    double util;
    if (user == UserState::Active) {
      util = cfg.interactive_cpu_base +
             sample_exp(cpu, cfg.interactive_cpu_exp_mean);
    } else {
      util = sample_exp(cpu, cfg.away_cpu_exp_mean);
    }
    if (episode_remaining > 0.0) util = std::max(util, episode_cpu);
    util = std::clamp(util, 0.0, 1.0);

    // --- memory ---
    mem_walk += cfg.mem_walk_sd * sample_normal(memory) -
                cfg.mem_walk_reversion * mem_walk;
    double used = mem_base + mem_walk + (episode_remaining > 0.0 ? episode_mem : 0.0);
    used = std::clamp(used, 4096.0, static_cast<double>(cfg.mem_total_kb) - 2048.0);
    const auto free_kb = static_cast<std::int32_t>(cfg.mem_total_kb - used);

    trace.push(CoarseSample{util, free_kb, keyboard});
  }
  return trace;
}

std::vector<CoarseTrace> generate_machine_pool(const CoarseGenConfig& config,
                                               std::size_t machines,
                                               const rng::Stream& master) {
  std::vector<CoarseTrace> pool;
  pool.reserve(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    pool.push_back(generate_coarse_trace(config, master.fork("machine", m)));
  }
  return pool;
}

}  // namespace ll::trace
