#pragma once

/// \file coarse_analysis.hpp
/// Aggregate statistics over coarse traces — the numbers of paper §3.2 and
/// Figure 4: how much time machines spend non-idle, how lightly loaded those
/// non-idle windows are, and how much memory is available in each state.

#include <vector>

#include "stats/cdf.hpp"
#include "trace/records.hpp"
#include "trace/recruitment.hpp"

namespace ll::trace {

struct CoarseStats {
  double nonidle_fraction = 0.0;       // paper: ~46%
  double mean_cpu_overall = 0.0;
  double mean_cpu_idle = 0.0;          // "l" of the linger cost model
  double mean_cpu_nonidle = 0.0;       // "h" of the linger cost model
  // Fraction of *non-idle* time with utilization below 10% (paper: ~76%).
  double nonidle_below_10pct = 0.0;
  double mean_nonidle_episode = 0.0;   // seconds
  double mean_idle_episode = 0.0;      // seconds
  std::size_t sample_count = 0;
};

/// Computes aggregate stats over a pool of traces under the recruitment rule.
[[nodiscard]] CoarseStats analyze_coarse(const std::vector<CoarseTrace>& pool,
                                         const RecruitmentRule& rule = {});

/// Free-memory samples split by machine state, for the Figure 4 CDFs.
struct MemoryAvailability {
  std::vector<double> all_kb;
  std::vector<double> idle_kb;
  std::vector<double> nonidle_kb;
};

[[nodiscard]] MemoryAvailability memory_availability(
    const std::vector<CoarseTrace>& pool, const RecruitmentRule& rule = {});

/// Fraction of samples with at least `kb` free (one point of the Figure 4
/// complementary CDF).
[[nodiscard]] double fraction_with_at_least(const std::vector<double>& kb_samples,
                                            double kb);

}  // namespace ll::trace
