#pragma once

/// \file trace_io.hpp
/// Text serialization of fine and coarse traces.
///
/// Formats are line-oriented and self-describing so traces can be inspected,
/// diffed and re-plotted with standard tools:
///
/// Coarse:  "# ll-coarse-trace v1 period=<seconds>"
///          one line per sample: "<cpu> <mem_free_kb> <kb 0|1>"
/// Fine:    "# ll-fine-trace v1"
///          one line per burst: "<R|I> <duration-seconds>"

#include <iosfwd>
#include <string>

#include "trace/records.hpp"

namespace ll::trace {

void save_coarse(const CoarseTrace& trace, std::ostream& out);
void save_coarse(const CoarseTrace& trace, const std::string& path);
[[nodiscard]] CoarseTrace load_coarse(std::istream& in);
[[nodiscard]] CoarseTrace load_coarse(const std::string& path);

void save_fine(const FineTrace& trace, std::ostream& out);
void save_fine(const FineTrace& trace, const std::string& path);
[[nodiscard]] FineTrace load_fine(std::istream& in);
[[nodiscard]] FineTrace load_fine(const std::string& path);

}  // namespace ll::trace
