#pragma once

/// \file recruitment.hpp
/// The recruitment rule that classifies coarse-trace windows as idle or
/// non-idle. Paper §3.2: "An idle interval is a period of time with the CPU
/// less than 10% used and no keyboard action for 1 minute (called the
/// recruitment threshold)." A machine therefore becomes idle only after a
/// full quiet minute, and becomes non-idle immediately on keyboard activity
/// or a CPU spike.

#include <vector>

#include "trace/records.hpp"

namespace ll::trace {

struct RecruitmentRule {
  double cpu_threshold = 0.10;    // window is "quiet" if cpu < threshold
  double quiet_seconds = 60.0;    // must be quiet this long to count as idle
};

/// Computes the per-sample idle flag for a trace under a rule. Sample i is
/// idle iff every sample in the trailing `quiet_seconds` window (including i)
/// has cpu < threshold and no keyboard activity. The leading samples of the
/// trace (age < quiet_seconds) are conservatively non-idle unless the whole
/// prefix is quiet for quiet_seconds... they are treated with the same rule
/// applied to the available prefix only when the prefix spans the full quiet
/// window; otherwise they are non-idle (conservative).
[[nodiscard]] std::vector<bool> idle_flags(const CoarseTrace& trace,
                                           const RecruitmentRule& rule = {});

/// Fraction of samples flagged idle.
[[nodiscard]] double idle_fraction(const CoarseTrace& trace,
                                   const RecruitmentRule& rule = {});

/// Lengths (seconds) of maximal non-idle episodes. The linger cost model
/// reasons about the distribution of these episode durations (§2).
[[nodiscard]] std::vector<double> nonidle_episode_lengths(
    const CoarseTrace& trace, const RecruitmentRule& rule = {});

/// Lengths (seconds) of maximal idle episodes.
[[nodiscard]] std::vector<double> idle_episode_lengths(
    const CoarseTrace& trace, const RecruitmentRule& rule = {});

}  // namespace ll::trace
