#include "trace/records.hpp"

#include <cmath>

namespace ll::trace {

double FineTrace::duration() const {
  double total = 0.0;
  for (const Burst& b : bursts_) total += b.duration;
  return total;
}

double FineTrace::utilization() const {
  double run = 0.0;
  double total = 0.0;
  for (const Burst& b : bursts_) {
    total += b.duration;
    if (b.kind == BurstKind::Run) run += b.duration;
  }
  return total > 0.0 ? run / total : 0.0;
}

std::size_t CoarseTrace::index_at(double t) const {
  if (samples_.empty()) throw std::logic_error("index_at on empty trace");
  if (t < 0.0) throw std::invalid_argument("index_at: negative time");
  auto idx = static_cast<std::size_t>(std::floor(t / period_));
  return idx % samples_.size();
}

double CoarseTrace::mean_cpu() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const CoarseSample& s : samples_) sum += s.cpu;
  return sum / static_cast<double>(samples_.size());
}

}  // namespace ll::trace
