#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ll::trace {
namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return in;
}

}  // namespace

void save_coarse(const CoarseTrace& trace, std::ostream& out) {
  out << "# ll-coarse-trace v1 period=" << trace.period() << "\n";
  for (const CoarseSample& s : trace.samples()) {
    out << s.cpu << ' ' << s.mem_free_kb << ' ' << (s.keyboard ? 1 : 0) << '\n';
  }
}

void save_coarse(const CoarseTrace& trace, const std::string& path) {
  auto out = open_out(path);
  save_coarse(trace, out);
}

CoarseTrace load_coarse(std::istream& in) {
  std::string header;
  if (!std::getline(in, header)) {
    throw std::runtime_error("coarse trace: empty input");
  }
  const std::string magic = "# ll-coarse-trace v1 period=";
  if (header.rfind(magic, 0) != 0) {
    throw std::runtime_error("coarse trace: bad header '" + header + "'");
  }
  const double period = std::stod(header.substr(magic.size()));
  CoarseTrace trace(period);
  std::string line;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    double cpu = 0.0;
    std::int32_t mem = 0;
    int kb = 0;
    if (!(fields >> cpu >> mem >> kb) || (kb != 0 && kb != 1)) {
      throw std::runtime_error("coarse trace: malformed line " +
                               std::to_string(line_no) + ": '" + line + "'");
    }
    trace.push(CoarseSample{cpu, mem, kb == 1});
  }
  return trace;
}

CoarseTrace load_coarse(const std::string& path) {
  auto in = open_in(path);
  return load_coarse(in);
}

void save_fine(const FineTrace& trace, std::ostream& out) {
  out << "# ll-fine-trace v1\n";
  for (const Burst& b : trace.bursts()) {
    out << (b.kind == BurstKind::Run ? 'R' : 'I') << ' ' << b.duration << '\n';
  }
}

void save_fine(const FineTrace& trace, const std::string& path) {
  auto out = open_out(path);
  save_fine(trace, out);
}

FineTrace load_fine(std::istream& in) {
  std::string header;
  if (!std::getline(in, header) || header.rfind("# ll-fine-trace v1", 0) != 0) {
    throw std::runtime_error("fine trace: bad or missing header");
  }
  FineTrace trace;
  std::string line;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    char kind = 0;
    double duration = 0.0;
    if (!(fields >> kind >> duration) || (kind != 'R' && kind != 'I') ||
        duration < 0.0) {
      throw std::runtime_error("fine trace: malformed line " +
                               std::to_string(line_no) + ": '" + line + "'");
    }
    trace.push(kind == 'R' ? BurstKind::Run : BurstKind::Idle, duration);
  }
  return trace;
}

FineTrace load_fine(const std::string& path) {
  auto in = open_in(path);
  return load_fine(in);
}

}  // namespace ll::trace
