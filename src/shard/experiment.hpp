#pragma once

/// \file experiment.hpp
/// Open/closed experiment drivers for the sharded engine — the exact
/// protocol of cluster/experiment.hpp (same workloads, same ClusterReport)
/// executed on a ShardedClusterSim, so `llsim cluster --shards K` and the
/// ext_scale_sharded bench reuse the monolithic reporting path unchanged.

#include <functional>
#include <span>

#include "cluster/experiment.hpp"
#include "shard/sharded_sim.hpp"

namespace ll::shard {

/// Observational hooks, mirroring cluster::RunHooks: `on_start` fires right
/// after construction (attach metrics/tracer), `on_finish` after the run
/// completes while the simulator is still alive (snapshot ShardStats).
struct RunHooks {
  std::function<void(ShardedClusterSim&)> on_start;
  std::function<void(ShardedClusterSim&)> on_finish;
};

/// Open-mode run on `shards` shards; `runner` executes the per-window shard
/// tasks (nullptr = serial). Reports the same metrics as cluster::run_open
/// except observed_idle_fraction, which the sharded engine does not sample.
[[nodiscard]] cluster::ClusterReport run_open(
    const cluster::ExperimentConfig& config, std::size_t shards,
    std::span<const trace::CoarseTrace> pool,
    const workload::BurstTable& table, util::TaskRunner* runner = nullptr,
    cluster::JobStore* jobs_out = nullptr, const RunHooks* hooks = nullptr);

/// Closed-mode run: holds `workload.jobs` jobs in the system for `duration`.
[[nodiscard]] cluster::ClusterReport run_closed(
    const cluster::ExperimentConfig& config, std::size_t shards,
    std::span<const trace::CoarseTrace> pool,
    const workload::BurstTable& table, double duration = 3600.0,
    util::TaskRunner* runner = nullptr, const RunHooks* hooks = nullptr);

}  // namespace ll::shard
