#include "shard/sharded_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/policy.hpp"
#include "trace/recruitment.hpp"
#include "util/table.hpp"

namespace ll::shard {

namespace {

constexpr double kRemainingEps = 1e-9;  // same residue rule as ClusterSim
constexpr double kTimeEps = 1e-9;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// One shard: a private engine over the contiguous node slice [lo, hi),
/// plus the outgoing mailboxes the coordinator drains at each barrier.
/// Between barriers a shard touches only its own slice of the node SoA and
/// the job records resident on its nodes, so shards are data-race free by
/// partition (the TaskRunner disjoint-slot contract).
struct ShardedClusterSim::Shard {
  explicit Shard(des::Simulation::Options options) : sim(options) {}

  std::size_t index = 0;
  std::size_t lo = 0, hi = 0;
  des::Simulation sim;

  struct Completion {
    double time = 0.0;
    cluster::JobId job = 0;
  };
  struct Requeue {
    double time = 0.0;
    cluster::JobId job = 0;
  };
  struct Intent {
    double time = 0.0;
    cluster::JobId job = 0;
    std::size_t node = 0;
  };
  std::vector<Completion> completions;  // mailbox: completed this window
  std::vector<Requeue> requeues;        // mailbox: crash/abort re-queues
  std::vector<Intent> intents;          // mailbox: migrate decisions

  // Per-node pending events (slot-1 occupancy: one of each per node).
  std::vector<des::EventId> completion_evt;
  std::vector<des::EventId> ckpt_evt;

  // Window-local counter deltas, folded by the coordinator at the barrier.
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t aborts = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t delivered = 0;  // cross-shard arrivals landed

  std::uint64_t advance_ns = 0;
  bool participated = false;
};

ShardedClusterSim::ShardedClusterSim(cluster::ClusterConfig config,
                                     std::size_t shards,
                                     std::span<const trace::CoarseTrace> pool,
                                     const workload::BurstTable& burst_table,
                                     rng::Stream stream,
                                     util::TaskRunner* runner)
    : cfg_(std::move(config)),
      shard_count_(shards),
      runner_(runner),
      master_(stream),
      rates_(node::EffectiveRateTable::analytic(burst_table,
                                                cfg_.context_switch)) {
  if (cfg_.node_count == 0) {
    throw std::invalid_argument("sharded sim: node_count must be > 0");
  }
  if (shard_count_ == 0) {
    throw std::invalid_argument("sharded sim: shard count must be >= 1");
  }
  if (pool.empty()) {
    throw std::invalid_argument("sharded sim: trace pool must be non-empty");
  }
  if (cfg_.max_foreign_per_node != 1) {
    throw std::invalid_argument(
        "sharded sim: only max_foreign_per_node == 1 is modeled");
  }
  period_ = pool.front().period();
  for (const auto& t : pool) {
    if (t.empty()) {
      throw std::invalid_argument("sharded sim: empty trace in pool");
    }
    if (t.period() != period_) {
      throw std::invalid_argument("sharded sim: traces must share one period");
    }
  }
  cfg_.faults.validate();
  cfg_.checkpoint.validate();
  policy_ = core::make_policy(cfg_.policy, cfg_.policy_params);

  // The lookahead: nothing crosses shards faster than one migration.
  window_ = std::max(cfg_.migration.cost(cfg_.job_bytes), period_);

  // Idle-flag cache + measured idle utilization "l", as the monolith does.
  flag_cache_.reserve(pool.size());
  double idle_cpu_sum = 0.0;
  std::size_t idle_cpu_count = 0;
  for (const auto& t : pool) {
    flag_cache_.push_back(trace::idle_flags(t, cfg_.recruitment));
    const auto& flags = flag_cache_.back();
    for (std::size_t i = 0; i < flags.size(); ++i) {
      if (flags[i]) {
        idle_cpu_sum += t.samples()[i].cpu;
        ++idle_cpu_count;
      }
    }
  }
  if (cfg_.idle_utilization_estimate >= 0.0) {
    idle_util_ = cfg_.idle_utilization_estimate;
  } else if (idle_cpu_count > 0) {
    idle_util_ = idle_cpu_sum / static_cast<double>(idle_cpu_count);
  }

  const std::size_t n = cfg_.node_count;
  node_trace_.resize(n);
  node_flags_.resize(n);
  node_offset_.resize(n);
  node_util_.assign(n, 0.0);
  node_idle_.assign(n, 0);
  node_down_until_.assign(n, 0.0);
  node_episode_.assign(n, 0.0);
  node_forced_until_.assign(n, 0.0);
  node_forced_util_.assign(n, 0.0);
  node_reserved_.assign(n, 0);
  node_occupant_.assign(n, kNoJob);
  node_mark_.assign(n, 0.0);
  node_fg_cpu_.assign(n, 0.0);
  node_fg_delay_.assign(n, 0.0);
  node_lost_.assign(n, 0.0);

  // Per-node RNG: fork by index, never sequentially — the fork is a pure
  // function of (seed, "node-setup", i), so the assignment is invariant to
  // shard count and to the order shards are constructed or executed in
  // (the seed-partitioning rule; pinned by tests/shard/).
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t pick = i % pool.size();
    std::size_t offset = 0;
    if (cfg_.randomize_placement) {
      rng::Stream setup = master_.fork("node-setup", i);
      pick = static_cast<std::size_t>(setup.uniform_index(pool.size()));
      offset = static_cast<std::size_t>(
          setup.uniform_index(pool[pick].samples().size()));
    }
    node_trace_[i] = &pool[pick];
    node_flags_[i] = &flag_cache_[pick];
    node_offset_[i] = offset;
  }

  if (!cfg_.faults.empty()) {
    faults_ = std::make_unique<fault::FaultSchedule>(
        fault::FaultSchedule::compile(cfg_.faults, n, master_.fork("faults")));
  }

  const std::size_t chunk = (n + shard_count_ - 1) / shard_count_;
  des::Simulation::Options engine_options;
  engine_options.queue = cfg_.queue;
  shards_.reserve(shard_count_);
  for (std::size_t k = 0; k < shard_count_; ++k) {
    auto sh = std::make_unique<Shard>(engine_options);
    sh->index = k;
    sh->lo = std::min(k * chunk, n);
    sh->hi = std::min(sh->lo + chunk, n);
    sh->completion_evt.assign(n, des::kNoEvent);
    sh->ckpt_evt.assign(n, des::kNoEvent);
    shards_.push_back(std::move(sh));
  }
  for (auto& sp : shards_) {
    Shard& sh = *sp;
    if (sh.lo == sh.hi) continue;
    // Initial window state at t = 0 (window index 0), then the tick chain.
    for (std::size_t i = sh.lo; i < sh.hi; ++i) {
      refresh_node(sh, i, 0.0, false);
    }
    Shard* shp = &sh;
    sh.sim.schedule_at(
        period_, [this, shp] { tick(*shp, 1); }, kTagTick);
    if (faults_) {
      for (const fault::FaultEvent& ev : faults_->events()) {
        bool mine = false;
        for (std::size_t idx : ev.nodes) {
          if (idx >= sh.lo && idx < sh.hi) mine = true;
        }
        if (!mine) continue;
        const fault::FaultEvent* evp = &ev;
        sh.sim.schedule_at(
            ev.time, [this, shp, evp] { apply_fault(*shp, *evp); }, kTagFault);
      }
    }
  }
  stats_.shards = shard_count_;
}

ShardedClusterSim::~ShardedClusterSim() = default;

bool ShardedClusterSim::is_down(std::size_t i, double t) const {
  return node_down_until_[i] > t + kTimeEps;
}

bool ShardedClusterSim::executing(const cluster::JobRecord& job) const {
  return job.state == cluster::JobState::Running ||
         job.state == cluster::JobState::Lingering;
}

ShardedClusterSim::Shard& ShardedClusterSim::shard_of(std::size_t node) {
  const std::size_t chunk =
      (cfg_.node_count + shard_count_ - 1) / shard_count_;
  return *shards_[node / chunk];
}

// ---------------------------------------------------------------------------
// Shard-local dynamics (shard tasks; only slice state is touched).

void ShardedClusterSim::integrate_to(std::size_t i, double t) {
  const double dt = t - node_mark_[i];
  if (!(dt > 0.0)) return;
  node_mark_[i] = t;
  const double util = node_util_[i];
  node_fg_cpu_[i] += util * dt;
  const cluster::JobId id = node_occupant_[i];
  if (id == kNoJob) return;
  cluster::JobRecord& job = jobs_[id];
  if (!executing(job)) return;
  const double rate = rates_.foreign_rate(util);
  const double work = std::min(job.remaining, rate * dt);
  job.remaining -= work;
  if (util > 0.0) node_fg_delay_[i] += rates_.ldr(util) * util * dt;
}

void ShardedClusterSim::disarm_node(Shard& sh, std::size_t i) {
  if (sh.completion_evt[i] != des::kNoEvent) {
    sh.sim.cancel(sh.completion_evt[i]);
    sh.completion_evt[i] = des::kNoEvent;
  }
  if (sh.ckpt_evt[i] != des::kNoEvent) {
    sh.sim.cancel(sh.ckpt_evt[i]);
    sh.ckpt_evt[i] = des::kNoEvent;
  }
}

void ShardedClusterSim::arm_completion(Shard& sh, std::size_t i, double t) {
  if (sh.completion_evt[i] != des::kNoEvent) {
    sh.sim.cancel(sh.completion_evt[i]);
    sh.completion_evt[i] = des::kNoEvent;
  }
  const cluster::JobId id = node_occupant_[i];
  if (id == kNoJob) return;
  const cluster::JobRecord& job = jobs_[id];
  if (!executing(job)) return;
  const double rate = rates_.foreign_rate(node_util_[i]);
  if (!(rate > 1e-12)) return;
  const double eta = job.remaining / rate;
  if (!(eta >= 0.0) || eta > 1e12) return;
  Shard* shp = &sh;
  sh.completion_evt[i] = sh.sim.schedule_at(
      t + eta,
      [this, shp, i] { complete_job(*shp, i, shp->sim.now()); },
      kTagCompletion);
}

void ShardedClusterSim::complete_job(Shard& sh, std::size_t i, double t) {
  sh.completion_evt[i] = des::kNoEvent;
  const cluster::JobId id = node_occupant_[i];
  if (id == kNoJob) return;
  integrate_to(i, t);
  cluster::JobRecord& job = jobs_[id];
  if (job.remaining > kRemainingEps) {
    arm_completion(sh, i, t);  // FP residue: re-arm, as the monolith does
    return;
  }
  job.remaining = 0.0;
  job.set_state(cluster::JobState::Done, t);
  job.completion = t;
  node_occupant_[i] = kNoJob;
  job_node_[id] = kNoNode;
  job_intent_[id] = 0;
  disarm_node(sh, i);
  sh.completions.push_back({t, id});
}

void ShardedClusterSim::occupant_policy(Shard& sh, std::size_t i, double t) {
  const cluster::JobId id = node_occupant_[i];
  if (id == kNoJob) return;
  cluster::JobRecord& job = jobs_[id];
  if (job.state == cluster::JobState::Checkpointing) return;
  if (node_idle_[i]) {
    if (job.state == cluster::JobState::Lingering ||
        job.state == cluster::JobState::Paused) {
      job.set_state(cluster::JobState::Running, t);
      job_intent_[id] = 0;  // the owner left first; no migration needed
    }
    return;
  }
  if (job_intent_[id]) return;  // already waiting for a target
  core::PolicyContext ctx;
  ctx.episode_age = t - node_episode_[i];
  ctx.node_utilization = node_util_[i];
  ctx.idle_utilization = idle_util_;
  ctx.migration_cost = cfg_.migration.cost(job.bytes);
  const core::Decision d = policy_->on_nonidle(ctx);
  using Action = core::Decision::Action;
  switch (d.action) {
    case Action::Continue:
    case Action::Linger:
      job.set_state(cluster::JobState::Lingering, t);
      break;
    case Action::Pause:
      job.set_state(cluster::JobState::Paused, t);
      break;
    case Action::Migrate:
      job.set_state(policy_->allows_lingering()
                        ? cluster::JobState::Lingering
                        : cluster::JobState::Paused,
                    t);
      job_intent_[id] = 1;
      sh.intents.push_back({t, id, i});
      break;
  }
}

void ShardedClusterSim::refresh_node(Shard& sh, std::size_t i, double t,
                                     bool from_tick) {
  if (is_down(i, t)) {
    node_util_[i] = 0.0;
    node_idle_[i] = 0;
    return;
  }
  const auto& samples = node_trace_[i]->samples();
  const auto& flags = *node_flags_[i];
  const auto w = static_cast<std::size_t>(std::llround(t / period_));
  const std::size_t idx = (node_offset_[i] + w) % flags.size();
  double util = samples[idx].cpu;
  bool idle = flags[idx];
  if (node_forced_until_[i] > t + kTimeEps) {
    idle = false;
    util = std::max(util, node_forced_util_[i]);
  }
  const bool was_idle = node_idle_[i] != 0;
  node_util_[i] = util;
  node_idle_[i] = idle ? 1 : 0;
  if (was_idle && !idle) node_episode_[i] = t;
  if (!from_tick) return;
  occupant_policy(sh, i, t);
  const cluster::JobId id = node_occupant_[i];
  if (id != kNoJob && cfg_.checkpoint.enabled()) {
    cluster::JobRecord& job = jobs_[id];
    if (executing(job) && job_ckpt_due_[id] > 0.0 &&
        t >= job_ckpt_due_[id] - kTimeEps) {
      start_checkpoint(sh, i, t);
    }
  }
  arm_completion(sh, i, t);
}

void ShardedClusterSim::tick(Shard& sh, std::uint64_t k) {
  const double t = static_cast<double>(k) * period_;
  for (std::size_t i = sh.lo; i < sh.hi; ++i) {
    integrate_to(i, t);
    refresh_node(sh, i, t, true);
  }
  Shard* shp = &sh;
  sh.sim.schedule_at(
      static_cast<double>(k + 1) * period_, [this, shp, k] { tick(*shp, k + 1); },
      kTagTick);
}

void ShardedClusterSim::start_checkpoint(Shard& sh, std::size_t i, double t) {
  const cluster::JobId id = node_occupant_[i];
  cluster::JobRecord& job = jobs_[id];
  integrate_to(i, t);
  job.set_state(cluster::JobState::Checkpointing, t);
  if (sh.completion_evt[i] != des::kNoEvent) {
    sh.sim.cancel(sh.completion_evt[i]);
    sh.completion_evt[i] = des::kNoEvent;
  }
  Shard* shp = &sh;
  sh.ckpt_evt[i] = sh.sim.schedule_at(
      t + cfg_.checkpoint.cost(job.bytes),
      [this, shp, i] { finish_checkpoint(*shp, i, shp->sim.now()); },
      kTagCheckpoint);
}

void ShardedClusterSim::finish_checkpoint(Shard& sh, std::size_t i, double t) {
  sh.ckpt_evt[i] = des::kNoEvent;
  const cluster::JobId id = node_occupant_[i];
  if (id == kNoJob) return;
  integrate_to(i, t);
  cluster::JobRecord& job = jobs_[id];
  job.checkpointed = job.cpu_demand - job.remaining;
  ++job.checkpoints;
  ++sh.checkpoints;
  job_ckpt_due_[id] = t + cfg_.checkpoint.interval;
  if (node_idle_[i]) {
    job.set_state(cluster::JobState::Running, t);
  } else if (policy_->allows_lingering()) {
    job.set_state(cluster::JobState::Lingering, t);
  } else {
    job.set_state(cluster::JobState::Paused, t);
  }
  arm_completion(sh, i, t);
}

void ShardedClusterSim::crash_node(Shard& sh, std::size_t i, double t,
                                   double duration) {
  integrate_to(i, t);
  const bool was_down = is_down(i, t);
  node_down_until_[i] = std::max(node_down_until_[i], t + duration);
  ++sh.crashes;
  if (was_down) return;  // overlapping outage extended above
  node_util_[i] = 0.0;
  node_idle_[i] = 0;
  disarm_node(sh, i);
  const cluster::JobId id = node_occupant_[i];
  if (id == kNoJob) return;
  cluster::JobRecord& job = jobs_[id];
  const double progress = job.cpu_demand - job.remaining;
  node_lost_[i] += std::max(0.0, progress - job.checkpointed);
  job.remaining = job.cpu_demand - job.checkpointed;
  ++job.restarts;
  ++sh.restarts;
  job.set_state(cluster::JobState::Queued, t);
  node_occupant_[i] = kNoJob;
  job_node_[id] = kNoNode;
  job_intent_[id] = 0;
  sh.requeues.push_back({t, id});
}

void ShardedClusterSim::apply_fault(Shard& sh, const fault::FaultEvent& ev) {
  const double t = sh.sim.now();
  switch (ev.kind) {
    case fault::FaultKind::NodeCrash:
      for (std::size_t idx : ev.nodes) {
        if (idx >= sh.lo && idx < sh.hi) crash_node(sh, idx, t, ev.duration);
      }
      break;
    case fault::FaultKind::Storm:
      for (std::size_t idx : ev.nodes) {
        if (idx < sh.lo || idx >= sh.hi) continue;
        integrate_to(idx, t);
        node_forced_until_[idx] =
            std::max(node_forced_until_[idx], t + ev.duration);
        node_forced_util_[idx] =
            std::max(node_forced_util_[idx], cfg_.faults.storm.utilization);
        if (is_down(idx, t)) continue;
        if (node_idle_[idx]) {
          node_idle_[idx] = 0;
          node_episode_[idx] = t;
        }
        node_util_[idx] = std::max(node_util_[idx], node_forced_util_[idx]);
        occupant_policy(sh, idx, t);
        arm_completion(sh, idx, t);
      }
      break;
    case fault::FaultKind::Pressure:
      // The sharded model does not price the page pools; pressure spikes
      // are accepted (for schedule parity) but change nothing.
      break;
  }
}

// ---------------------------------------------------------------------------
// Coordinator (single-threaded; runs between windows).

cluster::JobId ShardedClusterSim::submit(double cpu_demand_seconds) {
  if (!(cpu_demand_seconds > 0.0)) {
    throw std::invalid_argument("submit: demand must be > 0");
  }
  const auto id = static_cast<cluster::JobId>(jobs_.size());
  cluster::JobRecord job;
  job.id = id;
  job.cpu_demand = cpu_demand_seconds;
  job.remaining = cpu_demand_seconds;
  job.bytes = cfg_.job_bytes;
  job.submit_time = now_;
  job.state = cluster::JobState::Queued;
  job.state_since = now_;
  jobs_.push_back(std::move(job));
  job_link_.push_back(master_.fork("job-link", id));
  job_node_.push_back(kNoNode);
  job_intent_.push_back(0);
  job_ckpt_due_.push_back(0.0);
  ++active_jobs_;
  queue_.push_back(id);
  if (!running_) place_queue(now_);
  return id;
}

void ShardedClusterSim::set_completion_callback(
    std::function<void(const cluster::JobRecord&)> cb) {
  on_complete_ = std::move(cb);
}

std::size_t ShardedClusterSim::best_target(double t, std::size_t exclude,
                                           bool want_idle) const {
  std::size_t best = kNoNode;
  double best_util = 0.0;
  for (std::size_t i = 0; i < cfg_.node_count; ++i) {
    if (i == exclude) continue;
    if (is_down(i, t)) continue;
    if (node_occupant_[i] != kNoJob || node_reserved_[i] != 0) continue;
    if ((node_idle_[i] != 0) != want_idle) continue;
    const double u = node_util_[i];
    if (best == kNoNode || u < best_util) {
      best = i;
      best_util = u;
    }
  }
  return best;
}

void ShardedClusterSim::place_job(cluster::JobId id, std::size_t target,
                                  double t) {
  integrate_to(target, t);
  node_occupant_[target] = id;
  job_node_[id] = target;
  cluster::JobRecord& job = jobs_[id];
  job.set_state(node_idle_[target] ? cluster::JobState::Running
                                   : cluster::JobState::Lingering,
                t);
  if (!job.first_start) job.first_start = t;
  if (cfg_.checkpoint.enabled() && job_ckpt_due_[id] == 0.0) {
    job_ckpt_due_[id] = t + cfg_.checkpoint.interval;
  }
  arm_completion(shard_of(target), target, t);
}

void ShardedClusterSim::place_queue(double t) {
  while (!queue_.empty()) {
    const cluster::JobId id = queue_.front();
    std::size_t target = best_target(t, kNoNode, true);
    if (target == kNoNode && policy_->allows_lingering()) {
      target = best_target(t, kNoNode, false);
    }
    if (target == kNoNode) break;
    queue_.pop_front();
    place_job(id, target, t);
  }
}

void ShardedClusterSim::rollback_requeue(cluster::JobId id,
                                         std::size_t charge_node, double t) {
  cluster::JobRecord& job = jobs_[id];
  const double progress = job.cpu_demand - job.remaining;
  node_lost_[charge_node] += std::max(0.0, progress - job.checkpointed);
  job.remaining = job.cpu_demand - job.checkpointed;
  ++job.restarts;
  ++restarts_;
  job.set_state(cluster::JobState::Queued, t);
  queue_.push_back(id);
}

void ShardedClusterSim::start_transfer(cluster::JobId id, std::size_t from,
                                       std::size_t to, double t) {
  cluster::JobRecord& job = jobs_[id];
  ++migrations_;
  job.set_state(cluster::JobState::Migrating, t);
  disarm_node(shard_of(from), from);
  node_occupant_[from] = kNoJob;
  job_node_[id] = kNoNode;
  job_intent_[id] = 0;
  const double cost = cfg_.migration.cost(job.bytes);
  double arrive = t + cost;
  const fault::LinkFaultSpec& link = cfg_.faults.link;
  if (link.drop_probability > 0.0) {
    rng::Stream& ls = job_link_[id];
    std::size_t drops = 0;
    while (ls.uniform01() < link.drop_probability) {
      ++drops;
      if (drops > link.max_retries) break;
    }
    if (drops > link.max_retries) {
      ++aborts_;
      retries_ += link.max_retries;
      rollback_requeue(id, from, t);
      return;
    }
    retries_ += drops;
    arrive += static_cast<double>(drops) * (link.retry_backoff + cost);
  }
  node_reserved_[to] += 1;
  Shard& target = shard_of(to);
  const bool cross = target.index != shard_of(from).index;
  if (cross) ++stats_.mailbox_sent;
  Shard* shp = &target;
  target.sim.schedule_at(
      arrive,
      [this, shp, to, id, cross] {
        Shard& sh = *shp;
        const double at = sh.sim.now();
        node_reserved_[to] -= 1;
        if (cross) ++sh.delivered;
        cluster::JobRecord& arrived = jobs_[id];
        if (is_down(to, at)) {
          // Dead endpoint: the image cannot land; roll back to the last
          // checkpoint and re-queue at the next barrier.
          ++sh.aborts;
          const double progress = arrived.cpu_demand - arrived.remaining;
          node_lost_[to] += std::max(0.0, progress - arrived.checkpointed);
          arrived.remaining = arrived.cpu_demand - arrived.checkpointed;
          ++arrived.restarts;
          ++sh.restarts;
          arrived.set_state(cluster::JobState::Queued, at);
          sh.requeues.push_back({at, id});
          return;
        }
        if (!node_idle_[to] && !policy_->allows_lingering()) {
          // The destination went non-idle mid-flight and this policy may
          // not share an active owner's node: back to the queue.
          arrived.set_state(cluster::JobState::Queued, at);
          sh.requeues.push_back({at, id});
          return;
        }
        integrate_to(to, at);
        node_occupant_[to] = id;
        job_node_[id] = to;
        arrived.set_state(node_idle_[to] ? cluster::JobState::Running
                                         : cluster::JobState::Lingering,
                          at);
        if (!arrived.first_start) arrived.first_start = at;
        arm_completion(sh, to, at);
      },
      kTagMigration);
}

void ShardedClusterSim::advance_window(double horizon) {
  std::vector<std::function<void()>> tasks;
  for (auto& sp : shards_) {
    Shard& sh = *sp;
    sh.participated = false;
    sh.advance_ns = 0;
    if (sh.lo == sh.hi || sh.sim.pending_count() == 0) {
      ++stats_.empty_windows;  // empty shard: skip the window entirely
      continue;
    }
    sh.participated = true;
    Shard* shp = &sh;
    const std::uint64_t win = stats_.windows;
    tasks.push_back([this, shp, horizon, win] {
      const std::uint64_t t0 = steady_ns();
      const double v0 = shp->sim.now();
      shp->sim.run_until(horizon);
      const std::uint64_t t1 = steady_ns();
      shp->advance_ns = t1 - t0;
      if (tracer_) {
        tracer_->wall_span_at(lbl_shard_[shp->index], tracer_->rel_ns(t0),
                              tracer_->rel_ns(t1), v0, win);
      }
    });
  }
  if (tasks.empty()) return;
  if (runner_ && tasks.size() > 1) {
    runner_->run(std::move(tasks));
  } else {
    for (auto& task : tasks) task();
  }
}

void ShardedClusterSim::barrier(double t) {
  // Fold the window's mailboxes into canonical (time, job id) order. The
  // contents are shard-count invariant (each entry is produced by purely
  // node-local evolution); only their grouping differs with K, which the
  // global sort erases.
  std::vector<Shard::Completion> completions;
  std::vector<Shard::Requeue> requeues;
  std::vector<Shard::Intent> intents;
  std::uint64_t max_ns = 0;
  std::uint64_t sum_ns = 0;
  std::size_t participants = 0;
  for (auto& sp : shards_) {
    Shard& sh = *sp;
    completions.insert(completions.end(), sh.completions.begin(),
                       sh.completions.end());
    requeues.insert(requeues.end(), sh.requeues.begin(), sh.requeues.end());
    intents.insert(intents.end(), sh.intents.begin(), sh.intents.end());
    sh.completions.clear();
    sh.requeues.clear();
    sh.intents.clear();
    crashes_ += sh.crashes;
    restarts_ += sh.restarts;
    aborts_ += sh.aborts;
    checkpoints_ += sh.checkpoints;
    stats_.mailbox_delivered += sh.delivered;
    sh.crashes = sh.restarts = sh.aborts = sh.checkpoints = sh.delivered = 0;
    if (sh.participated) {
      ++participants;
      max_ns = std::max(max_ns, sh.advance_ns);
      sum_ns += sh.advance_ns;
    }
  }
  const std::uint64_t wait_ns =
      participants > 0 ? max_ns * participants - sum_ns : 0;
  stats_.barrier_wait_ns += wait_ns;
  stats_.max_barrier_wait_ns = std::max(stats_.max_barrier_wait_ns, wait_ns);

  std::sort(completions.begin(), completions.end(),
            [](const Shard::Completion& a, const Shard::Completion& b) {
              return a.time != b.time ? a.time < b.time : a.job < b.job;
            });
  std::sort(requeues.begin(), requeues.end(),
            [](const Shard::Requeue& a, const Shard::Requeue& b) {
              return a.time != b.time ? a.time < b.time : a.job < b.job;
            });
  std::sort(intents.begin(), intents.end(),
            [](const Shard::Intent& a, const Shard::Intent& b) {
              return a.time != b.time ? a.time < b.time : a.job < b.job;
            });

  for (const auto& c : completions) {
    ++completions_;
    --active_jobs_;
    if (on_complete_) on_complete_(jobs_[c.job]);
  }
  for (const auto& r : requeues) queue_.push_back(r.job);
  for (const auto& in : intents) {
    cluster::JobRecord& job = jobs_[in.job];
    const bool valid = job_intent_[in.job] != 0 &&
                       job_node_[in.job] == in.node &&
                       (job.state == cluster::JobState::Lingering ||
                        job.state == cluster::JobState::Paused) &&
                       node_idle_[in.node] == 0 && !is_down(in.node, t);
    if (!valid) {
      job_intent_[in.job] = 0;
      continue;
    }
    const std::size_t target = best_target(t, in.node, true);
    if (target == kNoNode) {
      // No idle destination this window: keep lingering/paused in place and
      // let the policy re-issue the intent (as Condor leaves evicted jobs
      // suspended until a target frees up).
      job_intent_[in.job] = 0;
      continue;
    }
    start_transfer(in.job, in.node, target, t);
  }
  place_queue(t);

  ++stats_.windows;
  if (metrics_) {
    m_windows_->add(1);
    if (wait_ns > 0) m_wait_->add(wait_ns);
    // sent/delivered counters advance to the cumulative totals.
    // (Counters are add-only; track deltas via the stats_ totals.)
  }
  if (m_sent_ && stats_.mailbox_sent > sent_published_) {
    m_sent_->add(stats_.mailbox_sent - sent_published_);
    sent_published_ = stats_.mailbox_sent;
  }
  if (m_delivered_ && stats_.mailbox_delivered > delivered_published_) {
    m_delivered_->add(stats_.mailbox_delivered - delivered_published_);
    delivered_published_ = stats_.mailbox_delivered;
  }
  if (tracer_) tracer_->instant(lbl_barrier_, t, wait_ns);
}

void ShardedClusterSim::finalize_integration() {
  for (std::size_t i = 0; i < cfg_.node_count; ++i) {
    integrate_to(i, now_);
  }
}

void ShardedClusterSim::run_until_all_complete(double max_horizon) {
  if (active_jobs_ == 0) return;
  running_ = true;
  const double t_end = now_ + max_horizon;
  while (active_jobs_ > 0 && now_ < t_end - kTimeEps) {
    const double horizon = std::min(now_ + window_, t_end);
    advance_window(horizon);
    now_ = horizon;
    barrier(horizon);
  }
  running_ = false;
  finalize_integration();
  if (active_jobs_ > 0) {
    throw std::runtime_error(
        "sharded run exceeded max_horizon with jobs incomplete");
  }
}

void ShardedClusterSim::run_for(double duration) {
  if (!(duration >= 0.0)) {
    throw std::invalid_argument("run_for: duration must be >= 0");
  }
  running_ = true;
  const double t_end = now_ + duration;
  while (now_ < t_end - kTimeEps) {
    const double horizon = std::min(now_ + window_, t_end);
    advance_window(horizon);
    now_ = horizon;
    barrier(horizon);
  }
  running_ = false;
  finalize_integration();
}

// ---------------------------------------------------------------------------
// Accessors and instrumentation.

double ShardedClusterSim::delivered_cpu() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const cluster::JobRecord& job = jobs_[i];
    sum += job.cpu_demand - job.remaining;
  }
  return sum;
}

double ShardedClusterSim::foreground_delay_ratio() const {
  double cpu = 0.0;
  double delay = 0.0;
  for (std::size_t i = 0; i < cfg_.node_count; ++i) {
    cpu += node_fg_cpu_[i];
    delay += node_fg_delay_[i];
  }
  return cpu > 0.0 ? delay / cpu : 0.0;
}

double ShardedClusterSim::work_lost() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < cfg_.node_count; ++i) sum += node_lost_[i];
  return sum;
}

const fault::FaultSchedule& ShardedClusterSim::fault_schedule() const {
  static const fault::FaultSchedule kEmpty;
  return faults_ ? *faults_ : kEmpty;
}

std::uint64_t ShardedClusterSim::logical_events() const {
  return static_cast<std::uint64_t>(completions_) +
         static_cast<std::uint64_t>(migrations_) + stats_.windows;
}

const des::Simulation& ShardedClusterSim::engine(std::size_t k) const {
  return shards_.at(k)->sim;
}

ShardedClusterSim::NodeView ShardedClusterSim::node_view(std::size_t i) const {
  NodeView view;
  view.idle = node_idle_.at(i) != 0;
  view.down = is_down(i, now_);
  view.utilization = node_util_[i];
  view.reserved = node_reserved_[i];
  view.occupant = node_occupant_[i];
  return view;
}

void ShardedClusterSim::set_metrics(obs::MetricRegistry* registry) {
  metrics_ = registry;
  if (!registry) {
    m_windows_ = m_sent_ = m_delivered_ = m_wait_ = nullptr;
    return;
  }
  m_windows_ = &registry->counter("shard.windows");
  m_sent_ = &registry->counter("shard.mailbox.sent");
  m_delivered_ = &registry->counter("shard.mailbox.delivered");
  m_wait_ = &registry->counter("shard.barrier_wait_ns");
  registry->gauge("shard.count").set(static_cast<double>(shard_count_));
}

void ShardedClusterSim::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (!tracer) return;
  lbl_barrier_ = tracer->label("shard.barrier");
  lbl_shard_.resize(shard_count_);
  for (std::size_t k = 0; k < shard_count_; ++k) {
    lbl_shard_[k] = tracer->label(util::format("shard:%zu", k));
  }
}

}  // namespace ll::shard
