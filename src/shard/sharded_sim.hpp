#pragma once

/// \file sharded_sim.hpp
/// Conservative time-windowed sharded cluster simulation (ROADMAP item 2,
/// second half; DESIGN.md §14).
///
/// A ShardedClusterSim partitions the node set into K contiguous shards.
/// Each shard owns a *private* DES engine (heap or calendar backend, the
/// same EventQueue interface the monolithic engine uses) and the SoA slice
/// of node state for its nodes. Shards advance independently — in parallel
/// on the lock-free TaskRunner — inside conservative time windows of length
///
///     W = MigrationCostModel::cost(job_bytes)
///
/// the minimum latency of any cross-shard interaction (a job can only reach
/// another shard by migrating, which suspends it for at least W). Within a
/// window a node evolves purely locally: trace replay, recruitment flips,
/// analytic job integration, policy consults, faults, checkpoint writes.
/// Everything that couples nodes — migration target selection, queue
/// placement, closed-mode resubmission, crash requeues — is buffered into
/// per-shard mailboxes and resolved at the window-edge barrier by a
/// single-threaded coordinator that drains the mailboxes in canonical
/// (time, job id) order over the quiescent global state. Global policy
/// state (the load ranking behind best-target selection) is therefore
/// refreshed from per-shard summaries exactly once per window edge.
///
/// Determinism contract (pinned by tests/shard/ and the .shards.golden
/// digests): results are byte-identical for every shard count and every
/// queue backend. The construction rules that guarantee it:
///  * per-entity RNG — node i forks `stream.fork("node-setup", i)`, job j
///    forks `stream.fork("job-link", j)`; forking is a pure function of
///    (seed, label, index), so neither shard count nor execution order can
///    perturb any draw;
///  * no cross-shard reads between barriers, and barrier processing is
///    single-threaded in canonical order;
///  * floating-point accumulators are per-node (foreground CPU/delay, lost
///    work), reduced in node-index order on demand — never in event order.
///
/// Scope: the sharded model is a window-granular re-expression of the
/// monolithic ClusterSim, not an event-for-event replica — policy rechecks
/// happen at trace-period granularity, migrations launch at window edges,
/// and the page-pool memory model and OracleLinger episode oracle are not
/// modeled. Its digests are pinned separately (<name>.shards.golden).

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "cluster/job.hpp"
#include "des/simulation.hpp"
#include "fault/fault_spec.hpp"
#include "node/effective_rate.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "rng/rng.hpp"
#include "trace/records.hpp"
#include "util/runner.hpp"
#include "workload/burst_table.hpp"

namespace ll::shard {

/// Barrier / mailbox accounting for one run (manifest "shards" section).
struct ShardStats {
  std::size_t shards = 0;             ///< shard count K
  std::uint64_t windows = 0;          ///< conservative windows completed
  std::uint64_t mailbox_sent = 0;     ///< cross-shard messages enqueued
  std::uint64_t mailbox_delivered = 0;///< cross-shard messages delivered
  std::uint64_t barrier_wait_ns = 0;  ///< total shard idle time at barriers
  std::uint64_t max_barrier_wait_ns = 0;  ///< worst single-window wait
  std::uint64_t empty_windows = 0;    ///< shard-windows skipped (no events)
};

class ShardedClusterSim {
 public:
  /// `shards` >= 1; shards in excess of nodes own empty slices (their
  /// windows are skipped — pinned by the empty-shard test). `runner`
  /// executes the per-window shard tasks; nullptr (or K == 1) advances the
  /// shards serially on the calling thread — results are identical either
  /// way per the TaskRunner determinism contract.
  ShardedClusterSim(cluster::ClusterConfig config, std::size_t shards,
                    std::span<const trace::CoarseTrace> pool,
                    const workload::BurstTable& burst_table,
                    rng::Stream stream, util::TaskRunner* runner = nullptr);
  ~ShardedClusterSim();
  ShardedClusterSim(const ShardedClusterSim&) = delete;
  ShardedClusterSim& operator=(const ShardedClusterSim&) = delete;

  /// Submits a job at the current (window-edge) time. Placement happens
  /// immediately when called between runs, as in the monolithic engine.
  cluster::JobId submit(double cpu_demand_seconds);

  /// Completion callback, fired at the first barrier after the completing
  /// event (closed-system experiments resubmit replacements from it).
  void set_completion_callback(
      std::function<void(const cluster::JobRecord&)> cb);

  /// Advances whole windows until every job completed; throws if
  /// `max_horizon` virtual seconds pass first.
  void run_until_all_complete(double max_horizon = 1e7);

  /// Advances exactly `duration` further virtual seconds (the final window
  /// is truncated to land on the exact horizon).
  void run_for(double duration);

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] const cluster::JobStore& jobs() const { return jobs_; }
  [[nodiscard]] std::size_t incomplete_jobs() const { return active_jobs_; }

  /// Total foreign CPU-seconds delivered: sum over jobs of
  /// (demand - remaining), reduced in job-id order (shard-count invariant).
  [[nodiscard]] double delivered_cpu() const;

  /// Aggregate owner-work delay ratio, reduced in node-index order.
  [[nodiscard]] double foreground_delay_ratio() const;

  [[nodiscard]] std::size_t migrations_started() const { return migrations_; }
  [[nodiscard]] double work_lost() const;
  [[nodiscard]] std::size_t restarts() const { return restarts_; }
  [[nodiscard]] std::size_t crashes() const { return crashes_; }
  [[nodiscard]] std::size_t migration_aborts() const { return aborts_; }
  [[nodiscard]] std::size_t migration_retries() const { return retries_; }
  [[nodiscard]] std::size_t checkpoints_taken() const { return checkpoints_; }
  [[nodiscard]] std::size_t completions() const { return completions_; }

  /// The conservative window length W (the lookahead).
  [[nodiscard]] double window_length() const { return window_; }
  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }
  [[nodiscard]] const ShardStats& stats() const { return stats_; }
  [[nodiscard]] const cluster::ClusterConfig& config() const { return cfg_; }
  [[nodiscard]] double idle_utilization() const { return idle_util_; }
  [[nodiscard]] const fault::FaultSchedule& fault_schedule() const;

  /// Shard-count-invariant event count for the golden digests: completions
  /// + migrations started + windows run (engine-level event totals vary
  /// with K — each shard runs its own tick chain — so they are not used).
  [[nodiscard]] std::uint64_t logical_events() const;

  /// Shard k's private engine (verification: conservation checks).
  [[nodiscard]] const des::Simulation& engine(std::size_t k) const;

  /// Quiescent view of one node, for the occupancy invariant checker and
  /// the tests. Valid between run_* calls.
  struct NodeView {
    bool idle = true;
    bool down = false;
    double utilization = 0.0;
    std::size_t reserved = 0;
    cluster::JobId occupant = kNoJob;  ///< kNoJob when free
  };
  [[nodiscard]] NodeView node_view(std::size_t i) const;
  [[nodiscard]] std::size_t node_count() const { return cfg_.node_count; }

  /// Attaches a metric registry (nullptr detaches). Registers shard.*
  /// counters updated only from the coordinator at barriers; purely
  /// observational (digest-neutral, pinned by tests).
  void set_metrics(obs::MetricRegistry* registry);

  /// Attaches a tracer (nullptr detaches): "shard:<k>" wall spans per
  /// window advance, "shard.barrier" instants (arg = imbalance wait ns).
  /// Purely observational.
  void set_tracer(obs::Tracer* tracer);

  static constexpr cluster::JobId kNoJob =
      std::numeric_limits<cluster::JobId>::max();
  static constexpr std::size_t kNoNode =
      std::numeric_limits<std::size_t>::max();

  /// Observer tags on the shard engines (same numbering as ClusterSim).
  static constexpr std::uint64_t kTagTick = 1;
  static constexpr std::uint64_t kTagCompletion = 2;
  static constexpr std::uint64_t kTagMigration = 4;
  static constexpr std::uint64_t kTagFault = 5;
  static constexpr std::uint64_t kTagCheckpoint = 6;

 private:
  struct Shard;

  // --- shard-local dynamics (run on shard tasks; touch only slice state)
  void tick(Shard& sh, std::uint64_t k);
  void refresh_node(Shard& sh, std::size_t i, double t, bool from_tick);
  void integrate_to(std::size_t i, double t);
  void arm_completion(Shard& sh, std::size_t i, double t);
  void disarm_node(Shard& sh, std::size_t i);
  void complete_job(Shard& sh, std::size_t i, double t);
  void apply_fault(Shard& sh, const fault::FaultEvent& ev);
  void crash_node(Shard& sh, std::size_t i, double t, double duration);
  void start_checkpoint(Shard& sh, std::size_t i, double t);
  void finish_checkpoint(Shard& sh, std::size_t i, double t);
  void occupant_policy(Shard& sh, std::size_t i, double t);
  [[nodiscard]] bool is_down(std::size_t i, double t) const;
  [[nodiscard]] bool executing(const cluster::JobRecord& job) const;

  // --- coordinator (single-threaded, between windows)
  void advance_window(double horizon);
  void barrier(double t);
  void place_queue(double t);
  void place_job(cluster::JobId id, std::size_t target, double t);
  void start_transfer(cluster::JobId id, std::size_t from, std::size_t to,
                      double t);
  void rollback_requeue(cluster::JobId id, std::size_t charge_node, double t);
  [[nodiscard]] std::size_t best_target(double t, std::size_t exclude,
                                        bool idle_only) const;
  [[nodiscard]] Shard& shard_of(std::size_t node);
  void finalize_integration();

  cluster::ClusterConfig cfg_;
  std::size_t shard_count_ = 1;
  util::TaskRunner* runner_ = nullptr;
  rng::Stream master_;
  double window_ = 1.0;
  double period_ = 2.0;
  double now_ = 0.0;
  double idle_util_ = 0.05;

  node::EffectiveRateTable rates_;
  std::unique_ptr<core::Policy> policy_;
  std::unique_ptr<fault::FaultSchedule> faults_;

  // Node SoA (global arrays; shard k owns the contiguous slice [lo, hi)).
  std::vector<const trace::CoarseTrace*> node_trace_;
  std::vector<const std::vector<bool>*> node_flags_;
  std::vector<std::size_t> node_offset_;
  std::vector<double> node_util_;
  std::vector<unsigned char> node_idle_;
  std::vector<double> node_down_until_;
  std::vector<double> node_episode_;
  std::vector<double> node_forced_until_;
  std::vector<double> node_forced_util_;
  std::vector<std::uint8_t> node_reserved_;
  std::vector<cluster::JobId> node_occupant_;
  std::vector<double> node_mark_;     // integration watermark
  std::vector<double> node_fg_cpu_;
  std::vector<double> node_fg_delay_;
  std::vector<double> node_lost_;

  // Per-trace idle-flag cache shared by every node replaying that trace.
  std::vector<std::vector<bool>> flag_cache_;

  cluster::JobStore jobs_;
  std::vector<rng::Stream> job_link_;    // per-job link-fault stream
  std::vector<std::size_t> job_node_;    // current node or kNoNode
  std::vector<unsigned char> job_intent_;// queued migrate intent
  std::vector<double> job_ckpt_due_;     // next checkpoint time (0 = unset)

  std::deque<cluster::JobId> queue_;     // global FIFO dispatch queue
  std::size_t active_jobs_ = 0;
  std::size_t migrations_ = 0;
  std::size_t restarts_ = 0;
  std::size_t crashes_ = 0;
  std::size_t aborts_ = 0;
  std::size_t retries_ = 0;
  std::size_t checkpoints_ = 0;
  std::size_t completions_ = 0;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::function<void(const cluster::JobRecord&)> on_complete_;
  bool running_ = false;

  // Published-counter watermarks (metric counters are add-only).
  std::uint64_t sent_published_ = 0;
  std::uint64_t delivered_published_ = 0;

  ShardStats stats_;
  obs::MetricRegistry* metrics_ = nullptr;
  obs::Counter* m_windows_ = nullptr;
  obs::Counter* m_sent_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_wait_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t lbl_barrier_ = 0;
  std::vector<std::uint32_t> lbl_shard_;
};

}  // namespace ll::shard
