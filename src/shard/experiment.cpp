#include "shard/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/cdf.hpp"
#include "stats/summary.hpp"

namespace ll::shard {
namespace {

void fill_state_breakdown(cluster::ClusterReport& report,
                          const cluster::JobStore& jobs) {
  if (jobs.size() == 0) return;
  const auto n = static_cast<double>(jobs.size());
  for (const cluster::JobRecord& job : jobs) {
    report.avg_queued += job.time_in(cluster::JobState::Queued) / n;
    report.avg_running += job.time_in(cluster::JobState::Running) / n;
    report.avg_lingering += job.time_in(cluster::JobState::Lingering) / n;
    report.avg_paused += job.time_in(cluster::JobState::Paused) / n;
    report.avg_migrating += job.time_in(cluster::JobState::Migrating) / n;
    report.avg_checkpointing +=
        job.time_in(cluster::JobState::Checkpointing) / n;
  }
}

void fill_fault_metrics(cluster::ClusterReport& report,
                        const ShardedClusterSim& sim) {
  report.work_lost = sim.work_lost();
  report.restarts = sim.restarts();
  report.crashes = sim.crashes();
  report.checkpoints = sim.checkpoints_taken();
  const double total = sim.delivered_cpu() + sim.work_lost();
  report.goodput = total > 0.0 ? sim.delivered_cpu() / total : 1.0;
}

}  // namespace

cluster::ClusterReport run_open(const cluster::ExperimentConfig& config,
                                std::size_t shards,
                                std::span<const trace::CoarseTrace> pool,
                                const workload::BurstTable& table,
                                util::TaskRunner* runner,
                                cluster::JobStore* jobs_out,
                                const RunHooks* hooks) {
  rng::Stream master(config.seed);
  ShardedClusterSim sim(config.cluster, shards, pool, table,
                        master.fork("cluster"), runner);
  if (hooks && hooks->on_start) hooks->on_start(sim);
  for (std::size_t i = 0; i < config.workload.jobs; ++i) {
    sim.submit(config.workload.demand);
  }
  sim.run_until_all_complete();
  if (hooks && hooks->on_finish) hooks->on_finish(sim);

  cluster::ClusterReport report;
  stats::Summary turnaround;
  stats::Summary execution;
  std::vector<double> turnarounds;
  double family = 0.0;
  for (const cluster::JobRecord& job : sim.jobs()) {
    turnaround.add(job.turnaround());
    turnarounds.push_back(job.turnaround());
    execution.add(job.execution_time());
    family = std::max(family, *job.completion);
  }
  report.avg_completion = turnaround.mean();
  report.variation = execution.mean() > 0.0
                         ? execution.sample_stddev() / execution.mean()
                         : 0.0;
  report.family_time = family;
  if (!turnarounds.empty()) {
    const stats::EmpiricalCdf cdf(std::move(turnarounds));
    report.p50_completion = cdf.quantile(0.5);
    report.p90_completion = cdf.quantile(0.9);
  }
  fill_state_breakdown(report, sim.jobs());
  report.foreground_delay = sim.foreground_delay_ratio();
  report.migrations = sim.migrations_started();
  report.completed = sim.jobs().size();
  report.wall_time = sim.now();
  fill_fault_metrics(report, sim);
  if (jobs_out) *jobs_out = sim.jobs();
  return report;
}

cluster::ClusterReport run_closed(const cluster::ExperimentConfig& config,
                                  std::size_t shards,
                                  std::span<const trace::CoarseTrace> pool,
                                  const workload::BurstTable& table,
                                  double duration, util::TaskRunner* runner,
                                  const RunHooks* hooks) {
  if (!(duration > 0.0)) {
    throw std::invalid_argument("run_closed: duration must be > 0");
  }
  rng::Stream master(config.seed);
  ShardedClusterSim sim(config.cluster, shards, pool, table,
                        master.fork("cluster"), runner);
  if (hooks && hooks->on_start) hooks->on_start(sim);
  const double demand = config.workload.demand;
  sim.set_completion_callback(
      [&sim, demand](const cluster::JobRecord&) { sim.submit(demand); });
  for (std::size_t i = 0; i < config.workload.jobs; ++i) {
    sim.submit(demand);
  }
  sim.run_for(duration);
  if (hooks && hooks->on_finish) hooks->on_finish(sim);

  cluster::ClusterReport report;
  report.throughput = sim.delivered_cpu() / duration;
  std::size_t completed = 0;
  for (const cluster::JobRecord& job : sim.jobs()) {
    if (job.state == cluster::JobState::Done) ++completed;
  }
  report.completed = completed;
  fill_state_breakdown(report, sim.jobs());
  report.foreground_delay = sim.foreground_delay_ratio();
  report.migrations = sim.migrations_started();
  report.wall_time = sim.now();
  fill_fault_metrics(report, sim);
  return report;
}

}  // namespace ll::shard
