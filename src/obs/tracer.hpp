#pragma once

/// \file tracer.hpp
/// Flight-recorder span tracer: fixed-size binary records in lock-free
/// per-thread ring buffers. The per-tag counters of EventLoopProfiler say
/// *how many*; the tracer says *when* and *how long* — the profile-driven
/// input for the 100k-node scaling work (ROADMAP item 2).
///
/// Design contract, in the spirit of the rest of src/obs/:
///  * Observational only. Every instrumentation site is guarded by a null
///    pointer check, so the disabled path costs one never-taken branch and
///    cannot perturb digests (tests/obs/golden_obs_test.cpp pins this with
///    tracing *enabled* too — recording must be side-effect free).
///  * Never blocks the hot path. Each thread writes to its own ring; when
///    a ring wraps, the oldest records are overwritten and counted as
///    dropped — a flight recorder keeps the tail, not the head.
///  * Dual clocks. Every record carries virtual sim time and a wall-clock
///    timestamp (steady_clock ns relative to the tracer's construction),
///    so one trace answers both "what did the simulated cluster do" and
///    "where did the host CPU go".
///
/// Export contract: snapshot()/write_chrome_json() may only be called when
/// producers are quiescent — after the simulation returned and any
/// TaskRunner whose observer feeds this tracer has been destroyed or
/// detached. Rings are owned by the tracer (not the threads), so records
/// written by already-joined threads remain readable.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "des/simulation.hpp"
#include "util/runner.hpp"

namespace ll::obs {

/// What a TraceRecord's fields mean. kWallSpan uses [t0_ns, t1_ns] with v0
/// the virtual time at entry; kVirtualSpan uses [v0, v1] with t0_ns the
/// wall stamp at emission; kInstant stamps both clocks at one point.
enum class TraceKind : std::uint32_t { kInstant = 0, kWallSpan = 1, kVirtualSpan = 2 };

/// One fixed-size binary record (48 bytes). `label` indexes the tracer's
/// intern table; `arg` is a caller payload (job id, node index, task count).
struct TraceRecord {
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  double v0 = 0.0;
  double v1 = 0.0;
  std::uint64_t arg = 0;
  std::uint32_t label = 0;
  TraceKind kind = TraceKind::kInstant;
};
static_assert(sizeof(TraceRecord) == 48, "records are fixed-size binary");

class Tracer {
 public:
  /// `ring_capacity` is per thread, in records (rounded up to >= 2).
  explicit Tracer(std::size_t ring_capacity = 1 << 16);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Interns `name`, returning a stable id for record(). Cold path (mutex);
  /// call once per site and cache the id. Interning the same name twice
  /// returns the same id.
  [[nodiscard]] std::uint32_t label(std::string_view name);

  /// Nanoseconds since tracer construction (steady_clock).
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Converts an absolute steady_clock timestamp (ns since the clock's
  /// epoch, as util::RunnerObserver reports) to tracer-relative ns,
  /// clamping pre-construction stamps to 0.
  [[nodiscard]] std::uint64_t rel_ns(std::uint64_t abs_steady_ns) const;

  /// Point event at virtual time `vtime`, wall-stamped now.
  void instant(std::uint32_t label, double vtime, std::uint64_t arg = 0);

  /// Wall span that started at `t0_ns` (a prior now_ns() value) and ends
  /// now. `vtime` is the virtual time at entry.
  void wall_span(std::uint32_t label, std::uint64_t t0_ns, double vtime,
                 std::uint64_t arg = 0);

  /// Wall span with both endpoints supplied (now_ns()-relative).
  void wall_span_at(std::uint32_t label, std::uint64_t t0_ns,
                    std::uint64_t t1_ns, double vtime, std::uint64_t arg = 0);

  /// Virtual-time span [v0, v1], wall-stamped at emission.
  void virtual_span(std::uint32_t label, double v0, double v1,
                    std::uint64_t arg = 0);

  /// Totals across all rings: records ever written / overwritten-and-lost.
  /// Exact only when producers are quiescent (see file comment).
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// A merged, export-ready view of every ring.
  struct Snapshot {
    struct Entry {
      TraceRecord rec;
      std::uint32_t tid = 0;  ///< sequential ring index (registration order)
    };
    std::vector<Entry> records;      ///< sorted by (t0_ns, tid)
    std::vector<std::string> labels; ///< index == label id
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    std::uint32_t threads = 0;
  };

  /// Merges all rings. Quiescent-only (see file comment).
  [[nodiscard]] Snapshot snapshot() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}, ts/dur in
  /// microseconds), loadable in Perfetto / chrome://tracing. Two process
  /// tracks: pid 1 "wall clock" (kWallSpan as ph "X", kInstant as ph "i",
  /// one tid per recording thread), pid 2 "virtual time" (kVirtualSpan as
  /// ph "X" with virtual seconds mapped to trace microseconds). Quiescent-
  /// only, like snapshot().
  void write_chrome_json(std::ostream& out) const;
  static void write_chrome_json(const Snapshot& snap, std::ostream& out);

 private:
  struct Ring;
  struct Impl;

  Ring& ring() const;

  std::unique_ptr<Impl> impl_;
};

/// SimObserver that records one wall span per fired event, labelled by tag
/// ("fire:<name>" after name_tag, else "fire:tag<k>"). Chain it *in front*
/// of the verify/profile observers via `next`: every hook forwards, so
/// digests and profiles are unperturbed. With a null tracer it degrades to
/// a pure forwarder.
class TracingObserver final : public des::SimObserver {
 public:
  explicit TracingObserver(Tracer* tracer, des::SimObserver* next = nullptr)
      : tracer_(tracer), next_(next) {}

  /// Human label for a tag, mirroring EventLoopProfiler::name_tag.
  void name_tag(std::uint64_t tag, std::string_view name);

  void on_schedule(double when, des::EventId id, std::uint64_t tag) override;
  void on_fire(double time, des::EventId id, std::uint64_t tag) override;
  void on_fire_done(double time, des::EventId id, std::uint64_t tag) override;
  void on_cancel(des::EventId id, std::uint64_t tag) override;

 private:
  [[nodiscard]] std::uint32_t label_for(std::uint64_t tag);

  Tracer* tracer_;
  des::SimObserver* next_;
  // Lazily interned "fire:<tag>" labels; tags are small dense ints in
  // practice (ClusterSim pins 1..6).
  std::vector<std::uint32_t> tag_labels_;
  std::uint64_t fire_start_ns_ = 0;
};

/// Bridges util::TaskRunner's observer hooks (which cannot see obs:: —
/// util is the bottom layer) into tracer records: "runner.batch" wall
/// spans with the task count as arg, "runner.steal" instants, and
/// "runner.suspend" wall spans covering futex waits. Detach from the
/// runner (or destroy the runner) before exporting the tracer.
class RunnerTraceAdapter final : public util::RunnerObserver {
 public:
  explicit RunnerTraceAdapter(Tracer* tracer);

  void on_batch(std::size_t tasks, std::uint64_t t0_ns,
                std::uint64_t t1_ns) override;
  void on_steal(std::size_t slot) override;
  void on_suspend(std::size_t slot, std::uint64_t t0_ns,
                  std::uint64_t t1_ns) override;

 private:
  Tracer* tracer_;
  std::uint32_t lbl_batch_ = 0;
  std::uint32_t lbl_steal_ = 0;
  std::uint32_t lbl_suspend_ = 0;
};

}  // namespace ll::obs
