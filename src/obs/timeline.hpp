#pragma once

/// \file timeline.hpp
/// Per-entity state-transition timelines: a fixed-capacity ring buffer of
/// (virtual time, entity, state, detail) records. Cluster jobs, node
/// occupancy flips, and BSP phase boundaries all reduce to this shape, so
/// one generic recorder serves them all — the simulators just call
/// record() behind their usual `if (timeline_)` guard.
///
/// The ring is bounded on purpose: long sweeps must not grow memory without
/// limit, so once full the oldest records are overwritten and `dropped()`
/// counts what was lost. Dumps (text or JSON) always emit records oldest
/// to newest.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ll::obs {

/// One state transition of one entity.
struct TimelineRecord {
  double time = 0.0;     ///< virtual time of the transition
  std::string entity;    ///< e.g. "job 12", "node 3", "bsp"
  std::string state;     ///< e.g. "queued", "running", "migrating"
  std::string detail;    ///< free-form annotation ("node 3 -> node 7")
};

class Timeline {
 public:
  /// Capacity must be positive; the ring never reallocates after this.
  explicit Timeline(std::size_t capacity);

  void record(double time, std::string_view entity, std::string_view state,
              std::string_view detail = {});

  /// Records currently held, oldest first. Size <= capacity.
  [[nodiscard]] std::vector<TimelineRecord> records() const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Records overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t total_recorded() const {
    return dropped_ + size_;
  }

  /// "<time>  <entity>  <state>  <detail>" lines, oldest first, with a
  /// trailing "(N earlier records dropped)" note when the ring wrapped.
  void write_text(std::ostream& out) const;

  /// `{"dropped": N, "records": [{"time":...,"entity":...,...}, ...]}`.
  void write_json(std::ostream& out) const;

 private:
  std::vector<TimelineRecord> ring_;
  std::size_t head_ = 0;  ///< next slot to write
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace ll::obs
