#pragma once

/// \file profiler.hpp
/// Event-loop profiler: a SimObserver that answers "where does a run go?" —
/// which event tags dominate the fire count, how much wall-clock time their
/// callbacks consume, and how virtual time advances between fires.
///
/// Attach with sim.set_observer(&profiler) (or chain it behind the verify
/// observers via their `next` pointer — it forwards every hook, so digests
/// and invariant checks are unperturbed). Detached, the engine pays only
/// its usual single never-taken branch per hook; the profiler never touches
/// the simulation, so attaching it cannot change simulated behavior — the
/// golden-digest suite (tests/obs/golden_obs_test.cpp) pins exactly that.
///
/// Wall-clock attribution uses the on_fire / on_fire_done bracket the
/// engine emits around every callback. Virtual-time gaps are the deltas
/// between consecutive fire *times* (over all tags), binned per tag of the
/// later event: a tag whose fires cluster at equal times shows gap 0.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "des/simulation.hpp"

namespace ll::obs {

/// Aggregated statistics for one event tag.
struct TagProfile {
  std::uint64_t tag = 0;
  std::string name;             ///< registered label, or "tag<k>"
  std::uint64_t scheduled = 0;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  double wall_seconds = 0.0;    ///< callback wall-clock time (fire bracket)
  double gap_sum = 0.0;         ///< sum of inter-fire virtual-time gaps
  double gap_min = 0.0;
  double gap_max = 0.0;

  [[nodiscard]] double mean_gap() const {
    return fired > 0 ? gap_sum / static_cast<double>(fired) : 0.0;
  }
};

/// Whole-run profile plus the engine conservation line.
struct ProfileSnapshot {
  std::vector<TagProfile> tags;  ///< ascending tag order
  std::uint64_t total_fired = 0;
  double total_wall_seconds = 0.0;
  double first_fire_time = 0.0;
  double last_fire_time = 0.0;
  // Engine conservation (scheduled == fired + cancelled + pending), checked
  // against the engine's own counters at snapshot time.
  std::uint64_t engine_scheduled = 0;
  std::uint64_t engine_fired = 0;
  std::uint64_t engine_cancelled = 0;
  std::uint64_t engine_pending = 0;
  bool conserved = true;
};

class EventLoopProfiler final : public des::SimObserver {
 public:
  /// `next` chains a downstream observer (digest, invariants, ...); every
  /// hook forwards to it after recording.
  explicit EventLoopProfiler(des::SimObserver* next = nullptr) : next_(next) {}

  /// Human label for a tag in reports ("tick", "completion", ...).
  void name_tag(std::uint64_t tag, std::string_view name);

  void on_schedule(double when, des::EventId id, std::uint64_t tag) override;
  void on_fire(double time, des::EventId id, std::uint64_t tag) override;
  void on_fire_done(double time, des::EventId id, std::uint64_t tag) override;
  void on_cancel(des::EventId id, std::uint64_t tag) override;

  /// Aggregates the per-tag state and audits conservation against the
  /// engine's counters. In kAssert spirit: `require_conserved` throws
  /// std::logic_error on a conservation break instead of just flagging it.
  [[nodiscard]] ProfileSnapshot snapshot(const des::Simulation& sim,
                                         bool require_conserved = false) const;

  /// Aligned per-tag table (fires, wall ms, share, mean virtual gap).
  [[nodiscard]] std::string render_table(const des::Simulation& sim) const;

  /// `{"profile": {...}}` fragment used by the run manifest.
  static void write_json(const ProfileSnapshot& snap, std::ostream& out);

  [[nodiscard]] std::uint64_t fires() const { return total_fired_; }

 private:
  struct TagState {
    std::uint64_t scheduled = 0;
    std::uint64_t fired = 0;
    std::uint64_t cancelled = 0;
    double wall_seconds = 0.0;
    double gap_sum = 0.0;
    double gap_min = 0.0;
    double gap_max = 0.0;
    bool any_gap = false;
  };

  TagState& state(std::uint64_t tag);

  des::SimObserver* next_;
  std::map<std::uint64_t, TagState> tags_;
  std::map<std::uint64_t, std::string> names_;
  std::uint64_t total_fired_ = 0;
  double total_wall_ = 0.0;
  double first_fire_time_ = 0.0;
  double last_fire_time_ = 0.0;
  // The on_fire / on_fire_done bracket in flight (callbacks never nest:
  // the engine fires events strictly sequentially).
  double bracket_start_ns_ = 0.0;
  bool in_bracket_ = false;
};

}  // namespace ll::obs
