#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"
#include "util/table.hpp"

namespace ll::obs {
namespace {

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void EventLoopProfiler::name_tag(std::uint64_t tag, std::string_view name) {
  names_[tag] = std::string(name);
}

EventLoopProfiler::TagState& EventLoopProfiler::state(std::uint64_t tag) {
  return tags_[tag];
}

void EventLoopProfiler::on_schedule(double when, des::EventId id,
                                    std::uint64_t tag) {
  ++state(tag).scheduled;
  if (next_) next_->on_schedule(when, id, tag);
}

void EventLoopProfiler::on_fire(double time, des::EventId id,
                                std::uint64_t tag) {
  TagState& s = state(tag);
  ++s.fired;
  if (total_fired_ == 0) {
    first_fire_time_ = time;
  } else {
    const double gap = time - last_fire_time_;
    s.gap_sum += gap;
    if (!s.any_gap) {
      s.gap_min = s.gap_max = gap;
      s.any_gap = true;
    } else {
      s.gap_min = std::min(s.gap_min, gap);
      s.gap_max = std::max(s.gap_max, gap);
    }
  }
  last_fire_time_ = time;
  ++total_fired_;
  if (next_) next_->on_fire(time, id, tag);
  // Start the wall-clock bracket last, so downstream observer work is not
  // billed to the callback.
  bracket_start_ns_ = now_ns();
  in_bracket_ = true;
}

void EventLoopProfiler::on_fire_done(double time, des::EventId id,
                                     std::uint64_t tag) {
  if (in_bracket_) {
    const double elapsed = (now_ns() - bracket_start_ns_) * 1e-9;
    TagState& s = state(tag);
    s.wall_seconds += elapsed;
    total_wall_ += elapsed;
    in_bracket_ = false;
  }
  if (next_) next_->on_fire_done(time, id, tag);
}

void EventLoopProfiler::on_cancel(des::EventId id, std::uint64_t tag) {
  ++state(tag).cancelled;
  if (next_) next_->on_cancel(id, tag);
}

ProfileSnapshot EventLoopProfiler::snapshot(const des::Simulation& sim,
                                            bool require_conserved) const {
  ProfileSnapshot snap;
  snap.tags.reserve(tags_.size());
  for (const auto& [tag, s] : tags_) {
    TagProfile p;
    p.tag = tag;
    if (auto it = names_.find(tag); it != names_.end()) {
      p.name = it->second;
    } else {
      p.name = util::format("tag%llu", static_cast<unsigned long long>(tag));
    }
    p.scheduled = s.scheduled;
    p.fired = s.fired;
    p.cancelled = s.cancelled;
    p.wall_seconds = s.wall_seconds;
    p.gap_sum = s.gap_sum;
    p.gap_min = s.any_gap ? s.gap_min : 0.0;
    p.gap_max = s.any_gap ? s.gap_max : 0.0;
    snap.tags.push_back(std::move(p));
  }
  snap.total_fired = total_fired_;
  snap.total_wall_seconds = total_wall_;
  snap.first_fire_time = first_fire_time_;
  snap.last_fire_time = last_fire_time_;
  snap.engine_scheduled = sim.events_scheduled();
  snap.engine_fired = sim.events_fired();
  snap.engine_cancelled = sim.events_cancelled();
  snap.engine_pending = sim.pending_count();
  snap.conserved = snap.engine_scheduled ==
                   snap.engine_fired + snap.engine_cancelled +
                       snap.engine_pending;
  if (require_conserved && !snap.conserved) {
    throw std::logic_error(util::format(
        "event conservation broken: scheduled=%llu != fired=%llu + "
        "cancelled=%llu + pending=%llu",
        static_cast<unsigned long long>(snap.engine_scheduled),
        static_cast<unsigned long long>(snap.engine_fired),
        static_cast<unsigned long long>(snap.engine_cancelled),
        static_cast<unsigned long long>(snap.engine_pending)));
  }
  return snap;
}

std::string EventLoopProfiler::render_table(const des::Simulation& sim) const {
  const ProfileSnapshot snap = snapshot(sim);
  util::Table table({"tag", "name", "sched", "fired", "cancel", "wall ms",
                     "wall %", "mean gap"});
  for (const TagProfile& p : snap.tags) {
    const double share = snap.total_wall_seconds > 0.0
                             ? p.wall_seconds / snap.total_wall_seconds
                             : 0.0;
    table.add_row({util::format("%llu", static_cast<unsigned long long>(p.tag)),
                   p.name,
                   util::format("%llu",
                                static_cast<unsigned long long>(p.scheduled)),
                   util::format("%llu",
                                static_cast<unsigned long long>(p.fired)),
                   util::format("%llu",
                                static_cast<unsigned long long>(p.cancelled)),
                   util::fixed(p.wall_seconds * 1e3, 3),
                   util::percent(share, 1), util::fixed(p.mean_gap(), 6)});
  }
  std::ostringstream out;
  out << table.render();
  out << util::format(
      "total: %llu fired in %.3f ms wall; virtual span [%.6f, %.6f]\n",
      static_cast<unsigned long long>(snap.total_fired),
      snap.total_wall_seconds * 1e3, snap.first_fire_time,
      snap.last_fire_time);
  out << util::format(
      "conservation: scheduled=%llu fired=%llu cancelled=%llu pending=%llu "
      "(%s)\n",
      static_cast<unsigned long long>(snap.engine_scheduled),
      static_cast<unsigned long long>(snap.engine_fired),
      static_cast<unsigned long long>(snap.engine_cancelled),
      static_cast<unsigned long long>(snap.engine_pending),
      snap.conserved ? "ok" : "BROKEN");
  return out.str();
}

void EventLoopProfiler::write_json(const ProfileSnapshot& snap,
                                   std::ostream& out) {
  out << "{\n    \"total_fired\": " << snap.total_fired
      << ",\n    \"total_wall_seconds\": "
      << util::format("%.9f", snap.total_wall_seconds)
      << ",\n    \"first_fire_time\": "
      << util::format("%.17g", snap.first_fire_time)
      << ",\n    \"last_fire_time\": "
      << util::format("%.17g", snap.last_fire_time)
      << ",\n    \"conservation\": {\"scheduled\": " << snap.engine_scheduled
      << ", \"fired\": " << snap.engine_fired
      << ", \"cancelled\": " << snap.engine_cancelled
      << ", \"pending\": " << snap.engine_pending << ", \"ok\": "
      << (snap.conserved ? "true" : "false") << "},\n    \"tags\": [";
  for (std::size_t i = 0; i < snap.tags.size(); ++i) {
    const TagProfile& p = snap.tags[i];
    if (i != 0) out << ",";
    out << "\n      {\"tag\": " << p.tag << ", \"name\": \""
        << util::json::escape(p.name) << "\", \"scheduled\": " << p.scheduled
        << ", \"fired\": " << p.fired << ", \"cancelled\": " << p.cancelled
        << ", \"wall_seconds\": " << util::format("%.9f", p.wall_seconds)
        << ", \"mean_gap\": " << util::format("%.17g", p.mean_gap())
        << ", \"gap_min\": " << util::format("%.17g", p.gap_min)
        << ", \"gap_max\": " << util::format("%.17g", p.gap_max) << "}";
  }
  out << (snap.tags.empty() ? "]" : "\n    ]") << "\n  }";
}

}  // namespace ll::obs
