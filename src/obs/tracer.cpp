#include "obs/tracer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <mutex>
#include <ostream>
#include <unordered_map>

#include "util/json.hpp"

namespace ll::obs {

namespace {

std::uint64_t steady_abs_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// One per recording thread, owned by the tracer so it outlives the thread.
/// Single-producer: only the registering thread writes. `head` counts every
/// record ever pushed; slot (head % cap) is overwritten on wrap, which is
/// the flight-recorder drop policy. The release store pairs with the
/// acquire load in snapshot(), but a concurrent snapshot is only *safe*,
/// not exact — the export contract requires quiescent producers.
struct Tracer::Ring {
  explicit Ring(std::size_t capacity, std::uint32_t tid_in)
      : cap(capacity < 2 ? 2 : capacity), slots(cap), tid(tid_in) {}

  void push(const TraceRecord& rec) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    slots[h % cap] = rec;
    head.store(h + 1, std::memory_order_release);
  }

  const std::size_t cap;
  std::vector<TraceRecord> slots;
  std::atomic<std::uint64_t> head{0};
  const std::uint32_t tid;
};

struct Tracer::Impl {
  std::size_t ring_capacity;
  std::uint64_t id;                      ///< globally unique (see ring())
  std::uint64_t epoch_abs_ns;            ///< steady_clock ns at construction

  mutable std::mutex ring_mu;            ///< guards ring registration only
  mutable std::deque<Ring> rings;        ///< deque: stable addresses

  std::mutex label_mu;
  std::vector<std::string> labels;
  std::unordered_map<std::string, std::uint32_t> label_ids;
};

Tracer::Tracer(std::size_t ring_capacity) : impl_(std::make_unique<Impl>()) {
  static std::atomic<std::uint64_t> next_id{1};
  impl_->ring_capacity = ring_capacity;
  impl_->id = next_id.fetch_add(1, std::memory_order_relaxed);
  impl_->epoch_abs_ns = steady_abs_ns();
}

Tracer::~Tracer() = default;

Tracer::Ring& Tracer::ring() const {
  // One-entry thread-local cache keyed by the tracer's globally unique id:
  // a stale entry from a destroyed tracer can never match a live one, even
  // if the Impl address is reused.
  struct Cache {
    std::uint64_t tracer_id = 0;
    Ring* ring = nullptr;
  };
  thread_local Cache cache;
  if (cache.tracer_id == impl_->id) return *cache.ring;
  std::lock_guard lock(impl_->ring_mu);
  impl_->rings.emplace_back(impl_->ring_capacity,
                            static_cast<std::uint32_t>(impl_->rings.size()));
  cache = {impl_->id, &impl_->rings.back()};
  return *cache.ring;
}

std::uint32_t Tracer::label(std::string_view name) {
  std::lock_guard lock(impl_->label_mu);
  std::string key(name);
  if (auto it = impl_->label_ids.find(key); it != impl_->label_ids.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(impl_->labels.size());
  impl_->labels.push_back(key);
  impl_->label_ids.emplace(std::move(key), id);
  return id;
}

std::uint64_t Tracer::now_ns() const {
  return steady_abs_ns() - impl_->epoch_abs_ns;
}

std::uint64_t Tracer::rel_ns(std::uint64_t abs_steady_ns) const {
  return abs_steady_ns > impl_->epoch_abs_ns
             ? abs_steady_ns - impl_->epoch_abs_ns
             : 0;
}

void Tracer::instant(std::uint32_t label, double vtime, std::uint64_t arg) {
  TraceRecord rec;
  rec.t0_ns = rec.t1_ns = now_ns();
  rec.v0 = rec.v1 = vtime;
  rec.arg = arg;
  rec.label = label;
  rec.kind = TraceKind::kInstant;
  ring().push(rec);
}

void Tracer::wall_span(std::uint32_t label, std::uint64_t t0_ns, double vtime,
                       std::uint64_t arg) {
  wall_span_at(label, t0_ns, now_ns(), vtime, arg);
}

void Tracer::wall_span_at(std::uint32_t label, std::uint64_t t0_ns,
                          std::uint64_t t1_ns, double vtime,
                          std::uint64_t arg) {
  TraceRecord rec;
  rec.t0_ns = t0_ns;
  rec.t1_ns = t1_ns < t0_ns ? t0_ns : t1_ns;
  rec.v0 = rec.v1 = vtime;
  rec.arg = arg;
  rec.label = label;
  rec.kind = TraceKind::kWallSpan;
  ring().push(rec);
}

void Tracer::virtual_span(std::uint32_t label, double v0, double v1,
                          std::uint64_t arg) {
  TraceRecord rec;
  rec.t0_ns = rec.t1_ns = now_ns();
  rec.v0 = v0;
  rec.v1 = v1 < v0 ? v0 : v1;
  rec.arg = arg;
  rec.label = label;
  rec.kind = TraceKind::kVirtualSpan;
  ring().push(rec);
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard lock(impl_->ring_mu);
  std::uint64_t total = 0;
  for (const Ring& r : impl_->rings) {
    total += r.head.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(impl_->ring_mu);
  std::uint64_t total = 0;
  for (const Ring& r : impl_->rings) {
    const std::uint64_t head = r.head.load(std::memory_order_acquire);
    if (head > r.cap) total += head - r.cap;
  }
  return total;
}

Tracer::Snapshot Tracer::snapshot() const {
  Snapshot snap;
  {
    std::lock_guard lock(impl_->label_mu);
    snap.labels = impl_->labels;
  }
  std::lock_guard lock(impl_->ring_mu);
  snap.threads = static_cast<std::uint32_t>(impl_->rings.size());
  for (const Ring& r : impl_->rings) {
    const std::uint64_t head = r.head.load(std::memory_order_acquire);
    const std::uint64_t kept = head < r.cap ? head : r.cap;
    snap.recorded += head;
    snap.dropped += head - kept;
    // Oldest surviving record first; slot order is (head - kept) .. head-1.
    for (std::uint64_t i = head - kept; i < head; ++i) {
      snap.records.push_back({r.slots[i % r.cap], r.tid});
    }
  }
  std::stable_sort(snap.records.begin(), snap.records.end(),
                   [](const Snapshot::Entry& a, const Snapshot::Entry& b) {
                     if (a.rec.t0_ns != b.rec.t0_ns) {
                       return a.rec.t0_ns < b.rec.t0_ns;
                     }
                     return a.tid < b.tid;
                   });
  return snap;
}

void Tracer::write_chrome_json(std::ostream& out) const {
  write_chrome_json(snapshot(), out);
}

void Tracer::write_chrome_json(const Snapshot& snap, std::ostream& out) {
  const auto us = [](std::uint64_t ns) {
    return static_cast<double>(ns) / 1000.0;
  };
  const auto name_of = [&snap](std::uint32_t label) -> std::string {
    if (label < snap.labels.size()) return snap.labels[label];
    return "label" + std::to_string(label);
  };
  out << "{\"traceEvents\":[\n";
  // Track metadata: pid 1 carries host wall-clock spans (one tid per
  // recording thread), pid 2 carries virtual-sim-time spans (1 virtual
  // second rendered as 1 trace microsecond — Perfetto has no native unit
  // for simulated seconds).
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"wall clock\"}},\n";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
         "\"args\":{\"name\":\"virtual time\"}}";
  for (std::uint32_t t = 0; t < snap.threads; ++t) {
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << t
        << ",\"args\":{\"name\":\"ring " << t << "\"}}";
  }
  char buf[64];
  const auto num = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return std::string(buf);
  };
  const auto vnum = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  for (const Snapshot::Entry& e : snap.records) {
    const TraceRecord& r = e.rec;
    out << ",\n{\"name\":\"" << util::json::escape(name_of(r.label)) << "\",";
    switch (r.kind) {
      case TraceKind::kWallSpan:
        out << "\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
            << ",\"ts\":" << num(us(r.t0_ns))
            << ",\"dur\":" << num(us(r.t1_ns - r.t0_ns));
        break;
      case TraceKind::kInstant:
        out << "\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << e.tid
            << ",\"ts\":" << num(us(r.t0_ns));
        break;
      case TraceKind::kVirtualSpan:
        out << "\"ph\":\"X\",\"pid\":2,\"tid\":0,\"ts\":" << vnum(r.v0)
            << ",\"dur\":" << vnum(r.v1 - r.v0);
        break;
    }
    out << ",\"args\":{\"vt\":" << vnum(r.v0) << ",\"arg\":" << r.arg << "}}";
  }
  out << "\n]}\n";
}

// ---------------------------------------------------------------------------
// TracingObserver

void TracingObserver::name_tag(std::uint64_t tag, std::string_view name) {
  if (!tracer_) return;
  if (tag_labels_.size() <= tag) {
    if (tag > 4096) return;  // tags are small dense ints; ignore outliers
    tag_labels_.resize(tag + 1, UINT32_MAX);
  }
  tag_labels_[tag] = tracer_->label("fire:" + std::string(name));
}

std::uint32_t TracingObserver::label_for(std::uint64_t tag) {
  if (tag < tag_labels_.size() && tag_labels_[tag] != UINT32_MAX) {
    return tag_labels_[tag];
  }
  const std::uint32_t id =
      tracer_->label("fire:tag" + std::to_string(tag));
  if (tag <= 4096) {
    if (tag_labels_.size() <= tag) tag_labels_.resize(tag + 1, UINT32_MAX);
    tag_labels_[tag] = id;
  }
  return id;
}

void TracingObserver::on_schedule(double when, des::EventId id,
                                  std::uint64_t tag) {
  if (next_) next_->on_schedule(when, id, tag);
}

void TracingObserver::on_fire(double time, des::EventId id,
                              std::uint64_t tag) {
  if (tracer_) fire_start_ns_ = tracer_->now_ns();
  if (next_) next_->on_fire(time, id, tag);
}

void TracingObserver::on_fire_done(double time, des::EventId id,
                                   std::uint64_t tag) {
  if (next_) next_->on_fire_done(time, id, tag);
  if (tracer_) {
    tracer_->wall_span(label_for(tag), fire_start_ns_, time, id);
  }
}

void TracingObserver::on_cancel(des::EventId id, std::uint64_t tag) {
  if (next_) next_->on_cancel(id, tag);
}

// ---------------------------------------------------------------------------
// RunnerTraceAdapter

RunnerTraceAdapter::RunnerTraceAdapter(Tracer* tracer) : tracer_(tracer) {
  if (tracer_) {
    lbl_batch_ = tracer_->label("runner.batch");
    lbl_steal_ = tracer_->label("runner.steal");
    lbl_suspend_ = tracer_->label("runner.suspend");
  }
}

void RunnerTraceAdapter::on_batch(std::size_t tasks, std::uint64_t t0_ns,
                                  std::uint64_t t1_ns) {
  if (!tracer_) return;
  tracer_->wall_span_at(lbl_batch_, tracer_->rel_ns(t0_ns),
                        tracer_->rel_ns(t1_ns), 0.0, tasks);
}

void RunnerTraceAdapter::on_steal(std::size_t slot) {
  if (!tracer_) return;
  tracer_->instant(lbl_steal_, 0.0, slot);
}

void RunnerTraceAdapter::on_suspend(std::size_t slot, std::uint64_t t0_ns,
                                    std::uint64_t t1_ns) {
  if (!tracer_) return;
  tracer_->wall_span_at(lbl_suspend_, tracer_->rel_ns(t0_ns),
                        tracer_->rel_ns(t1_ns), 0.0, slot);
}

}  // namespace ll::obs
