#include "obs/timeline.hpp"

#include <ostream>
#include <stdexcept>

#include "util/json.hpp"
#include "util/table.hpp"

namespace ll::obs {

Timeline::Timeline(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("Timeline: capacity must be positive");
  }
  ring_.resize(capacity);
}

void Timeline::record(double time, std::string_view entity,
                      std::string_view state, std::string_view detail) {
  TimelineRecord& slot = ring_[head_];
  slot.time = time;
  slot.entity.assign(entity);
  slot.state.assign(state);
  slot.detail.assign(detail);
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) {
    ++size_;
  } else {
    ++dropped_;
  }
}

std::vector<TimelineRecord> Timeline::records() const {
  std::vector<TimelineRecord> out;
  out.reserve(size_);
  // Oldest record sits at head_ once the ring has wrapped, else at 0.
  const std::size_t start = size_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void Timeline::write_text(std::ostream& out) const {
  if (dropped_ > 0) {
    out << util::format("(%llu earlier records dropped; ring capacity %zu)\n",
                        static_cast<unsigned long long>(dropped_),
                        ring_.size());
  }
  for (const TimelineRecord& r : records()) {
    out << util::format("%12.6f  %-10s  %-12s  %s\n", r.time,
                        r.entity.c_str(), r.state.c_str(), r.detail.c_str());
  }
}

void Timeline::write_json(std::ostream& out) const {
  out << "{\n  \"dropped\": " << dropped_ << ",\n  \"records\": [";
  bool first = true;
  for (const TimelineRecord& r : records()) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"time\": " << util::format("%.17g", r.time)
        << ", \"entity\": \"" << util::json::escape(r.entity)
        << "\", \"state\": \"" << util::json::escape(r.state)
        << "\", \"detail\": \"" << util::json::escape(r.detail) << "\"}";
  }
  out << (first ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace ll::obs
