#include "obs/manifest.hpp"

#include <cstdio>
#include <ostream>

#include "util/json.hpp"
#include "util/table.hpp"

namespace ll::obs {

void write_manifest_json(const RunManifest& manifest, std::ostream& out) {
  out << "{\n  \"tool\": \"" << util::json::escape(manifest.tool)
      << "\",\n  \"version\": \"" << util::json::escape(manifest.version)
      << "\",\n  \"seed\": " << manifest.seed << ",\n  \"config\": {";
  for (std::size_t i = 0; i < manifest.config.size(); ++i) {
    if (i != 0) out << ",";
    out << "\n    \"" << util::json::escape(manifest.config[i].first)
        << "\": \"" << util::json::escape(manifest.config[i].second) << "\"";
  }
  out << (manifest.config.empty() ? "}" : "\n  }");
  if (manifest.goodput) {
    out << ",\n  \"goodput\": " << util::format("%.17g", *manifest.goodput);
  }
  if (manifest.work_lost) {
    out << ",\n  \"work_lost\": "
        << util::format("%.17g", *manifest.work_lost);
  }
  if (manifest.trace) {
    const TraceStats& t = *manifest.trace;
    out << ",\n  \"trace\": {\"timeline_recorded\": " << t.timeline_recorded
        << ", \"timeline_dropped\": " << t.timeline_dropped
        << ", \"tracer_recorded\": " << t.tracer_recorded
        << ", \"tracer_dropped\": " << t.tracer_dropped << "}";
  }
  if (manifest.shards) {
    const ShardSection& s = *manifest.shards;
    out << ",\n  \"shards\": {\"count\": " << s.count
        << ", \"windows\": " << s.windows
        << ", \"mailbox_sent\": " << s.mailbox_sent
        << ", \"mailbox_delivered\": " << s.mailbox_delivered
        << ", \"max_barrier_wait_ns\": " << s.max_barrier_wait_ns << "}";
  }
  out << ",\n  \"metrics\": ";
  write_samples_json(manifest.metrics, out);
  if (manifest.profile) {
    out << ",\n  \"profile\": ";
    EventLoopProfiler::write_json(*manifest.profile, out);
  }
  out << "\n}\n";
}

std::string current_git_describe() {
  static const std::string cached = [] {
    std::string desc = "unknown";
    // popen keeps this dependency-free; any failure degrades to "unknown".
    if (FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null",
                             "r")) {
      char buf[256];
      std::string out;
      while (std::fgets(buf, sizeof(buf), pipe)) out += buf;
      const int rc = ::pclose(pipe);
      while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
        out.pop_back();
      }
      if (rc == 0 && !out.empty()) desc = out;
    }
    return desc;
  }();
  return cached;
}

std::string validate_manifest(std::string_view manifest_text,
                              std::string_view schema_text) {
  using util::json::Kind;
  using util::json::Value;
  Value manifest;
  Value schema;
  try {
    manifest = util::json::parse(manifest_text);
  } catch (const std::exception& e) {
    return std::string("manifest does not parse: ") + e.what();
  }
  try {
    schema = util::json::parse(schema_text);
  } catch (const std::exception& e) {
    return std::string("schema does not parse: ") + e.what();
  }
  if (manifest.kind() != Kind::kObject) return "manifest is not an object";
  if (schema.kind() != Kind::kObject) return "schema is not an object";
  const Value* required = schema.find("required");
  if (!required || required->kind() != Kind::kObject) {
    return "schema has no \"required\" object";
  }
  for (const auto& [key, want] : required->as_object()) {
    if (want.kind() != Kind::kString) {
      return "schema \"required\" value for '" + key + "' is not a string";
    }
    const Value* got = manifest.find(key);
    if (!got) return "manifest missing required key '" + key + "'";
    const std::string_view want_kind = want.as_string();
    if (Value::kind_name(got->kind()) != want_kind) {
      return "manifest key '" + key + "' has kind '" +
             std::string(Value::kind_name(got->kind())) + "', schema wants '" +
             std::string(want_kind) + "'";
    }
  }
  if (const Value* optional = schema.find("optional")) {
    if (optional->kind() != Kind::kObject) {
      return "schema \"optional\" is not an object";
    }
    for (const auto& [key, want] : optional->as_object()) {
      if (want.kind() != Kind::kString) {
        return "schema \"optional\" value for '" + key + "' is not a string";
      }
      const Value* got = manifest.find(key);
      if (!got) continue;
      const std::string_view want_kind = want.as_string();
      if (Value::kind_name(got->kind()) != want_kind) {
        return "manifest key '" + key + "' has kind '" +
               std::string(Value::kind_name(got->kind())) +
               "', schema wants '" + std::string(want_kind) + "'";
      }
    }
  }
  return {};
}

}  // namespace ll::obs
