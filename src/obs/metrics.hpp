#pragma once

/// \file metrics.hpp
/// Sim-time metrics registry: named counters, gauges, and time-weighted
/// accumulators that simulation components register once and update through
/// raw pointers — no name lookup, no branch beyond the caller's own
/// `if (metrics_)` guard, so an unattached simulator pays nothing.
///
/// The three metric kinds cover everything the paper's evaluation derives:
///  * Counter      — monotone event counts (jobs completed, migrations);
///  * Gauge        — last-written value (delivered CPU-seconds, idle "l");
///  * TimeWeighted — a value integrated over *virtual* time (queue length,
///    occupied nodes): set(t, v) folds the elapsed stint at the previous
///    value, so integral(t_end)/mean(t_end) are exact regardless of how
///    irregular the updates are. This is the per-node occupancy-seconds /
///    queue-length-seconds primitive SST-style schedulers expose as
///    first-class statistics output.
///
/// Snapshots serialize in registration order (deterministic bytes for a
/// deterministic run) to JSON or CSV; the run manifest (manifest.hpp)
/// embeds the same snapshot.

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ll::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Integrates a piecewise-constant value over virtual time. Updates must
/// arrive with non-decreasing timestamps (simulation time is monotone);
/// out-of-order updates throw, catching accounting bugs at the source.
class TimeWeighted {
 public:
  /// Records that the value becomes `value` at time `t`, folding the stint
  /// [last_t, t] at the previous value into the integral.
  void set(double t, double value);

  /// Integral of the value over [first_t, t_end] (the trailing stint at the
  /// last value included). t_end before the last update throws.
  [[nodiscard]] double integral(double t_end) const;

  /// integral(t_end) / (t_end - first_t); 0 when no time has elapsed.
  [[nodiscard]] double mean(double t_end) const;

  [[nodiscard]] double last_value() const { return value_; }
  [[nodiscard]] double min_value() const { return updates_ ? min_ : 0.0; }
  [[nodiscard]] double max_value() const { return updates_ ? max_ : 0.0; }
  [[nodiscard]] std::uint64_t updates() const { return updates_; }

 private:
  double integral_ = 0.0;
  double value_ = 0.0;
  double first_t_ = 0.0;
  double last_t_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t updates_ = 0;
};

enum class MetricKind { kCounter, kGauge, kTimeWeighted };

/// One serialized metric: counters/gauges carry `value`; time-weighted
/// metrics carry the integral plus mean/min/max over the run.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;     // counter count / gauge value / TW integral
  double mean = 0.0;      // TW only
  double min = 0.0;       // TW only
  double max = 0.0;       // TW only
  std::uint64_t updates = 0;  // TW only
};

[[nodiscard]] std::string_view to_string(MetricKind kind);

/// The registry. Registration returns a stable reference (deque storage);
/// re-registering a name returns the existing metric, so two components can
/// share one counter. NOT thread-safe by design — one registry per
/// simulation, like the engine itself.
class MetricRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  TimeWeighted& time_weighted(std::string_view name);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// All metrics in registration order. `now` closes every time-weighted
  /// integral at the snapshot instant.
  [[nodiscard]] std::vector<MetricSample> snapshot(double now) const;

  /// `{"metrics":[{"name":...,"kind":...,...},...]}` — stable field order.
  void write_json(double now, std::ostream& out) const;

  /// `name,kind,value,mean,min,max,updates` rows after a header.
  void write_csv(double now, std::ostream& out) const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    TimeWeighted* tw = nullptr;
  };

  Entry* find(std::string_view name, MetricKind kind);

  std::vector<Entry> entries_;
  // Deques: stable addresses as more metrics are registered.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<TimeWeighted> tws_;
};

/// Serializes one snapshot (shared by write_json and the manifest writer).
void write_samples_json(const std::vector<MetricSample>& samples,
                        std::ostream& out);

}  // namespace ll::obs
