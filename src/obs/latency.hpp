#pragma once

/// \file latency.hpp
/// Request-latency recorder for long-running services (the `llsim serve`
/// dispatcher): a log-scale histogram over durations with quantile readout
/// and MetricRegistry export. Log bins give ~3% relative resolution across
/// nine decades (100ns .. 1000s), so one recorder covers cache hits
/// (microseconds) and cold 1000-replication sweeps (seconds) without
/// tuning.
///
/// Same threading contract as MetricRegistry: NOT thread-safe — owned and
/// updated by a single thread (the serve dispatcher), snapshotted after
/// that thread quiesces.

#include <cstdint>

#include "stats/histogram.hpp"

namespace ll::obs {

class MetricRegistry;

class LatencyRecorder {
 public:
  LatencyRecorder();

  /// Records one duration in seconds (non-positive durations clamp into
  /// the underflow bin).
  void record(double seconds);

  [[nodiscard]] std::uint64_t count() const { return histogram_.total(); }

  /// Approximate quantile in seconds (q in [0,1]); 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// Exports `<prefix>.count` (counter) plus p50/p90/p99 gauges in
  /// milliseconds, e.g. "serve.latency" -> serve.latency.p50_ms.
  void export_to(MetricRegistry& registry, const char* prefix) const;

 private:
  stats::Histogram histogram_;  // over log10(seconds)
};

}  // namespace ll::obs
