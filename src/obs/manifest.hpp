#pragma once

/// \file manifest.hpp
/// Run manifest: one JSON document that makes a simulation run reproducible
/// and auditable after the fact — which binary (git describe), which seed,
/// which configuration flags, and what the run measured (metric snapshot,
/// optional event-loop profile).
///
/// Both `llsim` (via --metrics-out / the profile subcommand) and the
/// experiment engine emit this shape; tools/llmanifest validates it against
/// docs/manifest.schema.json in CI, so the format drifts only deliberately.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace ll::obs {

/// Ring-buffer accounting for the run's observability captures. Non-zero
/// drop counts mean the timeline/trace data is a truncated suffix — the
/// manifest surfaces that so truncation is never silent.
struct TraceStats {
  std::uint64_t timeline_recorded = 0;
  std::uint64_t timeline_dropped = 0;
  std::uint64_t tracer_recorded = 0;
  std::uint64_t tracer_dropped = 0;
};

/// Conservative-window accounting from a sharded run (src/shard/): shard
/// count, windows completed, mailbox traffic, and the worst single-window
/// barrier imbalance. Mirrors shard::ShardStats without an obs -> shard
/// dependency.
struct ShardSection {
  std::uint64_t count = 0;
  std::uint64_t windows = 0;
  std::uint64_t mailbox_sent = 0;
  std::uint64_t mailbox_delivered = 0;
  std::uint64_t max_barrier_wait_ns = 0;
};

struct RunManifest {
  std::string tool;         ///< "llsim cluster", "llsim bench", ...
  std::string version;      ///< git describe (or "unknown")
  std::uint64_t seed = 0;   ///< master seed of the run
  /// Configuration as ordered key/value pairs (flag name -> rendered value).
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<MetricSample> metrics;
  std::optional<ProfileSnapshot> profile;
  /// Fault-robustness summary, set by the tools that run fault plans
  /// (`llsim faults`, the fault benches); absent on fault-free tools.
  std::optional<double> goodput;    ///< delivered / (delivered + work_lost)
  std::optional<double> work_lost;  ///< CPU-seconds computed then rolled back
  /// Observability-capture accounting ("trace" object), set by tools that
  /// attach a Timeline and/or Tracer; absent otherwise.
  std::optional<TraceStats> trace;
  /// Sharded-engine accounting ("shards" object), set when the run used
  /// the conservative time-windowed engine (`--shards K`); absent otherwise.
  std::optional<ShardSection> shards;
};

/// Serializes the manifest as a single JSON object:
///   {"tool": ..., "version": ..., "seed": N,
///    "config": {...}, "metrics": [...], "profile": {...}?}
void write_manifest_json(const RunManifest& manifest, std::ostream& out);

/// Best-effort `git describe --always --dirty` of the working tree;
/// "unknown" when git or the repo is unavailable. Cached after first call.
[[nodiscard]] std::string current_git_describe();

/// Validates a parsed manifest document against the checked-in schema
/// shape used by docs/manifest.schema.json: the schema's "required" object
/// maps key -> expected kind name ("string"/"number"/"array"/"object").
/// An "optional" object (same shape) kind-checks keys that are allowed to
/// be absent — profile, goodput, work_lost. Returns an empty string on
/// success, else a human-readable error.
[[nodiscard]] std::string validate_manifest(std::string_view manifest_text,
                                            std::string_view schema_text);

}  // namespace ll::obs
