#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "util/json.hpp"
#include "util/table.hpp"

namespace ll::obs {

void TimeWeighted::set(double t, double value) {
  if (updates_ == 0) {
    first_t_ = t;
    min_ = max_ = value;
  } else {
    if (t < last_t_) {
      throw std::logic_error("TimeWeighted: time ran backwards");
    }
    integral_ += value_ * (t - last_t_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  value_ = value;
  last_t_ = t;
  ++updates_;
}

double TimeWeighted::integral(double t_end) const {
  if (updates_ == 0) return 0.0;
  if (t_end < last_t_) {
    throw std::logic_error("TimeWeighted: integral horizon before last update");
  }
  return integral_ + value_ * (t_end - last_t_);
}

double TimeWeighted::mean(double t_end) const {
  if (updates_ == 0) return 0.0;
  const double span = t_end - first_t_;
  return span > 0.0 ? integral(t_end) / span : 0.0;
}

std::string_view to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kTimeWeighted: return "time_weighted";
  }
  return "unknown";
}

MetricRegistry::Entry* MetricRegistry::find(std::string_view name,
                                            MetricKind kind) {
  for (Entry& e : entries_) {
    if (e.name == name) {
      if (e.kind != kind) {
        throw std::logic_error("metric '" + std::string(name) +
                               "' already registered with a different kind");
      }
      return &e;
    }
  }
  return nullptr;
}

Counter& MetricRegistry::counter(std::string_view name) {
  if (Entry* e = find(name, MetricKind::kCounter)) return *e->counter;
  Counter& c = counters_.emplace_back();
  entries_.push_back({std::string(name), MetricKind::kCounter, &c, nullptr,
                      nullptr});
  return c;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  if (Entry* e = find(name, MetricKind::kGauge)) return *e->gauge;
  Gauge& g = gauges_.emplace_back();
  entries_.push_back({std::string(name), MetricKind::kGauge, nullptr, &g,
                      nullptr});
  return g;
}

TimeWeighted& MetricRegistry::time_weighted(std::string_view name) {
  if (Entry* e = find(name, MetricKind::kTimeWeighted)) return *e->tw;
  TimeWeighted& t = tws_.emplace_back();
  entries_.push_back({std::string(name), MetricKind::kTimeWeighted, nullptr,
                      nullptr, &t});
  return t;
}

std::vector<MetricSample> MetricRegistry::snapshot(double now) const {
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricSample s;
    s.name = e.name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(e.counter->value());
        break;
      case MetricKind::kGauge:
        s.value = e.gauge->value();
        break;
      case MetricKind::kTimeWeighted:
        s.value = e.tw->integral(std::max(now, 0.0));
        s.mean = e.tw->mean(std::max(now, 0.0));
        s.min = e.tw->min_value();
        s.max = e.tw->max_value();
        s.updates = e.tw->updates();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void write_samples_json(const std::vector<MetricSample>& samples,
                        std::ostream& out) {
  out << "[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    if (i != 0) out << ",";
    out << "\n    {\"name\": \"" << util::json::escape(s.name)
        << "\", \"kind\": \"" << to_string(s.kind) << "\", \"value\": "
        << util::format("%.17g", s.value);
    if (s.kind == MetricKind::kTimeWeighted) {
      out << ", \"mean\": " << util::format("%.17g", s.mean)
          << ", \"min\": " << util::format("%.17g", s.min)
          << ", \"max\": " << util::format("%.17g", s.max)
          << ", \"updates\": " << s.updates;
    }
    out << "}";
  }
  out << (samples.empty() ? "]" : "\n  ]");
}

void MetricRegistry::write_json(double now, std::ostream& out) const {
  out << "{\n  \"metrics\": ";
  write_samples_json(snapshot(now), out);
  out << "\n}\n";
}

void MetricRegistry::write_csv(double now, std::ostream& out) const {
  out << "name,kind,value,mean,min,max,updates\n";
  for (const MetricSample& s : snapshot(now)) {
    out << s.name << "," << to_string(s.kind) << ","
        << util::format("%.17g", s.value);
    if (s.kind == MetricKind::kTimeWeighted) {
      out << "," << util::format("%.17g", s.mean) << ","
          << util::format("%.17g", s.min) << ","
          << util::format("%.17g", s.max) << "," << s.updates;
    } else {
      out << ",,,,";
    }
    out << "\n";
  }
}

}  // namespace ll::obs
