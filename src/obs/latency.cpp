#include "obs/latency.hpp"

#include <cmath>
#include <string>

#include "obs/metrics.hpp"

namespace ll::obs {

namespace {
// log10(seconds) span: 100ns .. 1000s, 36 bins per decade (~3% relative
// resolution, matching quantile interpolation error inside one bin).
constexpr double kLogLo = -7.0;
constexpr double kLogHi = 3.0;
constexpr std::size_t kBins = 360;
}  // namespace

LatencyRecorder::LatencyRecorder() : histogram_(kLogLo, kLogHi, kBins) {}

void LatencyRecorder::record(double seconds) {
  histogram_.add(seconds > 0.0 ? std::log10(seconds) : kLogLo - 1.0);
}

double LatencyRecorder::quantile(double q) const {
  if (histogram_.total() == 0) return 0.0;
  return std::pow(10.0, histogram_.quantile(q));
}

void LatencyRecorder::export_to(MetricRegistry& registry,
                                const char* prefix) const {
  const std::string base(prefix);
  registry.counter(base + ".count").add(count());
  registry.gauge(base + ".p50_ms").set(quantile(0.50) * 1e3);
  registry.gauge(base + ".p90_ms").set(quantile(0.90) * 1e3);
  registry.gauge(base + ".p99_ms").set(quantile(0.99) * 1e3);
}

}  // namespace ll::obs
