#pragma once

/// \file linger.hpp
/// Umbrella public header for the Linger-Longer library.
///
/// Pull this in to get the policy library, the cluster and parallel
/// simulators, and the workload infrastructure:
///
///   #include "core/linger.hpp"
///
///   auto traces = ll::trace::generate_machine_pool(cfg, 16, master);
///   ll::cluster::ClusterConfig cc;
///   cc.policy = ll::core::PolicyKind::LingerLonger;
///   ...
///
/// See examples/quickstart.cpp for a complete walk-through.

#include "core/cost_model.hpp"       // IWYU pragma: export
#include "core/policy.hpp"           // IWYU pragma: export
#include "node/effective_rate.hpp"   // IWYU pragma: export
#include "node/fine_node_sim.hpp"    // IWYU pragma: export
#include "node/memory_model.hpp"     // IWYU pragma: export
#include "rng/distributions.hpp"     // IWYU pragma: export
#include "rng/rng.hpp"               // IWYU pragma: export
#include "trace/coarse_analysis.hpp" // IWYU pragma: export
#include "trace/coarse_generator.hpp" // IWYU pragma: export
#include "trace/recruitment.hpp"     // IWYU pragma: export
#include "workload/burst_table.hpp"  // IWYU pragma: export
#include "workload/local_workload.hpp" // IWYU pragma: export
