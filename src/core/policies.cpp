#include <cmath>
#include <stdexcept>

#include "core/policy.hpp"

namespace ll::core {
namespace {

class LingerLongerPolicy final : public Policy {
 public:
  explicit LingerLongerPolicy(double linger_scale) : scale_(linger_scale) {
    if (linger_scale < 0.0) {
      throw std::invalid_argument("LingerLonger: linger_scale must be >= 0");
    }
  }
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::LingerLonger;
  }
  [[nodiscard]] bool allows_lingering() const override { return true; }

  [[nodiscard]] Decision on_nonidle(const PolicyContext& ctx) const override {
    const double base = linger_duration(
        ctx.node_utilization, ctx.idle_utilization, ctx.migration_cost);
    if (std::isinf(base)) {
      // Destination is no better than here; lingering costs nothing extra.
      // Ask to be re-consulted after the migration-cost timescale in case
      // conditions change.
      return {Decision::Action::Linger,
              ctx.migration_cost > 0.0 ? ctx.migration_cost : 1.0};
    }
    const double t_lingr = scale_ * base;
    if (ctx.episode_age + 1e-9 >= t_lingr) {
      return {Decision::Action::Migrate, 0.0};
    }
    return {Decision::Action::Linger, t_lingr - ctx.episode_age};
  }

 private:
  double scale_;
};

class LingerForeverPolicy final : public Policy {
 public:
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::LingerForever;
  }
  [[nodiscard]] bool allows_lingering() const override { return true; }

  [[nodiscard]] Decision on_nonidle(const PolicyContext&) const override {
    return {Decision::Action::Continue, 0.0};
  }
};

class ImmediateEvictionPolicy final : public Policy {
 public:
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::ImmediateEviction;
  }
  [[nodiscard]] bool allows_lingering() const override { return false; }

  [[nodiscard]] Decision on_nonidle(const PolicyContext&) const override {
    return {Decision::Action::Migrate, 0.0};
  }
};

class OracleLingerPolicy final : public Policy {
 public:
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::OracleLinger;
  }
  [[nodiscard]] bool allows_lingering() const override { return true; }

  [[nodiscard]] Decision on_nonidle(const PolicyContext& ctx) const override {
    // Migrating now beats lingering out the episode iff the *remaining*
    // episode length exceeds the cost-model tail (1-l)/(h-l) * T_migr.
    const double tail = linger_duration(ctx.node_utilization,
                                        ctx.idle_utilization, ctx.migration_cost);
    if (!std::isinf(ctx.episode_remaining) && ctx.episode_remaining > tail) {
      return {Decision::Action::Migrate, 0.0};
    }
    // Episode about to end (or remaining unknown): ride it out; the
    // simulator resumes the job when the owner departs.
    return {Decision::Action::Continue, 0.0};
  }
};

class PauseAndMigratePolicy final : public Policy {
 public:
  explicit PauseAndMigratePolicy(double pause_time) : pause_time_(pause_time) {
    if (!(pause_time > 0.0)) {
      throw std::invalid_argument("PauseAndMigrate: pause_time must be > 0");
    }
  }
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::PauseAndMigrate;
  }
  [[nodiscard]] bool allows_lingering() const override { return false; }

  [[nodiscard]] Decision on_nonidle(const PolicyContext& ctx) const override {
    if (ctx.episode_age + 1e-9 >= pause_time_) {
      return {Decision::Action::Migrate, 0.0};
    }
    return {Decision::Action::Pause, pause_time_ - ctx.episode_age};
  }

 private:
  double pause_time_;
};

}  // namespace

std::string_view to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::LingerLonger:
      return "LL";
    case PolicyKind::LingerForever:
      return "LF";
    case PolicyKind::ImmediateEviction:
      return "IE";
    case PolicyKind::PauseAndMigrate:
      return "PM";
    case PolicyKind::OracleLinger:
      return "LL-oracle";
  }
  throw std::logic_error("to_string: unknown PolicyKind");
}

std::unique_ptr<Policy> make_policy(PolicyKind kind, const PolicyParams& params) {
  switch (kind) {
    case PolicyKind::LingerLonger:
      return std::make_unique<LingerLongerPolicy>(params.linger_scale);
    case PolicyKind::LingerForever:
      return std::make_unique<LingerForeverPolicy>();
    case PolicyKind::ImmediateEviction:
      return std::make_unique<ImmediateEvictionPolicy>();
    case PolicyKind::PauseAndMigrate:
      return std::make_unique<PauseAndMigratePolicy>(params.pause_time);
    case PolicyKind::OracleLinger:
      return std::make_unique<OracleLingerPolicy>();
  }
  throw std::logic_error("make_policy: unknown PolicyKind");
}

}  // namespace ll::core
