#include "core/cost_model.hpp"

#include <limits>
#include <stdexcept>

namespace ll::core {

double MigrationCostModel::cost(std::uint64_t bytes) const {
  if (!(bandwidth_bps > 0.0)) {
    throw std::logic_error("MigrationCostModel: bandwidth must be > 0");
  }
  return processing_source +
         static_cast<double>(bytes) * 8.0 / bandwidth_bps +
         processing_destination;
}

double linger_duration(double h, double l, double migration_cost) {
  if (!(h >= 0.0 && h <= 1.0) || !(l >= 0.0 && l <= 1.0)) {
    throw std::invalid_argument("linger_duration: utilizations must be in [0,1]");
  }
  if (migration_cost < 0.0) {
    throw std::invalid_argument("linger_duration: negative migration cost");
  }
  if (h <= l) return std::numeric_limits<double>::infinity();
  return (1.0 - l) / (h - l) * migration_cost;
}

double min_beneficial_episode(double h, double l, double migration_cost,
                              double linger_so_far) {
  if (linger_so_far < 0.0) {
    throw std::invalid_argument("min_beneficial_episode: negative linger time");
  }
  const double tail = linger_duration(h, l, migration_cost);
  return linger_so_far + tail;
}

double predict_episode_total(double age) {
  if (age < 0.0) {
    throw std::invalid_argument("predict_episode_total: negative age");
  }
  return 2.0 * age;
}

}  // namespace ll::core
