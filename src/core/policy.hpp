#pragma once

/// \file policy.hpp
/// The four foreign-job scheduling policies the paper compares (§2, §4):
///
///  * LL — Linger-Longer: keep running at starvation-priority on a non-idle
///    node; after the cost-model linger duration, migrate if a better node
///    exists.
///  * LF — Linger-Forever: never migrate; maximizes cluster throughput at
///    the cost of response-time variance for unlucky jobs.
///  * IE — Immediate-Eviction: evict and migrate the moment the owner
///    returns (the Condor/NOW social contract).
///  * PM — Pause-and-Migrate: suspend in place for a fixed grace period,
///    resume if the node goes idle again, otherwise migrate.
///
/// A policy is a pure decision function: the cluster simulator asks it what
/// to do with the job occupying a node that is (still) non-idle, given the
/// episode age and the cost-model inputs. Policies own no job state, so one
/// instance serves a whole cluster.

#include <limits>
#include <memory>
#include <string_view>

#include "core/cost_model.hpp"

namespace ll::core {

enum class PolicyKind {
  LingerLonger,
  LingerForever,
  ImmediateEviction,
  PauseAndMigrate,
  /// Research baseline (not in the paper): an oracle that knows how long the
  /// current non-idle episode will actually last and migrates exactly when
  /// the cost model's break-even condition holds. Upper-bounds what any
  /// episode-length predictor (such as the paper's 2T rule) could achieve.
  OracleLinger,
};

[[nodiscard]] std::string_view to_string(PolicyKind kind);

/// Inputs to a policy decision about one job on one non-idle node.
struct PolicyContext {
  /// How long the node's current non-idle episode has lasted (seconds).
  double episode_age = 0.0;
  /// Local (owner) CPU utilization on the occupied node — "h" in the model.
  double node_utilization = 0.0;
  /// Expected local utilization on a destination idle node — "l".
  double idle_utilization = 0.0;
  /// Migration cost for this job's image, T_migr (seconds).
  double migration_cost = 0.0;
  /// How much longer the current non-idle episode will actually last.
  /// Infinity when unknown (the normal case); the trace-driven simulator can
  /// look it up for the OracleLinger baseline.
  double episode_remaining = std::numeric_limits<double>::infinity();
};

/// A policy's verdict.
struct Decision {
  enum class Action {
    Continue,  ///< keep running where it is; no future re-check needed
    Linger,    ///< keep running; re-check in `recheck_in` seconds
    Pause,     ///< suspend in place; re-check in `recheck_in` seconds
    Migrate,   ///< move to a better node as soon as a target exists
  };
  Action action = Action::Continue;
  /// Delay until the policy wants to be consulted again (Linger/Pause only).
  double recheck_in = 0.0;
};

/// Tunable parameters; only the fields relevant to a given policy apply.
struct PolicyParams {
  /// PM: fixed suspension before migrating. The paper calls it "a fixed
  /// time" without giving the value; 60 s matches the recruitment threshold
  /// and is swept in bench/abl_pause_time.
  double pause_time = 60.0;
  /// LL: multiplier on the cost-model linger duration. 1.0 is the paper's
  /// 2T median-remaining-life rule; 0 migrates at the first opportunity
  /// (an eager predictor); large values approach Linger-Forever. Swept in
  /// bench/abl_predictor.
  double linger_scale = 1.0;
};

class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual PolicyKind kind() const = 0;
  [[nodiscard]] std::string_view name() const { return to_string(kind()); }

  /// May foreign jobs run (at starvation priority) while the owner is
  /// active? False for the eviction-based policies: their jobs may only
  /// occupy idle nodes.
  [[nodiscard]] virtual bool allows_lingering() const = 0;

  /// Decision for a job whose node is non-idle. Called on the idle->non-idle
  /// transition and whenever a previously requested re-check fires with the
  /// node still non-idle.
  [[nodiscard]] virtual Decision on_nonidle(const PolicyContext& ctx) const = 0;
};

/// Factory for the four paper policies.
[[nodiscard]] std::unique_ptr<Policy> make_policy(PolicyKind kind,
                                                  const PolicyParams& params = {});

}  // namespace ll::core
