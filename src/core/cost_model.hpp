#pragma once

/// \file cost_model.hpp
/// The Linger-Longer cost model (paper §2, Figure 1).
///
/// A foreign job lingering on a node that has become non-idle progresses at
/// the leftover rate (1-h); migrating to an idle node costs T_migr of
/// suspended time but then progresses at (1-l). Equating total CPU progress
/// with and without migration over a non-idle episode of length T_nidle
/// yields the break-even condition
///
///     T_nidle >= T_lingr + (1-l)/(h-l) * T_migr .
///
/// The episode length is unknown, so the paper predicts it with the
/// median-remaining-life observation of Harchol-Balter & Downey and
/// Leland & Ott: a process (here: an episode) that has lasted T is predicted
/// to last 2T in total. Substituting T_nidle = 2*T_lingr gives the linger
/// duration before migrating:
///
///     T_lingr = (1-l)/(h-l) * T_migr .
///
/// Episodes shorter than T_lingr therefore never provoke a migration, which
/// is exactly the fine-grain-idleness insight the policy exploits.

#include <cstdint>

namespace ll::core {

/// Process migration cost: fixed endpoint processing plus state transfer
/// (paper §2: Processing_Time(src) + size/bandwidth + Processing_Time(dst)).
struct MigrationCostModel {
  double processing_source = 0.3;   // seconds of source-side work
  double processing_destination = 0.3;  // seconds of destination-side work
  /// Effective transfer bandwidth in bits/second. The paper uses a 10 Mbps
  /// Ethernet throttled to an effective 3 Mbps to bound migration's network
  /// load.
  double bandwidth_bps = 3e6;

  /// Total migration latency for a process image of `bytes`.
  [[nodiscard]] double cost(std::uint64_t bytes) const;
};

/// Linger duration before migration is worthwhile:
///   T_lingr = (1-l)/(h-l) * T_migr
/// where h is the (non-idle) source node's local utilization and l the
/// expected local utilization at the destination. Returns +infinity when
/// h <= l — migration can never pay off toward a busier (or equal) node.
[[nodiscard]] double linger_duration(double h, double l, double migration_cost);

/// Minimum non-idle episode length for which migrating after T_lingr beats
/// lingering through the whole episode:
///   T_nidle >= T_lingr + (1-l)/(h-l) * T_migr
[[nodiscard]] double min_beneficial_episode(double h, double l,
                                            double migration_cost,
                                            double linger_so_far);

/// Median-remaining-life episode predictor (the "2T" rule): an episode of
/// current age `age` is predicted to last `2 * age` in total.
[[nodiscard]] double predict_episode_total(double age);

}  // namespace ll::core
