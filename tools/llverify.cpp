/// \file llverify.cpp
/// Differential determinism and invariant harness.
///
/// For every registered verification scenario (src/verify/scenarios.hpp),
/// llverify:
///   1. runs it twice with identical seeds and diffs the state digests
///      (differential determinism — any divergence means hidden state);
///   2. runs it with a perturbed seed and requires a *different* digest
///      (negative control — a digest blind to the seed proves nothing);
///   3. re-derives its RNG streams through a perturbed fork order and
///      requires the same digest (sub-stream independence);
///   4. runs the built-in invariant checkers and fails on any violation.
///
/// With --golden DIR it additionally compares each digest against the
/// committed golden file; --write-golden DIR regenerates them (do this only
/// for *intentional* behavior changes, and say so in the commit message).
///
/// Usage:
///   llverify --all [--seed N]
///   llverify --scenario NAME [--scenario ...]
///   llverify --list
///   llverify --golden tests/golden
///   llverify --write-golden tests/golden
///   llverify --all --golden tests/golden --jobs 4
///
/// --jobs N runs the scenario checks as a batch on the lock-free
/// work-stealing TaskRunner (util/runner.hpp) instead of sequentially —
/// each scenario writes its outcome to a disjoint slot, so the report and
/// the verdict are byte-identical to --jobs 1. CI uses this to prove the
/// pinned goldens hold when driven through the concurrent runner itself.

#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/flags.hpp"
#include "util/runner.hpp"
#include "verify/scenarios.hpp"

namespace {

using ll::verify::Digest;
using ll::verify::Scenario;
using ll::verify::ScenarioOptions;
using ll::verify::ScenarioResult;

struct GoldenEntry {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
};

std::string golden_path(const std::string& dir, const std::string& name,
                        bool sharded) {
  return dir + "/" + name + (sharded ? ".shards.golden" : ".golden");
}

bool read_golden(const std::string& path, GoldenEntry& out,
                 std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::string hex;
  if (!(in >> hex >> out.events)) {
    error = "malformed golden file " + path;
    return false;
  }
  const auto parsed = Digest::parse_hex(hex);
  if (!parsed) {
    error = "bad digest in " + path;
    return false;
  }
  out.digest = *parsed;
  return true;
}

bool write_golden(const std::string& path, const ScenarioResult& result,
                  std::string& error) {
  std::ofstream out(path);
  if (!out) {
    error = "cannot write " + path;
    return false;
  }
  out << result.digest.hex() << " " << result.events << "\n";
  return static_cast<bool>(out);
}

struct CheckOutcome {
  bool ok = true;
  std::vector<std::string> failures;

  void fail(std::string message) {
    ok = false;
    failures.push_back(std::move(message));
  }
};

CheckOutcome check_scenario(const Scenario& scenario, std::uint64_t seed,
                            ll::des::QueueBackend queue, std::size_t shards,
                            const std::string& golden_dir, bool update_golden,
                            std::ostream& out) {
  CheckOutcome outcome;
  const bool sharded = shards > 0 && ll::verify::scenario_sharded(scenario);
  ScenarioOptions options;
  options.seed = seed;
  options.mode = ll::verify::Mode::kCount;
  options.queue = queue;
  options.shards = shards;

  const ScenarioResult first = scenario.run(options);
  const ScenarioResult second = scenario.run(options);

  // 1. Differential determinism: identical seeds, byte-identical digests.
  if (first.digest.value() != second.digest.value() ||
      first.events != second.events) {
    outcome.fail("NON-DETERMINISTIC: run1 " + first.digest.hex() + " run2 " +
                 second.digest.hex());
  }

  // 2. Negative control: a perturbed seed must perturb the digest.
  ScenarioOptions perturbed = options;
  perturbed.seed = seed + 1;
  const ScenarioResult control = scenario.run(perturbed);
  if (control.digest.value() == first.digest.value()) {
    outcome.fail("SEED-BLIND: digest unchanged under perturbed seed");
  }

  // 3. Sub-stream independence: decoy forks must not move the digest.
  ScenarioOptions reordered = options;
  reordered.reordered_streams = true;
  const ScenarioResult reran = scenario.run(reordered);
  if (reran.digest.value() != first.digest.value()) {
    outcome.fail("STREAM-ORDER-DEPENDENT: digest " + first.digest.hex() +
                 " became " + reran.digest.hex() +
                 " under a perturbed fork order");
  }

  // 3b. Shard-count invariance: the sharded model's digest is a pure
  //     function of the scenario, never of the partition — one shard must
  //     reproduce the K-shard digest byte for byte.
  if (sharded && shards > 1) {
    ScenarioOptions solo = options;
    solo.shards = 1;
    const ScenarioResult single = scenario.run(solo);
    if (single.digest.value() != first.digest.value() ||
        single.events != first.events) {
      outcome.fail("SHARD-COUNT-DEPENDENT: --shards " +
                   std::to_string(shards) + " digest " + first.digest.hex() +
                   " != --shards 1 digest " + single.digest.hex());
    }
  }

  // 4. Invariants: checks must run, and must pass.
  if (first.checks == 0) {
    outcome.fail("NO-CHECKS: scenario executed zero invariant checks");
  }
  if (first.violations > 0) {
    outcome.fail("INVARIANT: " + std::to_string(first.violations) + "/" +
                 std::to_string(first.checks) + " checks failed");
  }

  // 5. Golden comparison (only at the pinned seed — goldens are
  //    seed-specific by construction).
  if (!golden_dir.empty()) {
    const std::string path = golden_path(golden_dir, scenario.name, sharded);
    if (update_golden) {
      std::string error;
      if (!write_golden(path, first, error)) outcome.fail(error);
    } else if (seed != ll::verify::kGoldenSeed) {
      outcome.fail("golden comparison requires --seed " +
                   std::to_string(ll::verify::kGoldenSeed));
    } else {
      GoldenEntry golden;
      std::string error;
      if (!read_golden(path, golden, error)) {
        outcome.fail(error);
      } else if (golden.digest != first.digest.value() ||
                 golden.events != first.events) {
        Digest expected;
        outcome.fail("GOLDEN-DRIFT: expected " + path + " digest, got " +
                     first.digest.hex());
      }
    }
  }

  out << (outcome.ok ? "ok   " : "FAIL ") << scenario.name << "  digest="
      << first.digest.hex() << " events=" << first.events
      << " checks=" << first.checks << "\n";
  for (const std::string& f : outcome.failures) {
    out << "       " << f << "\n";
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  ll::util::Flags flags("llverify",
                        "Differential determinism and invariant harness: "
                        "reruns pinned scenarios, diffs state digests, and "
                        "checks engine/model invariants.");
  auto all = flags.add_bool("all", false, "run every registered scenario");
  auto list = flags.add_bool("list", false, "list scenarios and exit");
  auto seed = flags.add_uint64("seed", ll::verify::kGoldenSeed,
                               "master seed for the determinism runs");
  auto scenario_name = flags.add_string(
      "scenario", "", "run a single scenario by name (see --list)");
  auto golden = flags.add_string(
      "golden", "", "directory of golden digests to compare against");
  auto write = flags.add_string(
      "write-golden", "",
      "regenerate golden digests into this directory (intentional "
      "behavior changes only)");
  auto jobs = flags.add_int(
      "jobs", 1,
      "run scenario checks on the work-stealing runner with this many "
      "workers (0 = hardware concurrency); output is identical to --jobs 1");
  auto queue_name = flags.add_string(
      "queue", "heap",
      "event-queue backend for every engine the scenarios build (heap | "
      "calendar); digests are backend-invariant, so goldens must pass "
      "under both");
  auto shards = flags.add_uint64(
      "shards", 0,
      "run the cluster-backed scenarios on the conservative time-windowed "
      "sharded engine with this many shards (0 = monolithic ClusterSim); "
      "sharded digests compare against <name>.shards.golden and must be "
      "shard-count invariant");

  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "llverify: " << e.what() << "\n";
    return 2;
  }

  const auto queue = ll::des::parse_queue_backend(*queue_name);
  if (!queue) {
    std::cerr << "llverify: unknown --queue '" << *queue_name
              << "' (heap | calendar)\n";
    return 2;
  }

  const auto& registry = ll::verify::scenarios();

  if (*list) {
    for (const Scenario& s : registry) {
      std::cout << s.name << "  [" << s.module << "]  " << s.description
                << "\n";
    }
    return 0;
  }

  std::vector<const Scenario*> selected;
  if (!scenario_name->empty()) {
    const Scenario* s = ll::verify::find_scenario(*scenario_name);
    if (!s) {
      std::cerr << "llverify: unknown scenario '" << *scenario_name
                << "' (try --list)\n";
      return 2;
    }
    selected.push_back(s);
  } else if (*all || !write->empty() || !golden->empty()) {
    for (const Scenario& s : registry) selected.push_back(&s);
  } else {
    std::cerr << "llverify: nothing to do; pass --all, --scenario NAME, "
                 "--golden DIR or --write-golden DIR (see --help)\n";
    return 2;
  }

  const bool updating = !write->empty();
  const std::string golden_dir = updating ? *write : *golden;

  std::size_t failures = 0;
  if (*jobs == 1 || updating || selected.size() < 2) {
    // Sequential path (and always for golden regeneration — file writes
    // stay ordered and easy to reason about).
    for (const Scenario* s : selected) {
      if (!check_scenario(*s, *seed, *queue, *shards, golden_dir, updating,
                          std::cout)
               .ok) {
        ++failures;
      }
    }
  } else {
    // One task per scenario on the work-stealing runner; each writes its
    // outcome and report text to a disjoint slot, printed afterwards in
    // registration order — byte-identical to the sequential path.
    std::vector<CheckOutcome> outcomes(selected.size());
    std::vector<std::ostringstream> reports(selected.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(selected.size());
    for (std::size_t i = 0; i < selected.size(); ++i) {
      tasks.push_back([&, i] {
        outcomes[i] =
            check_scenario(*selected[i], *seed, *queue, *shards, golden_dir,
                           /*update_golden=*/false, reports[i]);
      });
    }
    ll::util::TaskRunner runner(static_cast<std::size_t>(*jobs));
    runner.run(std::move(tasks));
    for (std::size_t i = 0; i < selected.size(); ++i) {
      std::cout << reports[i].str();
      if (!outcomes[i].ok) ++failures;
    }
  }

  if (updating) {
    std::cout << "wrote " << selected.size() << " golden digests to "
              << golden_dir << "\n";
  }
  if (failures > 0) {
    std::cout << failures << "/" << selected.size() << " scenarios FAILED\n";
    return 1;
  }
  std::cout << "all " << selected.size() << " scenarios verified\n";
  return 0;
}
