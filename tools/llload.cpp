// llload — load harness for `llsim serve`.
//
// Opens N connections and drives the NDJSON protocol with a configurable
// pipeline window per connection, so total in-flight requests reach
// connections x pipeline (thousands) from one small process — no
// thread-per-request. The request mix cycles over `--unique` seeds of one
// scenario config, so `--requests` >> `--unique` measures the server's
// content-addressed cache (every seed after its first service is a hit).
//
// Reports client-observed p50/p90/p99 latency, throughput, and the cache
// hit rate taken from the responses' "cache" fields; honors
// {"status":"rejected"} backpressure by retrying after retry_after_ms.
// --min-hit-rate turns the hit rate into an exit code for CI;
// --dump-result writes the (unescaped) sweep JSON served for the base
// seed, which must byte-match `llsim bench serve_offline` output.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/flags.hpp"
#include "util/json.hpp"

namespace {

using Clock = std::chrono::steady_clock;
namespace json = ll::util::json;

struct Mix {
  std::string host;
  int port = 0;
  std::string params;  // the "params" object, shared by every request
  std::uint64_t seed_base = 42;
  std::size_t unique = 16;
};

struct Aggregate {
  std::mutex mu;
  std::vector<double> latencies_s;
  std::uint64_t ok = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t rejected = 0;  // rejection events (each retried)
  std::uint64_t errors = 0;
  std::string base_seed_result;  // first result served for seed_base
};

int connect_to(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// One connection worker: drives `count` requests (seeds cycle through the
/// mix), keeping up to `pipeline` in flight, retrying rejections.
void run_connection(const Mix& mix, std::size_t conn_index, std::size_t count,
                    std::size_t pipeline, Aggregate& agg) {
  const int fd = connect_to(mix.host, mix.port);
  if (fd < 0) {
    std::scoped_lock lock(agg.mu);
    agg.errors += count;
    return;
  }

  struct InFlight {
    std::uint64_t seed;
    Clock::time_point sent;
  };
  std::map<std::uint64_t, InFlight> outstanding;
  struct Retry {
    std::uint64_t seed;
    Clock::time_point not_before;
  };
  std::deque<Retry> retries;
  std::size_t next_request = 0;  // of `count`
  std::size_t completed = 0;
  std::uint64_t next_id = conn_index * 1000000000ull + 1;
  std::string buffer;
  char chunk[65536];

  std::vector<double> latencies;
  latencies.reserve(count);
  std::uint64_t ok = 0, hits = 0, misses = 0, rejected = 0, errors = 0;
  std::string base_result;

  const auto send_request = [&](std::uint64_t seed) -> bool {
    std::ostringstream line;
    line << "{\"id\": " << next_id << ", \"op\": \"run\", \"params\": "
         << mix.params << "}\n";
    // The params object carries the seed via string substitution below.
    std::string text = line.str();
    const std::string placeholder = "\"seed\": 0";
    const std::size_t at = text.find(placeholder);
    text.replace(at, placeholder.size(),
                 "\"seed\": " + std::to_string(seed));
    if (!send_all(fd, text)) return false;
    outstanding.emplace(next_id, InFlight{seed, Clock::now()});
    ++next_id;
    return true;
  };

  bool dead = false;
  while (completed < count && !dead) {
    // Fill the window: retries whose backoff has passed first, then fresh
    // requests.
    const Clock::time_point now = Clock::now();
    while (outstanding.size() < pipeline && !retries.empty() &&
           retries.front().not_before <= now) {
      const std::uint64_t seed = retries.front().seed;
      retries.pop_front();
      if (!send_request(seed)) {
        dead = true;
        break;
      }
    }
    while (!dead && outstanding.size() < pipeline && next_request < count) {
      const std::uint64_t seed =
          mix.seed_base +
          (conn_index + next_request * 7919) % mix.unique;  // scattered mix
      ++next_request;
      if (!send_request(seed)) dead = true;
    }
    if (dead) break;
    if (outstanding.empty()) {
      if (retries.empty()) break;  // nothing left to do
      std::this_thread::sleep_until(retries.front().not_before);
      continue;
    }

    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      try {
        const json::Value doc = json::parse(line);
        const json::Value* idv = doc.find("id");
        const json::Value* status = doc.find("status");
        if (!idv || !status) throw std::runtime_error("bad response");
        const std::uint64_t id = idv->as_u64();
        const auto it = outstanding.find(id);
        if (it == outstanding.end()) continue;  // stats/ping echo, ignore
        const std::string& st = status->as_string();
        if (st == "rejected") {
          ++rejected;
          int after_ms = 25;
          if (const json::Value* r = doc.find("retry_after_ms")) {
            after_ms = static_cast<int>(r->as_number());
          }
          retries.push_back(
              Retry{it->second.seed,
                    Clock::now() + std::chrono::milliseconds(after_ms)});
          outstanding.erase(it);
          continue;
        }
        ++completed;
        if (st == "ok") {
          ++ok;
          latencies.push_back(std::chrono::duration<double>(
                                  Clock::now() - it->second.sent)
                                  .count());
          if (const json::Value* cache = doc.find("cache")) {
            (cache->as_string() == "hit" ? hits : misses) += 1;
          }
          if (base_result.empty() && it->second.seed == mix.seed_base) {
            if (const json::Value* result = doc.find("result")) {
              base_result = result->as_string();  // parser unescapes
            }
          }
        } else {
          ++errors;
          std::cerr << "llload: server error: " << line << "\n";
        }
        outstanding.erase(it);
      } catch (const std::exception& e) {
        ++errors;
        ++completed;
        std::cerr << "llload: unparseable response: " << e.what() << "\n";
      }
    }
    buffer.erase(0, start);
  }
  if (completed < count) errors += count - completed;
  ::close(fd);

  std::scoped_lock lock(agg.mu);
  agg.ok += ok;
  agg.hits += hits;
  agg.misses += misses;
  agg.rejected += rejected;
  agg.errors += errors;
  agg.latencies_s.insert(agg.latencies_s.end(), latencies.begin(),
                         latencies.end());
  if (agg.base_seed_result.empty()) agg.base_seed_result = base_result;
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  ll::util::Flags flags("llload",
                        "Load harness for `llsim serve`: pipelined NDJSON "
                        "requests, latency percentiles, cache hit rate.");
  auto host = flags.add_string("host", "127.0.0.1", "server address");
  auto port = flags.add_int("port", 0, "server port (required)");
  auto connections = flags.add_int("connections", 8, "parallel connections");
  auto requests = flags.add_int("requests", 1000, "total run requests");
  auto pipeline = flags.add_int("pipeline", 64,
                                "max in-flight requests per connection");
  auto unique = flags.add_int("unique", 16,
                              "distinct seeds in the mix (smaller = more "
                              "cache hits)");
  auto seed = flags.add_uint64("seed", 42, "base scenario seed");
  auto policy = flags.add_string("policy", "LL", "scenario policy");
  auto nodes = flags.add_int("nodes", 8, "scenario cluster size");
  auto jobs = flags.add_int("jobs", 16, "scenario foreign jobs");
  auto demand = flags.add_double("demand", 60.0, "CPU-seconds per job");
  auto machines = flags.add_int("machines", 4, "scenario trace machines");
  auto days = flags.add_double("days", 0.05, "scenario trace days");
  auto reps = flags.add_int("reps", 1, "scenario replications");
  auto min_hit_rate = flags.add_double(
      "min-hit-rate", -1.0,
      "exit 1 when the observed hit rate is below this (CI gate)");
  auto dump_result = flags.add_string(
      "dump-result", "",
      "write the sweep JSON served for the base seed to this file");
  auto as_json = flags.add_bool("json", false, "emit the summary as JSON");
  try {
    flags.parse(argc, const_cast<const char**>(argv));
  } catch (const std::exception& e) {
    std::cerr << "llload: " << e.what() << "\n";
    return 2;
  }
  if (*port <= 0) {
    std::cerr << "llload: --port is required\n";
    return 2;
  }

  Mix mix;
  mix.host = *host;
  mix.port = static_cast<int>(*port);
  mix.seed_base = *seed;
  mix.unique = std::max<std::size_t>(1, static_cast<std::size_t>(*unique));
  {
    std::ostringstream params;
    params << "{\"policy\": \"" << *policy << "\", \"nodes\": " << *nodes
           << ", \"jobs\": " << *jobs << ", \"demand\": " << *demand
           << ", \"machines\": " << *machines << ", \"days\": " << *days
           << ", \"reps\": " << *reps << ", \"seed\": 0}";
    mix.params = params.str();
  }

  const std::size_t conns =
      std::max<std::size_t>(1, static_cast<std::size_t>(*connections));
  const std::size_t total = static_cast<std::size_t>(*requests);
  const std::size_t window =
      std::max<std::size_t>(1, static_cast<std::size_t>(*pipeline));

  Aggregate agg;
  std::vector<std::thread> threads;
  const Clock::time_point t0 = Clock::now();
  for (std::size_t c = 0; c < conns; ++c) {
    const std::size_t share = total / conns + (c < total % conns ? 1 : 0);
    if (share == 0) continue;
    threads.emplace_back(
        [&mix, c, share, window, &agg] {
          run_connection(mix, c, share, window, agg);
        });
  }
  for (std::thread& t : threads) t.join();
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  std::sort(agg.latencies_s.begin(), agg.latencies_s.end());
  const double p50 = percentile(agg.latencies_s, 0.50) * 1e3;
  const double p90 = percentile(agg.latencies_s, 0.90) * 1e3;
  const double p99 = percentile(agg.latencies_s, 0.99) * 1e3;
  const std::uint64_t classified = agg.hits + agg.misses;
  const double hit_rate =
      classified > 0 ? static_cast<double>(agg.hits) /
                           static_cast<double>(classified)
                     : 0.0;
  const double rps = wall > 0.0 ? static_cast<double>(agg.ok) / wall : 0.0;

  if (*as_json) {
    std::cout << "{\"requests\": " << total << ", \"ok\": " << agg.ok
              << ", \"errors\": " << agg.errors
              << ", \"rejected\": " << agg.rejected
              << ", \"cache_hits\": " << agg.hits
              << ", \"cache_misses\": " << agg.misses << ", \"hit_rate\": "
              << hit_rate << ", \"wall_s\": " << wall
              << ", \"throughput_rps\": " << rps << ", \"p50_ms\": " << p50
              << ", \"p90_ms\": " << p90 << ", \"p99_ms\": " << p99 << "}\n";
  } else {
    std::cout << "llload: " << agg.ok << "/" << total << " ok, "
              << agg.errors << " errors, " << agg.rejected
              << " rejections (retried)\n"
              << "llload: cache " << agg.hits << " hits / " << agg.misses
              << " misses (hit rate " << hit_rate << ")\n"
              << "llload: " << rps << " req/s over " << wall << " s; latency"
              << " p50 " << p50 << " ms, p90 " << p90 << " ms, p99 " << p99
              << " ms\n";
  }

  if (!dump_result->empty()) {
    if (agg.base_seed_result.empty()) {
      std::cerr << "llload: no result observed for the base seed; nothing "
                   "to dump\n";
      return 1;
    }
    std::ofstream f(*dump_result, std::ios::binary);
    f << agg.base_seed_result;
  }
  if (agg.errors > 0) return 1;
  if (*min_hit_rate >= 0.0 && hit_rate < *min_hit_rate) {
    std::cerr << "llload: hit rate " << hit_rate << " below required "
              << *min_hit_rate << "\n";
    return 1;
  }
  return 0;
}
