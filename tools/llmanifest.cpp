/// \file llmanifest.cpp
/// Validates a run manifest (written by `llsim ... --metrics-out` or
/// `llsim profile`) against the checked-in schema. CI runs this after a
/// smoke sweep so the manifest format only drifts deliberately.
///
/// Usage: llmanifest <manifest.json> <schema.json>
/// Exits 0 and prints "ok" when the manifest satisfies the schema;
/// exits 1 with a diagnostic otherwise.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/manifest.hpp"

namespace {

bool read_file(const char* path, std::string& out, std::string& error) {
  std::ifstream file(path);
  if (!file) {
    error = std::string("cannot open ") + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: llmanifest <manifest.json> <schema.json>\n";
    return 2;
  }
  std::string manifest_text;
  std::string schema_text;
  std::string error;
  if (!read_file(argv[1], manifest_text, error) ||
      !read_file(argv[2], schema_text, error)) {
    std::cerr << "llmanifest: " << error << "\n";
    return 1;
  }
  const std::string verdict =
      ll::obs::validate_manifest(manifest_text, schema_text);
  if (!verdict.empty()) {
    std::cerr << "llmanifest: " << argv[1] << ": " << verdict << "\n";
    return 1;
  }
  std::cout << "ok: " << argv[1] << " satisfies " << argv[2] << "\n";
  return 0;
}
