/// \file llsim.cpp
/// Thin entry point for the llsim command-line driver (src/cli/driver.hpp).

#include <iostream>
#include <string>
#include <vector>

#include "cli/driver.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ll::cli::run_cli(args, std::cout, std::cerr);
}
