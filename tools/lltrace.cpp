// lltrace — validate and summarize a Chrome trace-event JSON file written
// by `llsim trace` (or any tool emitting the same subset).
//
//   lltrace <trace.json> [--top=N] [--shard-tracks=OUT.json]
//
// Validation: the document must be an object with a "traceEvents" array;
// every event needs a string "name", a string "ph", and numeric
// "pid"/"tid"; "X" events additionally need numeric "ts" and "dur" >= 0,
// "i" events a numeric "ts". Exit 1 on any violation — CI uses this as the
// well-formedness gate for the tracer's exporter.
//
// Summary: a top-N hot-tag table over the wall-clock track (pid 1) with
// total and *self* time per name — self time excludes time covered by
// events nested inside an event on the same (pid, tid) track, computed by
// the usual sorted-interval stack sweep — plus virtual-time totals for the
// pid 2 track and the instant-event counts.
//
// Sharded traces (`llsim trace --shards K`): "shard:<k>" window spans get
// their own per-shard table and "shard.barrier" instants (arg = imbalance
// wait ns) a barrier-wait summary. --shard-tracks=OUT.json rewrites the
// trace with one Chrome track per shard — shard:<k> spans move to pid 3 /
// tid k+1 (barrier instants to tid 0) so Perfetto renders the window
// timeline per shard instead of per recording thread.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

namespace json = ll::util::json;

struct Span {
  std::string name;
  double pid = 0.0;
  double tid = 0.0;
  double ts = 0.0;
  double dur = 0.0;
};

struct NameStats {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
};

/// Accumulates self time for one (pid, tid) track: spans sorted by
/// (ts, -dur) nest like a call stack (Chrome "X" events on one thread
/// never partially overlap; ties open the longer span first).
void fold_track(std::vector<Span>& spans, std::map<std::string, NameStats>& by_name) {
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.dur > b.dur;
  });
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    while (!stack.empty() &&
           spans[stack.back()].ts + spans[stack.back()].dur <= s.ts) {
      stack.pop_back();
    }
    NameStats& stats = by_name[s.name];
    ++stats.count;
    stats.total_us += s.dur;
    stats.self_us += s.dur;
    if (!stack.empty()) {
      // The enclosing span does not own the time this one covers.
      by_name[spans[stack.back()].name].self_us -= s.dur;
    }
    stack.push_back(i);
  }
}

int fail(const std::string& message) {
  std::cerr << "lltrace: " << message << "\n";
  return 1;
}

/// Parses the k out of "shard:<k>"; -1 when the name is not a shard span.
long shard_index(const std::string& name) {
  constexpr std::string_view kPrefix = "shard:";
  if (name.rfind(kPrefix, 0) != 0 || name.size() == kPrefix.size()) return -1;
  long k = 0;
  for (std::size_t i = kPrefix.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    k = k * 10 + (name[i] - '0');
  }
  return k;
}

/// Re-emits one validated trace event, optionally overriding its track.
/// Only the exporter's known field subset (name/ph/s/pid/tid/ts/dur and
/// args.vt/args.arg) survives the rewrite — lltrace has already validated
/// that this subset is all the event carries meaning in.
void write_event(std::ostream& out, const json::Value& ev, double pid,
                 double tid) {
  char buf[64];
  const auto num = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  out << "{\"name\":\"" << json::escape(ev.find("name")->as_string())
      << "\",\"ph\":\"" << json::escape(ev.find("ph")->as_string()) << "\"";
  if (const json::Value* s = ev.find("s");
      s && s->kind() == json::Kind::kString) {
    out << ",\"s\":\"" << json::escape(s->as_string()) << "\"";
  }
  out << ",\"pid\":" << num(pid) << ",\"tid\":" << num(tid);
  for (const char* key : {"ts", "dur"}) {
    if (const json::Value* v = ev.find(key);
        v && v->kind() == json::Kind::kNumber) {
      out << ",\"" << key << "\":" << num(v->as_number());
    }
  }
  if (const json::Value* args = ev.find("args");
      args && args->kind() == json::Kind::kObject) {
    out << ",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : args->as_object()) {
      if (value.kind() == json::Kind::kNumber) {
        out << (first ? "" : ",") << "\"" << json::escape(key)
            << "\":" << num(value.as_number());
        first = false;
      } else if (value.kind() == json::Kind::kString) {
        out << (first ? "" : ",") << "\"" << json::escape(key) << "\":\""
            << json::escape(value.as_string()) << "\"";
        first = false;
      }
    }
    out << "}";
  }
  out << "}";
}

}  // namespace

int main(int argc, const char** argv) {
  ll::util::Flags flags("lltrace",
                        "Validate and summarize a Chrome trace-event JSON "
                        "file written by `llsim trace`.");
  auto top = flags.add_int("top", 12, "rows in the hot-tag table");
  auto shard_tracks = flags.add_string(
      "shard-tracks", "",
      "rewrite the trace to this path with one Chrome track per shard "
      "(shard:<k> spans on pid 3 / tid k+1, barrier instants on tid 0)");
  std::string path;
  try {
    std::vector<const char*> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        rest.push_back(argv[i]);
      } else if (path.empty()) {
        path = arg;
      } else {
        return fail("unexpected positional argument '" + std::string(arg) +
                    "'\n" + flags.usage());
      }
    }
    flags.parse(static_cast<int>(rest.size()), rest.data());
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  if (path.empty()) return fail("usage: lltrace <trace.json> [--top=N]");

  std::ifstream file(path);
  if (!file) return fail("cannot open " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();

  json::Value doc;
  try {
    doc = json::parse(buffer.str());
  } catch (const std::exception& e) {
    return fail("invalid JSON: " + std::string(e.what()));
  }
  if (doc.kind() != json::Kind::kObject) {
    return fail("top level is not an object");
  }
  const json::Value* events = doc.find("traceEvents");
  if (!events || events->kind() != json::Kind::kArray) {
    return fail("missing \"traceEvents\" array");
  }

  // Wall spans grouped per (pid, tid) track for the nesting sweep.
  std::map<std::pair<double, double>, std::vector<Span>> wall_tracks;
  std::map<std::string, NameStats> virtual_totals;
  std::map<std::string, std::uint64_t> instants;
  std::size_t span_count = 0;
  std::size_t metadata_count = 0;
  std::uint64_t barrier_count = 0;
  double barrier_wait_ns = 0.0;
  double barrier_max_ns = 0.0;

  for (std::size_t i = 0; i < events->as_array().size(); ++i) {
    const json::Value& ev = events->as_array()[i];
    const std::string where = "event " + std::to_string(i);
    if (ev.kind() != json::Kind::kObject) {
      return fail(where + " is not an object");
    }
    const auto need = [&](const char* key,
                          json::Kind kind) -> const json::Value* {
      const json::Value* v = ev.find(key);
      if (!v || v->kind() != kind) return nullptr;
      return v;
    };
    const json::Value* name = need("name", json::Kind::kString);
    const json::Value* ph = need("ph", json::Kind::kString);
    const json::Value* pid = need("pid", json::Kind::kNumber);
    const json::Value* tid = need("tid", json::Kind::kNumber);
    if (!name || !ph || !pid || !tid) {
      return fail(where + " lacks name/ph/pid/tid of the required kinds");
    }
    const std::string& phase = ph->as_string();
    if (phase == "M") {
      ++metadata_count;
      continue;
    }
    if (phase == "i") {
      if (!need("ts", json::Kind::kNumber)) {
        return fail(where + " (instant) lacks a numeric ts");
      }
      ++instants[name->as_string()];
      if (name->as_string() == "shard.barrier") {
        // arg carries the window's barrier-imbalance wait in nanoseconds.
        if (const json::Value* args = ev.find("args");
            args && args->kind() == json::Kind::kObject) {
          if (const json::Value* arg = args->find("arg");
              arg && arg->kind() == json::Kind::kNumber) {
            const double ns = arg->as_number();
            ++barrier_count;
            barrier_wait_ns += ns;
            barrier_max_ns = std::max(barrier_max_ns, ns);
          }
        }
      }
      continue;
    }
    if (phase != "X") {
      return fail(where + " has unsupported phase '" + phase + "'");
    }
    const json::Value* ts = need("ts", json::Kind::kNumber);
    const json::Value* dur = need("dur", json::Kind::kNumber);
    if (!ts || !dur) {
      return fail(where + " (complete) lacks numeric ts/dur");
    }
    if (dur->as_number() < 0.0) {
      return fail(where + " has negative dur");
    }
    ++span_count;
    Span span{name->as_string(), pid->as_number(), tid->as_number(),
              ts->as_number(), dur->as_number()};
    if (pid->as_number() == 2.0) {
      NameStats& stats = virtual_totals[span.name];
      ++stats.count;
      stats.total_us += span.dur;
    } else {
      wall_tracks[{span.pid, span.tid}].push_back(std::move(span));
    }
  }

  std::map<std::string, NameStats> wall_totals;
  for (auto& [track, spans] : wall_tracks) fold_track(spans, wall_totals);

  std::cout << path << ": valid Chrome trace — " << span_count << " spans, ";
  std::size_t instant_total = 0;
  for (const auto& [name, count] : instants) instant_total += count;
  std::cout << instant_total << " instants, " << metadata_count
            << " metadata events, " << wall_tracks.size()
            << " wall track(s)\n\n";

  std::vector<std::pair<std::string, NameStats>> ranked(wall_totals.begin(),
                                                        wall_totals.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.self_us != b.second.self_us) {
      return a.second.self_us > b.second.self_us;
    }
    return a.first < b.first;
  });
  if (ranked.size() > static_cast<std::size_t>(*top)) {
    ranked.resize(static_cast<std::size_t>(*top));
  }
  ll::util::Table table(
      {"hot tag (wall)", "count", "total ms", "self ms", "events/s"});
  char buf[32];
  const auto ms = [&buf](double us) {
    std::snprintf(buf, sizeof(buf), "%.3f", us / 1000.0);
    return std::string(buf);
  };
  // Events per wall second of *self* time: the tag's processing rate with
  // nested spans' time excluded. Sub-microsecond tags print "-" rather
  // than a rate derived from rounding noise.
  const auto rate = [&buf](const NameStats& stats) {
    if (stats.self_us <= 0.0) return std::string("-");
    std::snprintf(buf, sizeof(buf), "%.0f",
                  static_cast<double>(stats.count) / (stats.self_us / 1e6));
    return std::string(buf);
  };
  for (const auto& [name, stats] : ranked) {
    table.add_row({name, std::to_string(stats.count), ms(stats.total_us),
                   ms(stats.self_us), rate(stats)});
  }
  std::cout << table.render();

  if (!virtual_totals.empty()) {
    ll::util::Table vt({"virtual-time span", "count", "total sim-s"});
    for (const auto& [name, stats] : virtual_totals) {
      std::snprintf(buf, sizeof(buf), "%.3f", stats.total_us / 1e6);
      vt.add_row({name, std::to_string(stats.count), buf});
    }
    std::cout << "\n" << vt.render();
  }
  if (!instants.empty()) {
    ll::util::Table it({"instant", "count"});
    for (const auto& [name, count] : instants) {
      it.add_row({name, std::to_string(count)});
    }
    std::cout << "\n" << it.render();
  }

  // Sharded-engine summary: per-shard window-span totals plus the barrier
  // imbalance recorded by the coordinator's shard.barrier instants.
  std::vector<std::pair<long, NameStats>> shard_rows;
  for (const auto& [name, stats] : wall_totals) {
    const long k = shard_index(name);
    if (k >= 0) shard_rows.emplace_back(k, stats);
  }
  std::sort(shard_rows.begin(), shard_rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (!shard_rows.empty() || barrier_count > 0) {
    ll::util::Table st({"shard", "windows", "busy ms", "share"});
    double busy_total = 0.0;
    for (const auto& [k, stats] : shard_rows) busy_total += stats.total_us;
    for (const auto& [k, stats] : shard_rows) {
      char share[32];
      std::snprintf(share, sizeof(share), "%.1f%%",
                    busy_total > 0.0 ? 100.0 * stats.total_us / busy_total
                                     : 0.0);
      st.add_row({std::to_string(k), std::to_string(stats.count),
                  ms(stats.total_us), share});
    }
    std::cout << "\n" << st.render();
    if (barrier_count > 0) {
      ll::util::Table bt({"barrier waits", "value"});
      bt.add_row({"barriers", std::to_string(barrier_count)});
      std::snprintf(buf, sizeof(buf), "%.3f", barrier_wait_ns / 1e6);
      bt.add_row({"total wait ms", buf});
      std::snprintf(buf, sizeof(buf), "%.1f",
                    barrier_wait_ns / 1e3 /
                        static_cast<double>(barrier_count));
      bt.add_row({"mean wait us", buf});
      std::snprintf(buf, sizeof(buf), "%.1f", barrier_max_ns / 1e3);
      bt.add_row({"max wait us", buf});
      std::cout << "\n" << bt.render();
    }
  }

  if (!shard_tracks->empty()) {
    std::ofstream rewritten(*shard_tracks, std::ios::trunc);
    if (!rewritten) return fail("cannot open " + *shard_tracks);
    rewritten << "{\"traceEvents\":[\n";
    rewritten << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,"
                 "\"tid\":0,\"args\":{\"name\":\"shards (re-tracked)\"}}";
    rewritten << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":3,"
                 "\"tid\":0,\"args\":{\"name\":\"barriers\"}}";
    for (const auto& [k, stats] : shard_rows) {
      rewritten << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":3,"
                   "\"tid\":"
                << (k + 1) << ",\"args\":{\"name\":\"shard " << k << "\"}}";
    }
    for (const json::Value& ev : events->as_array()) {
      const std::string& name = ev.find("name")->as_string();
      const long k = shard_index(name);
      double pid = ev.find("pid")->as_number();
      double tid = ev.find("tid")->as_number();
      if (k >= 0) {
        pid = 3.0;
        tid = static_cast<double>(k + 1);
      } else if (name == "shard.barrier") {
        pid = 3.0;
        tid = 0.0;
      }
      rewritten << ",\n";
      write_event(rewritten, ev, pid, tid);
    }
    rewritten << "\n]}\n";
    std::cout << "\nwrote per-shard tracks to " << *shard_tracks << "\n";
  }
  return 0;
}
