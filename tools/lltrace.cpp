// lltrace — validate and summarize a Chrome trace-event JSON file written
// by `llsim trace` (or any tool emitting the same subset).
//
//   lltrace <trace.json> [--top=N]
//
// Validation: the document must be an object with a "traceEvents" array;
// every event needs a string "name", a string "ph", and numeric
// "pid"/"tid"; "X" events additionally need numeric "ts" and "dur" >= 0,
// "i" events a numeric "ts". Exit 1 on any violation — CI uses this as the
// well-formedness gate for the tracer's exporter.
//
// Summary: a top-N hot-tag table over the wall-clock track (pid 1) with
// total and *self* time per name — self time excludes time covered by
// events nested inside an event on the same (pid, tid) track, computed by
// the usual sorted-interval stack sweep — plus virtual-time totals for the
// pid 2 track and the instant-event counts.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

namespace json = ll::util::json;

struct Span {
  std::string name;
  double pid = 0.0;
  double tid = 0.0;
  double ts = 0.0;
  double dur = 0.0;
};

struct NameStats {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
};

/// Accumulates self time for one (pid, tid) track: spans sorted by
/// (ts, -dur) nest like a call stack (Chrome "X" events on one thread
/// never partially overlap; ties open the longer span first).
void fold_track(std::vector<Span>& spans, std::map<std::string, NameStats>& by_name) {
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.dur > b.dur;
  });
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    while (!stack.empty() &&
           spans[stack.back()].ts + spans[stack.back()].dur <= s.ts) {
      stack.pop_back();
    }
    NameStats& stats = by_name[s.name];
    ++stats.count;
    stats.total_us += s.dur;
    stats.self_us += s.dur;
    if (!stack.empty()) {
      // The enclosing span does not own the time this one covers.
      by_name[spans[stack.back()].name].self_us -= s.dur;
    }
    stack.push_back(i);
  }
}

int fail(const std::string& message) {
  std::cerr << "lltrace: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, const char** argv) {
  ll::util::Flags flags("lltrace",
                        "Validate and summarize a Chrome trace-event JSON "
                        "file written by `llsim trace`.");
  auto top = flags.add_int("top", 12, "rows in the hot-tag table");
  std::string path;
  try {
    std::vector<const char*> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        rest.push_back(argv[i]);
      } else if (path.empty()) {
        path = arg;
      } else {
        return fail("unexpected positional argument '" + std::string(arg) +
                    "'\n" + flags.usage());
      }
    }
    flags.parse(static_cast<int>(rest.size()), rest.data());
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  if (path.empty()) return fail("usage: lltrace <trace.json> [--top=N]");

  std::ifstream file(path);
  if (!file) return fail("cannot open " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();

  json::Value doc;
  try {
    doc = json::parse(buffer.str());
  } catch (const std::exception& e) {
    return fail("invalid JSON: " + std::string(e.what()));
  }
  if (doc.kind() != json::Kind::kObject) {
    return fail("top level is not an object");
  }
  const json::Value* events = doc.find("traceEvents");
  if (!events || events->kind() != json::Kind::kArray) {
    return fail("missing \"traceEvents\" array");
  }

  // Wall spans grouped per (pid, tid) track for the nesting sweep.
  std::map<std::pair<double, double>, std::vector<Span>> wall_tracks;
  std::map<std::string, NameStats> virtual_totals;
  std::map<std::string, std::uint64_t> instants;
  std::size_t span_count = 0;
  std::size_t metadata_count = 0;

  for (std::size_t i = 0; i < events->as_array().size(); ++i) {
    const json::Value& ev = events->as_array()[i];
    const std::string where = "event " + std::to_string(i);
    if (ev.kind() != json::Kind::kObject) {
      return fail(where + " is not an object");
    }
    const auto need = [&](const char* key,
                          json::Kind kind) -> const json::Value* {
      const json::Value* v = ev.find(key);
      if (!v || v->kind() != kind) return nullptr;
      return v;
    };
    const json::Value* name = need("name", json::Kind::kString);
    const json::Value* ph = need("ph", json::Kind::kString);
    const json::Value* pid = need("pid", json::Kind::kNumber);
    const json::Value* tid = need("tid", json::Kind::kNumber);
    if (!name || !ph || !pid || !tid) {
      return fail(where + " lacks name/ph/pid/tid of the required kinds");
    }
    const std::string& phase = ph->as_string();
    if (phase == "M") {
      ++metadata_count;
      continue;
    }
    if (phase == "i") {
      if (!need("ts", json::Kind::kNumber)) {
        return fail(where + " (instant) lacks a numeric ts");
      }
      ++instants[name->as_string()];
      continue;
    }
    if (phase != "X") {
      return fail(where + " has unsupported phase '" + phase + "'");
    }
    const json::Value* ts = need("ts", json::Kind::kNumber);
    const json::Value* dur = need("dur", json::Kind::kNumber);
    if (!ts || !dur) {
      return fail(where + " (complete) lacks numeric ts/dur");
    }
    if (dur->as_number() < 0.0) {
      return fail(where + " has negative dur");
    }
    ++span_count;
    Span span{name->as_string(), pid->as_number(), tid->as_number(),
              ts->as_number(), dur->as_number()};
    if (pid->as_number() == 2.0) {
      NameStats& stats = virtual_totals[span.name];
      ++stats.count;
      stats.total_us += span.dur;
    } else {
      wall_tracks[{span.pid, span.tid}].push_back(std::move(span));
    }
  }

  std::map<std::string, NameStats> wall_totals;
  for (auto& [track, spans] : wall_tracks) fold_track(spans, wall_totals);

  std::cout << path << ": valid Chrome trace — " << span_count << " spans, ";
  std::size_t instant_total = 0;
  for (const auto& [name, count] : instants) instant_total += count;
  std::cout << instant_total << " instants, " << metadata_count
            << " metadata events, " << wall_tracks.size()
            << " wall track(s)\n\n";

  std::vector<std::pair<std::string, NameStats>> ranked(wall_totals.begin(),
                                                        wall_totals.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.self_us != b.second.self_us) {
      return a.second.self_us > b.second.self_us;
    }
    return a.first < b.first;
  });
  if (ranked.size() > static_cast<std::size_t>(*top)) {
    ranked.resize(static_cast<std::size_t>(*top));
  }
  ll::util::Table table(
      {"hot tag (wall)", "count", "total ms", "self ms", "events/s"});
  char buf[32];
  const auto ms = [&buf](double us) {
    std::snprintf(buf, sizeof(buf), "%.3f", us / 1000.0);
    return std::string(buf);
  };
  // Events per wall second of *self* time: the tag's processing rate with
  // nested spans' time excluded. Sub-microsecond tags print "-" rather
  // than a rate derived from rounding noise.
  const auto rate = [&buf](const NameStats& stats) {
    if (stats.self_us <= 0.0) return std::string("-");
    std::snprintf(buf, sizeof(buf), "%.0f",
                  static_cast<double>(stats.count) / (stats.self_us / 1e6));
    return std::string(buf);
  };
  for (const auto& [name, stats] : ranked) {
    table.add_row({name, std::to_string(stats.count), ms(stats.total_us),
                   ms(stats.self_us), rate(stats)});
  }
  std::cout << table.render();

  if (!virtual_totals.empty()) {
    ll::util::Table vt({"virtual-time span", "count", "total sim-s"});
    for (const auto& [name, stats] : virtual_totals) {
      std::snprintf(buf, sizeof(buf), "%.3f", stats.total_us / 1e6);
      vt.add_row({name, std::to_string(stats.count), buf});
    }
    std::cout << "\n" << vt.render();
  }
  if (!instants.empty()) {
    ll::util::Table it({"instant", "count"});
    for (const auto& [name, count] : instants) {
      it.add_row({name, std::to_string(count)});
    }
    std::cout << "\n" << it.render();
  }
  return 0;
}
