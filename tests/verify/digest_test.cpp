#include "verify/digest.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "des/simulation.hpp"

namespace ll::verify {
namespace {

Digest fold_bytes(const std::string& s) {
  Digest d;
  for (char c : s) d.add_byte(static_cast<std::uint8_t>(c));
  return d;
}

TEST(Digest, EmptyDigestIsOffsetBasis) {
  Digest d;
  EXPECT_EQ(d.value(), Digest::kOffsetBasis);
  EXPECT_EQ(d.hex(), "cbf29ce484222325");
}

TEST(Digest, MatchesPublishedFnv1aVectors) {
  // Reference vectors for 64-bit FNV-1a (Fowler/Noll/Vo test suite).
  EXPECT_EQ(fold_bytes("a").value(), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fold_bytes("foobar").value(), 0x85944171f73967e8ULL);
}

TEST(Digest, U64FoldsAsLittleEndianBytes) {
  Digest via_u64;
  via_u64.add_u64(0x0102030405060708ULL);
  Digest via_bytes;
  for (std::uint8_t b : {0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01}) {
    via_bytes.add_byte(b);
  }
  EXPECT_EQ(via_u64.value(), via_bytes.value());
}

TEST(Digest, NegativeZeroDigestsLikePositiveZero) {
  Digest pos;
  pos.add_double(0.0);
  Digest neg;
  neg.add_double(-0.0);
  EXPECT_EQ(pos.value(), neg.value());
}

TEST(Digest, AllNanPayloadsDigestIdentically) {
  Digest quiet;
  quiet.add_double(std::numeric_limits<double>::quiet_NaN());
  Digest signaling;
  signaling.add_double(std::numeric_limits<double>::signaling_NaN());
  Digest payload;
  payload.add_double(std::nan("0x12345"));
  EXPECT_EQ(quiet.value(), signaling.value());
  EXPECT_EQ(quiet.value(), payload.value());

  Digest one;
  one.add_double(1.0);
  EXPECT_NE(quiet.value(), one.value());
}

TEST(Digest, StringsAreLengthPrefixed) {
  Digest ab_c;
  ab_c.add_string("ab");
  ab_c.add_string("c");
  Digest a_bc;
  a_bc.add_string("a");
  a_bc.add_string("bc");
  EXPECT_NE(ab_c.value(), a_bc.value());
}

TEST(Digest, HexRoundTripsThroughParse) {
  Digest d;
  d.add_event(1.5, 42, 7);
  const std::string hex = d.hex();
  EXPECT_EQ(hex.size(), 16u);
  const auto parsed = Digest::parse_hex(hex);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, d.value());
}

TEST(Digest, HexPadsLeadingZeros) {
  EXPECT_EQ(Digest::parse_hex("00000000000000ff"), 0xffULL);
  EXPECT_EQ(Digest::parse_hex("ff"), 0xffULL);
  EXPECT_EQ(Digest::parse_hex("FF"), 0xffULL);
}

TEST(Digest, ParseHexRejectsMalformedInput) {
  EXPECT_FALSE(Digest::parse_hex("").has_value());
  EXPECT_FALSE(Digest::parse_hex("xyz").has_value());
  EXPECT_FALSE(Digest::parse_hex("0123456789abcdef0").has_value());  // 17 chars
  EXPECT_FALSE(Digest::parse_hex("12 4").has_value());
}

TEST(Digest, EventOrderIsSignificant) {
  Digest forward;
  forward.add_event(1.0, 1, 0);
  forward.add_event(2.0, 2, 0);
  Digest reversed;
  reversed.add_event(2.0, 2, 0);
  reversed.add_event(1.0, 1, 0);
  EXPECT_NE(forward.value(), reversed.value());
}

TEST(DigestObserver, FoldsOnlyFiredEvents) {
  des::Simulation sim;
  DigestObserver obs;
  sim.set_observer(&obs);
  const des::EventId kept = sim.schedule_at(1.0, [] {}, 5);
  const des::EventId doomed = sim.schedule_at(2.0, [] {}, 6);
  sim.cancel(doomed);  // cancelled events must not perturb the digest
  sim.run();

  Digest expected;
  expected.add_event(1.0, kept, 5);
  EXPECT_EQ(obs.events(), 1u);
  EXPECT_EQ(obs.digest().value(), expected.value());
}

TEST(DigestObserver, IdenticalRunsProduceIdenticalDigests) {
  auto run_once = [] {
    des::Simulation sim;
    DigestObserver obs;
    sim.set_observer(&obs);
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(static_cast<double>((i * 13) % 17), [] {},
                      static_cast<std::uint64_t>(i));
    }
    sim.run();
    return obs.digest().value();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ll::verify
