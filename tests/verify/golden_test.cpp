/// Golden-trace regression suite: every verification scenario is pinned, at
/// kGoldenSeed, to a digest committed under tests/golden/. A failure here
/// means the simulator's event stream changed — either an intended behavior
/// change (regenerate with `llverify --write-golden tests/golden` and review
/// the diff) or a real regression.

#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/runner.hpp"
#include "verify/scenarios.hpp"

#ifndef LL_GOLDEN_DIR
#error "LL_GOLDEN_DIR must point at the committed golden digests"
#endif

namespace ll::verify {
namespace {

struct GoldenEntry {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
};

GoldenEntry read_golden(const std::string& name) {
  const std::string path = std::string(LL_GOLDEN_DIR) + "/" + name + ".golden";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate: llverify --write-golden)";
  std::string hex;
  GoldenEntry entry;
  in >> hex >> entry.events;
  const auto parsed = Digest::parse_hex(hex);
  EXPECT_TRUE(parsed.has_value()) << "malformed digest in " << path;
  entry.digest = parsed.value_or(0);
  return entry;
}

TEST(GoldenScenarios, RegistryCoversCoreModules) {
  std::set<std::string> modules;
  for (const auto& s : scenarios()) modules.insert(s.module);
  for (const char* required : {"des", "node", "cluster", "parallel"}) {
    EXPECT_TRUE(modules.count(required)) << "no scenario covers " << required;
  }
  EXPECT_GE(scenarios().size(), 10u);
}

TEST(GoldenScenarios, FindScenarioLooksUpByName) {
  ASSERT_FALSE(scenarios().empty());
  const auto& first = scenarios().front();
  const Scenario* found = find_scenario(first.name);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->name, first.name);
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
}

TEST(GoldenScenarios, DigestsMatchCommittedGoldens) {
  for (const auto& scenario : scenarios()) {
    SCOPED_TRACE(scenario.name);
    const GoldenEntry golden = read_golden(scenario.name);
    ScenarioOptions options;  // kGoldenSeed, kCount
    const ScenarioResult result = scenario.run(options);
    EXPECT_EQ(result.digest.value(), golden.digest)
        << "digest drift: got " << result.digest.hex();
    EXPECT_EQ(result.events, golden.events);
    EXPECT_EQ(result.violations, 0u);
  }
}

TEST(GoldenScenarios, CalendarQueueMatchesCommittedGoldens) {
  // Backend invariance, end to end: every pinned scenario re-run with the
  // calendar event queue must reproduce the committed golden digest (which
  // was generated under the binary heap) byte for byte — same events, same
  // order, same equal-timestamp tiebreaks.
  for (const auto& scenario : scenarios()) {
    SCOPED_TRACE(scenario.name);
    const GoldenEntry golden = read_golden(scenario.name);
    ScenarioOptions options;  // kGoldenSeed, kCount
    options.queue = des::QueueBackend::kCalendar;
    const ScenarioResult result = scenario.run(options);
    EXPECT_EQ(result.digest.value(), golden.digest)
        << "calendar-backend digest drift: got " << result.digest.hex();
    EXPECT_EQ(result.events, golden.events);
    EXPECT_EQ(result.violations, 0u);
  }
}

TEST(GoldenScenarios, InvariantsHoldInAssertMode) {
  for (const auto& scenario : scenarios()) {
    SCOPED_TRACE(scenario.name);
    ScenarioOptions options;
    options.mode = Mode::kAssert;
    ScenarioResult result;
    EXPECT_NO_THROW(result = scenario.run(options));
    EXPECT_GT(result.checks, 0u) << "scenario executed zero invariant checks";
  }
}

TEST(GoldenScenarios, DigestsMatchGoldensThroughTheWorkStealingRunner) {
  // The pinned scenarios executed as a batch on the lock-free TaskRunner —
  // concurrent scheduling (steals, suspensions, schedule jitter included)
  // must not move a single digest off the committed goldens. Each task
  // writes to its own pre-allocated slot, per the runner's determinism
  // contract.
  const auto& all = scenarios();
  std::vector<ScenarioResult> results(all.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    tasks.push_back([&all, &results, i] {
      ScenarioOptions options;  // kGoldenSeed, kCount
      results[i] = all[i].run(options);
    });
  }
  ll::util::TaskRunner runner(4);
  runner.run(std::move(tasks));
  for (std::size_t i = 0; i < all.size(); ++i) {
    SCOPED_TRACE(all[i].name);
    const GoldenEntry golden = read_golden(all[i].name);
    EXPECT_EQ(results[i].digest.value(), golden.digest)
        << "digest drift under the work-stealing runner: got "
        << results[i].digest.hex();
    EXPECT_EQ(results[i].events, golden.events);
    EXPECT_EQ(results[i].violations, 0u);
  }
}

TEST(GoldenScenarios, RerunsAreByteIdentical) {
  for (const auto& scenario : scenarios()) {
    SCOPED_TRACE(scenario.name);
    ScenarioOptions options;
    options.seed = 4242;  // determinism must hold at any seed, not just golden
    const ScenarioResult a = scenario.run(options);
    const ScenarioResult b = scenario.run(options);
    EXPECT_EQ(a.digest.value(), b.digest.value());
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.checks, b.checks);
  }
}

TEST(GoldenScenarios, PerturbedSeedChangesDigest) {
  for (const auto& scenario : scenarios()) {
    SCOPED_TRACE(scenario.name);
    ScenarioOptions base;
    ScenarioOptions perturbed;
    perturbed.seed = kGoldenSeed + 1;
    const ScenarioResult a = scenario.run(base);
    const ScenarioResult b = scenario.run(perturbed);
    EXPECT_NE(a.digest.value(), b.digest.value())
        << "scenario is blind to its seed";
  }
}

TEST(GoldenScenarios, StreamForkOrderDoesNotChangeDigest) {
  // fork(label, index) is a pure function of the parent state, so deriving
  // the scenario streams through interleaved decoy forks must not perturb
  // anything. This is the end-to-end sub-stream independence guarantee.
  for (const auto& scenario : scenarios()) {
    SCOPED_TRACE(scenario.name);
    ScenarioOptions base;
    ScenarioOptions reordered;
    reordered.reordered_streams = true;
    const ScenarioResult a = scenario.run(base);
    const ScenarioResult b = scenario.run(reordered);
    EXPECT_EQ(a.digest.value(), b.digest.value())
        << "digest depends on RNG fork order";
    EXPECT_EQ(a.events, b.events);
  }
}

}  // namespace
}  // namespace ll::verify
