#include "verify/invariants.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/scenario_builders.hpp"
#include "parallel/bsp.hpp"
#include "verify/digest.hpp"
#include "workload/burst_table.hpp"

namespace ll::verify {
namespace {

using namespace ll::test_support;

TEST(InvariantRegistry, AssertModeThrowsOnFirstViolation) {
  InvariantRegistry reg(Mode::kAssert);
  reg.check(true, "fine", "never shown");
  EXPECT_THROW(reg.check(false, "broken", "detail"), InvariantViolation);
  EXPECT_EQ(reg.checks(), 2u);
  EXPECT_EQ(reg.violations(), 1u);
}

TEST(InvariantRegistry, AssertMessageNamesTheInvariant) {
  InvariantRegistry reg(Mode::kAssert);
  try {
    reg.check(false, "sim.clock-monotonicity", "went backwards");
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sim.clock-monotonicity"), std::string::npos);
    EXPECT_NE(what.find("went backwards"), std::string::npos);
  }
}

TEST(InvariantRegistry, CountModeTalliesAndRetains) {
  InvariantRegistry reg(Mode::kCount);
  for (int i = 0; i < 40; ++i) {
    reg.check(false, "always-bad", "violation " + std::to_string(i));
  }
  reg.check(true, "fine", "");
  EXPECT_EQ(reg.checks(), 41u);
  EXPECT_EQ(reg.violations(), 40u);
  // Only the first kMaxRetained details are kept; counting never throws.
  ASSERT_EQ(reg.retained().size(), InvariantRegistry::kMaxRetained);
  EXPECT_EQ(reg.retained().front().invariant, "always-bad");
  EXPECT_EQ(reg.retained().front().detail, "violation 0");
  EXPECT_EQ(reg.summary(), "41 checks, 40 violations");
}

TEST(InvariantRegistry, LazyDetailOnlyMaterializedOnFailure) {
  InvariantRegistry reg(Mode::kCount);
  int calls = 0;
  reg.check_lazy(true, "ok", [&] {
    ++calls;
    return std::string("expensive");
  });
  EXPECT_EQ(calls, 0);
  reg.check_lazy(false, "bad", [&] {
    ++calls;
    return std::string("expensive");
  });
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(reg.retained().size(), 1u);
  EXPECT_EQ(reg.retained()[0].detail, "expensive");
}

TEST(SimInvariants, CleanRunPassesAndConserves) {
  des::Simulation sim;
  InvariantRegistry reg(Mode::kAssert);
  SimInvariantObserver obs(sim, reg);
  sim.set_observer(&obs);
  const des::EventId doomed = sim.schedule_at(3.0, [] {}, 1);
  sim.schedule_at(1.0, [&] { sim.schedule_in(0.5, [] {}, 2); }, 1);
  sim.schedule_at(2.0, [] {}, 2);
  sim.cancel(doomed);
  sim.run();
  obs.finalize();
  EXPECT_EQ(reg.violations(), 0u);
  EXPECT_GT(reg.checks(), 0u);
  EXPECT_EQ(obs.observed_scheduled(), 4u);
  EXPECT_EQ(obs.observed_fired(), 3u);
  EXPECT_EQ(obs.observed_cancelled(), 1u);
}

TEST(SimInvariants, ChainsToNextObserver) {
  des::Simulation sim;
  InvariantRegistry reg(Mode::kAssert);
  DigestObserver digest;
  SimInvariantObserver obs(sim, reg, &digest);
  sim.set_observer(&obs);
  sim.schedule_at(1.0, [] {}, 42);
  sim.run();
  obs.finalize();
  EXPECT_EQ(reg.violations(), 0u);
  EXPECT_EQ(digest.events(), 1u);  // the chained digest saw the fire
}

TEST(SimInvariants, DetectsClockRegression) {
  // Drive the observer directly, as a broken engine would.
  des::Simulation sim;
  InvariantRegistry reg(Mode::kCount);
  SimInvariantObserver obs(sim, reg);
  obs.on_fire(5.0, 1, 0);
  obs.on_fire(3.0, 2, 0);  // clock went backwards
  EXPECT_GT(reg.violations(), 0u);
  bool saw_monotonicity = false;
  for (const auto& v : reg.retained()) {
    if (v.invariant == "sim.clock-monotonicity") saw_monotonicity = true;
  }
  EXPECT_TRUE(saw_monotonicity);
}

TEST(SimInvariants, DetectsConservationBreak) {
  des::Simulation sim;
  sim.schedule_at(1.0, [] {});
  InvariantRegistry reg(Mode::kCount);
  SimInvariantObserver obs(sim, reg);
  // Pretend the pending event vanished: fired+cancelled+pending stays
  // consistent here, so finalize passes...
  obs.finalize();
  EXPECT_EQ(reg.violations(), 0u);
  // ...and the arithmetic is really checked: the engine's own counters are
  // the source of truth, not the observer's view.
  EXPECT_EQ(sim.events_scheduled(),
            sim.events_fired() + sim.events_cancelled() + sim.pending_count());
}

TEST(JobStateMachine, TransitionTableMatchesLifecycle) {
  using S = cluster::JobState;
  EXPECT_TRUE(legal_job_transition(S::Queued, S::Running));
  EXPECT_TRUE(legal_job_transition(S::Queued, S::Lingering));
  EXPECT_TRUE(legal_job_transition(S::Running, S::Done));
  EXPECT_TRUE(legal_job_transition(S::Running, S::Paused));
  EXPECT_TRUE(legal_job_transition(S::Lingering, S::Migrating));
  EXPECT_TRUE(legal_job_transition(S::Paused, S::Migrating));
  EXPECT_TRUE(legal_job_transition(S::Migrating, S::Running));
  EXPECT_TRUE(legal_job_transition(S::Migrating, S::Lingering));
  // Crash edges: a node failure re-queues whatever was resident.
  EXPECT_TRUE(legal_job_transition(S::Running, S::Queued));
  EXPECT_TRUE(legal_job_transition(S::Migrating, S::Queued));
  EXPECT_TRUE(legal_job_transition(S::Checkpointing, S::Queued));
  // Checkpoint writes interleave with normal execution.
  EXPECT_TRUE(legal_job_transition(S::Running, S::Checkpointing));
  EXPECT_TRUE(legal_job_transition(S::Checkpointing, S::Running));

  EXPECT_FALSE(legal_job_transition(S::Queued, S::Paused));
  EXPECT_FALSE(legal_job_transition(S::Queued, S::Done));
  EXPECT_FALSE(legal_job_transition(S::Migrating, S::Done));
  EXPECT_FALSE(legal_job_transition(S::Migrating, S::Paused));
  // Integration happens before the write starts, so a checkpoint never
  // completes the job directly.
  EXPECT_FALSE(legal_job_transition(S::Checkpointing, S::Done));
  // Done is terminal.
  EXPECT_FALSE(legal_job_transition(S::Done, S::Running));
  EXPECT_FALSE(legal_job_transition(S::Done, S::Queued));
  EXPECT_FALSE(legal_job_transition(S::Done, S::Done));
}

TEST(JobRecordCheck, AcceptsCleanLifecycle) {
  cluster::JobRecord job;
  job.id = 3;
  job.cpu_demand = 4.0;
  job.remaining = 0.0;
  job.submit_time = 0.0;
  job.set_state(cluster::JobState::Running, 1.0);
  job.first_start = 1.0;
  job.set_state(cluster::JobState::Done, 5.0);
  job.completion = 5.0;

  InvariantRegistry reg(Mode::kAssert);
  check_job_record(job, reg);
  EXPECT_EQ(reg.violations(), 0u);
  EXPECT_GT(reg.checks(), 0u);
}

TEST(JobRecordCheck, FlagsIllegalTransition) {
  cluster::JobRecord job;
  job.id = 1;
  job.history.push_back({1.0, cluster::JobState::Paused});  // Queued -> Paused
  job.state = cluster::JobState::Paused;

  InvariantRegistry reg(Mode::kCount);
  check_job_record(job, reg);
  EXPECT_GT(reg.violations(), 0u);
  EXPECT_EQ(reg.retained().front().invariant, "job.legal-transition");

  InvariantRegistry strict(Mode::kAssert);
  EXPECT_THROW(check_job_record(job, strict), InvariantViolation);
}

TEST(JobRecordCheck, FlagsDoneWithoutCompletion) {
  cluster::JobRecord job;
  job.set_state(cluster::JobState::Running, 1.0);
  job.set_state(cluster::JobState::Done, 2.0);
  job.completion.reset();  // corrupt the record: Done must imply completion
  InvariantRegistry reg(Mode::kCount);
  check_job_record(job, reg);
  EXPECT_GT(reg.violations(), 0u);
}

TEST(JobRecordCheck, FlagsStopwatchLifetimeMismatch) {
  cluster::JobRecord job;
  job.set_state(cluster::JobState::Running, 1.0);
  job.set_state(cluster::JobState::Done, 5.0);
  job.completion = 5.0;
  job.state_time[static_cast<std::size_t>(cluster::JobState::Running)] += 2.0;
  InvariantRegistry reg(Mode::kCount);
  check_job_record(job, reg);
  EXPECT_GT(reg.violations(), 0u);
}

TEST(JobRecordCheck, FlagsCompletionWhileRunning) {
  cluster::JobRecord job;
  job.set_state(cluster::JobState::Running, 1.0);
  job.completion = 2.0;  // still Running
  InvariantRegistry reg(Mode::kCount);
  check_job_record(job, reg);
  EXPECT_GT(reg.violations(), 0u);
}

TEST(ClusterOccupancy, CleanOnLiveSimulation) {
  auto cfg = base_config(core::PolicyKind::LingerLonger, 3);
  const auto pool = uniform_pool(std::string(400, '.'));
  cluster::ClusterSim sim(cfg, pool, table(), rng::Stream(17));
  for (int i = 0; i < 5; ++i) sim.submit(30.0);

  InvariantRegistry reg(Mode::kAssert);
  // Mid-run (some Running, some Queued) and at quiescence.
  sim.run_for(10.0);
  check_cluster_occupancy(sim, reg);
  sim.run_until_all_complete();
  check_cluster_occupancy(sim, reg);
  for (const auto& job : sim.jobs()) check_job_record(job, reg);
  EXPECT_EQ(reg.violations(), 0u);
  EXPECT_GT(reg.checks(), 0u);
}

TEST(ClusterOccupancy, CleanUnderEvictionAndMultiSlot) {
  auto cfg = base_config(core::PolicyKind::ImmediateEviction, 4);
  cfg.max_foreign_per_node = 2;
  std::vector<trace::CoarseTrace> pool{
      pattern_trace("...." + std::string(60, 'B') + std::string(400, '.')),
      pattern_trace(std::string(500, '.'))};
  cluster::ClusterSim sim(cfg, pool, table(), rng::Stream(23));
  for (int i = 0; i < 6; ++i) sim.submit(40.0);

  InvariantRegistry reg(Mode::kAssert);
  for (int step = 0; step < 8; ++step) {
    sim.run_for(15.0);
    check_cluster_occupancy(sim, reg);
  }
  sim.run_until_all_complete(1e6);
  check_cluster_occupancy(sim, reg);
  for (const auto& job : sim.jobs()) check_job_record(job, reg);
  EXPECT_EQ(reg.violations(), 0u);
}

TEST(BspCheck, PassesOnRealSimulation) {
  parallel::BspConfig cfg;
  cfg.processes = 4;
  cfg.phases = 20;
  std::vector<double> utils{0.0, 0.3, 0.5, 0.0};
  const auto result =
      parallel::simulate_bsp(cfg, utils, table(), rng::Stream(7));
  InvariantRegistry reg(Mode::kAssert);
  check_bsp_result(cfg, result, reg);
  EXPECT_EQ(reg.violations(), 0u);
  EXPECT_GT(reg.checks(), 0u);
}

TEST(BspCheck, FlagsContendedRunBeatingIdeal) {
  parallel::BspConfig cfg;
  parallel::BspResult result;
  result.time = 1.0;
  result.ideal = 2.0;  // impossible: contention can only slow a run down
  result.phases = cfg.phases;
  InvariantRegistry reg(Mode::kCount);
  check_bsp_result(cfg, result, reg);
  EXPECT_GT(reg.violations(), 0u);
}

TEST(BspCheck, FlagsNonFiniteAndZeroPhaseResults) {
  parallel::BspConfig cfg;
  parallel::BspResult result;
  result.time = std::numeric_limits<double>::infinity();
  result.ideal = 1.0;
  result.phases = 0;
  InvariantRegistry reg(Mode::kCount);
  check_bsp_result(cfg, result, reg);
  EXPECT_GE(reg.violations(), 2u);
}

}  // namespace
}  // namespace ll::verify
